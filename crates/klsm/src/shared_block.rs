//! Immutable shared blocks for the SLSM.
//!
//! A [`SharedBlock`] is a sorted array of entries. Each entry pairs an
//! item with a pointer to an [`AtomicBool`] *taken flag*. Flags live in
//! [`Segment`]s — one segment per inserted batch — and are **shared by
//! reference** between a block and every block later produced by merging
//! it: merging copies entries (item + flag pointer) but never the flags
//! themselves. A deletion claims an item by a single
//! `compare_exchange(false, true)` on its flag, so no matter how many
//! block generations an entry has been copied through, at most one
//! deletion can ever return it.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use pq_traits::Item;

/// Taken flags for one inserted batch. Kept alive by `Arc`s held in every
/// block whose entries point into it.
#[derive(Debug)]
pub struct Segment {
    flags: Box<[AtomicBool]>,
}

impl Segment {
    /// A segment of `n` untaken flags.
    pub fn new(n: usize) -> Arc<Self> {
        Arc::new(Self {
            flags: (0..n).map(|_| AtomicBool::new(false)).collect(),
        })
    }

    /// Pointer to flag `i`. Valid for as long as the `Arc<Segment>` lives.
    #[inline]
    fn flag_ptr(&self, i: usize) -> *const AtomicBool {
        &self.flags[i] as *const AtomicBool
    }
}

/// One sorted slot in a shared block: an item plus its shared taken flag.
#[derive(Clone, Copy, Debug)]
pub struct Entry {
    /// The stored key-value pair.
    pub item: Item,
    flag: *const AtomicBool,
}

impl Entry {
    /// `true` if the item has been claimed by a deletion.
    #[inline]
    pub fn is_taken(&self) -> bool {
        // SAFETY: `flag` points into a Segment kept alive by the
        // SharedBlock holding this entry.
        unsafe { (*self.flag).load(Ordering::Acquire) }
    }

    /// Attempt to claim the item. Returns `true` exactly once per entry
    /// across all copies of it in all block generations.
    #[inline]
    pub fn try_take(&self) -> bool {
        // SAFETY: as in `is_taken`.
        unsafe {
            (*self.flag)
                .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
        }
    }
}

/// Immutable sorted block of entries, plus the segments keeping the
/// entries' flags alive and a monotone `first` hint that skips the taken
/// prefix.
#[derive(Debug)]
pub struct SharedBlock {
    entries: Box<[Entry]>,
    /// Entries `[0, first)` are known taken. Monotone; advanced with
    /// `fetch_max`-style updates. A hint only — correctness never depends
    /// on it.
    first: AtomicUsize,
    /// Keep-alive references for every segment the entries point into.
    segments: Box<[Arc<Segment>]>,
    capacity: usize,
}

// SAFETY: `Entry.flag` pointers target `AtomicBool`s inside `segments`,
// which the block owns (via Arc) for its whole lifetime; `AtomicBool` is
// Sync and entries are never mutated after construction.
unsafe impl Send for SharedBlock {}
unsafe impl Sync for SharedBlock {}

impl SharedBlock {
    /// Build a block from a sorted batch of items with a fresh segment of
    /// untaken flags.
    pub fn from_batch(items: &[Item]) -> Arc<Self> {
        debug_assert!(items.windows(2).all(|w| w[0] <= w[1]));
        let segment = Segment::new(items.len());
        let entries: Box<[Entry]> = items
            .iter()
            .enumerate()
            .map(|(i, &item)| Entry {
                item,
                flag: segment.flag_ptr(i),
            })
            .collect();
        let capacity = entries.len().next_power_of_two().max(1);
        Arc::new(Self {
            entries,
            first: AtomicUsize::new(0),
            segments: Box::new([segment]),
            capacity,
        })
    }

    /// Merge the live (untaken-at-copy-time) entries of two blocks into a
    /// fresh block. Flags are shared with the parents, so entries taken
    /// concurrently with the merge are simply observed as taken in the
    /// child.
    pub fn merge(a: &SharedBlock, b: &SharedBlock) -> Arc<Self> {
        let mut entries = Vec::with_capacity(a.len_hint() + b.len_hint());
        // Cursor merge over the raw entry arrays (same kernel shape as
        // `lsm::Block::merge_into`): taken entries are skipped inline,
        // so no filtering iterator adaptors sit on the hot loop.
        let (ea, eb) = (&a.entries, &b.entries);
        let mut i = a.first.load(Ordering::Relaxed).min(ea.len());
        let mut j = b.first.load(Ordering::Relaxed).min(eb.len());
        loop {
            while i < ea.len() && ea[i].is_taken() {
                i += 1;
            }
            while j < eb.len() && eb[j].is_taken() {
                j += 1;
            }
            match (i < ea.len(), j < eb.len()) {
                (true, true) => {
                    if ea[i].item <= eb[j].item {
                        entries.push(ea[i]);
                        i += 1;
                    } else {
                        entries.push(eb[j]);
                        j += 1;
                    }
                }
                (true, false) => {
                    entries.push(ea[i]);
                    i += 1;
                }
                (false, true) => {
                    entries.push(eb[j]);
                    j += 1;
                }
                (false, false) => break,
            }
        }
        let segments: Box<[Arc<Segment>]> = a
            .segments
            .iter()
            .chain(b.segments.iter())
            .cloned()
            .collect();
        let capacity = entries.len().next_power_of_two().max(1);
        Arc::new(Self {
            entries: entries.into_boxed_slice(),
            first: AtomicUsize::new(0),
            segments,
            capacity,
        })
    }

    /// Rebuild this block around its currently-live entries (compaction).
    pub fn compact(&self) -> Arc<Self> {
        let entries: Vec<Entry> = self.live_entries().copied().collect();
        let capacity = entries.len().next_power_of_two().max(1);
        Arc::new(Self {
            entries: entries.into_boxed_slice(),
            first: AtomicUsize::new(0),
            segments: self.segments.clone().into_vec().into_boxed_slice(),
            capacity,
        })
    }

    /// Power-of-two capacity (based on live count at construction).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total entries including taken ones.
    #[inline]
    pub fn total_len(&self) -> usize {
        self.entries.len()
    }

    /// Upper bound on the number of live entries (total minus the known
    /// taken prefix).
    #[inline]
    pub fn len_hint(&self) -> usize {
        self.entries.len() - self.first.load(Ordering::Relaxed).min(self.entries.len())
    }

    /// Entry at index `i`.
    #[inline]
    pub fn entry(&self, i: usize) -> &Entry {
        &self.entries[i]
    }

    /// Current `first` hint.
    #[inline]
    pub fn first_hint(&self) -> usize {
        self.first.load(Ordering::Relaxed)
    }

    /// Advance the `first` hint to at least `to` (monotone).
    pub fn advance_first(&self, to: usize) {
        self.first.fetch_max(to, Ordering::Relaxed);
    }

    /// Index of the first live entry at or after the `first` hint,
    /// advancing the hint past any taken prefix found. `None` if the
    /// block is (currently) fully taken.
    pub fn refresh_first(&self) -> Option<usize> {
        let mut i = self.first.load(Ordering::Relaxed);
        while i < self.entries.len() && self.entries[i].is_taken() {
            i += 1;
        }
        self.first.fetch_max(i, Ordering::Relaxed);
        (i < self.entries.len()).then_some(i)
    }

    /// Smallest live item, if any (refreshes the `first` hint).
    pub fn peek(&self) -> Option<Item> {
        self.refresh_first().map(|i| self.entries[i].item)
    }

    /// Iterate over entries that are live right now, starting from the
    /// `first` hint. Concurrent takes may race; callers must still CAS.
    pub fn live_entries(&self) -> impl Iterator<Item = &Entry> {
        self.entries[self.first.load(Ordering::Relaxed).min(self.entries.len())..]
            .iter()
            .filter(|e| !e.is_taken())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(keys: &[u64]) -> Vec<Item> {
        keys.iter().map(|&k| Item::new(k, 0)).collect()
    }

    #[test]
    fn take_succeeds_once() {
        let b = SharedBlock::from_batch(&items(&[1, 2, 3]));
        assert!(b.entry(1).try_take());
        assert!(!b.entry(1).try_take());
        assert!(b.entry(1).is_taken());
        assert!(!b.entry(0).is_taken());
    }

    #[test]
    fn merge_shares_flags() {
        let a = SharedBlock::from_batch(&items(&[1, 3]));
        let b = SharedBlock::from_batch(&items(&[2, 4]));
        let m = SharedBlock::merge(&a, &b);
        let got: Vec<u64> = m.live_entries().map(|e| e.item.key).collect();
        assert_eq!(got, vec![1, 2, 3, 4]);
        // Taking through the merged block marks the parent entry too.
        assert!(m.entry(0).try_take()); // key 1 lives in `a`
        assert!(a.entry(0).is_taken());
        assert!(!a.entry(0).try_take());
    }

    #[test]
    fn merge_filters_taken() {
        let a = SharedBlock::from_batch(&items(&[1, 3, 5]));
        assert!(a.entry(1).try_take()); // remove key 3
        let b = SharedBlock::from_batch(&items(&[2]));
        let m = SharedBlock::merge(&a, &b);
        let got: Vec<u64> = m.live_entries().map(|e| e.item.key).collect();
        assert_eq!(got, vec![1, 2, 5]);
        assert_eq!(m.total_len(), 3);
    }

    #[test]
    fn refresh_first_skips_taken_prefix() {
        let b = SharedBlock::from_batch(&items(&[1, 2, 3, 4]));
        assert!(b.entry(0).try_take());
        assert!(b.entry(1).try_take());
        assert_eq!(b.refresh_first(), Some(2));
        assert_eq!(b.first_hint(), 2);
        assert_eq!(b.peek(), Some(Item::new(3, 0)));
    }

    #[test]
    fn fully_taken_block() {
        let b = SharedBlock::from_batch(&items(&[7]));
        assert!(b.entry(0).try_take());
        assert_eq!(b.refresh_first(), None);
        assert_eq!(b.peek(), None);
        assert_eq!(b.live_entries().count(), 0);
    }

    #[test]
    fn compact_drops_taken_and_resizes() {
        let b = SharedBlock::from_batch(&items(&[1, 2, 3, 4, 5, 6, 7, 8]));
        for i in 0..6 {
            assert!(b.entry(i).try_take());
        }
        let c = b.compact();
        assert_eq!(c.total_len(), 2);
        assert_eq!(c.capacity(), 2);
        // Flags still shared: taking in the compacted block blocks the old.
        assert!(c.entry(0).try_take());
        assert!(!b.entry(6).try_take());
    }

    #[test]
    fn capacity_is_power_of_two() {
        for n in [1usize, 2, 3, 5, 8, 9, 100] {
            let b = SharedBlock::from_batch(&items(&(0..n as u64).collect::<Vec<_>>()));
            assert!(b.capacity().is_power_of_two());
            assert!(b.capacity() >= n);
            assert!(b.capacity() < 2 * n.next_power_of_two());
        }
    }

    #[test]
    fn concurrent_takes_are_exclusive() {
        let b = SharedBlock::from_batch(&items(&(0..1000).collect::<Vec<_>>()));
        let taken = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for i in 0..1000 {
                        if b.entry(i).try_take() {
                            taken.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(taken.load(Ordering::Relaxed), 1000);
    }
}
