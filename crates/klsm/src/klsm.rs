//! The composed k-LSM priority queue.
//!
//! "The k-LSM itself is a very simple data structure: it contains a DLSM,
//! limited to a maximum capacity of k per thread; and a SLSM with a pivot
//! range containing at most k+1 of its smallest items. Items are initially
//! inserted into the local DLSM. When its capacity overflows, its largest
//! block is batch-inserted into the SLSM. Deletions simply peek at both
//! the DLSM and SLSM, and return the smaller item." (paper, App. B)
//!
//! Deletions therefore skip at most `k(P-1)` items via the DLSM component
//! plus at most `k` via the SLSM — `kP` in total.

use std::sync::atomic::{AtomicU64, Ordering};

use rand::rngs::SmallRng;
use rand::SeedableRng;

use pq_traits::seed::{handle_seed, DEFAULT_QUEUE_SEED};
use pq_traits::{ConcurrentPq, Item, Key, PqHandle, RelaxationBound, SequentialPq, Value};

use crate::dlsm::Dlsm;
use crate::slsm::{Slsm, SlsmOutcome};

/// The k-LSM relaxed concurrent priority queue.
///
/// `delete_min` returns one of the `kP + 1` smallest items, where `k` is
/// the relaxation parameter and `P` the number of thread handles.
#[derive(Debug)]
pub struct Klsm {
    dlsm: Dlsm,
    slsm: Slsm,
    k: usize,
    seed: u64,
    handle_ctr: AtomicU64,
    /// Handle insert-buffer capacity; 1 means unbuffered (historical
    /// behaviour). Buffered items widen the rank bound — see
    /// [`RelaxationBound::rank_bound`].
    batch: usize,
}

impl Klsm {
    /// Create a k-LSM with relaxation parameter `k` (> 0) for up to
    /// `max_threads` threads. The paper evaluates k ∈ {128, 256, 4096}.
    pub fn new(k: usize, max_threads: usize) -> Self {
        Self::with_seed(k, max_threads, DEFAULT_QUEUE_SEED)
    }

    /// As [`Klsm::new`], with an explicit queue seed for the per-handle
    /// RNGs (handle `i` gets `seed ⊕ mix(i)`), so merge/spy tie-breaks
    /// replay deterministically.
    pub fn with_seed(k: usize, max_threads: usize, seed: u64) -> Self {
        Self::with_batch(k, max_threads, seed, 1)
    }

    /// As [`Klsm::with_seed`], buffering up to `batch` inserts per
    /// handle: buffered items are sorted once through the LSM kernels
    /// and injected as a single pre-sorted block (then evicted to the
    /// SLSM as usual if the local component overflows `k`). A handle's
    /// own deletions see the buffer — its minimum competes with the
    /// local and shared minima and is served from the buffer when it
    /// wins — while other threads may miss up to `batch − 1` buffered
    /// items per handle, which the rank bound accounts for.
    pub fn with_batch(k: usize, max_threads: usize, seed: u64, batch: usize) -> Self {
        assert!(k > 0, "k-LSM requires k > 0");
        assert!(batch > 0, "batch of 0 would never commit");
        Self {
            dlsm: Dlsm::with_seed(max_threads, seed ^ 0xD15A),
            slsm: Slsm::with_seed(k, seed ^ 0x515A),
            k,
            seed,
            handle_ctr: AtomicU64::new(0),
            batch,
        }
    }

    /// Relaxation parameter `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Approximate number of stored items (shared component only counts
    /// precisely; thread-local items are counted quiescently).
    pub fn len_quiescent(&self) -> usize {
        self.dlsm.len_quiescent() + self.slsm.len_hint()
    }

    /// Access to the shared component (diagnostics/tests).
    pub fn slsm(&self) -> &Slsm {
        &self.slsm
    }
}

/// Per-thread handle for the [`Klsm`].
pub struct KlsmHandle<'a> {
    q: &'a Klsm,
    slot: usize,
    rng: SmallRng,
    /// Pending inserts, committed as one sorted block at `batch` items
    /// (empty forever when `batch == 1`). The buffer keeps its
    /// allocation across commits.
    ins_buf: Vec<Item>,
}

impl KlsmHandle<'_> {
    /// Sort the pending inserts once (tier-1 network for small batches),
    /// inject them into the local component as a single pre-sorted
    /// block, then evict to the SLSM until the local component is back
    /// within `k`. Returns the number of committed items.
    fn commit_inserts(&mut self) -> u64 {
        if self.ins_buf.is_empty() {
            return 0;
        }
        lsm::sort_items(&mut self.ins_buf);
        let n = self.ins_buf.len() as u64;
        self.q
            .dlsm
            .with_slot(self.slot, |local| local.merge_in_from(&self.ins_buf));
        self.ins_buf.clear();
        // A bulk merge can overflow `k` by more than one block's worth,
        // so evict repeatedly (each eviction removes > half the local
        // items, so this loop is short).
        loop {
            let evicted = self.q.dlsm.with_slot(self.slot, |local| {
                if local.len() > self.q.k {
                    local.pop_largest_block()
                } else {
                    None
                }
            });
            match evicted {
                Some(block) => self.q.slsm.insert_sorted_batch(block),
                None => break,
            }
        }
        n
    }
}

impl PqHandle for KlsmHandle<'_> {
    fn insert(&mut self, key: Key, value: Value) {
        if self.q.batch > 1 {
            self.ins_buf.push(Item::new(key, value));
            if self.ins_buf.len() >= self.q.batch {
                self.commit_inserts();
            }
            return;
        }
        // Insert locally; evict the largest local block into the SLSM on
        // overflow. The evicted block holds more than half of the local
        // items, so evictions are amortized over ≥ k/2 inserts.
        let evicted = self.q.dlsm.with_slot(self.slot, |local| {
            local.insert(key, value);
            if local.len() > self.q.k {
                local.pop_largest_block()
            } else {
                None
            }
        });
        if let Some(batch) = evicted {
            // Evicted blocks are already sorted; skip the batch sort.
            self.q.slsm.insert_sorted_batch(batch);
        }
    }

    fn delete_min(&mut self) -> Option<Item> {
        // The handle's own pending inserts must be visible to its own
        // deletions, but committing the buffer on every delete defeats
        // the batching entirely on mixed workloads (the buffer never
        // fills) and pays the slot lock and merge machinery per ~1-item
        // commit. Instead the buffered minimum competes directly: it
        // joins the local/shared comparison, and when it wins it is
        // served straight out of the buffer (O(batch) scan of at most
        // `batch` items) with no commit at all.
        let buf_min = self.ins_buf.iter().copied().min();
        loop {
            // Hold the slot for the whole peek/compare/delete so the
            // peeked local minimum cannot be spied away in between.
            let result = self.q.dlsm.with_slot(self.slot, |local| {
                let local_min = match (local.peek_min(), buf_min) {
                    (Some(l), Some(b)) => Some(l.min(b)),
                    (l, b) => l.or(b),
                };
                match self.q.slsm.delete_min_if_better(local_min, &mut self.rng) {
                    SlsmOutcome::TookShared(item) => Some(Some(item)),
                    SlsmOutcome::UseLocal => {
                        if buf_min.is_some() && buf_min == local_min {
                            // Serve the buffered item; `None` here means
                            // "take it from the buffer" to the caller
                            // below (outside the slot lock).
                            Some(None)
                        } else {
                            Some(local.delete_min())
                        }
                    }
                    SlsmOutcome::Empty => None,
                }
            });
            match result {
                Some(Some(item)) => return Some(item),
                Some(None) => {
                    let best = buf_min.expect("buffer won the comparison");
                    let idx = self
                        .ins_buf
                        .iter()
                        .position(|&it| it == best)
                        .expect("buffered minimum still present");
                    self.ins_buf.swap_remove(idx);
                    return Some(best);
                }
                None => {
                    // Both components empty: spy on other threads' locals.
                    if self.q.dlsm.spy_into(self.slot, &mut self.rng) == 0 {
                        return None;
                    }
                }
            }
        }
    }

    fn flush(&mut self) -> u64 {
        self.commit_inserts()
    }
}

impl Drop for KlsmHandle<'_> {
    fn drop(&mut self) {
        self.flush();
    }
}

impl ConcurrentPq for Klsm {
    type Handle<'a> = KlsmHandle<'a>;

    fn handle(&self) -> KlsmHandle<'_> {
        let idx = self.handle_ctr.fetch_add(1, Ordering::Relaxed);
        KlsmHandle {
            q: self,
            slot: self.dlsm.claim_slot(),
            rng: SmallRng::seed_from_u64(handle_seed(self.seed, idx)),
            ins_buf: Vec::new(),
        }
    }

    fn name(&self) -> String {
        if self.batch > 1 {
            format!("klsm{}-b{}", self.k, self.batch)
        } else {
            format!("klsm{}", self.k)
        }
    }
}

impl RelaxationBound for Klsm {
    fn rank_bound(&self, threads: usize) -> Option<u64> {
        // Each other thread may hold up to `k` items in its local
        // component plus `batch − 1` unflushed buffered inserts that a
        // deletion cannot see.
        Some(((self.k + self.batch - 1) * threads) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_returns_all_items() {
        let q = Klsm::new(8, 1);
        let mut h = q.handle();
        for k in (0..100u64).rev() {
            h.insert(k, k);
        }
        let mut got: Vec<Key> = std::iter::from_fn(|| h.delete_min()).map(|i| i.key).collect();
        got.sort_unstable();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn overflow_evicts_to_slsm() {
        let q = Klsm::new(4, 1);
        let mut h = q.handle();
        for k in 0..64u64 {
            h.insert(k, k);
        }
        assert!(
            q.slsm().len_hint() > 0,
            "64 inserts with k=4 must have evicted to the SLSM"
        );
    }

    #[test]
    fn single_thread_relaxation_bound() {
        // With one thread the k-LSM skips at most k items.
        let k = 16usize;
        let q = Klsm::new(k, 1);
        let mut h = q.handle();
        for x in 0..1000u64 {
            h.insert((x * 7919) % 4096, x);
        }
        let mut live: Vec<Key> = (0..1000u64).map(|x| (x * 7919) % 4096).collect();
        while let Some(it) = h.delete_min() {
            let rank = live.iter().filter(|&&x| x < it.key).count();
            assert!(rank <= k, "rank {rank} exceeds k={k} on one thread");
            let pos = live.iter().position(|&x| x == it.key).unwrap();
            live.remove(pos);
        }
        assert!(live.is_empty());
    }

    #[test]
    fn empty_queue_returns_none() {
        let q = Klsm::new(128, 2);
        let mut h = q.handle();
        assert_eq!(h.delete_min(), None);
        h.insert(1, 1);
        assert!(h.delete_min().is_some());
        assert_eq!(h.delete_min(), None);
    }

    #[test]
    fn deletes_see_other_threads_items_via_slsm_or_spy() {
        let q = Klsm::new(4, 2);
        let mut h1 = q.handle();
        let mut h2 = q.handle();
        for k in 0..32u64 {
            h1.insert(k, k);
        }
        // h2 must be able to drain items inserted by h1.
        let mut got = Vec::new();
        while let Some(it) = h2.delete_min() {
            got.push(it.key);
        }
        got.sort_unstable();
        assert_eq!(got, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_conservation() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let q = std::sync::Arc::new(Klsm::new(64, 4));
        let deleted = AtomicUsize::new(0);
        let inserted = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let q = &q;
                let deleted = &deleted;
                let inserted = &inserted;
                s.spawn(move || {
                    let mut h = q.handle();
                    let mut dels = 0usize;
                    let mut ins = 0usize;
                    for i in 0..10_000u64 {
                        if (t + i) % 2 == 0 {
                            h.insert((i * 2654435761) % 100_000, t * 10_000 + i);
                            ins += 1;
                        } else if h.delete_min().is_some() {
                            dels += 1;
                        }
                    }
                    deleted.fetch_add(dels, Ordering::Relaxed);
                    inserted.fetch_add(ins, Ordering::Relaxed);
                });
            }
        });
        // Drain the rest single-threaded.
        let mut h = KlsmHandle {
            q: &q,
            slot: 0,
            rng: SmallRng::seed_from_u64(3),
            ins_buf: Vec::new(),
        };
        let mut rest = 0usize;
        while h.delete_min().is_some() {
            rest += 1;
        }
        assert_eq!(
            deleted.load(Ordering::Relaxed) + rest,
            inserted.load(Ordering::Relaxed),
            "items lost or duplicated"
        );
    }

    #[test]
    fn names_include_k() {
        assert_eq!(Klsm::new(256, 1).name(), "klsm256");
        assert_eq!(Klsm::new(4096, 1).name(), "klsm4096");
    }

    #[test]
    fn rank_bound_is_k_times_p() {
        let q = Klsm::new(128, 1);
        assert_eq!(q.rank_bound(8), Some(1024));
    }

    #[test]
    fn batched_rank_bound_counts_buffered_items() {
        let q = Klsm::with_batch(128, 1, 0x5EED, 16);
        assert_eq!(q.name(), "klsm128-b16");
        assert_eq!(q.rank_bound(8), Some((128 + 15) * 8));
    }

    #[test]
    fn batched_klsm_conserves_and_orders_items() {
        let q = Klsm::with_batch(8, 1, 0x5EED, 16);
        let mut h = q.handle();
        for k in (0..100u64).rev() {
            h.insert(k, k);
        }
        // 100 inserts at batch 16: the last 4 are still buffered.
        assert_eq!(h.flush(), 4);
        let mut got: Vec<Key> = std::iter::from_fn(|| h.delete_min()).map(|i| i.key).collect();
        got.sort_unstable();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn dropping_batched_klsm_handle_flushes() {
        let q = Klsm::with_batch(4, 2, 0x5EED, 64);
        {
            let mut h = q.handle();
            for k in 0..20u64 {
                h.insert(k, k);
            }
        }
        // All 20 items are visible to a fresh handle after the drop.
        let mut h2 = q.handle();
        let mut got: Vec<Key> = std::iter::from_fn(|| h2.delete_min()).map(|i| i.key).collect();
        got.sort_unstable();
        assert_eq!(got, (0..20).collect::<Vec<_>>());
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(24))]
        #[test]
        fn prop_multiset_preserved_single_thread(
            ops in proptest::collection::vec((proptest::bool::ANY, 0u64..2000), 0..500),
            k in 1usize..64,
        ) {
            let q = Klsm::new(k, 1);
            let mut h = q.handle();
            let mut model: Vec<Key> = Vec::new();
            let mut got: Vec<Key> = Vec::new();
            for (i, &(is_insert, key)) in ops.iter().enumerate() {
                if is_insert {
                    h.insert(key, i as u64);
                    model.push(key);
                } else if let Some(it) = h.delete_min() {
                    got.push(it.key);
                }
            }
            while let Some(it) = h.delete_min() {
                got.push(it.key);
            }
            got.sort_unstable();
            model.sort_unstable();
            proptest::prop_assert_eq!(got, model);
        }

        #[test]
        fn prop_single_thread_rank_bound(
            keys in proptest::collection::vec(0u64..10_000, 1..400),
            k in 1usize..32,
        ) {
            let q = Klsm::new(k, 1);
            let mut h = q.handle();
            for (i, &key) in keys.iter().enumerate() {
                h.insert(key, i as u64);
            }
            let mut live: Vec<Key> = keys.clone();
            live.sort_unstable();
            while let Some(it) = h.delete_min() {
                let rank = live.partition_point(|&x| x < it.key);
                proptest::prop_assert!(rank <= k, "rank {} > k {}", rank, k);
                let pos = live.binary_search(&it.key).unwrap();
                live.remove(pos);
            }
            proptest::prop_assert!(live.is_empty());
        }
    }
}
