//! The composed k-LSM priority queue.
//!
//! "The k-LSM itself is a very simple data structure: it contains a DLSM,
//! limited to a maximum capacity of k per thread; and a SLSM with a pivot
//! range containing at most k+1 of its smallest items. Items are initially
//! inserted into the local DLSM. When its capacity overflows, its largest
//! block is batch-inserted into the SLSM. Deletions simply peek at both
//! the DLSM and SLSM, and return the smaller item." (paper, App. B)
//!
//! Deletions therefore skip at most `k(P-1)` items via the DLSM component
//! plus at most `k` via the SLSM — `kP` in total.

use std::sync::atomic::{AtomicU64, Ordering};

use rand::rngs::SmallRng;
use rand::SeedableRng;

use pq_traits::seed::{handle_seed, DEFAULT_QUEUE_SEED};
use pq_traits::{ConcurrentPq, Item, Key, PqHandle, RelaxationBound, SequentialPq, Value};

use crate::dlsm::Dlsm;
use crate::slsm::{Slsm, SlsmOutcome};

/// The k-LSM relaxed concurrent priority queue.
///
/// `delete_min` returns one of the `kP + 1` smallest items, where `k` is
/// the relaxation parameter and `P` the number of thread handles.
#[derive(Debug)]
pub struct Klsm {
    dlsm: Dlsm,
    slsm: Slsm,
    k: usize,
    seed: u64,
    handle_ctr: AtomicU64,
}

impl Klsm {
    /// Create a k-LSM with relaxation parameter `k` (> 0) for up to
    /// `max_threads` threads. The paper evaluates k ∈ {128, 256, 4096}.
    pub fn new(k: usize, max_threads: usize) -> Self {
        Self::with_seed(k, max_threads, DEFAULT_QUEUE_SEED)
    }

    /// As [`Klsm::new`], with an explicit queue seed for the per-handle
    /// RNGs (handle `i` gets `seed ⊕ mix(i)`), so merge/spy tie-breaks
    /// replay deterministically.
    pub fn with_seed(k: usize, max_threads: usize, seed: u64) -> Self {
        assert!(k > 0, "k-LSM requires k > 0");
        Self {
            dlsm: Dlsm::with_seed(max_threads, seed ^ 0xD15A),
            slsm: Slsm::with_seed(k, seed ^ 0x515A),
            k,
            seed,
            handle_ctr: AtomicU64::new(0),
        }
    }

    /// Relaxation parameter `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Approximate number of stored items (shared component only counts
    /// precisely; thread-local items are counted quiescently).
    pub fn len_quiescent(&self) -> usize {
        self.dlsm.len_quiescent() + self.slsm.len_hint()
    }

    /// Access to the shared component (diagnostics/tests).
    pub fn slsm(&self) -> &Slsm {
        &self.slsm
    }
}

/// Per-thread handle for the [`Klsm`].
pub struct KlsmHandle<'a> {
    q: &'a Klsm,
    slot: usize,
    rng: SmallRng,
}

impl PqHandle for KlsmHandle<'_> {
    fn insert(&mut self, key: Key, value: Value) {
        // Insert locally; evict the largest local block into the SLSM on
        // overflow. The evicted block holds more than half of the local
        // items, so evictions are amortized over ≥ k/2 inserts.
        let evicted = self.q.dlsm.with_slot(self.slot, |local| {
            local.insert(key, value);
            if local.len() > self.q.k {
                local.pop_largest_block()
            } else {
                None
            }
        });
        if let Some(batch) = evicted {
            // Evicted blocks are already sorted; skip the batch sort.
            self.q.slsm.insert_sorted_batch(batch);
        }
    }

    fn delete_min(&mut self) -> Option<Item> {
        loop {
            // Hold the slot for the whole peek/compare/delete so the
            // peeked local minimum cannot be spied away in between.
            let result = self.q.dlsm.with_slot(self.slot, |local| {
                let local_min = local.peek_min();
                match self.q.slsm.delete_min_if_better(local_min, &mut self.rng) {
                    SlsmOutcome::TookShared(item) => Some(Some(item)),
                    SlsmOutcome::UseLocal => Some(local.delete_min()),
                    SlsmOutcome::Empty => None,
                }
            });
            match result {
                Some(item) => return item,
                None => {
                    // Both components empty: spy on other threads' locals.
                    if self.q.dlsm.spy_into(self.slot, &mut self.rng) == 0 {
                        return None;
                    }
                }
            }
        }
    }
}

impl ConcurrentPq for Klsm {
    type Handle<'a> = KlsmHandle<'a>;

    fn handle(&self) -> KlsmHandle<'_> {
        let idx = self.handle_ctr.fetch_add(1, Ordering::Relaxed);
        KlsmHandle {
            q: self,
            slot: self.dlsm.claim_slot(),
            rng: SmallRng::seed_from_u64(handle_seed(self.seed, idx)),
        }
    }

    fn name(&self) -> String {
        format!("klsm{}", self.k)
    }
}

impl RelaxationBound for Klsm {
    fn rank_bound(&self, threads: usize) -> Option<u64> {
        Some((self.k * threads) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_returns_all_items() {
        let q = Klsm::new(8, 1);
        let mut h = q.handle();
        for k in (0..100u64).rev() {
            h.insert(k, k);
        }
        let mut got: Vec<Key> = std::iter::from_fn(|| h.delete_min()).map(|i| i.key).collect();
        got.sort_unstable();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn overflow_evicts_to_slsm() {
        let q = Klsm::new(4, 1);
        let mut h = q.handle();
        for k in 0..64u64 {
            h.insert(k, k);
        }
        assert!(
            q.slsm().len_hint() > 0,
            "64 inserts with k=4 must have evicted to the SLSM"
        );
    }

    #[test]
    fn single_thread_relaxation_bound() {
        // With one thread the k-LSM skips at most k items.
        let k = 16usize;
        let q = Klsm::new(k, 1);
        let mut h = q.handle();
        for x in 0..1000u64 {
            h.insert((x * 7919) % 4096, x);
        }
        let mut live: Vec<Key> = (0..1000u64).map(|x| (x * 7919) % 4096).collect();
        while let Some(it) = h.delete_min() {
            let rank = live.iter().filter(|&&x| x < it.key).count();
            assert!(rank <= k, "rank {rank} exceeds k={k} on one thread");
            let pos = live.iter().position(|&x| x == it.key).unwrap();
            live.remove(pos);
        }
        assert!(live.is_empty());
    }

    #[test]
    fn empty_queue_returns_none() {
        let q = Klsm::new(128, 2);
        let mut h = q.handle();
        assert_eq!(h.delete_min(), None);
        h.insert(1, 1);
        assert!(h.delete_min().is_some());
        assert_eq!(h.delete_min(), None);
    }

    #[test]
    fn deletes_see_other_threads_items_via_slsm_or_spy() {
        let q = Klsm::new(4, 2);
        let mut h1 = q.handle();
        let mut h2 = q.handle();
        for k in 0..32u64 {
            h1.insert(k, k);
        }
        // h2 must be able to drain items inserted by h1.
        let mut got = Vec::new();
        while let Some(it) = h2.delete_min() {
            got.push(it.key);
        }
        got.sort_unstable();
        assert_eq!(got, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_conservation() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let q = std::sync::Arc::new(Klsm::new(64, 4));
        let deleted = AtomicUsize::new(0);
        let inserted = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let q = &q;
                let deleted = &deleted;
                let inserted = &inserted;
                s.spawn(move || {
                    let mut h = q.handle();
                    let mut dels = 0usize;
                    let mut ins = 0usize;
                    for i in 0..10_000u64 {
                        if (t + i) % 2 == 0 {
                            h.insert((i * 2654435761) % 100_000, t * 10_000 + i);
                            ins += 1;
                        } else if h.delete_min().is_some() {
                            dels += 1;
                        }
                    }
                    deleted.fetch_add(dels, Ordering::Relaxed);
                    inserted.fetch_add(ins, Ordering::Relaxed);
                });
            }
        });
        // Drain the rest single-threaded.
        let mut h = KlsmHandle {
            q: &q,
            slot: 0,
            rng: SmallRng::seed_from_u64(3),
        };
        let mut rest = 0usize;
        while h.delete_min().is_some() {
            rest += 1;
        }
        assert_eq!(
            deleted.load(Ordering::Relaxed) + rest,
            inserted.load(Ordering::Relaxed),
            "items lost or duplicated"
        );
    }

    #[test]
    fn names_include_k() {
        assert_eq!(Klsm::new(256, 1).name(), "klsm256");
        assert_eq!(Klsm::new(4096, 1).name(), "klsm4096");
    }

    #[test]
    fn rank_bound_is_k_times_p() {
        let q = Klsm::new(128, 1);
        assert_eq!(q.rank_bound(8), Some(1024));
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(24))]
        #[test]
        fn prop_multiset_preserved_single_thread(
            ops in proptest::collection::vec((proptest::bool::ANY, 0u64..2000), 0..500),
            k in 1usize..64,
        ) {
            let q = Klsm::new(k, 1);
            let mut h = q.handle();
            let mut model: Vec<Key> = Vec::new();
            let mut got: Vec<Key> = Vec::new();
            for (i, &(is_insert, key)) in ops.iter().enumerate() {
                if is_insert {
                    h.insert(key, i as u64);
                    model.push(key);
                } else if let Some(it) = h.delete_min() {
                    got.push(it.key);
                }
            }
            while let Some(it) = h.delete_min() {
                got.push(it.key);
            }
            got.sort_unstable();
            model.sort_unstable();
            proptest::prop_assert_eq!(got, model);
        }

        #[test]
        fn prop_single_thread_rank_bound(
            keys in proptest::collection::vec(0u64..10_000, 1..400),
            k in 1usize..32,
        ) {
            let q = Klsm::new(k, 1);
            let mut h = q.handle();
            for (i, &key) in keys.iter().enumerate() {
                h.insert(key, i as u64);
            }
            let mut live: Vec<Key> = keys.clone();
            live.sort_unstable();
            while let Some(it) = h.delete_min() {
                let rank = live.partition_point(|&x| x < it.key);
                proptest::prop_assert!(rank <= k, "rank {} > k {}", rank, k);
                let pos = live.binary_search(&it.key).unwrap();
                live.remove(pos);
            }
            proptest::prop_assert!(live.is_empty());
        }
    }
}
