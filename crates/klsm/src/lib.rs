//! The k-LSM relaxed, linearizable, lock-free concurrent priority queue
//! (Wimmer et al., PPoPP 2015), plus its two standalone components.
//!
//! The k-LSM composes:
//!
//! * the **DLSM** ([`dlsm::Dlsm`]) — one sequential LSM per thread.
//!   Operations are embarrassingly parallel; inter-thread communication
//!   happens only when a deletion finds the local LSM empty and *spies*
//!   items from another thread. `delete_min` returns an item that is
//!   minimal **on the current thread**.
//! * the **SLSM** ([`slsm::Slsm`]) — a single shared LSM whose blocks are
//!   immutable sorted arrays published through an epoch-protected,
//!   copy-on-write block list. A *pivot range* covers (a subset of) the
//!   k+1 smallest live items; deletions take a random pivot item with a
//!   single CAS on its shared "taken" flag and therefore skip at most `k`
//!   items.
//!
//! The composed [`Klsm`] inserts into the thread-local LSM and evicts its
//! largest block into the SLSM whenever the local component exceeds `k`
//! items; deletions peek both components and take the smaller head.
//! DLSM deletions skip at most `k(P-1)` items and SLSM deletions at most
//! `k`, so k-LSM deletions skip at most `kP` items in total.
//!
//! # Example
//!
//! ```
//! use klsm::Klsm;
//! use pq_traits::{ConcurrentPq, PqHandle};
//!
//! let queue = Klsm::new(128, /*max_threads=*/ 2);
//! std::thread::scope(|s| {
//!     for t in 0..2u64 {
//!         let queue = &queue;
//!         s.spawn(move || {
//!             let mut h = queue.handle();
//!             for i in 0..1000 {
//!                 h.insert(i, t * 1000 + i);
//!             }
//!             // Returns one of the (k·P + 1) smallest items.
//!             assert!(h.delete_min().is_some());
//!         });
//!     }
//! });
//! ```
//!
//! # Differences from the C++ implementation
//!
//! See DESIGN.md §2. The crucial correctness device here is that every
//! inserted batch owns a [`shared_block::Segment`] of atomic taken flags
//! that is *shared by reference* between a block and every merged
//! descendant of that block, so a deletion (CAS on the flag) and a
//! concurrent structural merge (which copies entries, not flags) can
//! never cause an item to be returned twice.

#![warn(missing_docs)]

pub mod dlsm;
pub mod klsm;
pub mod shared_block;
pub mod slsm;

pub use dlsm::Dlsm;
pub use klsm::Klsm;
pub use slsm::Slsm;
