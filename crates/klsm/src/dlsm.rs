//! The Distributed LSM (DLSM): one sequential LSM per thread.
//!
//! Operations are "essentially embarrassingly parallel" (paper, App. B):
//! each thread works on its own LSM, and inter-thread communication occurs
//! only when a deletion finds the local LSM empty and then *spies* items
//! from another thread. Items returned by `delete_min` are guaranteed to
//! be minimal **on the current thread**, which gives no global rank bound
//! for the standalone DLSM (it is the capacity cap inside the k-LSM that
//! yields the `k(P-1)` bound there).
//!
//! Each slot is a cache-padded mutex around a sequential [`Lsm`]. The
//! owning thread is the only one that ever *blocks* on its slot; spies use
//! `try_lock` and simply move to the next victim on failure, so the owner
//! fast path is an uncontended lock acquisition.

use crossbeam_utils::CachePadded;
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use lsm::Lsm;
use pq_traits::seed::{handle_seed, DEFAULT_QUEUE_SEED};
use pq_traits::telemetry;
use pq_traits::{ConcurrentPq, Item, Key, PqHandle, RelaxationBound, SequentialPq, Value};

use std::sync::atomic::{AtomicUsize, Ordering};

/// Distributed (thread-local) LSM priority queue.
#[derive(Debug)]
pub struct Dlsm {
    slots: Box<[CachePadded<Mutex<Lsm>>]>,
    next_slot: AtomicUsize,
    seed: u64,
    /// Handle insert-buffer capacity; 1 means unbuffered (every insert
    /// goes straight to the slot, the historical behaviour).
    batch: usize,
}

impl Dlsm {
    /// Create a DLSM with `max_threads` slots. Each call to
    /// [`ConcurrentPq::handle`] claims one slot; claiming more panics.
    pub fn new(max_threads: usize) -> Self {
        Self::with_seed(max_threads, DEFAULT_QUEUE_SEED)
    }

    /// As [`Dlsm::new`], with an explicit queue seed for the per-handle
    /// RNGs (the slot index doubles as the handle index, so victim
    /// selection during spying replays deterministically).
    pub fn with_seed(max_threads: usize, seed: u64) -> Self {
        Self::with_batch(max_threads, seed, 1)
    }

    /// As [`Dlsm::with_seed`], buffering up to `batch` inserts per
    /// handle (the mq-sticky insertion-buffer idea): buffered items are
    /// sorted once through the LSM kernels and injected as a single
    /// pre-sorted block instead of `batch` separate insert cascades.
    /// `delete_min` commits the handle's own buffer first, and
    /// [`PqHandle::flush`] / drop commit the rest, so no item is lost.
    pub fn with_batch(max_threads: usize, seed: u64, batch: usize) -> Self {
        assert!(max_threads > 0, "DLSM needs at least one slot");
        assert!(batch > 0, "batch of 0 would never commit");
        Self {
            slots: (0..max_threads)
                .map(|_| CachePadded::new(Mutex::new(Lsm::new())))
                .collect(),
            next_slot: AtomicUsize::new(0),
            seed,
            batch,
        }
    }

    /// Number of slots.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Claim the next free slot index.
    pub(crate) fn claim_slot(&self) -> usize {
        let slot = self.next_slot.fetch_add(1, Ordering::Relaxed);
        assert!(
            slot < self.slots.len(),
            "more handles ({}) than DLSM slots ({})",
            slot + 1,
            self.slots.len()
        );
        slot
    }

    /// Run `f` with exclusive access to `slot`'s LSM.
    pub(crate) fn with_slot<R>(&self, slot: usize, f: impl FnOnce(&mut Lsm) -> R) -> R {
        f(&mut self.slots[slot].lock())
    }

    /// Steal roughly half of some victim's items into `slot`. Victims are
    /// probed in a random rotation with `try_lock`; a busy victim is
    /// skipped (its owner is operating on it). Returns the number of
    /// items stolen.
    ///
    /// The original DLSM *copies* a victim's items and relies on shared
    /// ownership flags to avoid duplicates; we steal (move) half instead,
    /// which preserves the no-duplication invariant trivially and the same
    /// communication pattern (see DESIGN.md §2).
    pub(crate) fn spy_into(&self, slot: usize, rng: &mut SmallRng) -> usize {
        let n = self.slots.len();
        if n <= 1 {
            return 0;
        }
        telemetry::record(telemetry::Event::DlsmSpyAttempt);
        let rot = rng.gen_range(0..n);
        for off in 0..n {
            let victim = (rot + off) % n;
            if victim == slot {
                continue;
            }
            let Some(mut guard) = self.slots[victim].try_lock() else {
                continue;
            };
            if guard.is_empty() {
                continue;
            }
            // Alternate items so both threads keep a sample of the full
            // key range (stealing a contiguous suffix would hand one
            // thread only large keys). A single remaining item is stolen
            // outright so a victim can always be fully drained. The
            // split is one pass through the victim's pool-recycled
            // buffers; the victim's LSM (and its pool) stay in place.
            let steal = guard.split_alternating();
            drop(guard);
            debug_assert!(!steal.is_empty());
            let stolen = steal.len();
            telemetry::record(telemetry::Event::DlsmSpySteal);
            telemetry::record_n(telemetry::Event::DlsmSpyItems, stolen as u64);
            // Install the sorted loot as one bulk merge instead of
            // per-item insert cascades.
            let mut own = self.slots[slot].lock();
            own.merge_in_sorted(steal);
            return stolen;
        }
        0
    }

    /// Total number of items across all slots. Takes every lock; intended
    /// for tests and quiescent inspection only.
    pub fn len_quiescent(&self) -> usize {
        self.slots.iter().map(|s| s.lock().len()).sum()
    }
}

/// Per-thread handle for a standalone [`Dlsm`].
pub struct DlsmHandle<'a> {
    dlsm: &'a Dlsm,
    slot: usize,
    rng: SmallRng,
    /// Pending inserts, committed as one sorted block at `batch` items
    /// (empty forever when `batch == 1`). The buffer keeps its
    /// allocation across commits.
    ins_buf: Vec<Item>,
}

impl DlsmHandle<'_> {
    /// The slot index owned by this handle.
    pub fn slot(&self) -> usize {
        self.slot
    }

    /// Sort the pending inserts once (tier-1 network for small batches)
    /// and inject them into the local LSM as a single pre-sorted block.
    /// Returns the number of committed items.
    fn commit_inserts(&mut self) -> u64 {
        if self.ins_buf.is_empty() {
            return 0;
        }
        lsm::sort_items(&mut self.ins_buf);
        let n = self.ins_buf.len() as u64;
        self.dlsm
            .with_slot(self.slot, |l| l.merge_in_from(&self.ins_buf));
        self.ins_buf.clear();
        n
    }
}

impl PqHandle for DlsmHandle<'_> {
    fn insert(&mut self, key: Key, value: Value) {
        if self.dlsm.batch <= 1 {
            self.dlsm.with_slot(self.slot, |l| l.insert(key, value));
            return;
        }
        self.ins_buf.push(Item::new(key, value));
        if self.ins_buf.len() >= self.dlsm.batch {
            self.commit_inserts();
        }
    }

    fn delete_min(&mut self) -> Option<Item> {
        // The handle's own pending inserts must be visible to its own
        // deletions (and to the spies of others) before any spy walk.
        self.commit_inserts();
        loop {
            if let Some(it) = self.dlsm.with_slot(self.slot, SequentialPq::delete_min) {
                return Some(it);
            }
            if self.dlsm.spy_into(self.slot, &mut self.rng) == 0 {
                return None;
            }
        }
    }

    fn flush(&mut self) -> u64 {
        self.commit_inserts()
    }
}

impl Drop for DlsmHandle<'_> {
    fn drop(&mut self) {
        self.flush();
    }
}

impl ConcurrentPq for Dlsm {
    type Handle<'a> = DlsmHandle<'a>;

    fn handle(&self) -> DlsmHandle<'_> {
        let slot = self.claim_slot();
        DlsmHandle {
            dlsm: self,
            slot,
            rng: SmallRng::seed_from_u64(handle_seed(self.seed, slot as u64)),
            ins_buf: Vec::new(),
        }
    }

    fn name(&self) -> String {
        if self.batch > 1 {
            format!("dlsm-b{}", self.batch)
        } else {
            "dlsm".to_owned()
        }
    }
}

impl RelaxationBound for Dlsm {
    fn rank_bound(&self, _threads: usize) -> Option<u64> {
        // Thread-local minimality only; no global rank bound.
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_behaves_like_lsm() {
        let d = Dlsm::new(1);
        let mut h = d.handle();
        for k in [5u64, 1, 3, 2, 4] {
            h.insert(k, k);
        }
        let out: Vec<Key> = std::iter::from_fn(|| h.delete_min()).map(|i| i.key).collect();
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn handle_claims_distinct_slots() {
        let d = Dlsm::new(3);
        let h1 = d.handle();
        let h2 = d.handle();
        let h3 = d.handle();
        let mut slots = [h1.slot(), h2.slot(), h3.slot()];
        slots.sort_unstable();
        assert_eq!(slots, [0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "more handles")]
    fn too_many_handles_panics() {
        let d = Dlsm::new(1);
        let _h1 = d.handle();
        let _h2 = d.handle();
    }

    #[test]
    fn batched_inserts_commit_on_threshold_flush_and_delete() {
        let d = Dlsm::with_batch(1, 77, 8);
        assert_eq!(d.name(), "dlsm-b8");
        let mut h = d.handle();
        for k in 0..5u64 {
            h.insert(k, k);
        }
        assert_eq!(d.len_quiescent(), 0, "below batch: still buffered");
        // delete_min commits the handle's own buffer first.
        assert_eq!(h.delete_min(), Some(pq_traits::Item::new(0, 0)));
        for k in 10..18u64 {
            h.insert(k, k);
        }
        assert_eq!(d.len_quiescent(), 12, "batch of 8 reached: committed");
        for k in 20..23u64 {
            h.insert(k, k);
        }
        assert_eq!(h.flush(), 3);
        assert_eq!(h.flush(), 0, "nothing left to commit");
        let mut got: Vec<Key> = std::iter::from_fn(|| h.delete_min()).map(|i| i.key).collect();
        got.sort_unstable();
        let mut expect: Vec<Key> = (1..5).chain(10..18).chain(20..23).collect();
        expect.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn dropping_batched_handle_flushes() {
        let d = Dlsm::with_batch(2, 77, 64);
        {
            let mut h = d.handle();
            for k in 0..10u64 {
                h.insert(k, k);
            }
        }
        assert_eq!(d.len_quiescent(), 10, "drop must commit the buffer");
    }

    #[test]
    fn spy_steals_from_nonempty_victim() {
        let d = Dlsm::new(2);
        let mut h1 = d.handle();
        let mut h2 = d.handle();
        for k in 0..100u64 {
            h1.insert(k, k);
        }
        // h2 is empty; delete_min must spy and return something.
        let got = h2.delete_min().expect("spy should find items");
        assert!(got.key < 100);
        assert_eq!(d.len_quiescent(), 99); // one item consumed by h2
    }

    #[test]
    fn no_items_lost_through_spying() {
        let d = Dlsm::new(4);
        let mut handles: Vec<_> = (0..4).map(|_| d.handle()).collect();
        for k in 0..200u64 {
            handles[(k % 2) as usize].insert(k, k);
        }
        let mut got = Vec::new();
        // Threads 2 and 3 drain everything via spying.
        loop {
            let mut progressed = false;
            for h in handles.iter_mut() {
                if let Some(it) = h.delete_min() {
                    got.push(it.key);
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        got.sort_unstable();
        assert_eq!(got, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_producers_consumers_conserve_items() {
        let d = std::sync::Arc::new(Dlsm::new(4));
        let total = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let d = &d;
                let total = &total;
                s.spawn(move || {
                    let mut h = d.handle();
                    let mut count = 0usize;
                    for i in 0..5000u64 {
                        if t < 2 {
                            h.insert(i, t * 5000 + i);
                        } else if h.delete_min().is_some() {
                            count += 1;
                        }
                    }
                    total.fetch_add(count, Ordering::Relaxed);
                });
            }
        });
        let drained = {
            let mut h = d.handle_for_test();
            let mut n = 0;
            while h.delete_min().is_some() {
                n += 1;
            }
            n
        };
        assert_eq!(total.load(Ordering::Relaxed) + drained, 10000);
    }

    impl Dlsm {
        /// Test helper: a handle on slot 0 regardless of claims.
        fn handle_for_test(&self) -> DlsmHandle<'_> {
            DlsmHandle {
                dlsm: self,
                slot: 0,
                rng: SmallRng::seed_from_u64(7),
                ins_buf: Vec::new(),
            }
        }
    }
}
