//! The Shared LSM (SLSM): a single global LSM with relaxed deletions.
//!
//! Blocks are immutable [`SharedBlock`]s published through an
//! epoch-protected, copy-on-write `BlockList`. The list also carries the
//! *pivot range*: per-block index ranges jointly covering (a subset of)
//! the `k+1` smallest live items at the time the list was built.
//! `delete_min` picks a random pivot entry and claims it with one CAS on
//! its shared taken flag; since the pivot covered the `k+1` smallest live
//! items when built and items are only ever *removed* afterwards, a
//! claimed entry skips at most `k` live items — the paper's SLSM bound.
//!
//! Structural changes (batch insert with merging, pivot rebuild, pruning
//! of empty blocks) all go through a single `compare_exchange` on the list
//! pointer, so every operation is lock-free: a failed CAS means another
//! thread made progress.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use crossbeam_epoch::{self as epoch, Atomic, Guard, Owned, Shared};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use pq_traits::seed::{handle_seed, DEFAULT_QUEUE_SEED};
use pq_traits::telemetry;
use pq_traits::{ConcurrentPq, Item, Key, PqHandle, RelaxationBound, Value};

use crate::shared_block::{Entry, SharedBlock};

/// Snapshot of the SLSM structure: blocks in decreasing capacity order
/// plus the pivot range computed when this snapshot was published.
#[derive(Debug)]
pub(crate) struct BlockList {
    blocks: Vec<Arc<SharedBlock>>,
    /// Pivot end index per block; the pivot segment of block `i` is
    /// `[blocks[i].first_hint(), ends[i])`.
    ends: Vec<usize>,
}

impl BlockList {
    fn empty() -> Self {
        Self {
            blocks: Vec::new(),
            ends: Vec::new(),
        }
    }
}

/// Outcome of [`Slsm::delete_min_if_better`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SlsmOutcome {
    /// A shared item was claimed; it compared smaller than the local peek.
    TookShared(Item),
    /// The caller's local item is smaller (or the SLSM is empty but the
    /// caller has a local item); the caller should delete locally.
    UseLocal,
    /// Both the SLSM and the caller's local component are empty.
    Empty,
}

/// The Shared LSM relaxed priority queue.
///
/// Standalone it is a lock-free, linearizable priority queue whose
/// `delete_min` returns one of the `k+1` smallest items. Inside the
/// [`crate::Klsm`] it stores the overflow blocks evicted from the
/// thread-local component.
#[derive(Debug)]
pub struct Slsm {
    list: Atomic<BlockList>,
    /// Approximate live item count, maintained after publication /
    /// successful takes. Used only for emptiness detection.
    live: AtomicUsize,
    k: usize,
    seed: u64,
    handle_ctr: AtomicU64,
}

impl Slsm {
    /// Create an empty SLSM with relaxation parameter `k` (deletions skip
    /// at most `k` items). `k = 0` gives strict semantics.
    pub fn new(k: usize) -> Self {
        Self::with_seed(k, DEFAULT_QUEUE_SEED)
    }

    /// As [`Slsm::new`], with an explicit queue seed for the per-handle
    /// RNGs (handle `i` gets `seed ⊕ mix(i)`), so relaxed pivot picks
    /// replay deterministically.
    pub fn with_seed(k: usize, seed: u64) -> Self {
        Self {
            list: Atomic::new(BlockList::empty()),
            live: AtomicUsize::new(0),
            k,
            seed,
            handle_ctr: AtomicU64::new(0),
        }
    }

    /// Relaxation parameter.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Approximate number of live items.
    pub fn len_hint(&self) -> usize {
        self.live.load(Ordering::Relaxed)
    }

    /// Insert a batch of items (need not be sorted). The batch becomes a
    /// new block; equal-capacity blocks are merged copy-on-write and the
    /// pivot range is recomputed before the new list is published.
    pub fn insert_batch(&self, mut items: Vec<Item>) {
        lsm::sort_items(&mut items);
        self.insert_sorted_batch(items);
    }

    /// As [`Slsm::insert_batch`] for an already-sorted batch, skipping
    /// the sort. The k-LSM eviction path lands here: blocks popped from
    /// a thread-local LSM are sorted by construction.
    pub fn insert_sorted_batch(&self, items: Vec<Item>) {
        if items.is_empty() {
            return;
        }
        debug_assert!(items.windows(2).all(|w| w[0] <= w[1]));
        let n = items.len();
        let new_block = SharedBlock::from_batch(&items);
        let guard = epoch::pin();
        loop {
            let old = self.list.load(Ordering::Acquire, &guard);
            // SAFETY: `old` was published by us and is protected by the
            // guard; it is only freed through `defer_destroy` below.
            let old_ref = unsafe { old.deref() };
            let mut blocks: Vec<Arc<SharedBlock>> = old_ref
                .blocks
                .iter()
                .filter(|b| b.refresh_first().is_some())
                .cloned()
                .collect();
            // Insert keeping capacities decreasing, then merge duplicates.
            let pos = blocks
                .iter()
                .position(|b| b.capacity() <= new_block.capacity())
                .unwrap_or(blocks.len());
            blocks.insert(pos, new_block.clone());
            merge_duplicate_capacities(&mut blocks);
            let ends = compute_pivot(&blocks, self.k);
            let new = Owned::new(BlockList { blocks, ends });
            match self
                .list
                .compare_exchange(old, new, Ordering::AcqRel, Ordering::Acquire, &guard)
            {
                Ok(_) => {
                    // SAFETY: `old` is now unreachable from the Atomic;
                    // epoch reclamation frees it after all guards drop.
                    unsafe { guard.defer_destroy(old) };
                    self.live.fetch_add(n, Ordering::Release);
                    return;
                }
                Err(e) => drop(e.new),
            }
        }
    }

    /// Claim and return one of the `k+1` smallest live items, or `None`
    /// if the SLSM appears empty.
    pub fn delete_min(&self, rng: &mut SmallRng) -> Option<Item> {
        match self.delete_min_if_better(None, rng) {
            SlsmOutcome::TookShared(item) => Some(item),
            SlsmOutcome::UseLocal => unreachable!("no local item supplied"),
            SlsmOutcome::Empty => None,
        }
    }

    /// The k-LSM deletion protocol: compare a random pivot candidate with
    /// the caller's local minimum and either claim the shared item (if it
    /// is smaller) or tell the caller to use its local one.
    pub fn delete_min_if_better(&self, local: Option<Item>, rng: &mut SmallRng) -> SlsmOutcome {
        let guard = epoch::pin();
        loop {
            let shared = self.list.load(Ordering::Acquire, &guard);
            // SAFETY: protected by `guard`, freed only via defer_destroy.
            let list = unsafe { shared.deref() };
            match pick_candidate(list, rng) {
                Some(entry) => {
                    if let Some(loc) = local {
                        if loc <= entry.item {
                            return SlsmOutcome::UseLocal;
                        }
                    }
                    if entry.try_take() {
                        self.live.fetch_sub(1, Ordering::Release);
                        return SlsmOutcome::TookShared(entry.item);
                    }
                    // Lost the race for this entry; retry.
                    telemetry::record(telemetry::Event::SlsmLostRace);
                }
                None => {
                    if self.live.load(Ordering::Acquire) == 0 {
                        return match local {
                            Some(_) => SlsmOutcome::UseLocal,
                            None => SlsmOutcome::Empty,
                        };
                    }
                    // Pivot exhausted but items remain: rebuild it.
                    self.rebuild_pivot(shared, &guard);
                }
            }
        }
    }

    /// Smallest live item without claiming it (refreshes first hints).
    pub fn peek_min(&self) -> Option<Item> {
        let guard = epoch::pin();
        let shared = self.list.load(Ordering::Acquire, &guard);
        // SAFETY: protected by `guard`.
        let list = unsafe { shared.deref() };
        list.blocks.iter().filter_map(|b| b.peek()).min()
    }

    /// Publish a fresh pivot range (and prune empty blocks). A failed CAS
    /// means another thread already changed the list — that is progress
    /// too, so failure is ignored.
    fn rebuild_pivot(&self, old: Shared<'_, BlockList>, guard: &Guard) {
        telemetry::record(telemetry::Event::SlsmPivotRebuild);
        // SAFETY: protected by `guard`.
        let old_ref = unsafe { old.deref() };
        let blocks: Vec<Arc<SharedBlock>> = old_ref
            .blocks
            .iter()
            .filter(|b| b.refresh_first().is_some())
            .cloned()
            .collect();
        let ends = compute_pivot(&blocks, self.k);
        let new = Owned::new(BlockList { blocks, ends });
        match self
            .list
            .compare_exchange(old, new, Ordering::AcqRel, Ordering::Acquire, guard)
        {
            Ok(_) => {
                // SAFETY: `old` unreachable after successful CAS.
                unsafe { guard.defer_destroy(old) };
            }
            Err(e) => drop(e.new),
        }
    }

    /// Number of blocks in the current snapshot (tests/diagnostics).
    pub fn block_count(&self) -> usize {
        let guard = epoch::pin();
        // SAFETY: protected by `guard`.
        unsafe { self.list.load(Ordering::Acquire, &guard).deref() }
            .blocks
            .len()
    }
}

impl Drop for Slsm {
    fn drop(&mut self) {
        // SAFETY: &mut self means no concurrent accessors; unprotected
        // load and immediate drop are safe.
        unsafe {
            let p = self.list.load(Ordering::Relaxed, epoch::unprotected());
            if !p.is_null() {
                drop(p.into_owned());
            }
        }
    }
}

/// Merge adjacent blocks until capacities are strictly decreasing.
fn merge_duplicate_capacities(blocks: &mut Vec<Arc<SharedBlock>>) {
    let mut i = blocks.len();
    while i >= 2 {
        let a = blocks[i - 2].capacity();
        let b = blocks[i - 1].capacity();
        if b >= a {
            let small = blocks.remove(i - 1);
            let big = blocks.remove(i - 2);
            let merged = SharedBlock::merge(&big, &small);
            if merged.refresh_first().is_some() {
                let pos = blocks
                    .iter()
                    .position(|blk| blk.capacity() <= merged.capacity())
                    .unwrap_or(blocks.len());
                blocks.insert(pos, merged);
            }
            i = blocks.len();
        } else {
            i -= 1;
        }
    }
}

/// Compute pivot end indices covering the `k+1` smallest live items via a
/// cursor merge across the sorted blocks. O((k + B)·B) for B blocks.
fn compute_pivot(blocks: &[Arc<SharedBlock>], k: usize) -> Vec<usize> {
    let mut cursors: Vec<usize> = blocks
        .iter()
        .map(|b| b.refresh_first().unwrap_or(b.total_len()))
        .collect();
    let mut ends = cursors.clone();
    let mut chosen = 0usize;
    while chosen <= k {
        let mut best: Option<(usize, Item)> = None;
        for (i, b) in blocks.iter().enumerate() {
            // Advance cursor past entries taken since the last refresh.
            while cursors[i] < b.total_len() && b.entry(cursors[i]).is_taken() {
                cursors[i] += 1;
            }
            if cursors[i] < b.total_len() {
                let it = b.entry(cursors[i]).item;
                if best.is_none_or(|(_, cur)| it < cur) {
                    best = Some((i, it));
                }
            }
        }
        match best {
            Some((i, _)) => {
                cursors[i] += 1;
                ends[i] = cursors[i];
                chosen += 1;
            }
            None => break,
        }
    }
    ends
}

/// Pick a random live entry from the pivot range. Starts at a random
/// block and a random offset within its pivot segment, probing forward;
/// returns `None` if every pivot segment is exhausted.
fn pick_candidate(list: &BlockList, rng: &mut SmallRng) -> Option<Entry> {
    let nb = list.blocks.len();
    if nb == 0 {
        return None;
    }
    let rot = rng.gen_range(0..nb);
    for off in 0..nb {
        let i = (rot + off) % nb;
        let block = &list.blocks[i];
        let first = block.first_hint();
        let end = list.ends[i].min(block.total_len());
        if first >= end {
            continue;
        }
        let start = rng.gen_range(first..end);
        // Probe [start, end), then wrap to [first, start).
        for j in (start..end).chain(first..start) {
            let e = block.entry(j);
            if !e.is_taken() {
                return Some(*e);
            }
        }
        // Entire segment taken: advance the hint so future scans skip it.
        block.advance_first(end);
    }
    None
}

/// Per-thread handle for a standalone [`Slsm`].
pub struct SlsmHandle<'a> {
    slsm: &'a Slsm,
    rng: SmallRng,
}

impl PqHandle for SlsmHandle<'_> {
    fn insert(&mut self, key: Key, value: Value) {
        self.slsm.insert_batch(vec![Item::new(key, value)]);
    }

    fn delete_min(&mut self) -> Option<Item> {
        self.slsm.delete_min(&mut self.rng)
    }
}

impl ConcurrentPq for Slsm {
    type Handle<'a> = SlsmHandle<'a>;

    fn handle(&self) -> SlsmHandle<'_> {
        let idx = self.handle_ctr.fetch_add(1, Ordering::Relaxed);
        SlsmHandle {
            slsm: self,
            rng: SmallRng::seed_from_u64(handle_seed(self.seed, idx)),
        }
    }

    fn name(&self) -> String {
        format!("slsm{}", self.k)
    }
}

impl RelaxationBound for Slsm {
    fn rank_bound(&self, _threads: usize) -> Option<u64> {
        Some(self.k as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    #[test]
    fn empty_slsm() {
        let s = Slsm::new(8);
        assert_eq!(s.delete_min(&mut rng()), None);
        assert_eq!(s.peek_min(), None);
        assert_eq!(s.len_hint(), 0);
    }

    #[test]
    fn strict_mode_returns_exact_min() {
        let s = Slsm::new(0);
        s.insert_batch((0..50).map(|k| Item::new(50 - k, k)).collect());
        let mut r = rng();
        let mut prev = None;
        while let Some(it) = s.delete_min(&mut r) {
            if let Some(p) = prev {
                assert!(it.key >= p, "strict SLSM out of order: {it:?} after {p}");
            }
            prev = Some(it.key);
        }
    }

    #[test]
    fn relaxed_mode_returns_all_items() {
        let s = Slsm::new(16);
        s.insert_batch((0..200).map(|k| Item::new(k, k)).collect());
        let mut r = rng();
        let mut got: Vec<Key> = std::iter::from_fn(|| s.delete_min(&mut r))
            .map(|i| i.key)
            .collect();
        got.sort_unstable();
        assert_eq!(got, (0..200).collect::<Vec<_>>());
        assert_eq!(s.len_hint(), 0);
    }

    #[test]
    fn relaxation_bound_holds_sequentially() {
        let k = 8usize;
        let s = Slsm::new(k);
        s.insert_batch((0..500).map(|x| Item::new(x, x)).collect());
        let mut r = rng();
        let mut live: Vec<Key> = (0..500).collect();
        while let Some(it) = s.delete_min(&mut r) {
            let rank = live.iter().filter(|&&x| x < it.key).count();
            assert!(rank <= k, "rank {rank} exceeds k={k}");
            let pos = live.iter().position(|&x| x == it.key).unwrap();
            live.remove(pos);
        }
        assert!(live.is_empty());
    }

    #[test]
    fn batches_merge_into_distinct_capacities() {
        let s = Slsm::new(4);
        for batch in 0..16u64 {
            s.insert_batch((0..4).map(|i| Item::new(batch * 4 + i, 0)).collect());
        }
        // 16 batches of capacity 4 must have merged: far fewer blocks.
        assert!(s.block_count() <= 5, "blocks = {}", s.block_count());
        assert_eq!(s.len_hint(), 64);
    }

    #[test]
    fn interleaved_insert_delete() {
        let s = Slsm::new(4);
        let mut r = rng();
        let mut inserted = 0u64;
        let mut deleted = 0u64;
        for round in 0..50u64 {
            s.insert_batch((0..10).map(|i| Item::new(round * 10 + i, 0)).collect());
            inserted += 10;
            for _ in 0..5 {
                if s.delete_min(&mut r).is_some() {
                    deleted += 1;
                }
            }
        }
        let mut rest = 0u64;
        while s.delete_min(&mut r).is_some() {
            rest += 1;
        }
        assert_eq!(deleted + rest, inserted);
    }

    #[test]
    fn concurrent_no_duplicates_no_losses() {
        let s = std::sync::Arc::new(Slsm::new(64));
        let threads = 4;
        let per = 2000u64;
        let taken: std::sync::Mutex<Vec<Item>> = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|sc| {
            for t in 0..threads {
                let s = &s;
                let taken = &taken;
                sc.spawn(move || {
                    let mut r = SmallRng::seed_from_u64(t);
                    let mut mine = Vec::new();
                    for i in 0..per {
                        let key = (i * 7919 + t * 13) % 10000;
                        s.insert_batch(vec![Item::new(key, t * per + i)]);
                        if i % 2 == 1 {
                            if let Some(it) = s.delete_min(&mut r) {
                                mine.push(it);
                            }
                        }
                    }
                    taken.lock().unwrap().extend(mine);
                });
            }
        });
        let mut r = rng();
        let mut all = taken.into_inner().unwrap();
        while let Some(it) = s.delete_min(&mut r) {
            all.push(it);
        }
        assert_eq!(all.len(), (threads * per) as usize, "lost or duplicated items");
        all.sort();
        all.dedup();
        assert_eq!(all.len(), (threads * per) as usize, "duplicate values returned");
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(32))]
        #[test]
        fn prop_sequential_matches_multiset(
            batches in proptest::collection::vec(
                proptest::collection::vec(0u64..1000, 1..30), 1..10),
            k in 0usize..32,
        ) {
            let s = Slsm::new(k);
            let mut expect: Vec<Key> = Vec::new();
            for (bi, batch) in batches.iter().enumerate() {
                let items: Vec<Item> = batch.iter().enumerate()
                    .map(|(i, &key)| Item::new(key, (bi * 1000 + i) as u64)).collect();
                expect.extend(batch.iter().copied());
                s.insert_batch(items);
            }
            let mut r = rng();
            let mut got: Vec<Key> = std::iter::from_fn(|| s.delete_min(&mut r))
                .map(|i| i.key).collect();
            got.sort_unstable();
            expect.sort_unstable();
            proptest::prop_assert_eq!(got, expect);
        }
    }
}
