//! The paper's experiment grid as named configurations.
//!
//! Figure 4 (mars) is the canonical 8-cell grid of workload × key
//! distribution; figures 1–3 of the main text are cells 4a, 4e and 4g.
//! Figure 8 adds the alternating workload; tables 2 and 5 run the
//! rank-error benchmark over the same grids. Figures 5/6/7/9 repeat the
//! grids on other machines (see DESIGN.md §2 for the single-host
//! substitution).

use workloads::{KeyDistribution, Workload};

/// One named experiment: a (workload, key distribution) cell plus the
/// paper artifacts it backs.
#[derive(Clone, Copy, Debug)]
pub struct Experiment {
    /// Identifier, e.g. `"fig4a"`.
    pub id: &'static str,
    /// Thread role assignment.
    pub workload: Workload,
    /// Key distribution.
    pub key_dist: KeyDistribution,
    /// Paper artifacts regenerated from this cell.
    pub artifacts: &'static str,
}

/// All throughput/quality cells of the paper.
pub fn all() -> Vec<Experiment> {
    use KeyDistribution as K;
    use Workload as W;
    vec![
        Experiment {
            id: "fig4a",
            workload: W::Uniform,
            key_dist: K::uniform(32),
            artifacts: "Figure 1, Figure 4a, Table 1, Table 2a",
        },
        Experiment {
            id: "fig4b",
            workload: W::Uniform,
            key_dist: K::ascending(),
            artifacts: "Figure 4b, Table 2b",
        },
        Experiment {
            id: "fig4c",
            workload: W::Uniform,
            key_dist: K::descending(),
            artifacts: "Figure 4c, Table 2c",
        },
        Experiment {
            id: "fig4d",
            workload: W::Split,
            key_dist: K::uniform(32),
            artifacts: "Figure 4d, Table 2d",
        },
        Experiment {
            id: "fig4e",
            workload: W::Split,
            key_dist: K::ascending(),
            artifacts: "Figure 2, Figure 4e, Table 2e",
        },
        Experiment {
            id: "fig4f",
            workload: W::Split,
            key_dist: K::descending(),
            artifacts: "Figure 4f, Table 2f",
        },
        Experiment {
            id: "fig4g",
            workload: W::Uniform,
            key_dist: K::uniform(8),
            artifacts: "Figure 3, Figure 4g, Table 2g",
        },
        Experiment {
            id: "fig4h",
            workload: W::Uniform,
            key_dist: K::uniform(16),
            artifacts: "Figure 4h, Table 2h",
        },
        Experiment {
            id: "fig8a",
            workload: W::Alternating,
            key_dist: K::uniform(32),
            artifacts: "Figure 8a, Table 5a",
        },
        Experiment {
            id: "fig8b",
            workload: W::Alternating,
            key_dist: K::ascending(),
            artifacts: "Figure 8b, Table 5b",
        },
        Experiment {
            id: "fig8c",
            workload: W::Alternating,
            key_dist: K::descending(),
            artifacts: "Figure 8c, Table 5c",
        },
        Experiment {
            id: "hold",
            workload: W::Alternating,
            key_dist: K::hold(),
            artifacts: "hold model (Jones 1986; appendix F extension)",
        },
        Experiment {
            id: "sorting",
            workload: W::Sorting { batch: 1024 },
            key_dist: K::uniform(32),
            artifacts: "sorting benchmark (Larkin/Sen/Tarjan; §2 extension)",
        },
    ]
}

/// Look an experiment up by id (also accepts the main-text aliases
/// `fig1` → `fig4a`, `fig2` → `fig4e`, `fig3` → `fig4g`, and
/// `table2x`/`table5x` → the matching throughput cell).
pub fn by_id(id: &str) -> Option<Experiment> {
    let canonical = match id {
        "fig1" | "table1" | "table2a" => "fig4a",
        "fig2" | "table2e" => "fig4e",
        "fig3" | "table2g" => "fig4g",
        "table2b" => "fig4b",
        "table2c" => "fig4c",
        "table2d" => "fig4d",
        "table2f" => "fig4f",
        "table2h" => "fig4h",
        "table5a" => "fig8a",
        "table5b" => "fig8b",
        "table5c" => "fig8c",
        other => other,
    };
    all().into_iter().find(|e| e.id == canonical)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_every_figure_cell() {
        let ids: Vec<&str> = all().iter().map(|e| e.id).collect();
        for want in [
            "fig4a", "fig4b", "fig4c", "fig4d", "fig4e", "fig4f", "fig4g", "fig4h", "fig8a",
            "fig8b", "fig8c",
        ] {
            assert!(ids.contains(&want), "missing {want}");
        }
    }

    #[test]
    fn main_text_aliases_resolve() {
        assert_eq!(by_id("fig1").unwrap().id, "fig4a");
        assert_eq!(by_id("fig2").unwrap().id, "fig4e");
        assert_eq!(by_id("fig3").unwrap().id, "fig4g");
        assert_eq!(by_id("table1").unwrap().id, "fig4a");
        assert_eq!(by_id("table2h").unwrap().id, "fig4h");
        assert_eq!(by_id("table5c").unwrap().id, "fig8c");
        assert!(by_id("fig99").is_none());
    }

    #[test]
    fn fig4a_is_uniform_uniform32() {
        let e = by_id("fig4a").unwrap();
        assert_eq!(e.workload, Workload::Uniform);
        assert_eq!(e.key_dist, KeyDistribution::uniform(32));
    }
}
