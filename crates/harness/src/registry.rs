//! The benchmarked queue family and a static-dispatch helper.
//!
//! The harness runs generic code over `Q: ConcurrentPq`; the
//! `with_queue!` macro expands one monomorphized arm per queue so no
//! dynamic dispatch (or GAT-incompatible trait objects) is needed.

/// Identifies a queue configuration to benchmark.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueueSpec {
    /// k-LSM with the given relaxation parameter.
    Klsm(usize),
    /// k-LSM with the given relaxation parameter and per-handle insert
    /// buffers of the given size, committed as one pre-sorted block
    /// through the LSM kernels (widens the rank bound by `batch − 1`
    /// per thread).
    KlsmBatch(usize, usize),
    /// Standalone distributed (thread-local) LSM.
    Dlsm,
    /// Standalone DLSM with per-handle insert buffers of the given size.
    DlsmBatch(usize),
    /// Standalone shared LSM with the given relaxation parameter.
    Slsm(usize),
    /// Lindén–Jonsson strict skiplist queue.
    Linden,
    /// SprayList.
    Spray,
    /// SprayList with per-handle insert buffers of the given size,
    /// committed as one sorted run through the skiplist's finger-descent
    /// batch insert.
    SprayBatch(usize),
    /// MultiQueue with the given `c` (sub-queues = c·P).
    MultiQueue(usize),
    /// Sticky, buffered MultiQueue with `(c, s, m)`: sub-queues = c·P,
    /// stickiness `s` operations, insertion/deletion buffers of `m`
    /// items (Williams/Sanders engineering of the MultiQueue).
    MqSticky(usize, usize, usize),
    /// Sequential heap behind a global lock.
    GlobalLock,
    /// Hunt et al. fine-grained heap.
    Hunt,
    /// Liu & Spear mound (lock-based variant).
    Mound,
    /// Braginsky-style chunk-based priority queue (FAA deletions).
    Cbpq,
    /// GlobalLock over a pairing heap instead of a binary heap
    /// (substrate ablation).
    GlobalLockPairing,
    /// MultiQueue over pairing-heap sub-queues (substrate ablation).
    MultiQueuePairing(usize),
    /// Flat-combining wrapper over the sequential binary heap (the
    /// `globallock` substrate) with per-handle insert buffers of the
    /// given size (1 = unbuffered, strict).
    FcGlobalLock(usize),
    /// Flat-combining wrapper over the mound with per-handle insert
    /// buffers of the given size (1 = unbuffered, strict).
    FcMound(usize),
}

impl QueueSpec {
    /// Display name matching the paper's legends.
    pub fn name(&self) -> String {
        match self {
            QueueSpec::Klsm(k) => format!("klsm{k}"),
            QueueSpec::KlsmBatch(k, m) => format!("klsm{k}-b{m}"),
            QueueSpec::Dlsm => "dlsm".to_owned(),
            QueueSpec::DlsmBatch(m) => format!("dlsm-b{m}"),
            QueueSpec::Slsm(k) => format!("slsm{k}"),
            QueueSpec::Linden => "linden".to_owned(),
            QueueSpec::Spray => "spray".to_owned(),
            QueueSpec::MultiQueue(c) => {
                if *c == 4 {
                    "multiqueue".to_owned()
                } else {
                    format!("multiqueue-c{c}")
                }
            }
            QueueSpec::MqSticky(c, s, m) => {
                if (*c, *s, *m) == (4, 8, 8) {
                    "mq-sticky".to_owned()
                } else if *c == 4 {
                    format!("mq-sticky-s{s}-m{m}")
                } else {
                    format!("mq-sticky-c{c}-s{s}-m{m}")
                }
            }
            QueueSpec::GlobalLock => "globallock".to_owned(),
            QueueSpec::Hunt => "hunt".to_owned(),
            QueueSpec::Mound => "mound".to_owned(),
            QueueSpec::Cbpq => "cbpq".to_owned(),
            QueueSpec::GlobalLockPairing => "globallock-pairing".to_owned(),
            QueueSpec::MultiQueuePairing(c) => format!("multiqueue-pairing-c{c}"),
            QueueSpec::SprayBatch(m) => format!("spray-b{m}"),
            QueueSpec::FcGlobalLock(m) => {
                if *m <= 1 {
                    "fc-globallock".to_owned()
                } else {
                    format!("fc-globallock-b{m}")
                }
            }
            QueueSpec::FcMound(m) => {
                if *m <= 1 {
                    "fc-mound".to_owned()
                } else {
                    format!("fc-mound-b{m}")
                }
            }
        }
    }

    /// Parse a name produced by [`QueueSpec::name`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "dlsm" => Some(QueueSpec::Dlsm),
            "linden" => Some(QueueSpec::Linden),
            "spray" => Some(QueueSpec::Spray),
            "multiqueue" => Some(QueueSpec::MultiQueue(4)),
            "mq-sticky" => Some(QueueSpec::MqSticky(4, 8, 8)),
            "globallock" => Some(QueueSpec::GlobalLock),
            "hunt" => Some(QueueSpec::Hunt),
            "mound" => Some(QueueSpec::Mound),
            "cbpq" => Some(QueueSpec::Cbpq),
            "globallock-pairing" => Some(QueueSpec::GlobalLockPairing),
            "fc-globallock" => Some(QueueSpec::FcGlobalLock(1)),
            "fc-mound" => Some(QueueSpec::FcMound(1)),
            _ => {
                if let Some(rest) = s.strip_prefix("mq-sticky-") {
                    // "c{c}-s{s}-m{m}" or "s{s}-m{m}" (c defaults to 4).
                    let mut c = 4usize;
                    let mut parts = rest.split('-');
                    let mut part = parts.next()?;
                    if let Some(cv) = part.strip_prefix('c') {
                        c = cv.parse().ok()?;
                        part = parts.next()?;
                    }
                    let sv: usize = part.strip_prefix('s')?.parse().ok()?;
                    let mv: usize = parts.next()?.strip_prefix('m')?.parse().ok()?;
                    if parts.next().is_some() {
                        return None;
                    }
                    Some(QueueSpec::MqSticky(c, sv, mv))
                } else if let Some(m) = s.strip_prefix("dlsm-b") {
                    m.parse().ok().map(QueueSpec::DlsmBatch)
                } else if let Some(m) = s.strip_prefix("spray-b") {
                    m.parse().ok().map(QueueSpec::SprayBatch)
                } else if let Some(m) = s.strip_prefix("fc-globallock-b") {
                    m.parse().ok().map(QueueSpec::FcGlobalLock)
                } else if let Some(m) = s.strip_prefix("fc-mound-b") {
                    m.parse().ok().map(QueueSpec::FcMound)
                } else if let Some(rest) = s.strip_prefix("klsm") {
                    // "klsm{k}" or "klsm{k}-b{m}".
                    if let Some((k, m)) = rest.split_once("-b") {
                        match (k.parse().ok(), m.parse().ok()) {
                            (Some(k), Some(m)) => Some(QueueSpec::KlsmBatch(k, m)),
                            _ => None,
                        }
                    } else {
                        rest.parse().ok().map(QueueSpec::Klsm)
                    }
                } else if let Some(k) = s.strip_prefix("slsm") {
                    k.parse().ok().map(QueueSpec::Slsm)
                } else if let Some(c) = s.strip_prefix("multiqueue-pairing-c") {
                    c.parse().ok().map(QueueSpec::MultiQueuePairing)
                } else if let Some(c) = s.strip_prefix("multiqueue-c") {
                    c.parse().ok().map(QueueSpec::MultiQueue)
                } else {
                    None
                }
            }
        }
    }

    /// The seven queue variants of the paper's main comparison
    /// (figure 1): klsm128/256/4096, linden, spray, multiqueue,
    /// globallock.
    pub fn paper_set() -> Vec<QueueSpec> {
        vec![
            QueueSpec::Klsm(128),
            QueueSpec::Klsm(256),
            QueueSpec::Klsm(4096),
            QueueSpec::Linden,
            QueueSpec::Spray,
            QueueSpec::MultiQueue(4),
            QueueSpec::GlobalLock,
        ]
    }

    /// The queues evaluated in the rank-error tables (klsm variants and
    /// the MultiQueue; strict queues trivially have rank 0, but we
    /// include linden as a control as the paper's tables do).
    pub fn quality_set() -> Vec<QueueSpec> {
        vec![
            QueueSpec::Klsm(128),
            QueueSpec::Klsm(256),
            QueueSpec::Klsm(4096),
            QueueSpec::MultiQueue(4),
            QueueSpec::MqSticky(4, 8, 8),
            QueueSpec::Spray,
            QueueSpec::Linden,
        ]
    }

    /// The stickiness/buffer ablation grid for the sticky MultiQueue:
    /// plain `multiqueue` as baseline plus `mq-sticky` at `c = 4`,
    /// `s ∈ {1, 8, 64}`, `m ∈ {1, 16}`.
    pub fn mq_sticky_ablation_set() -> Vec<QueueSpec> {
        let mut set = vec![QueueSpec::MultiQueue(4)];
        for s in [1usize, 8, 64] {
            for m in [1usize, 16] {
                set.push(QueueSpec::MqSticky(4, s, m));
            }
        }
        set
    }
}

impl std::fmt::Display for QueueSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

/// Instantiate the queue described by a [`QueueSpec`] and run `$body`
/// with `$q` bound to it. `$threads` is the number of worker threads
/// (an extra handle slot is provisioned for prefilling where the
/// structure caps handles).
#[macro_export]
macro_rules! with_queue {
    ($spec:expr, $threads:expr, $q:ident => $body:expr) => {{
        let threads: usize = $threads;
        match $spec {
            $crate::QueueSpec::Klsm(k) => {
                let $q = ::klsm::Klsm::new(k, threads + 1);
                $body
            }
            $crate::QueueSpec::KlsmBatch(k, m) => {
                let $q = ::klsm::Klsm::with_batch(
                    k,
                    threads + 1,
                    ::pq_traits::seed::DEFAULT_QUEUE_SEED,
                    m,
                );
                $body
            }
            $crate::QueueSpec::Dlsm => {
                let $q = ::klsm::Dlsm::new(threads + 1);
                $body
            }
            $crate::QueueSpec::DlsmBatch(m) => {
                let $q = ::klsm::Dlsm::with_batch(
                    threads + 1,
                    ::pq_traits::seed::DEFAULT_QUEUE_SEED,
                    m,
                );
                $body
            }
            $crate::QueueSpec::Slsm(k) => {
                let $q = ::klsm::Slsm::new(k);
                $body
            }
            $crate::QueueSpec::Linden => {
                let $q = ::skiplist_pq::LindenPq::new();
                $body
            }
            $crate::QueueSpec::Spray => {
                let $q = ::skiplist_pq::SprayList::new(threads);
                $body
            }
            $crate::QueueSpec::SprayBatch(m) => {
                let $q = ::skiplist_pq::SprayList::with_batch(
                    threads,
                    ::pq_traits::seed::DEFAULT_QUEUE_SEED,
                    m,
                );
                $body
            }
            $crate::QueueSpec::MultiQueue(c) => {
                let $q = ::multiqueue_pq::MultiQueue::<::seqpq::BinaryHeap>::new(c, threads);
                $body
            }
            $crate::QueueSpec::MqSticky(c, s, m) => {
                let $q =
                    ::multiqueue_pq::MultiQueueSticky::<::seqpq::BinaryHeap>::new(c, threads, s, m);
                $body
            }
            $crate::QueueSpec::MultiQueuePairing(c) => {
                let $q = ::multiqueue_pq::MultiQueue::<::seqpq::PairingHeap>::new(c, threads);
                $body
            }
            $crate::QueueSpec::GlobalLock => {
                let $q = ::lockedpq::GlobalLockPq::<::seqpq::BinaryHeap>::new();
                $body
            }
            $crate::QueueSpec::GlobalLockPairing => {
                let $q = ::lockedpq::GlobalLockPq::<::seqpq::PairingHeap>::new();
                $body
            }
            $crate::QueueSpec::Hunt => {
                let $q = ::lockedpq::HuntHeap::new();
                $body
            }
            $crate::QueueSpec::Mound => {
                let $q = ::lockedpq::Mound::new();
                $body
            }
            $crate::QueueSpec::Cbpq => {
                let $q = ::cbpq::Cbpq::new();
                $body
            }
            $crate::QueueSpec::FcGlobalLock(m) => {
                let $q = ::lockedpq::fc_globallock(threads + 1, m);
                $body
            }
            $crate::QueueSpec::FcMound(m) => {
                let $q = ::lockedpq::fc_mound(
                    threads + 1,
                    m,
                    ::pq_traits::seed::DEFAULT_QUEUE_SEED,
                );
                $body
            }
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip_through_parse() {
        let specs = [
            QueueSpec::Klsm(128),
            QueueSpec::Klsm(4096),
            QueueSpec::KlsmBatch(128, 16),
            QueueSpec::Dlsm,
            QueueSpec::DlsmBatch(16),
            QueueSpec::Slsm(256),
            QueueSpec::Linden,
            QueueSpec::Spray,
            QueueSpec::MultiQueue(4),
            QueueSpec::MultiQueue(2),
            QueueSpec::MqSticky(4, 8, 8),
            QueueSpec::MqSticky(4, 64, 16),
            QueueSpec::MqSticky(2, 1, 1),
            QueueSpec::GlobalLock,
            QueueSpec::Hunt,
            QueueSpec::Mound,
            QueueSpec::Cbpq,
            QueueSpec::GlobalLockPairing,
            QueueSpec::MultiQueuePairing(4),
            QueueSpec::SprayBatch(16),
            QueueSpec::FcGlobalLock(1),
            QueueSpec::FcGlobalLock(16),
            QueueSpec::FcMound(1),
            QueueSpec::FcMound(64),
        ];
        for s in specs {
            assert_eq!(QueueSpec::parse(&s.name()), Some(s), "{s:?}");
        }
        assert_eq!(QueueSpec::parse("nonsense"), None);
        assert_eq!(QueueSpec::parse("mq-sticky-s8"), None);
        assert_eq!(QueueSpec::parse("mq-sticky-s8-m4-x1"), None);
        assert_eq!(QueueSpec::parse("klsm128-bx"), None);
        assert_eq!(QueueSpec::parse("dlsm-b"), None);
    }

    #[test]
    fn sticky_names_match_expectations() {
        assert_eq!(QueueSpec::MqSticky(4, 8, 8).name(), "mq-sticky");
        assert_eq!(QueueSpec::MqSticky(4, 64, 16).name(), "mq-sticky-s64-m16");
        assert_eq!(QueueSpec::MqSticky(2, 1, 4).name(), "mq-sticky-c2-s1-m4");
    }

    #[test]
    fn mq_sticky_ablation_set_covers_grid() {
        let set = QueueSpec::mq_sticky_ablation_set();
        assert_eq!(set.len(), 7); // baseline + 3 s-values × 2 m-values
        assert_eq!(set[0], QueueSpec::MultiQueue(4));
    }

    #[test]
    fn paper_set_has_seven_variants() {
        assert_eq!(QueueSpec::paper_set().len(), 7);
    }

    #[test]
    fn with_queue_instantiates_every_spec() {
        use pq_traits::{ConcurrentPq, PqHandle};
        for spec in [
            QueueSpec::Klsm(16),
            QueueSpec::KlsmBatch(16, 8),
            QueueSpec::Dlsm,
            QueueSpec::DlsmBatch(8),
            QueueSpec::Slsm(8),
            QueueSpec::Linden,
            QueueSpec::Spray,
            QueueSpec::MultiQueue(2),
            QueueSpec::MqSticky(2, 8, 4),
            QueueSpec::GlobalLock,
            QueueSpec::Hunt,
            QueueSpec::Mound,
            QueueSpec::Cbpq,
            QueueSpec::GlobalLockPairing,
            QueueSpec::MultiQueuePairing(2),
            QueueSpec::SprayBatch(8),
            QueueSpec::FcGlobalLock(1),
            QueueSpec::FcGlobalLock(8),
            QueueSpec::FcMound(1),
            QueueSpec::FcMound(8),
        ] {
            let drained = with_queue!(spec, 1, q => {
                let mut h = q.handle();
                for k in 0..50u64 {
                    h.insert(k, k);
                }
                h.flush();
                let mut n = 0;
                while h.delete_min().is_some() {
                    n += 1;
                }
                n
            });
            assert_eq!(drained, 50, "{spec}");
        }
    }
}
