//! The benchmarked queue family and a static-dispatch helper.
//!
//! The harness runs generic code over `Q: ConcurrentPq`; the
//! `with_queue!` macro expands one monomorphized arm per queue so no
//! dynamic dispatch (or GAT-incompatible trait objects) is needed.

/// Identifies a queue configuration to benchmark.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueueSpec {
    /// k-LSM with the given relaxation parameter.
    Klsm(usize),
    /// Standalone distributed (thread-local) LSM.
    Dlsm,
    /// Standalone shared LSM with the given relaxation parameter.
    Slsm(usize),
    /// Lindén–Jonsson strict skiplist queue.
    Linden,
    /// SprayList.
    Spray,
    /// MultiQueue with the given `c` (sub-queues = c·P).
    MultiQueue(usize),
    /// Sequential heap behind a global lock.
    GlobalLock,
    /// Hunt et al. fine-grained heap.
    Hunt,
    /// Liu & Spear mound (lock-based variant).
    Mound,
    /// Braginsky-style chunk-based priority queue (FAA deletions).
    Cbpq,
    /// GlobalLock over a pairing heap instead of a binary heap
    /// (substrate ablation).
    GlobalLockPairing,
    /// MultiQueue over pairing-heap sub-queues (substrate ablation).
    MultiQueuePairing(usize),
}

impl QueueSpec {
    /// Display name matching the paper's legends.
    pub fn name(&self) -> String {
        match self {
            QueueSpec::Klsm(k) => format!("klsm{k}"),
            QueueSpec::Dlsm => "dlsm".to_owned(),
            QueueSpec::Slsm(k) => format!("slsm{k}"),
            QueueSpec::Linden => "linden".to_owned(),
            QueueSpec::Spray => "spray".to_owned(),
            QueueSpec::MultiQueue(c) => {
                if *c == 4 {
                    "multiqueue".to_owned()
                } else {
                    format!("multiqueue-c{c}")
                }
            }
            QueueSpec::GlobalLock => "globallock".to_owned(),
            QueueSpec::Hunt => "hunt".to_owned(),
            QueueSpec::Mound => "mound".to_owned(),
            QueueSpec::Cbpq => "cbpq".to_owned(),
            QueueSpec::GlobalLockPairing => "globallock-pairing".to_owned(),
            QueueSpec::MultiQueuePairing(c) => format!("multiqueue-pairing-c{c}"),
        }
    }

    /// Parse a name produced by [`QueueSpec::name`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "dlsm" => Some(QueueSpec::Dlsm),
            "linden" => Some(QueueSpec::Linden),
            "spray" => Some(QueueSpec::Spray),
            "multiqueue" => Some(QueueSpec::MultiQueue(4)),
            "globallock" => Some(QueueSpec::GlobalLock),
            "hunt" => Some(QueueSpec::Hunt),
            "mound" => Some(QueueSpec::Mound),
            "cbpq" => Some(QueueSpec::Cbpq),
            "globallock-pairing" => Some(QueueSpec::GlobalLockPairing),
            _ => {
                if let Some(k) = s.strip_prefix("klsm") {
                    k.parse().ok().map(QueueSpec::Klsm)
                } else if let Some(k) = s.strip_prefix("slsm") {
                    k.parse().ok().map(QueueSpec::Slsm)
                } else if let Some(c) = s.strip_prefix("multiqueue-pairing-c") {
                    c.parse().ok().map(QueueSpec::MultiQueuePairing)
                } else if let Some(c) = s.strip_prefix("multiqueue-c") {
                    c.parse().ok().map(QueueSpec::MultiQueue)
                } else {
                    None
                }
            }
        }
    }

    /// The seven queue variants of the paper's main comparison
    /// (figure 1): klsm128/256/4096, linden, spray, multiqueue,
    /// globallock.
    pub fn paper_set() -> Vec<QueueSpec> {
        vec![
            QueueSpec::Klsm(128),
            QueueSpec::Klsm(256),
            QueueSpec::Klsm(4096),
            QueueSpec::Linden,
            QueueSpec::Spray,
            QueueSpec::MultiQueue(4),
            QueueSpec::GlobalLock,
        ]
    }

    /// The queues evaluated in the rank-error tables (klsm variants and
    /// the MultiQueue; strict queues trivially have rank 0, but we
    /// include linden as a control as the paper's tables do).
    pub fn quality_set() -> Vec<QueueSpec> {
        vec![
            QueueSpec::Klsm(128),
            QueueSpec::Klsm(256),
            QueueSpec::Klsm(4096),
            QueueSpec::MultiQueue(4),
            QueueSpec::Spray,
            QueueSpec::Linden,
        ]
    }
}

impl std::fmt::Display for QueueSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

/// Instantiate the queue described by a [`QueueSpec`] and run `$body`
/// with `$q` bound to it. `$threads` is the number of worker threads
/// (an extra handle slot is provisioned for prefilling where the
/// structure caps handles).
#[macro_export]
macro_rules! with_queue {
    ($spec:expr, $threads:expr, $q:ident => $body:expr) => {{
        let threads: usize = $threads;
        match $spec {
            $crate::QueueSpec::Klsm(k) => {
                let $q = ::klsm::Klsm::new(k, threads + 1);
                $body
            }
            $crate::QueueSpec::Dlsm => {
                let $q = ::klsm::Dlsm::new(threads + 1);
                $body
            }
            $crate::QueueSpec::Slsm(k) => {
                let $q = ::klsm::Slsm::new(k);
                $body
            }
            $crate::QueueSpec::Linden => {
                let $q = ::skiplist_pq::LindenPq::new();
                $body
            }
            $crate::QueueSpec::Spray => {
                let $q = ::skiplist_pq::SprayList::new(threads);
                $body
            }
            $crate::QueueSpec::MultiQueue(c) => {
                let $q = ::multiqueue_pq::MultiQueue::<::seqpq::BinaryHeap>::new(c, threads);
                $body
            }
            $crate::QueueSpec::MultiQueuePairing(c) => {
                let $q = ::multiqueue_pq::MultiQueue::<::seqpq::PairingHeap>::new(c, threads);
                $body
            }
            $crate::QueueSpec::GlobalLock => {
                let $q = ::lockedpq::GlobalLockPq::<::seqpq::BinaryHeap>::new();
                $body
            }
            $crate::QueueSpec::GlobalLockPairing => {
                let $q = ::lockedpq::GlobalLockPq::<::seqpq::PairingHeap>::new();
                $body
            }
            $crate::QueueSpec::Hunt => {
                let $q = ::lockedpq::HuntHeap::new();
                $body
            }
            $crate::QueueSpec::Mound => {
                let $q = ::lockedpq::Mound::new();
                $body
            }
            $crate::QueueSpec::Cbpq => {
                let $q = ::cbpq::Cbpq::new();
                $body
            }
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip_through_parse() {
        let specs = [
            QueueSpec::Klsm(128),
            QueueSpec::Klsm(4096),
            QueueSpec::Dlsm,
            QueueSpec::Slsm(256),
            QueueSpec::Linden,
            QueueSpec::Spray,
            QueueSpec::MultiQueue(4),
            QueueSpec::MultiQueue(2),
            QueueSpec::GlobalLock,
            QueueSpec::Hunt,
            QueueSpec::Mound,
            QueueSpec::Cbpq,
            QueueSpec::GlobalLockPairing,
            QueueSpec::MultiQueuePairing(4),
        ];
        for s in specs {
            assert_eq!(QueueSpec::parse(&s.name()), Some(s), "{s:?}");
        }
        assert_eq!(QueueSpec::parse("nonsense"), None);
    }

    #[test]
    fn paper_set_has_seven_variants() {
        assert_eq!(QueueSpec::paper_set().len(), 7);
    }

    #[test]
    fn with_queue_instantiates_every_spec() {
        use pq_traits::{ConcurrentPq, PqHandle};
        for spec in [
            QueueSpec::Klsm(16),
            QueueSpec::Dlsm,
            QueueSpec::Slsm(8),
            QueueSpec::Linden,
            QueueSpec::Spray,
            QueueSpec::MultiQueue(2),
            QueueSpec::GlobalLock,
            QueueSpec::Hunt,
            QueueSpec::Mound,
            QueueSpec::Cbpq,
            QueueSpec::GlobalLockPairing,
            QueueSpec::MultiQueuePairing(2),
        ] {
            let drained = with_queue!(spec, 1, q => {
                let mut h = q.handle();
                for k in 0..50u64 {
                    h.insert(k, k);
                }
                let mut n = 0;
                while h.delete_min().is_some() {
                    n += 1;
                }
                n
            });
            assert_eq!(drained, 50, "{spec}");
        }
    }
}
