//! Summary statistics: mean, standard deviation, 95 % confidence
//! intervals (Student's t for small samples, as appropriate for the
//! paper's 10 repetitions).

/// Two-sided 97.5 % quantiles of Student's t-distribution by degrees of
/// freedom (1-based index; `T975[0]` is df = 1). Beyond 30 df the normal
/// approximation 1.96 is used.
const T975: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

/// Summary of a sample of measurements.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator).
    pub sd: f64,
    /// Half-width of the 95 % confidence interval of the mean.
    pub ci95: f64,
    /// Sample size.
    pub n: usize,
}

impl Summary {
    /// Summarize a sample. Empty samples yield all-zero summaries; a
    /// single observation has `sd = ci95 = 0`.
    pub fn of(xs: &[f64]) -> Self {
        let n = xs.len();
        if n == 0 {
            return Self {
                mean: 0.0,
                sd: 0.0,
                ci95: 0.0,
                n,
            };
        }
        let mean = xs.iter().sum::<f64>() / n as f64;
        if n == 1 {
            return Self {
                mean,
                sd: 0.0,
                ci95: 0.0,
                n,
            };
        }
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        let sd = var.sqrt();
        let df = n - 1;
        let t = if df <= T975.len() {
            T975[df - 1]
        } else {
            1.96
        };
        Self {
            mean,
            sd,
            ci95: t * sd / (n as f64).sqrt(),
            n,
        }
    }

    /// Summarize integer observations (ranks, counts).
    pub fn of_u64(xs: &[u64]) -> Self {
        // Avoid materializing for huge rank logs: stream the two passes.
        let n = xs.len();
        if n == 0 {
            return Self::of(&[]);
        }
        let mean = xs.iter().map(|&x| x as f64).sum::<f64>() / n as f64;
        if n == 1 {
            return Self {
                mean,
                sd: 0.0,
                ci95: 0.0,
                n,
            };
        }
        let var = xs
            .iter()
            .map(|&x| (x as f64 - mean).powi(2))
            .sum::<f64>()
            / (n - 1) as f64;
        let sd = var.sqrt();
        let df = n - 1;
        let t = if df <= T975.len() {
            T975[df - 1]
        } else {
            1.96
        };
        Self {
            mean,
            sd,
            ci95: t * sd / (n as f64).sqrt(),
            n,
        }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.2} ± {:.2} (sd {:.2}, n={})", self.mean, self.ci95, self.sd, self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn single_observation() {
        let s = Summary::of(&[5.0]);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.sd, 0.0);
        assert_eq!(s.ci95, 0.0);
    }

    #[test]
    fn known_sample() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample sd with n-1: sqrt(32/7) ≈ 2.1381.
        assert!((s.sd - 2.13809).abs() < 1e-4);
        // df=7 → t=2.365.
        assert!((s.ci95 - 2.365 * s.sd / 8f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn constant_sample_zero_sd() {
        let s = Summary::of(&[3.0; 10]);
        assert_eq!(s.sd, 0.0);
        assert_eq!(s.ci95, 0.0);
        assert_eq!(s.mean, 3.0);
    }

    #[test]
    fn u64_matches_f64() {
        let a = Summary::of_u64(&[1, 2, 3, 4, 5]);
        let b = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!((a.mean - b.mean).abs() < 1e-12);
        assert!((a.sd - b.sd).abs() < 1e-12);
    }

    #[test]
    fn large_sample_uses_normal_quantile() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let s = Summary::of(&xs);
        assert!((s.ci95 - 1.96 * s.sd / 10.0).abs() < 1e-9);
    }
}
