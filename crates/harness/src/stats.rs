//! Summary statistics: mean, standard deviation, 95 % confidence
//! intervals (Student's t for small samples, as appropriate for the
//! paper's 10 repetitions), plus a log-bucketed histogram for latency
//! distributions.

/// Two-sided 97.5 % quantiles of Student's t-distribution by degrees of
/// freedom (1-based index; `T975[0]` is df = 1). Beyond 30 df the normal
/// approximation 1.96 is used.
const T975: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

/// Summary of a sample of measurements.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator).
    pub sd: f64,
    /// Half-width of the 95 % confidence interval of the mean.
    pub ci95: f64,
    /// Sample size.
    pub n: usize,
}

impl Summary {
    /// Summarize a sample. Empty samples yield all-zero summaries; a
    /// single observation has `sd = ci95 = 0`.
    pub fn of(xs: &[f64]) -> Self {
        let n = xs.len();
        if n == 0 {
            return Self {
                mean: 0.0,
                sd: 0.0,
                ci95: 0.0,
                n,
            };
        }
        let mean = xs.iter().sum::<f64>() / n as f64;
        if n == 1 {
            return Self {
                mean,
                sd: 0.0,
                ci95: 0.0,
                n,
            };
        }
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        let sd = var.sqrt();
        let df = n - 1;
        let t = if df <= T975.len() {
            T975[df - 1]
        } else {
            1.96
        };
        Self {
            mean,
            sd,
            ci95: t * sd / (n as f64).sqrt(),
            n,
        }
    }

    /// Summarize integer observations (ranks, counts).
    pub fn of_u64(xs: &[u64]) -> Self {
        // Avoid materializing for huge rank logs: stream the two passes.
        let n = xs.len();
        if n == 0 {
            return Self::of(&[]);
        }
        let mean = xs.iter().map(|&x| x as f64).sum::<f64>() / n as f64;
        if n == 1 {
            return Self {
                mean,
                sd: 0.0,
                ci95: 0.0,
                n,
            };
        }
        let var = xs
            .iter()
            .map(|&x| (x as f64 - mean).powi(2))
            .sum::<f64>()
            / (n - 1) as f64;
        let sd = var.sqrt();
        let df = n - 1;
        let t = if df <= T975.len() {
            T975[df - 1]
        } else {
            1.96
        };
        Self {
            mean,
            sd,
            ci95: t * sd / (n as f64).sqrt(),
            n,
        }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.2} ± {:.2} (sd {:.2}, n={})", self.mean, self.ci95, self.sd, self.n)
    }
}

/// Sub-bucket resolution: 2^5 = 32 sub-buckets per octave, i.e. values
/// are resolved to within ~3 % of their magnitude.
const SUB_BITS: u32 = 5;
const SUB_BUCKETS: u64 = 1 << SUB_BITS;
/// One linear region of 32 buckets for values < 32, then 59 octaves of
/// 32 sub-buckets each covering the rest of the u64 range (the largest
/// index is `58 * 32 + 63 = 1919`).
const NUM_BUCKETS: usize = ((64 - SUB_BITS + 1) as usize) * SUB_BUCKETS as usize;

/// Log-bucketed (HDR-style) histogram of `u64` samples.
///
/// Values below 32 get exact buckets; larger values land in one of 32
/// sub-buckets per power-of-two octave, bounding the relative error of
/// any reported percentile to about 3 %. Recording is O(1) with no
/// allocation, and histograms merge exactly (bucket-wise addition), so
/// per-thread histograms can be combined without storing per-operation
/// samples — unlike the previous `Vec<u64>`-per-op approach whose memory
/// scaled with operation count.
#[derive(Clone, Debug)]
pub struct Histogram {
    counts: Box<[u64]>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: vec![0; NUM_BUCKETS].into_boxed_slice(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Bucket index for a value.
    fn bucket_index(v: u64) -> usize {
        if v < SUB_BUCKETS {
            return v as usize;
        }
        let msb = 63 - v.leading_zeros();
        let shift = msb - SUB_BITS;
        let top = v >> shift; // in [32, 64)
        (shift as usize) * SUB_BUCKETS as usize + top as usize
    }

    /// Inclusive lower bound of bucket `i`.
    fn bucket_lower(i: usize) -> u64 {
        if i < SUB_BUCKETS as usize {
            return i as u64;
        }
        let shift = i as u64 / SUB_BUCKETS - 1;
        let top = i as u64 % SUB_BUCKETS + SUB_BUCKETS;
        top << shift
    }

    /// Width of bucket `i` (number of distinct values it covers).
    fn bucket_width(i: usize) -> u64 {
        if i < 2 * SUB_BUCKETS as usize {
            1
        } else {
            1 << (i as u64 / SUB_BUCKETS - 1)
        }
    }

    /// Midpoint representative of bucket `i`.
    fn bucket_value(i: usize) -> u64 {
        Self::bucket_lower(i) + (Self::bucket_width(i) - 1) / 2
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Record `n` samples of the same value.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[Self::bucket_index(v)] += n;
        self.count += n;
        self.sum += v as u128 * n as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Fold another histogram into this one. Merging is exact: the
    /// result is identical to having recorded both sample streams into
    /// a single histogram, in any order.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest recorded value (exact), or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (exact), or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (exact).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Value at quantile `p` in [0, 1], within bucket resolution
    /// (~3 % relative error). Returns 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_value(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Non-empty buckets as `(inclusive_lower_bound, count)` pairs, in
    /// ascending value order. This is the compact export format.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_lower(i), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn single_observation() {
        let s = Summary::of(&[5.0]);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.sd, 0.0);
        assert_eq!(s.ci95, 0.0);
    }

    #[test]
    fn known_sample() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample sd with n-1: sqrt(32/7) ≈ 2.1381.
        assert!((s.sd - 2.13809).abs() < 1e-4);
        // df=7 → t=2.365.
        assert!((s.ci95 - 2.365 * s.sd / 8f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn constant_sample_zero_sd() {
        let s = Summary::of(&[3.0; 10]);
        assert_eq!(s.sd, 0.0);
        assert_eq!(s.ci95, 0.0);
        assert_eq!(s.mean, 3.0);
    }

    #[test]
    fn u64_matches_f64() {
        let a = Summary::of_u64(&[1, 2, 3, 4, 5]);
        let b = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!((a.mean - b.mean).abs() < 1e-12);
        assert!((a.sd - b.sd).abs() < 1e-12);
    }

    #[test]
    fn large_sample_uses_normal_quantile() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let s = Summary::of(&xs);
        assert!((s.ci95 - 1.96 * s.sd / 10.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_bucket_boundaries_cover_every_value() {
        // A value must fall inside its bucket's [lower, lower + width)
        // range, and bucket indices must be monotone in the value.
        let probes: Vec<u64> = (0..=1000)
            .chain([1 << 20, (1 << 20) + 1, u64::MAX / 2, u64::MAX - 1, u64::MAX])
            .chain((0..64).map(|s| 1u64 << s))
            .chain((1..64).map(|s| (1u64 << s) - 1))
            .collect();
        for &v in &probes {
            let i = Histogram::bucket_index(v);
            assert!(i < NUM_BUCKETS, "index {i} out of range for {v}");
            let lo = Histogram::bucket_lower(i);
            let w = Histogram::bucket_width(i);
            assert!(lo <= v, "lower {lo} > value {v}");
            assert!(v - lo < w, "value {v} beyond bucket [{lo}, {lo}+{w})");
        }
        let mut sorted = probes.clone();
        sorted.sort_unstable();
        for pair in sorted.windows(2) {
            assert!(
                Histogram::bucket_index(pair[0]) <= Histogram::bucket_index(pair[1]),
                "bucket index not monotone between {} and {}",
                pair[0],
                pair[1]
            );
        }
    }

    #[test]
    fn histogram_small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..32u64 {
            h.record(v);
        }
        for v in 0..32u64 {
            // Exclusive-rank percentile: quantile of the (v+1)-th sample.
            let p = (v + 1) as f64 / 32.0;
            assert_eq!(h.percentile(p), v);
        }
    }

    #[test]
    fn histogram_merge_is_associative_and_exact() {
        let streams: [Vec<u64>; 3] = [
            (0..500).map(|i| i * 7 % 1000).collect(),
            (0..300).map(|i| 1 << (i % 40)).collect(),
            vec![0, 1, u64::MAX, 12345, 12345, 99],
        ];
        let hist_of = |xs: &[Vec<u64>]| {
            let mut h = Histogram::new();
            for s in xs {
                for &v in s {
                    h.record(v);
                }
            }
            h
        };
        // ((a ⊕ b) ⊕ c) vs (a ⊕ (b ⊕ c)) vs recording everything into one.
        let single = [hist_of(&streams)];
        let mut left = hist_of(&streams[0..1]);
        left.merge(&hist_of(&streams[1..2]));
        left.merge(&hist_of(&streams[2..3]));
        let mut right_tail = hist_of(&streams[1..2]);
        right_tail.merge(&hist_of(&streams[2..3]));
        let mut right = hist_of(&streams[0..1]);
        right.merge(&right_tail);
        for h in [&left, &right] {
            assert_eq!(h.count(), single[0].count());
            assert_eq!(h.min(), single[0].min());
            assert_eq!(h.max(), single[0].max());
            assert_eq!(h.mean(), single[0].mean());
            assert_eq!(
                h.nonzero_buckets().collect::<Vec<_>>(),
                single[0].nonzero_buckets().collect::<Vec<_>>()
            );
            for p in [0.5, 0.9, 0.99, 0.999] {
                assert_eq!(h.percentile(p), single[0].percentile(p));
            }
        }
    }

    #[test]
    fn histogram_percentiles_monotone_and_within_resolution() {
        // Pseudo-random sample with a heavy tail, compared against the
        // exact sorted-percentile answer.
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        let mut samples = Vec::with_capacity(10_000);
        let mut h = Histogram::new();
        for _ in 0..10_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let v = (x % 1000) * (x % 97 + 1); // up to ~97k, skewed
            samples.push(v);
            h.record(v);
        }
        samples.sort_unstable();
        let mut prev = 0u64;
        for i in 1..=1000 {
            let p = i as f64 / 1000.0;
            let got = h.percentile(p);
            assert!(got >= prev, "percentile not monotone at p={p}");
            prev = got;
            let rank = ((p * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
            let exact = samples[rank - 1];
            // Within one sub-bucket of relative resolution (~3 %), plus
            // slack of 1 for the sub-32 exact region.
            let tol = exact / 16 + 1;
            assert!(
                got.abs_diff(exact) <= tol,
                "p={p}: histogram {got} vs exact {exact} (tol {tol})"
            );
        }
    }

    #[test]
    fn histogram_empty_reports_zeroes() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.nonzero_buckets().count(), 0);
    }

    /// Wide-magnitude `u64` strategy: a uniform mantissa shifted by a
    /// uniform amount, so cases hit the exact sub-32 region, every
    /// octave in between, and the top of the range — the places where
    /// bucket boundary arithmetic can go wrong.
    fn wide_u64() -> impl proptest::strategy::Strategy<Value = u64> {
        use proptest::strategy::Strategy;
        (0u64..u64::MAX, 0u32..64).prop_map(|(m, s)| m >> s)
    }

    proptest::proptest! {
        #[test]
        fn prop_bucket_boundaries_contain_and_order_values(
            vs in proptest::collection::vec(wide_u64(), 1..200),
        ) {
            for &v in &vs {
                let i = Histogram::bucket_index(v);
                proptest::prop_assert!(i < NUM_BUCKETS, "index {} out of range for {}", i, v);
                let lo = Histogram::bucket_lower(i);
                let w = Histogram::bucket_width(i);
                proptest::prop_assert!(
                    lo <= v && v - lo < w,
                    "value {} outside bucket [{}, {}+{})", v, lo, lo, w
                );
                // The reported representative must stay inside the
                // bucket, or percentiles could invent values no sample
                // ever had.
                let mid = Histogram::bucket_value(i);
                proptest::prop_assert!(mid >= lo && mid - lo < w);
            }
            let mut sorted = vs.clone();
            sorted.sort_unstable();
            for pair in sorted.windows(2) {
                proptest::prop_assert!(
                    Histogram::bucket_index(pair[0]) <= Histogram::bucket_index(pair[1]),
                    "bucket order inverts between {} and {}", pair[0], pair[1]
                );
            }
        }

        #[test]
        fn prop_record_then_percentile_never_inverts_ordering(
            vs in proptest::collection::vec(wide_u64(), 1..300),
            ps in proptest::collection::vec(0u32..1001, 2..20),
        ) {
            let mut h = Histogram::new();
            for &v in &vs {
                h.record(v);
            }
            let mut ps = ps.clone();
            ps.sort_unstable();
            let mut prev = 0u64;
            for &p in &ps {
                let got = h.percentile(f64::from(p) / 1000.0);
                proptest::prop_assert!(
                    got >= prev,
                    "percentile inverts at p={}: {} < {}", p, got, prev
                );
                proptest::prop_assert!(
                    got >= h.min() && got <= h.max(),
                    "percentile {} escapes [{}, {}]", got, h.min(), h.max()
                );
                prev = got;
            }
        }

        #[test]
        fn prop_merge_equals_recording_the_union(
            a in proptest::collection::vec(wide_u64(), 0..200),
            b in proptest::collection::vec(wide_u64(), 0..200),
        ) {
            let mut ha = Histogram::new();
            for &v in &a {
                ha.record(v);
            }
            let mut hb = Histogram::new();
            for &v in &b {
                hb.record(v);
            }
            ha.merge(&hb);
            let mut hu = Histogram::new();
            for &v in a.iter().chain(b.iter()) {
                hu.record(v);
            }
            proptest::prop_assert_eq!(ha.count(), hu.count());
            proptest::prop_assert_eq!(ha.min(), hu.min());
            proptest::prop_assert_eq!(ha.max(), hu.max());
            proptest::prop_assert_eq!(ha.mean(), hu.mean());
            proptest::prop_assert_eq!(
                ha.nonzero_buckets().collect::<Vec<_>>(),
                hu.nonzero_buckets().collect::<Vec<_>>()
            );
            for p in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
                proptest::prop_assert_eq!(ha.percentile(p), hu.percentile(p));
            }
        }
    }

    #[test]
    fn histogram_record_n_equals_repeated_record() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record_n(777, 5);
        for _ in 0..5 {
            b.record(777);
        }
        assert_eq!(a.count(), b.count());
        assert_eq!(a.mean(), b.mean());
        assert_eq!(
            a.nonzero_buckets().collect::<Vec<_>>(),
            b.nonzero_buckets().collect::<Vec<_>>()
        );
    }
}
