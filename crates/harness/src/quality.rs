//! The quality (rank-error) benchmark.
//!
//! "The quality benchmark initially records all inserted and deleted
//! items together with their timestamp in a log; this log is then used to
//! reconstruct a global, linear sequence of all operations. A specialized
//! sequential priority queue is then used to replay this sequence and
//! efficiently determine the rank of all deleted items. Our quality
//! benchmark is pessimistic, i.e., it may return artificially inflated
//! ranks when items with duplicate keys are encountered." (appendix F)
//!
//! Timestamps come from a single global `fetch_add` counter bumped at
//! each operation's completion, which yields a valid linearization order
//! directly (see DESIGN.md §2). The replay structure is the
//! order-statistic treap from `seqpq`; because the log stores full
//! `(key, unique value)` items, our replay does **not** inflate ranks for
//! duplicate keys — deletions remove the exact item instance.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};
use std::time::Instant;

use pq_traits::trace::{self, PhaseKind, SpanOp};
use pq_traits::{ConcurrentPq, Item, Key, PqHandle, Value};
use seqpq::{Fenwick, OsTreap};
use workloads::config::StopCondition;
use workloads::{BenchConfig, KeyGen, OpKind, OpStream, ThreadRole};

use crate::registry::QueueSpec;
use crate::stats::Summary;
use crate::throughput::{PREFILL_TAG, VALUE_SHIFT};
use crate::with_queue;

/// One logged operation.
#[derive(Clone, Copy, Debug)]
struct LogEntry {
    ts: u64,
    item: Item,
    is_insert: bool,
}

/// Result of one quality configuration.
#[derive(Clone, Debug)]
pub struct QualityResult {
    /// Queue display name.
    pub queue: String,
    /// Worker thread count.
    pub threads: usize,
    /// Summary over the ranks of all deleted items (mean rank = the
    /// paper's "rank error"; rank 0 = strict minimum).
    pub rank: Summary,
    /// Median rank.
    pub p50: u64,
    /// 99th-percentile rank.
    pub p99: u64,
    /// Maximum observed rank — the direct check of a claimed relaxation
    /// bound (must stay ≤ bound up to timestamp-inversion noise).
    pub max: u64,
    /// Summary over per-item *delay*: how many deletions of strictly
    /// larger keys passed an item over while it was live (the second
    /// quality metric of the MultiQueue literature; 0 for strict queues).
    pub delay: Summary,
    /// Number of deletions replayed.
    pub deletions: usize,
}

/// Run the rank-error benchmark for one queue and configuration. The
/// configuration's stop condition should be [`StopCondition::OpsPerThread`]
/// so the log stays bounded; a duration-based config is converted to a
/// 50k-ops-per-thread budget.
pub fn run_quality(spec: QueueSpec, cfg: &BenchConfig) -> QualityResult {
    let ops_per_thread = match cfg.stop {
        StopCondition::OpsPerThread(n) => n,
        StopCondition::Duration(_) => 50_000,
    };
    let (log, prefill) = with_queue!(spec, cfg.threads, q => record_log(&q, cfg, ops_per_thread));
    let (mut ranks, delays) = replay(log, prefill);
    let rank = Summary::of_u64(&ranks);
    ranks.sort_unstable();
    let pct = |p: f64| -> u64 {
        if ranks.is_empty() {
            0
        } else {
            ranks[((ranks.len() - 1) as f64 * p) as usize]
        }
    };
    QualityResult {
        queue: spec.name(),
        threads: cfg.threads,
        rank,
        p50: pct(0.5),
        p99: pct(0.99),
        max: ranks.last().copied().unwrap_or(0),
        delay: Summary::of_u64(&delays),
        deletions: ranks.len(),
    }
}

/// Execute the workload while logging every operation with a
/// linearization timestamp. Returns the merged log and the prefill items.
fn record_log<Q: ConcurrentPq>(
    q: &Q,
    cfg: &BenchConfig,
    ops_per_thread: u64,
) -> (Vec<LogEntry>, Vec<Item>) {
    let prefill_items = cfg.prefill_items(PREFILL_TAG);
    let threads = cfg.threads;
    let barrier = Barrier::new(threads + 1);
    let clock = AtomicU64::new(0);
    let logs: Mutex<Vec<Vec<LogEntry>>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        for t in 0..threads {
            let chunk_lo = t * prefill_items.len() / threads;
            let chunk_hi = (t + 1) * prefill_items.len() / threads;
            let prefill = &prefill_items[chunk_lo..chunk_hi];
            let barrier = &barrier;
            let clock = &clock;
            let logs = &logs;
            scope.spawn(move || {
                let mut h = q.handle();
                for it in prefill {
                    h.insert(it.key, it.value);
                }
                let role = ThreadRole::for_thread(cfg.workload, t, threads);
                let mut ops = OpStream::new(role, cfg.seed, t as u64);
                let mut keys = KeyGen::new(cfg.key_dist, cfg.seed, t as u64);
                let mut next_value = (t as u64) << VALUE_SHIFT;
                let mut log = Vec::with_capacity(ops_per_thread as usize);
                barrier.wait();
                barrier.wait();
                // Flight recorder: batch-granularity spans (one clock
                // read per 64 logged ops), only while a trace runs.
                let tracing = trace::active();
                let anchor = trace::Anchor::at(Instant::now());
                let mut span_begin = anchor.base_ns();
                let mut span_ops = 0u32;
                for _ in 0..ops_per_thread {
                    if tracing {
                        span_ops += 1;
                        if span_ops == 64 {
                            let end = anchor.ns_at(Instant::now());
                            trace::span(SpanOp::OpBatch, span_begin, end, span_ops);
                            span_begin = end;
                            span_ops = 0;
                        }
                    }
                    match ops.next_op() {
                        OpKind::Insert => {
                            let item = Item::new(keys.next_key(), next_value);
                            next_value += 1;
                            h.insert(item.key, item.value);
                            let ts = clock.fetch_add(1, Ordering::Relaxed);
                            log.push(LogEntry {
                                ts,
                                item,
                                is_insert: true,
                            });
                        }
                        OpKind::DeleteMin => {
                            if let Some(item) = h.delete_min() {
                                let ts = clock.fetch_add(1, Ordering::Relaxed);
                                keys.observe_delete(item.key);
                                log.push(LogEntry {
                                    ts,
                                    item,
                                    is_insert: false,
                                });
                            }
                        }
                    }
                }
                if tracing && span_ops > 0 {
                    trace::span(SpanOp::OpBatch, span_begin, anchor.ns_at(Instant::now()), span_ops);
                }
                // Commit buffered operations before the log is sealed:
                // buffered inserts become visible (they are already
                // logged), and deletion-buffered items return to the
                // queue (they were never logged as deleted).
                let flush_begin = if tracing { anchor.ns_at(Instant::now()) } else { 0 };
                h.flush();
                if tracing {
                    trace::span(SpanOp::Flush, flush_begin, anchor.ns_at(Instant::now()), 1);
                }
                logs.lock().unwrap().push(log);
            });
        }
        trace::phase(PhaseKind::Prefill, 0);
        barrier.wait();
        trace::phase(PhaseKind::Measure, 0);
        barrier.wait();
    });
    trace::phase(PhaseKind::RepEnd, 0);

    let mut merged: Vec<LogEntry> = logs.into_inner().unwrap().into_iter().flatten().collect();
    merged.sort_unstable_by_key(|e| e.ts);
    (merged, prefill_items)
}

/// Replay the linearized log against an order-statistic treap, recording
/// the rank of every deleted item.
///
/// The rank of a deleted item is the number of live items with a
/// **strictly smaller key** — computed as the order-statistic rank of
/// the key-floor item `(key, 0)`, so equal-key ties never inflate ranks.
/// (The paper's replay "may return artificially inflated ranks when
/// items with duplicate keys are encountered"; logging full
/// `(key, unique id)` pairs lets us avoid that pessimism.)
///
/// A deletion may appear in the log slightly before its matching insert
/// (the timestamp is taken after the operation completes, so two racing
/// operations can invert); such deletions are buffered and resolved with
/// rank computed when the insert arrives.
///
/// Alongside ranks, the replay computes per-item *delay* (Rihani et al.):
/// how many deletions of strictly larger keys occurred while the item was
/// live. A Fenwick tree over the compressed key universe turns "deletion
/// of `x` passes over every live smaller key" into a prefix add; an
/// item's delay is the point value at its key, relative to a baseline
/// captured when the item entered the queue.
fn replay(log: Vec<LogEntry>, prefill: Vec<Item>) -> (Vec<u64>, Vec<u64>) {
    // Compress the key universe.
    let mut keys: Vec<Key> = prefill
        .iter()
        .chain(log.iter().map(|e| &e.item))
        .map(|it| it.key)
        .collect();
    keys.sort_unstable();
    keys.dedup();
    let key_idx = |k: Key| keys.binary_search(&k).expect("key in universe");

    let mut treap = OsTreap::new();
    let mut passes = Fenwick::new(keys.len());
    let mut baselines: HashMap<Value, i64> = HashMap::new();
    for it in prefill {
        treap.insert_item(it);
        baselines.insert(it.value, 0);
    }
    let mut ranks = Vec::new();
    let mut delays = Vec::new();
    let mut pending: HashSet<Value> = HashSet::new();
    let delete = |treap: &mut OsTreap,
                      passes: &mut Fenwick,
                      baselines: &mut HashMap<Value, i64>,
                      item: &Item|
     -> Option<(u64, u64)> {
        let rank = treap.rank_of(&Item::new(item.key, 0));
        treap.remove_item(item)?;
        let idx = key_idx(item.key);
        let baseline = baselines.remove(&item.value).unwrap_or(0);
        let delay = (passes.get(idx) - baseline).max(0) as u64;
        // This deletion passes over every live item with a smaller key.
        passes.prefix_add(idx, 1);
        Some((rank, delay))
    };
    for e in log {
        if e.is_insert {
            treap.insert_item(e.item);
            baselines.insert(e.item.value, passes.get(key_idx(e.item.key)));
            if pending.remove(&e.item.value) {
                // Deletion already observed: the item spent no time in
                // the replay queue; rank/delay are what they'd have been
                // on arrival.
                let (r, d) = delete(&mut treap, &mut passes, &mut baselines, &e.item)
                    .expect("item was just inserted");
                ranks.push(r);
                delays.push(d);
            }
        } else {
            match delete(&mut treap, &mut passes, &mut baselines, &e.item) {
                Some((r, d)) => {
                    ranks.push(r);
                    delays.push(d);
                }
                None => {
                    pending.insert(e.item.value);
                }
            }
        }
    }
    (ranks, delays)
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::{KeyDistribution, Workload};

    fn tiny_cfg(threads: usize) -> BenchConfig {
        BenchConfig {
            threads,
            workload: Workload::Uniform,
            key_dist: KeyDistribution::uniform(16),
            prefill: 2_000,
            stop: StopCondition::OpsPerThread(3_000),
            reps: 1,
            seed: 99,
        }
    }

    #[test]
    fn strict_queue_has_near_zero_rank_single_thread() {
        let r = run_quality(QueueSpec::GlobalLock, &tiny_cfg(1));
        assert!(r.deletions > 0);
        assert_eq!(r.rank.mean, 0.0, "single-threaded strict queue must have rank 0");
    }

    #[test]
    fn linden_near_zero_rank_single_thread() {
        let r = run_quality(QueueSpec::Linden, &tiny_cfg(1));
        assert_eq!(r.rank.mean, 0.0);
    }

    #[test]
    fn klsm_rank_within_bound_single_thread() {
        let r = run_quality(QueueSpec::Klsm(128), &tiny_cfg(1));
        assert!(r.deletions > 0);
        // Single thread: bound is k.
        assert!(
            r.rank.mean <= 128.0,
            "mean rank {} exceeds k=128",
            r.rank.mean
        );
    }

    #[test]
    fn multiqueue_rank_positive_but_moderate() {
        let r = run_quality(QueueSpec::MultiQueue(4), &tiny_cfg(2));
        assert!(r.deletions > 0);
        assert!(r.rank.mean < 10_000.0);
    }

    #[test]
    fn concurrent_strict_queue_small_rank() {
        // With concurrency, timestamp inversion can make even a strict
        // queue show tiny nonzero ranks, but they must stay minuscule
        // compared to relaxed queues.
        let r = run_quality(QueueSpec::GlobalLock, &tiny_cfg(4));
        assert!(r.rank.mean < 5.0, "strict queue mean rank {}", r.rank.mean);
    }

    #[test]
    fn replay_handles_inverted_delete_insert_pairs() {
        let item = Item::new(5, 1);
        let log = vec![
            LogEntry {
                ts: 0,
                item,
                is_insert: false,
            },
            LogEntry {
                ts: 1,
                item,
                is_insert: true,
            },
        ];
        let (ranks, delays) = replay(log, vec![]);
        assert_eq!(ranks, vec![0]);
        assert_eq!(delays, vec![0]);
    }

    #[test]
    fn replay_ranks_against_prefill() {
        // Prefill {0,10,20}; delete key 20 → rank 2.
        let prefill = vec![Item::new(0, 100), Item::new(10, 101), Item::new(20, 102)];
        let log = vec![LogEntry {
            ts: 0,
            item: Item::new(20, 102),
            is_insert: false,
        }];
        let (ranks, _) = replay(log, prefill);
        assert_eq!(ranks, vec![2]);
    }

    #[test]
    fn replay_delay_counts_passes_by_larger_deletions() {
        // Prefill {1, 5, 9}. Delete 9 (passes 1 and 5), delete 5
        // (passes 1), delete 1: delays 0, 1, 2 in deletion order.
        let prefill = vec![Item::new(1, 0), Item::new(5, 1), Item::new(9, 2)];
        let del = |key, value, ts| LogEntry {
            ts,
            item: Item::new(key, value),
            is_insert: false,
        };
        let (ranks, delays) = replay(vec![del(9, 2, 0), del(5, 1, 1), del(1, 0, 2)], prefill);
        assert_eq!(ranks, vec![2, 1, 0]);
        assert_eq!(delays, vec![0, 1, 2]);
    }

    #[test]
    fn replay_delay_baseline_excludes_pre_insert_passes() {
        // Delete 9 from the prefill first, THEN insert 1; 1's delay must
        // not count the earlier pass.
        let prefill = vec![Item::new(9, 2), Item::new(3, 3)];
        let log = vec![
            LogEntry {
                ts: 0,
                item: Item::new(9, 2),
                is_insert: false,
            },
            LogEntry {
                ts: 1,
                item: Item::new(1, 10),
                is_insert: true,
            },
            LogEntry {
                ts: 2,
                item: Item::new(3, 3),
                is_insert: false,
            },
            LogEntry {
                ts: 3,
                item: Item::new(1, 10),
                is_insert: false,
            },
        ];
        let (_, delays) = replay(log, prefill);
        // 9: delay 0 (prefill baseline, nothing deleted before).
        // 3: passed over once (by 9's deletion).
        // 1: inserted after 9's deletion; only 3's deletion passes it.
        assert_eq!(delays, vec![0, 1, 1]);
    }

    #[test]
    fn strict_queue_has_zero_delay_single_thread() {
        let r = run_quality(QueueSpec::GlobalLock, &tiny_cfg(1));
        assert_eq!(r.delay.mean, 0.0, "strict queue must never pass items over");
    }

    #[test]
    fn relaxed_queue_has_positive_delay() {
        let r = run_quality(QueueSpec::Klsm(128), &tiny_cfg(1));
        // k-LSM with k=128 skips items regularly even single-threaded.
        assert!(r.delay.mean > 0.0, "klsm delay {}", r.delay.mean);
    }
}
