//! The throughput benchmark.
//!
//! "We prefill priority queues with 10⁶ elements prior the benchmark, and
//! then measure throughput for 10 seconds, finally reporting on the
//! number of operations performed per second" (appendix F). Each
//! configuration runs `reps` times; the mean and 95 % confidence interval
//! over repetitions are reported, as in the paper.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;
use std::time::Instant;

use pq_traits::{ConcurrentPq, PqHandle};
use workloads::config::StopCondition;
use workloads::{BenchConfig, KeyGen, OpKind, OpStream, ThreadRole};

use crate::registry::QueueSpec;
use crate::stats::Summary;
use crate::with_queue;

/// Value-space partitioning so every inserted value is globally unique:
/// thread `t` uses values `t << VALUE_SHIFT ..`; the prefill uses
/// `PREFILL_TAG`.
pub(crate) const VALUE_SHIFT: u32 = 40;
pub(crate) const PREFILL_TAG: u64 = 0xFF << VALUE_SHIFT;

/// Result of one throughput configuration.
#[derive(Clone, Debug)]
pub struct ThroughputResult {
    /// Queue display name.
    pub queue: String,
    /// Worker thread count.
    pub threads: usize,
    /// Operations per second, one entry per repetition.
    pub per_rep_ops_per_sec: Vec<f64>,
    /// Summary over repetitions.
    pub summary: Summary,
    /// Per-thread operation counts of the *last* repetition (kept for
    /// compatibility; prefer [`ThroughputResult::per_rep_thread_ops`]).
    /// Exposes fairness (a queue whose slow path starves some threads
    /// shows a skewed distribution even when the total looks healthy).
    pub per_thread_ops: Vec<u64>,
    /// Per-thread operation counts of *every* repetition (outer index =
    /// repetition), so fairness can be summarized with a confidence
    /// interval like throughput instead of a single-rep snapshot.
    pub per_rep_thread_ops: Vec<Vec<u64>>,
}

impl ThroughputResult {
    /// Mean throughput in million operations per second (the paper's
    /// MOps/s axis).
    pub fn mops(&self) -> f64 {
        self.summary.mean / 1e6
    }

    /// Fairness as min/max of per-thread op counts in [0, 1]; 1.0 means
    /// perfectly even progress, small values mean starvation. Computed
    /// over the last repetition (see [`Self::fairness_summary`] for the
    /// all-reps view).
    pub fn fairness(&self) -> f64 {
        Self::fairness_of(&self.per_thread_ops)
    }

    fn fairness_of(counts: &[u64]) -> f64 {
        let max = counts.iter().copied().max().unwrap_or(0);
        let min = counts.iter().copied().min().unwrap_or(0);
        if max == 0 {
            0.0
        } else {
            min as f64 / max as f64
        }
    }

    /// Fairness of each repetition, in repetition order.
    pub fn fairness_per_rep(&self) -> Vec<f64> {
        self.per_rep_thread_ops
            .iter()
            .map(|c| Self::fairness_of(c))
            .collect()
    }

    /// Mean / sd / 95 % CI of fairness over repetitions, mirroring the
    /// throughput summary.
    pub fn fairness_summary(&self) -> Summary {
        Summary::of(&self.fairness_per_rep())
    }
}

/// Run the full throughput benchmark for one queue and configuration.
pub fn run_throughput(spec: QueueSpec, cfg: &BenchConfig) -> ThroughputResult {
    let mut per_rep = Vec::with_capacity(cfg.reps);
    let mut per_rep_thread_ops = Vec::with_capacity(cfg.reps);
    for rep in 0..cfg.reps {
        let (ops_per_sec, per_thread) = with_queue!(spec, cfg.threads, q => run_once(&q, cfg, rep));
        per_rep.push(ops_per_sec);
        per_rep_thread_ops.push(per_thread);
    }
    ThroughputResult {
        queue: spec.name(),
        threads: cfg.threads,
        summary: Summary::of(&per_rep),
        per_rep_ops_per_sec: per_rep,
        per_thread_ops: per_rep_thread_ops.last().cloned().unwrap_or_default(),
        per_rep_thread_ops,
    }
}

/// One repetition: prefill (split across the workers), barrier, timed
/// mixed workload. Returns operations per second over the measurement
/// window plus per-thread operation counts.
fn run_once<Q: ConcurrentPq>(q: &Q, cfg: &BenchConfig, rep: usize) -> (f64, Vec<u64>) {
    let rep_seed = cfg.seed ^ (rep as u64).wrapping_mul(0xA076_1D64_78BD_642F);
    let prefill_items = cfg.prefill_items(PREFILL_TAG);
    let threads = cfg.threads;
    let barrier = Barrier::new(threads + 1);
    let total_ops = AtomicU64::new(0);
    let elapsed_ns = AtomicU64::new(0);
    let per_thread: Vec<AtomicU64> = (0..threads).map(|_| AtomicU64::new(0)).collect();
    let per_thread = &per_thread;

    std::thread::scope(|scope| {
        for (t, thread_ops) in per_thread.iter().enumerate() {
            let chunk_lo = t * prefill_items.len() / threads;
            let chunk_hi = (t + 1) * prefill_items.len() / threads;
            let prefill = &prefill_items[chunk_lo..chunk_hi];
            let barrier = &barrier;
            let total_ops = &total_ops;
            let elapsed_ns = &elapsed_ns;
            scope.spawn(move || {
                let mut h = q.handle();
                for it in prefill {
                    h.insert(it.key, it.value);
                }
                let role = ThreadRole::for_thread(cfg.workload, t, threads);
                let mut ops = OpStream::new(role, rep_seed, t as u64);
                let mut keys = KeyGen::new(cfg.key_dist, rep_seed, t as u64);
                let mut next_value = (t as u64) << VALUE_SHIFT;
                barrier.wait(); // prefill complete
                barrier.wait(); // start signal
                let started = Instant::now();
                let mut count = 0u64;
                match cfg.stop {
                    StopCondition::Duration(d) => loop {
                        for _ in 0..64 {
                            perform(&mut h, &mut ops, &mut keys, &mut next_value);
                        }
                        count += 64;
                        if started.elapsed() >= d {
                            break;
                        }
                    },
                    StopCondition::OpsPerThread(n) => {
                        for _ in 0..n {
                            perform(&mut h, &mut ops, &mut keys, &mut next_value);
                        }
                        count = n;
                    }
                }
                let ns = started.elapsed().as_nanos() as u64;
                // Commit handle-buffered operations outside the timed
                // window so buffered queues neither lose items nor get
                // credited for uncommitted work.
                h.flush();
                total_ops.fetch_add(count, Ordering::Relaxed);
                thread_ops.store(count, Ordering::Relaxed);
                elapsed_ns.fetch_max(ns, Ordering::Relaxed);
            });
        }
        barrier.wait(); // wait for prefill
        barrier.wait(); // release the workers
    });

    let ops = total_ops.load(Ordering::Relaxed) as f64;
    let secs = elapsed_ns.load(Ordering::Relaxed) as f64 / 1e9;
    let counts = per_thread
        .iter()
        .map(|c| c.load(Ordering::Relaxed))
        .collect();
    (if secs > 0.0 { ops / secs } else { 0.0 }, counts)
}

#[inline]
fn perform<H: PqHandle>(
    h: &mut H,
    ops: &mut OpStream,
    keys: &mut KeyGen,
    next_value: &mut u64,
) {
    match ops.next_op() {
        OpKind::Insert => {
            let key = keys.next_key();
            h.insert(key, *next_value);
            *next_value += 1;
        }
        OpKind::DeleteMin => {
            if let Some(item) = h.delete_min() {
                keys.observe_delete(item.key);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use workloads::{KeyDistribution, Workload};

    fn tiny_cfg(threads: usize) -> BenchConfig {
        BenchConfig {
            threads,
            workload: Workload::Uniform,
            key_dist: KeyDistribution::uniform(16),
            prefill: 2_000,
            stop: StopCondition::Duration(Duration::from_millis(20)),
            reps: 2,
            seed: 11,
        }
    }

    #[test]
    fn reports_positive_throughput_for_every_queue() {
        for spec in [
            QueueSpec::Klsm(128),
            QueueSpec::Linden,
            QueueSpec::Spray,
            QueueSpec::MultiQueue(4),
            QueueSpec::GlobalLock,
        ] {
            let r = run_throughput(spec, &tiny_cfg(2));
            assert_eq!(r.per_rep_ops_per_sec.len(), 2);
            assert!(r.summary.mean > 0.0, "{spec} reported zero throughput");
        }
    }

    #[test]
    fn split_workload_runs() {
        let mut cfg = tiny_cfg(2);
        cfg.workload = Workload::Split;
        let r = run_throughput(QueueSpec::MultiQueue(4), &cfg);
        assert!(r.summary.mean > 0.0);
    }

    #[test]
    fn ops_per_thread_mode_counts_exactly() {
        let mut cfg = tiny_cfg(2);
        cfg.stop = StopCondition::OpsPerThread(1_000);
        cfg.reps = 1;
        let r = run_throughput(QueueSpec::GlobalLock, &cfg);
        // ops/s positive and finite; exact count is 2 × 1000 over the
        // measured window.
        assert!(r.summary.mean.is_finite() && r.summary.mean > 0.0);
    }

    #[test]
    fn ascending_keys_run() {
        let mut cfg = tiny_cfg(2);
        cfg.key_dist = KeyDistribution::ascending();
        let r = run_throughput(QueueSpec::Klsm(256), &cfg);
        assert!(r.summary.mean > 0.0);
    }

    #[test]
    fn per_thread_ops_and_fairness_reported() {
        let mut cfg = tiny_cfg(2);
        cfg.stop = StopCondition::OpsPerThread(500);
        cfg.reps = 1;
        let r = run_throughput(QueueSpec::MultiQueue(4), &cfg);
        assert_eq!(r.per_thread_ops.len(), 2);
        // Fixed-ops mode: both threads do exactly 500 ops → fairness 1.
        assert_eq!(r.per_thread_ops, vec![500, 500]);
        assert_eq!(r.fairness(), 1.0);
    }

    #[test]
    fn per_thread_ops_kept_for_every_rep() {
        let mut cfg = tiny_cfg(2);
        cfg.stop = StopCondition::OpsPerThread(400);
        cfg.reps = 3;
        let r = run_throughput(QueueSpec::MultiQueue(4), &cfg);
        assert_eq!(r.per_rep_thread_ops.len(), 3);
        for rep in &r.per_rep_thread_ops {
            assert_eq!(rep, &vec![400, 400]);
        }
        // Compatibility: the flat field still mirrors the last rep.
        assert_eq!(r.per_thread_ops, r.per_rep_thread_ops[2]);
        assert_eq!(r.fairness_per_rep(), vec![1.0; 3]);
        assert_eq!(r.fairness_summary().mean, 1.0);
    }

    #[test]
    fn buffered_queue_conserves_items_across_window_flush() {
        // mq-sticky buffers up to m inserts per handle; the harness
        // flush at window end must commit them so nothing is lost.
        let mut cfg = tiny_cfg(2);
        cfg.stop = StopCondition::OpsPerThread(2_000);
        cfg.reps = 1;
        let r = run_throughput(QueueSpec::MqSticky(4, 8, 16), &cfg);
        assert!(r.summary.mean > 0.0);
    }

    #[test]
    fn fairness_of_empty_result_is_zero() {
        let r = ThroughputResult {
            queue: "x".into(),
            threads: 0,
            per_rep_ops_per_sec: vec![],
            summary: crate::Summary::of(&[]),
            per_thread_ops: vec![],
            per_rep_thread_ops: vec![],
        };
        assert_eq!(r.fairness(), 0.0);
        assert!(r.fairness_per_rep().is_empty());
    }
}
