//! The throughput benchmark.
//!
//! "We prefill priority queues with 10⁶ elements prior the benchmark, and
//! then measure throughput for 10 seconds, finally reporting on the
//! number of operations performed per second" (appendix F). Each
//! configuration runs `reps` times; the mean and 95 % confidence interval
//! over repetitions are reported, as in the paper.
//!
//! In addition to the scalar ops/s number, each repetition records a
//! time-sliced series: per-thread operation counts sampled at a fixed
//! tick, aggregated into operations-completed-per-tick. A queue whose
//! throughput decays over the window (e.g. because relaxation lets it
//! race ahead early and degrade later) shows up as first-tick vs
//! last-tick drift, which [`ThroughputResult::steady_state_warning`]
//! flags when it exceeds 2×.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};
use std::time::{Duration, Instant};

use pq_traits::trace::{self, PhaseKind, SpanOp};
use pq_traits::{ConcurrentPq, PqHandle};
use workloads::config::StopCondition;
use workloads::{BenchConfig, KeyGen, OpKind, OpStream, ThreadRole};

use crate::registry::QueueSpec;
use crate::stats::Summary;
use crate::with_queue;

/// Value-space partitioning so every inserted value is globally unique:
/// thread `t` uses values `t << VALUE_SHIFT ..`; the prefill uses
/// `PREFILL_TAG`.
pub(crate) const VALUE_SHIFT: u32 = 40;
pub(crate) const PREFILL_TAG: u64 = 0xFF << VALUE_SHIFT;

/// Sampling tick for the time-sliced throughput series: a tenth of the
/// measurement window, clamped to [5 ms, 100 ms], so short smoke runs
/// still produce a usable number of ticks while long runs stay at the
/// conventional 100 ms resolution. Fixed-ops runs use a 10 ms tick.
fn tick_for(stop: &StopCondition) -> Duration {
    match stop {
        StopCondition::Duration(d) => {
            (*d / 10).clamp(Duration::from_millis(5), Duration::from_millis(100))
        }
        StopCondition::OpsPerThread(_) => Duration::from_millis(10),
    }
}

/// Result of one throughput configuration.
#[derive(Clone, Debug)]
pub struct ThroughputResult {
    /// Queue display name.
    pub queue: String,
    /// Worker thread count.
    pub threads: usize,
    /// Operations per second, one entry per repetition.
    pub per_rep_ops_per_sec: Vec<f64>,
    /// Summary over repetitions.
    pub summary: Summary,
    /// Per-thread operation counts of the *last* repetition only — the
    /// name says so because this is **not** an aggregate over reps
    /// (reconciling it against [`ThroughputResult::summary`] totals
    /// would be wrong; it was previously called `per_thread_ops`, which
    /// read like one). Prefer [`ThroughputResult::per_rep_thread_ops`]
    /// for anything quantitative. Exposes fairness (a queue whose slow
    /// path starves some threads shows a skewed distribution even when
    /// the total looks healthy).
    pub last_rep_thread_ops: Vec<u64>,
    /// Per-thread operation counts of *every* repetition (outer index =
    /// repetition), so fairness can be summarized with a confidence
    /// interval like throughput instead of a single-rep snapshot.
    pub per_rep_thread_ops: Vec<Vec<u64>>,
    /// Sampling tick of the time-sliced series, in milliseconds.
    pub tick_ms: f64,
    /// Operations completed per tick, aggregated over threads, one inner
    /// series per repetition. The trailing partial tick is dropped.
    pub per_rep_ticks: Vec<Vec<u64>>,
}

impl ThroughputResult {
    /// Mean throughput in million operations per second (the paper's
    /// MOps/s axis).
    pub fn mops(&self) -> f64 {
        self.summary.mean / 1e6
    }

    /// Fairness as min/max of per-thread op counts in [0, 1]; 1.0 means
    /// perfectly even progress, small values mean starvation. Computed
    /// over the last repetition (see [`Self::fairness_summary`] for the
    /// all-reps view).
    pub fn fairness(&self) -> f64 {
        Self::fairness_of(&self.last_rep_thread_ops)
    }

    fn fairness_of(counts: &[u64]) -> f64 {
        let max = counts.iter().copied().max().unwrap_or(0);
        let min = counts.iter().copied().min().unwrap_or(0);
        if max == 0 {
            0.0
        } else {
            min as f64 / max as f64
        }
    }

    /// Fairness of each repetition, in repetition order.
    pub fn fairness_per_rep(&self) -> Vec<f64> {
        self.per_rep_thread_ops
            .iter()
            .map(|c| Self::fairness_of(c))
            .collect()
    }

    /// Mean / sd / 95 % CI of fairness over repetitions, mirroring the
    /// throughput summary.
    pub fn fairness_summary(&self) -> Summary {
        Summary::of(&self.fairness_per_rep())
    }

    /// Worst first-tick vs last-tick throughput ratio (≥ 1) over all
    /// repetitions with at least two ticks, or `None` when no repetition
    /// has enough ticks to compare. A stalled tick (zero ops) reports
    /// infinity.
    pub fn drift_ratio(&self) -> Option<f64> {
        let mut worst: Option<f64> = None;
        for ticks in &self.per_rep_ticks {
            if ticks.len() < 2 {
                continue;
            }
            let first = ticks[0] as f64;
            let last = ticks[ticks.len() - 1] as f64;
            let r = if first == 0.0 && last == 0.0 {
                1.0
            } else if first == 0.0 || last == 0.0 {
                f64::INFINITY
            } else {
                (first / last).max(last / first)
            };
            worst = Some(worst.map_or(r, |w| w.max(r)));
        }
        worst
    }

    /// A human-readable warning when throughput drifted more than 2×
    /// between the first and last tick of any repetition — a sign the
    /// measurement window never reached steady state and the scalar
    /// ops/s number is misleading.
    pub fn steady_state_warning(&self) -> Option<String> {
        let r = self.drift_ratio()?;
        if r > 2.0 {
            Some(format!(
                "{} @ {} threads: throughput drifted {:.2}x between first and last \
                 {:.0}ms tick; window may not be steady-state",
                self.queue, self.threads, r, self.tick_ms
            ))
        } else {
            None
        }
    }
}

/// One repetition's raw measurements.
struct RepOutcome {
    ops_per_sec: f64,
    per_thread: Vec<u64>,
    ticks: Vec<u64>,
}

/// Run the full throughput benchmark for one queue and configuration.
pub fn run_throughput(spec: QueueSpec, cfg: &BenchConfig) -> ThroughputResult {
    let mut reps = Vec::with_capacity(cfg.reps);
    for rep in 0..cfg.reps {
        reps.push(with_queue!(spec, cfg.threads, q => run_once(&q, cfg, rep)));
    }
    assemble(spec.name(), cfg, reps)
}

/// Like [`run_throughput`], but for a caller-constructed queue type
/// outside the registry: `make` builds a fresh queue for each
/// repetition. Used e.g. to A/B a queue against its
/// [`pq_traits::Instrumented`] wrapper when measuring wrapper overhead.
pub fn run_throughput_with<Q: ConcurrentPq>(
    name: &str,
    make: impl Fn() -> Q,
    cfg: &BenchConfig,
) -> ThroughputResult {
    let mut reps = Vec::with_capacity(cfg.reps);
    for rep in 0..cfg.reps {
        let q = make();
        reps.push(run_once(&q, cfg, rep));
    }
    assemble(name.to_owned(), cfg, reps)
}

fn assemble(queue: String, cfg: &BenchConfig, reps: Vec<RepOutcome>) -> ThroughputResult {
    let per_rep_ops_per_sec: Vec<f64> = reps.iter().map(|r| r.ops_per_sec).collect();
    let per_rep_thread_ops: Vec<Vec<u64>> =
        reps.iter().map(|r| r.per_thread.clone()).collect();
    let per_rep_ticks: Vec<Vec<u64>> = reps.into_iter().map(|r| r.ticks).collect();
    ThroughputResult {
        queue,
        threads: cfg.threads,
        summary: Summary::of(&per_rep_ops_per_sec),
        per_rep_ops_per_sec,
        last_rep_thread_ops: per_rep_thread_ops.last().cloned().unwrap_or_default(),
        per_rep_thread_ops,
        tick_ms: tick_for(&cfg.stop).as_secs_f64() * 1e3,
        per_rep_ticks,
    }
}

/// Sum per-thread cumulative tick series into one aggregate
/// ops-per-tick series. Threads that stopped sampling early (shorter
/// series) are padded with their final total, so later ticks still
/// account for all threads' completed work.
fn aggregate_ticks(series: &[Vec<u64>], totals: &[u64]) -> Vec<u64> {
    let len = series.iter().map(Vec::len).max().unwrap_or(0);
    let mut out = Vec::with_capacity(len);
    let mut prev = 0u64;
    for i in 0..len {
        let cum: u64 = series
            .iter()
            .zip(totals)
            .map(|(s, &total)| s.get(i).copied().unwrap_or(total))
            .sum();
        out.push(cum.saturating_sub(prev));
        prev = cum;
    }
    out
}

/// One repetition: prefill (split across the workers), barrier, timed
/// mixed workload. Returns operations per second over the measurement
/// window plus per-thread operation counts and the aggregated
/// time-sliced series.
fn run_once<Q: ConcurrentPq>(q: &Q, cfg: &BenchConfig, rep: usize) -> RepOutcome {
    let rep_seed = cfg.seed ^ (rep as u64).wrapping_mul(0xA076_1D64_78BD_642F);
    let prefill_items = cfg.prefill_items(PREFILL_TAG);
    let threads = cfg.threads;
    let tick = tick_for(&cfg.stop);
    let barrier = Barrier::new(threads + 1);
    let total_ops = AtomicU64::new(0);
    let elapsed_ns = AtomicU64::new(0);
    let per_thread: Vec<AtomicU64> = (0..threads).map(|_| AtomicU64::new(0)).collect();
    let per_thread = &per_thread;
    let tick_series: Vec<Mutex<Vec<u64>>> = (0..threads).map(|_| Mutex::new(Vec::new())).collect();
    let tick_series = &tick_series;

    std::thread::scope(|scope| {
        for (t, thread_ops) in per_thread.iter().enumerate() {
            let chunk_lo = t * prefill_items.len() / threads;
            let chunk_hi = (t + 1) * prefill_items.len() / threads;
            let prefill = &prefill_items[chunk_lo..chunk_hi];
            let barrier = &barrier;
            let total_ops = &total_ops;
            let elapsed_ns = &elapsed_ns;
            scope.spawn(move || {
                let mut h = q.handle();
                for it in prefill {
                    h.insert(it.key, it.value);
                }
                let role = ThreadRole::for_thread(cfg.workload, t, threads);
                let mut ops = OpStream::new(role, rep_seed, t as u64);
                let mut keys = KeyGen::new(cfg.key_dist, rep_seed, t as u64);
                let mut next_value = (t as u64) << VALUE_SHIFT;
                barrier.wait(); // prefill complete
                barrier.wait(); // start signal
                let started = Instant::now();
                // Flight recorder: one OpBatch span per 64-op batch,
                // reusing the per-batch `started.elapsed()` read the
                // tick sampler already pays for — no extra clock reads
                // in the hot loop (and nothing at all while inactive).
                let tracing = trace::active();
                let anchor = trace::Anchor::at(started);
                let mut span_begin = anchor.base_ns();
                let mut count = 0u64;
                // Cumulative op count at each elapsed tick boundary.
                let mut ticks: Vec<u64> = Vec::new();
                let mut next_tick = tick;
                match cfg.stop {
                    StopCondition::Duration(d) => loop {
                        for _ in 0..64 {
                            perform(&mut h, &mut ops, &mut keys, &mut next_value);
                        }
                        count += 64;
                        let elapsed = started.elapsed();
                        if tracing {
                            let end = anchor.base_ns() + elapsed.as_nanos() as u64;
                            trace::span(SpanOp::OpBatch, span_begin, end, 64);
                            span_begin = end;
                        }
                        while elapsed >= next_tick {
                            ticks.push(count);
                            next_tick += tick;
                        }
                        if elapsed >= d {
                            break;
                        }
                    },
                    StopCondition::OpsPerThread(n) => {
                        while count < n {
                            let batch = 64.min(n - count);
                            for _ in 0..batch {
                                perform(&mut h, &mut ops, &mut keys, &mut next_value);
                            }
                            count += batch;
                            let elapsed = started.elapsed();
                            if tracing {
                                let end = anchor.base_ns() + elapsed.as_nanos() as u64;
                                trace::span(SpanOp::OpBatch, span_begin, end, batch as u32);
                                span_begin = end;
                            }
                            while elapsed >= next_tick {
                                ticks.push(count);
                                next_tick += tick;
                            }
                        }
                    }
                }
                let ns = started.elapsed().as_nanos() as u64;
                // Commit handle-buffered operations outside the timed
                // window so buffered queues neither lose items nor get
                // credited for uncommitted work.
                h.flush();
                if tracing {
                    trace::span(
                        SpanOp::Flush,
                        anchor.base_ns() + ns,
                        anchor.ns_at(Instant::now()),
                        1,
                    );
                }
                total_ops.fetch_add(count, Ordering::Relaxed);
                thread_ops.store(count, Ordering::Relaxed);
                elapsed_ns.fetch_max(ns, Ordering::Relaxed);
                *tick_series[t].lock().unwrap() = ticks;
            });
        }
        trace::phase(PhaseKind::Prefill, rep as u32);
        barrier.wait(); // wait for prefill
        trace::phase(PhaseKind::Measure, rep as u32);
        barrier.wait(); // release the workers
    });
    trace::phase(PhaseKind::RepEnd, rep as u32);

    let ops = total_ops.load(Ordering::Relaxed) as f64;
    let secs = elapsed_ns.load(Ordering::Relaxed) as f64 / 1e9;
    let counts: Vec<u64> = per_thread
        .iter()
        .map(|c| c.load(Ordering::Relaxed))
        .collect();
    let series: Vec<Vec<u64>> = tick_series
        .iter()
        .map(|m| std::mem::take(&mut *m.lock().unwrap()))
        .collect();
    RepOutcome {
        ops_per_sec: if secs > 0.0 { ops / secs } else { 0.0 },
        ticks: aggregate_ticks(&series, &counts),
        per_thread: counts,
    }
}

#[inline]
fn perform<H: PqHandle>(
    h: &mut H,
    ops: &mut OpStream,
    keys: &mut KeyGen,
    next_value: &mut u64,
) {
    match ops.next_op() {
        OpKind::Insert => {
            let key = keys.next_key();
            h.insert(key, *next_value);
            *next_value += 1;
        }
        OpKind::DeleteMin => {
            if let Some(item) = h.delete_min() {
                keys.observe_delete(item.key);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::{KeyDistribution, Workload};

    fn tiny_cfg(threads: usize) -> BenchConfig {
        BenchConfig {
            threads,
            workload: Workload::Uniform,
            key_dist: KeyDistribution::uniform(16),
            prefill: 2_000,
            stop: StopCondition::Duration(Duration::from_millis(20)),
            reps: 2,
            seed: 11,
        }
    }

    #[test]
    fn reports_positive_throughput_for_every_queue() {
        for spec in [
            QueueSpec::Klsm(128),
            QueueSpec::Linden,
            QueueSpec::Spray,
            QueueSpec::MultiQueue(4),
            QueueSpec::GlobalLock,
        ] {
            let r = run_throughput(spec, &tiny_cfg(2));
            assert_eq!(r.per_rep_ops_per_sec.len(), 2);
            assert!(r.summary.mean > 0.0, "{spec} reported zero throughput");
        }
    }

    #[test]
    fn split_workload_runs() {
        let mut cfg = tiny_cfg(2);
        cfg.workload = Workload::Split;
        let r = run_throughput(QueueSpec::MultiQueue(4), &cfg);
        assert!(r.summary.mean > 0.0);
    }

    #[test]
    fn ops_per_thread_mode_counts_exactly() {
        let mut cfg = tiny_cfg(2);
        cfg.stop = StopCondition::OpsPerThread(1_000);
        cfg.reps = 1;
        let r = run_throughput(QueueSpec::GlobalLock, &cfg);
        // ops/s positive and finite; exact count is 2 × 1000 over the
        // measured window.
        assert!(r.summary.mean.is_finite() && r.summary.mean > 0.0);
    }

    #[test]
    fn ascending_keys_run() {
        let mut cfg = tiny_cfg(2);
        cfg.key_dist = KeyDistribution::ascending();
        let r = run_throughput(QueueSpec::Klsm(256), &cfg);
        assert!(r.summary.mean > 0.0);
    }

    #[test]
    fn last_rep_thread_ops_and_fairness_reported() {
        let mut cfg = tiny_cfg(2);
        cfg.stop = StopCondition::OpsPerThread(500);
        cfg.reps = 1;
        let r = run_throughput(QueueSpec::MultiQueue(4), &cfg);
        assert_eq!(r.last_rep_thread_ops.len(), 2);
        // Fixed-ops mode: both threads do exactly 500 ops → fairness 1.
        assert_eq!(r.last_rep_thread_ops, vec![500, 500]);
        assert_eq!(r.fairness(), 1.0);
    }

    #[test]
    fn last_rep_thread_ops_kept_for_every_rep() {
        let mut cfg = tiny_cfg(2);
        cfg.stop = StopCondition::OpsPerThread(400);
        cfg.reps = 3;
        let r = run_throughput(QueueSpec::MultiQueue(4), &cfg);
        assert_eq!(r.per_rep_thread_ops.len(), 3);
        for rep in &r.per_rep_thread_ops {
            assert_eq!(rep, &vec![400, 400]);
        }
        // Compatibility: the flat field still mirrors the last rep.
        assert_eq!(r.last_rep_thread_ops, r.per_rep_thread_ops[2]);
        assert_eq!(r.fairness_per_rep(), vec![1.0; 3]);
        assert_eq!(r.fairness_summary().mean, 1.0);
    }

    #[test]
    fn per_rep_thread_ops_reconcile_with_each_reps_total() {
        // Regression for the old `per_thread_ops` field, which silently
        // held only the last repetition while reading like an aggregate:
        // every repetition's per-thread counts must sum to that rep's
        // total (exact in fixed-ops mode), and the flat field must equal
        // the last rep — never a sum across reps.
        let mut cfg = tiny_cfg(3);
        cfg.stop = StopCondition::OpsPerThread(250);
        cfg.reps = 4;
        let r = run_throughput(QueueSpec::GlobalLock, &cfg);
        assert_eq!(r.per_rep_thread_ops.len(), 4);
        for (i, rep) in r.per_rep_thread_ops.iter().enumerate() {
            assert_eq!(rep.len(), 3, "rep {i} thread count");
            assert_eq!(rep.iter().sum::<u64>(), 3 * 250, "rep {i} total");
            // The tick series of the same rep never exceeds its total.
            assert!(r.per_rep_ticks[i].iter().sum::<u64>() <= 3 * 250);
        }
        let all_reps_sum: u64 = r
            .per_rep_thread_ops
            .iter()
            .flat_map(|rep| rep.iter())
            .sum();
        assert_eq!(all_reps_sum, 4 * 3 * 250);
        assert_eq!(
            r.last_rep_thread_ops.iter().sum::<u64>(),
            3 * 250,
            "last_rep_thread_ops is one rep, not an aggregate"
        );
        assert_eq!(r.last_rep_thread_ops, *r.per_rep_thread_ops.last().unwrap());
    }

    #[test]
    fn buffered_queue_conserves_items_across_window_flush() {
        // mq-sticky buffers up to m inserts per handle; the harness
        // flush at window end must commit them so nothing is lost.
        let mut cfg = tiny_cfg(2);
        cfg.stop = StopCondition::OpsPerThread(2_000);
        cfg.reps = 1;
        let r = run_throughput(QueueSpec::MqSticky(4, 8, 16), &cfg);
        assert!(r.summary.mean > 0.0);
    }

    #[test]
    fn time_sliced_series_has_expected_ticks() {
        // 100 ms window → 10 ms tick → ~10 ticks; require at least 5 so
        // the series is usable for drift detection, and check the series
        // never exceeds the total op count.
        let mut cfg = tiny_cfg(2);
        cfg.stop = StopCondition::Duration(Duration::from_millis(100));
        cfg.reps = 1;
        let r = run_throughput(QueueSpec::MultiQueue(4), &cfg);
        assert_eq!(r.tick_ms, 10.0);
        assert_eq!(r.per_rep_ticks.len(), 1);
        let ticks = &r.per_rep_ticks[0];
        assert!(ticks.len() >= 5, "only {} ticks in a 100ms window", ticks.len());
        let total: u64 = r.last_rep_thread_ops.iter().sum();
        assert!(ticks.iter().sum::<u64>() <= total);
        assert!(ticks.iter().any(|&t| t > 0), "all ticks empty");
    }

    #[test]
    fn tick_adapts_to_short_windows() {
        assert_eq!(
            tick_for(&StopCondition::Duration(Duration::from_millis(150))),
            Duration::from_millis(15)
        );
        // Clamped below and above.
        assert_eq!(
            tick_for(&StopCondition::Duration(Duration::from_millis(10))),
            Duration::from_millis(5)
        );
        assert_eq!(
            tick_for(&StopCondition::Duration(Duration::from_secs(10))),
            Duration::from_millis(100)
        );
        assert_eq!(
            tick_for(&StopCondition::OpsPerThread(1_000)),
            Duration::from_millis(10)
        );
    }

    #[test]
    fn aggregate_ticks_pads_short_series_with_totals() {
        // Thread 0 sampled three ticks; thread 1 finished after one.
        let series = vec![vec![10, 20, 30], vec![5]];
        let totals = vec![35, 8];
        // Cumulative: [15, 28, 38] → per-tick [15, 13, 10].
        assert_eq!(aggregate_ticks(&series, &totals), vec![15, 13, 10]);
        // No threads sampled anything → empty series.
        assert_eq!(aggregate_ticks(&[vec![], vec![]], &totals), Vec::<u64>::new());
    }

    #[test]
    fn run_throughput_with_matches_registry_shape() {
        let mut cfg = tiny_cfg(2);
        cfg.stop = StopCondition::OpsPerThread(500);
        cfg.reps = 2;
        let r = run_throughput_with(
            "custom-mq",
            || multiqueue_pq::MultiQueue::<seqpq::BinaryHeap>::new(2, 2),
            &cfg,
        );
        assert_eq!(r.queue, "custom-mq");
        assert_eq!(r.per_rep_ops_per_sec.len(), 2);
        assert!(r.summary.mean > 0.0);
        assert_eq!(r.last_rep_thread_ops, vec![500, 500]);
    }

    #[test]
    fn drift_ratio_flags_unsteady_windows() {
        let mk = |ticks: Vec<Vec<u64>>| ThroughputResult {
            queue: "x".into(),
            threads: 2,
            per_rep_ops_per_sec: vec![],
            summary: crate::Summary::of(&[]),
            last_rep_thread_ops: vec![],
            per_rep_thread_ops: vec![],
            tick_ms: 10.0,
            per_rep_ticks: ticks,
        };
        // Steady: ratio close to 1, no warning.
        let steady = mk(vec![vec![100, 95, 105, 100]]);
        assert!(steady.drift_ratio().unwrap() < 1.2);
        assert!(steady.steady_state_warning().is_none());
        // 3x decay between first and last tick: warn.
        let decaying = mk(vec![vec![300, 200, 150, 100]]);
        assert!((decaying.drift_ratio().unwrap() - 3.0).abs() < 1e-9);
        assert!(decaying.steady_state_warning().is_some());
        // Stalled final tick: infinite drift.
        let stalled = mk(vec![vec![300, 0]]);
        assert!(stalled.drift_ratio().unwrap().is_infinite());
        // Not enough ticks to compare.
        assert!(mk(vec![vec![42]]).drift_ratio().is_none());
        assert!(mk(vec![]).steady_state_warning().is_none());
    }

    #[test]
    fn fairness_of_empty_result_is_zero() {
        let r = ThroughputResult {
            queue: "x".into(),
            threads: 0,
            per_rep_ops_per_sec: vec![],
            summary: crate::Summary::of(&[]),
            last_rep_thread_ops: vec![],
            per_rep_thread_ops: vec![],
            tick_ms: 0.0,
            per_rep_ticks: vec![],
        };
        assert_eq!(r.fairness(), 0.0);
        assert!(r.fairness_per_rep().is_empty());
    }
}
