//! Measurement harness: throughput and quality (rank-error) benchmarks
//! over every queue in the workspace, with statistics.
//!
//! * [`registry`] — the set of benchmarked queues ("klsm128", "linden",
//!   "multiqueue", ...) and a static-dispatch macro to instantiate them.
//! * [`throughput`] — the paper's throughput benchmark: prefill, then
//!   count insert+delete operations completed in a fixed time window,
//!   repeated `reps` times, reporting mean and 95 % confidence interval.
//! * [`quality`] — the rank-error benchmark (appendix F): log every
//!   operation with a linearization timestamp, reconstruct the global
//!   sequence, replay it against an order-statistic treap and record the
//!   rank of every deleted item.
//! * [`latency`] — appendix F's throughput/latency switch: per-operation
//!   wall times with insert/delete percentile profiles.
//! * [`stats`] — mean / standard deviation / confidence intervals.
//! * [`experiments`] — the paper's experiment grid (figures 1–9, tables
//!   1–5) as named configurations, plus the hold-model and sorting
//!   extension cells.

#![warn(missing_docs)]

pub mod experiments;
pub mod latency;
pub mod quality;
pub mod registry;
pub mod stats;
pub mod throughput;

pub use experiments::Experiment;
pub use latency::{run_latency, LatencyProfile, LatencyResult};
pub use quality::{run_quality, QualityResult};
pub use registry::QueueSpec;
pub use stats::{Histogram, Summary};
pub use throughput::{run_throughput, run_throughput_with, ThroughputResult};
