//! The latency benchmark — appendix F's alternative to throughput:
//! "a number of queue operations could be prescribed, and the time
//! (latency) for this number and mix of operations measured."
//!
//! Every operation's wall time is recorded per thread; the result
//! reports percentiles separately for insertions and deletions, which
//! exposes effects throughput averages hide (e.g. the k-LSM's cheap
//! thread-local fast path vs. its expensive SLSM eviction slow path, or
//! the GlobalLock's fair-but-serial tail).

use std::sync::{Barrier, Mutex};
use std::time::Instant;

use pq_traits::{ConcurrentPq, PqHandle};
use workloads::config::StopCondition;
use workloads::{BenchConfig, KeyGen, OpKind, OpStream, ThreadRole};

use crate::registry::QueueSpec;
use crate::throughput::{PREFILL_TAG, VALUE_SHIFT};
use crate::with_queue;

/// Latency percentiles in nanoseconds.
#[derive(Clone, Copy, Debug, Default)]
pub struct LatencyProfile {
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Maximum observed.
    pub max: u64,
    /// Number of operations measured.
    pub n: usize,
}

impl LatencyProfile {
    fn of(mut samples: Vec<u64>) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        samples.sort_unstable();
        let pct = |p: f64| samples[((samples.len() - 1) as f64 * p) as usize];
        Self {
            p50: pct(0.5),
            p90: pct(0.9),
            p99: pct(0.99),
            max: *samples.last().expect("non-empty"),
            n: samples.len(),
        }
    }
}

impl std::fmt::Display for LatencyProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "p50 {}ns, p90 {}ns, p99 {}ns, max {}ns (n={})",
            self.p50, self.p90, self.p99, self.max, self.n
        )
    }
}

/// Result of one latency configuration.
#[derive(Clone, Debug)]
pub struct LatencyResult {
    /// Queue display name.
    pub queue: String,
    /// Worker thread count.
    pub threads: usize,
    /// Insertion latencies.
    pub insert: LatencyProfile,
    /// Deletion latencies (successful and empty deletions alike).
    pub delete: LatencyProfile,
}

/// Run the latency benchmark: a fixed per-thread operation budget
/// (duration-based configs are converted to 20k ops/thread), timing each
/// operation individually.
pub fn run_latency(spec: QueueSpec, cfg: &BenchConfig) -> LatencyResult {
    let ops_per_thread = match cfg.stop {
        StopCondition::OpsPerThread(n) => n,
        StopCondition::Duration(_) => 20_000,
    };
    let (ins, del) = with_queue!(spec, cfg.threads, q => measure(&q, cfg, ops_per_thread));
    LatencyResult {
        queue: spec.name(),
        threads: cfg.threads,
        insert: LatencyProfile::of(ins),
        delete: LatencyProfile::of(del),
    }
}

fn measure<Q: ConcurrentPq>(
    q: &Q,
    cfg: &BenchConfig,
    ops_per_thread: u64,
) -> (Vec<u64>, Vec<u64>) {
    let prefill_items = cfg.prefill_items(PREFILL_TAG);
    let threads = cfg.threads;
    let barrier = Barrier::new(threads + 1);
    let all: Mutex<(Vec<u64>, Vec<u64>)> = Mutex::new((Vec::new(), Vec::new()));

    std::thread::scope(|scope| {
        for t in 0..threads {
            let chunk_lo = t * prefill_items.len() / threads;
            let chunk_hi = (t + 1) * prefill_items.len() / threads;
            let prefill = &prefill_items[chunk_lo..chunk_hi];
            let barrier = &barrier;
            let all = &all;
            scope.spawn(move || {
                let mut h = q.handle();
                for it in prefill {
                    h.insert(it.key, it.value);
                }
                let role = ThreadRole::for_thread(cfg.workload, t, threads);
                let mut ops = OpStream::new(role, cfg.seed, t as u64);
                let mut keys = KeyGen::new(cfg.key_dist, cfg.seed, t as u64);
                let mut next_value = (t as u64) << VALUE_SHIFT;
                let mut ins = Vec::with_capacity(ops_per_thread as usize / 2 + 1);
                let mut del = Vec::with_capacity(ops_per_thread as usize / 2 + 1);
                barrier.wait();
                barrier.wait();
                for _ in 0..ops_per_thread {
                    match ops.next_op() {
                        OpKind::Insert => {
                            let key = keys.next_key();
                            let started = Instant::now();
                            h.insert(key, next_value);
                            ins.push(started.elapsed().as_nanos() as u64);
                            next_value += 1;
                        }
                        OpKind::DeleteMin => {
                            let started = Instant::now();
                            let item = h.delete_min();
                            del.push(started.elapsed().as_nanos() as u64);
                            if let Some(item) = item {
                                keys.observe_delete(item.key);
                            }
                        }
                    }
                }
                // Commit buffered operations outside the measured ops.
                h.flush();
                let mut guard = all.lock().unwrap();
                guard.0.extend(ins);
                guard.1.extend(del);
            });
        }
        barrier.wait();
        barrier.wait();
    });

    all.into_inner().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::{KeyDistribution, Workload};

    fn cfg(threads: usize) -> BenchConfig {
        BenchConfig {
            threads,
            workload: Workload::Uniform,
            key_dist: KeyDistribution::uniform(16),
            prefill: 2_000,
            stop: StopCondition::OpsPerThread(2_000),
            reps: 1,
            seed: 5,
        }
    }

    #[test]
    fn latency_profiles_are_populated() {
        let r = run_latency(QueueSpec::GlobalLock, &cfg(2));
        assert!(r.insert.n > 0 && r.delete.n > 0);
        assert!(r.insert.p50 > 0);
        assert!(r.insert.p50 <= r.insert.p90);
        assert!(r.insert.p90 <= r.insert.p99);
        assert!(r.insert.p99 <= r.insert.max);
    }

    #[test]
    fn klsm_insert_fast_path_beats_globallock_median() {
        // Thread-local insertion should have a very low median compared
        // to anything taking a shared lock... on a time-sliced host we
        // only assert both are measured and sane.
        let k = run_latency(QueueSpec::Klsm(256), &cfg(2));
        assert!(k.insert.n > 0);
        assert!(k.insert.p50 < 1_000_000, "median insert above 1ms is wrong");
    }

    #[test]
    fn profile_of_empty_is_zero() {
        let p = LatencyProfile::of(vec![]);
        assert_eq!(p.n, 0);
        assert_eq!(p.max, 0);
    }

    #[test]
    fn profile_percentiles_of_known_sample() {
        let p = LatencyProfile::of((1..=100).collect());
        assert_eq!(p.p50, 50);
        assert_eq!(p.p90, 90);
        assert_eq!(p.p99, 99);
        assert_eq!(p.max, 100);
        assert_eq!(p.n, 100);
    }
}
