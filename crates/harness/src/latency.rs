//! The latency benchmark — appendix F's alternative to throughput:
//! "a number of queue operations could be prescribed, and the time
//! (latency) for this number and mix of operations measured."
//!
//! Every operation's wall time is recorded into a per-thread
//! log-bucketed [`Histogram`] (merged at the end), so memory use is
//! constant in the operation count while percentiles stay within ~3 %
//! of exact. The result reports percentiles separately for insertions
//! and deletions, which exposes effects throughput averages hide (e.g.
//! the k-LSM's cheap thread-local fast path vs. its expensive SLSM
//! eviction slow path, or the GlobalLock's fair-but-serial tail).

use std::sync::{Barrier, Mutex};
use std::time::Instant;

use pq_traits::trace::{self, PhaseKind, SpanOp};
use pq_traits::{ConcurrentPq, PqHandle};
use workloads::config::StopCondition;
use workloads::{BenchConfig, KeyGen, OpKind, OpStream, ThreadRole};

use crate::registry::QueueSpec;
use crate::stats::Histogram;
use crate::throughput::{PREFILL_TAG, VALUE_SHIFT};
use crate::with_queue;

/// Latency percentiles in nanoseconds, extracted from a [`Histogram`]
/// (within its ~3 % bucket resolution; `max` is exact).
#[derive(Clone, Copy, Debug, Default)]
pub struct LatencyProfile {
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// Maximum observed (exact).
    pub max: u64,
    /// Number of operations measured.
    pub n: usize,
}

impl LatencyProfile {
    /// Extract the standard percentile set from a histogram.
    pub fn from_histogram(h: &Histogram) -> Self {
        Self {
            p50: h.percentile(0.5),
            p90: h.percentile(0.9),
            p99: h.percentile(0.99),
            p999: h.percentile(0.999),
            max: h.max(),
            n: h.count() as usize,
        }
    }
}

impl std::fmt::Display for LatencyProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "p50 {}ns, p90 {}ns, p99 {}ns, p99.9 {}ns, max {}ns (n={})",
            self.p50, self.p90, self.p99, self.p999, self.max, self.n
        )
    }
}

/// Result of one latency configuration.
#[derive(Clone, Debug)]
pub struct LatencyResult {
    /// Queue display name.
    pub queue: String,
    /// Worker thread count.
    pub threads: usize,
    /// Insertion latencies.
    pub insert: LatencyProfile,
    /// Deletion latencies (successful and empty deletions alike).
    pub delete: LatencyProfile,
    /// Full insertion-latency histogram (merged over threads).
    pub insert_hist: Histogram,
    /// Full deletion-latency histogram (merged over threads).
    pub delete_hist: Histogram,
}

/// Run the latency benchmark: a fixed per-thread operation budget
/// (duration-based configs are converted to 20k ops/thread), timing each
/// operation individually.
pub fn run_latency(spec: QueueSpec, cfg: &BenchConfig) -> LatencyResult {
    let ops_per_thread = match cfg.stop {
        StopCondition::OpsPerThread(n) => n,
        StopCondition::Duration(_) => 20_000,
    };
    let (ins, del) = with_queue!(spec, cfg.threads, q => measure(&q, cfg, ops_per_thread));
    LatencyResult {
        queue: spec.name(),
        threads: cfg.threads,
        insert: LatencyProfile::from_histogram(&ins),
        delete: LatencyProfile::from_histogram(&del),
        insert_hist: ins,
        delete_hist: del,
    }
}

fn measure<Q: ConcurrentPq>(
    q: &Q,
    cfg: &BenchConfig,
    ops_per_thread: u64,
) -> (Histogram, Histogram) {
    let prefill_items = cfg.prefill_items(PREFILL_TAG);
    let threads = cfg.threads;
    let barrier = Barrier::new(threads + 1);
    let merged: Mutex<(Histogram, Histogram)> =
        Mutex::new((Histogram::new(), Histogram::new()));

    std::thread::scope(|scope| {
        for t in 0..threads {
            let chunk_lo = t * prefill_items.len() / threads;
            let chunk_hi = (t + 1) * prefill_items.len() / threads;
            let prefill = &prefill_items[chunk_lo..chunk_hi];
            let barrier = &barrier;
            let merged = &merged;
            scope.spawn(move || {
                let mut h = q.handle();
                for it in prefill {
                    h.insert(it.key, it.value);
                }
                let role = ThreadRole::for_thread(cfg.workload, t, threads);
                let mut ops = OpStream::new(role, cfg.seed, t as u64);
                let mut keys = KeyGen::new(cfg.key_dist, cfg.seed, t as u64);
                let mut next_value = (t as u64) << VALUE_SHIFT;
                let mut ins = Histogram::new();
                let mut del = Histogram::new();
                barrier.wait();
                barrier.wait();
                // Flight recorder: this harness already timestamps every
                // operation, so (unlike the throughput loop) spans are
                // recorded per op, reusing the existing clock reads plus
                // one `elapsed` re-read per traced op.
                let tracing = trace::active();
                let anchor = trace::Anchor::at(Instant::now());
                for _ in 0..ops_per_thread {
                    match ops.next_op() {
                        OpKind::Insert => {
                            let key = keys.next_key();
                            let started = Instant::now();
                            h.insert(key, next_value);
                            let dur = started.elapsed().as_nanos() as u64;
                            ins.record(dur);
                            if tracing {
                                let begin = anchor.ns_at(started);
                                trace::span(SpanOp::Insert, begin, begin + dur, 1);
                            }
                            next_value += 1;
                        }
                        OpKind::DeleteMin => {
                            let started = Instant::now();
                            let item = h.delete_min();
                            let dur = started.elapsed().as_nanos() as u64;
                            del.record(dur);
                            if tracing {
                                let begin = anchor.ns_at(started);
                                trace::span(SpanOp::DeleteMin, begin, begin + dur, 1);
                            }
                            if let Some(item) = item {
                                keys.observe_delete(item.key);
                            }
                        }
                    }
                }
                // Commit buffered operations outside the measured ops.
                let flush_begin = if tracing {
                    anchor.ns_at(Instant::now())
                } else {
                    0
                };
                h.flush();
                if tracing {
                    trace::span(SpanOp::Flush, flush_begin, anchor.ns_at(Instant::now()), 1);
                }
                let mut guard = merged.lock().unwrap();
                guard.0.merge(&ins);
                guard.1.merge(&del);
            });
        }
        trace::phase(PhaseKind::Prefill, 0);
        barrier.wait();
        trace::phase(PhaseKind::Measure, 0);
        barrier.wait();
    });
    trace::phase(PhaseKind::RepEnd, 0);

    merged.into_inner().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::{KeyDistribution, Workload};

    fn cfg(threads: usize) -> BenchConfig {
        BenchConfig {
            threads,
            workload: Workload::Uniform,
            key_dist: KeyDistribution::uniform(16),
            prefill: 2_000,
            stop: StopCondition::OpsPerThread(2_000),
            reps: 1,
            seed: 5,
        }
    }

    #[test]
    fn latency_profiles_are_populated() {
        let r = run_latency(QueueSpec::GlobalLock, &cfg(2));
        assert!(r.insert.n > 0 && r.delete.n > 0);
        assert!(r.insert.p50 > 0);
        assert!(r.insert.p50 <= r.insert.p90);
        assert!(r.insert.p90 <= r.insert.p99);
        assert!(r.insert.p99 <= r.insert.p999);
        assert!(r.insert.p999 <= r.insert.max);
        // The exported histograms carry the same sample counts.
        assert_eq!(r.insert_hist.count() as usize, r.insert.n);
        assert_eq!(r.delete_hist.count() as usize, r.delete.n);
    }

    #[test]
    fn klsm_insert_fast_path_beats_globallock_median() {
        // Thread-local insertion should have a very low median compared
        // to anything taking a shared lock... on a time-sliced host we
        // only assert both are measured and sane.
        let k = run_latency(QueueSpec::Klsm(256), &cfg(2));
        assert!(k.insert.n > 0);
        assert!(k.insert.p50 < 1_000_000, "median insert above 1ms is wrong");
    }

    #[test]
    fn profile_of_empty_is_zero() {
        let p = LatencyProfile::from_histogram(&Histogram::new());
        assert_eq!(p.n, 0);
        assert_eq!(p.max, 0);
    }

    #[test]
    fn profile_percentiles_of_known_sample() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let p = LatencyProfile::from_histogram(&h);
        // Values below 64 are bucketed exactly; beyond that the answer
        // is within one sub-bucket (~3 %) of the sorted-sample result.
        assert_eq!(p.p50, 50);
        assert_eq!(p.p90, 90);
        assert!(p.p99.abs_diff(99) <= 3, "p99 = {}", p.p99);
        assert_eq!(p.max, 100);
        assert_eq!(p.n, 100);
    }
}
