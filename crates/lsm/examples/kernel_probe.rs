//! Developer probe for the branch-free kernel tiers: times the raw
//! kernels against their scalar counterparts, plus whole-queue
//! steady/sawtooth loops with kernels on vs. off. Not part of the
//! published bench — `lsm_kernels` in the bench crate is the gated one.
//!
//! ```text
//! cargo run -p lsm --release --example kernel_probe
//! ```

use std::time::Instant;

use lsm::{kernels, simd, BlockPool, KernelTier, Lsm};
use pq_traits::{Item, SequentialPq};

fn next_key(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

fn sorted_run(n: usize, rng: &mut u64) -> Vec<Item> {
    let mut v: Vec<Item> = (0..n).map(|_| Item::new(next_key(rng), 0)).collect();
    v.sort_unstable();
    v
}

fn time<F: FnMut()>(label: &str, iters: usize, mut f: F) -> f64 {
    // Warmup.
    f();
    let mut best = f64::MAX;
    for _ in 0..5 {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(t.elapsed().as_secs_f64() / iters as f64);
    }
    println!("  {label}: {:.1} ns", best * 1e9);
    best
}

fn bench_merge(n: usize, rng: &mut u64) {
    println!("merge {n}+{n}:");
    let a = sorted_run(n, rng);
    let b = sorted_run(n, rng);
    let mut pool = BlockPool::new();
    let mut out: Vec<Item> = Vec::with_capacity(2 * n);
    let scalar = time("scalar ", 1000, || {
        out.clear();
        kernels::scalar_merge_append(&a, &b, &mut out);
        std::hint::black_box(&out);
    });
    let chunked = time("chunked", 1000, || {
        out.clear();
        kernels::merge_bitonic_chunked(&a, &b, &mut out, &mut pool, KernelTier::Scalar);
        std::hint::black_box(&out);
    });
    let bidi = time("bidi   ", 1000, || {
        out.clear();
        kernels::merge_bidirectional_append(&a, &b, &mut out);
        std::hint::black_box(&out);
    });
    println!(
        "  -> chunked/scalar: {:.3}x, bidi/scalar: {:.3}x",
        scalar / chunked,
        scalar / bidi
    );
    for tier in KernelTier::available_tiers() {
        if !tier.merge_viable(a.len(), b.len()) {
            continue;
        }
        let t = time(tier.name(), 1000, || {
            out.clear();
            simd::merge_simd_append(tier, &a, &b, &mut out);
            std::hint::black_box(&out);
        });
        println!("  -> {}/bidi: {:.3}x", tier.name(), bidi / t);
    }
}

fn bench_argmin(n: usize, rng: &mut u64) {
    println!("argmin {n}:");
    let v: Vec<Item> = (0..n).map(|_| Item::new(next_key(rng), 0)).collect();
    let keys: Vec<u64> = v.iter().map(|it| it.key).collect();
    let mut base = f64::MAX;
    for tier in KernelTier::available_tiers() {
        let t = time(tier.name(), 100_000, || {
            std::hint::black_box(simd::argmin_forced(
                tier,
                std::hint::black_box(&keys),
                std::hint::black_box(&v),
            ));
        });
        if tier == KernelTier::Scalar {
            base = t;
        } else {
            println!("  -> {}/scalar: {:.3}x", tier.name(), base / t);
        }
    }
}

fn bench_small_sort(n: usize, rng: &mut u64) {
    println!("sort {n}:");
    let src: Vec<Item> = (0..n).map(|_| Item::new(next_key(rng), 0)).collect();
    let mut buf = src.clone();
    let std_t = time("std    ", 10_000, || {
        buf.copy_from_slice(&src);
        buf.sort_unstable();
        std::hint::black_box(&buf);
    });
    for tier in KernelTier::available_tiers() {
        let net_t = time(tier.name(), 10_000, || {
            buf.copy_from_slice(&src);
            kernels::sort_items_tier(&mut buf, tier);
            std::hint::black_box(&buf);
        });
        println!("  -> {}/std: {:.3}x", tier.name(), std_t / net_t);
    }
}

fn bench_small_merge(la: usize, lb: usize, rng: &mut u64) {
    println!("small merge {la}+{lb}:");
    let a = sorted_run(la, rng);
    let b = sorted_run(lb, rng);
    let mut out: Vec<Item> = Vec::with_capacity(la + lb);
    let scalar = time("scalar ", 10_000, || {
        out.clear();
        kernels::scalar_merge_append(&a, &b, &mut out);
        std::hint::black_box(&out);
    });
    if la + lb <= kernels::NETWORK_MAX_CAP {
        let net = time("network", 10_000, || {
            out.clear();
            kernels::merge_network_into(&a, &b, &mut out, KernelTier::Scalar);
            std::hint::black_box(&out);
        });
        println!("  -> network/scalar: {:.3}x", scalar / net);
    }
    let bidi = time("bidi   ", 10_000, || {
        out.clear();
        kernels::merge_bidirectional_append(&a, &b, &mut out);
        std::hint::black_box(&out);
    });
    println!("  -> bidi/scalar: {:.3}x", scalar / bidi);
    for tier in KernelTier::available_tiers() {
        if !tier.merge_viable(la, lb) {
            continue;
        }
        let t = time(tier.name(), 10_000, || {
            out.clear();
            simd::merge_simd_append(tier, &a, &b, &mut out);
            std::hint::black_box(&out);
        });
        println!("  -> {}/scalar: {:.3}x", tier.name(), scalar / t);
    }
}

fn chunk_steady(q: &mut Lsm, pairs: usize, rng: &mut u64) -> std::time::Duration {
    let t = Instant::now();
    for _ in 0..pairs {
        q.insert(next_key(rng), 0);
        std::hint::black_box(q.delete_min());
    }
    t.elapsed()
}

fn chunk_saw(q: &mut Lsm, pairs: usize, burst: usize, rng: &mut u64) -> std::time::Duration {
    let t = Instant::now();
    let mut left = pairs;
    while left > 0 {
        let b = burst.min(left);
        for _ in 0..b {
            q.insert(next_key(rng), 0);
        }
        for _ in 0..b {
            std::hint::black_box(q.delete_min());
        }
        left -= b;
    }
    t.elapsed()
}

/// Interleaved min-of-chunks A/B of two queue configurations, the same
/// methodology as the gated bench binary.
fn bench_queue_ab(mut on: Lsm, mut off: Lsm, size: usize, pairs: usize, seed: u64) -> (f64, f64) {
    const ROUNDS: usize = 12;
    let (mut r_on, mut r_off) = (seed, seed);
    for _ in 0..size {
        on.insert(next_key(&mut r_on), 0);
        off.insert(next_key(&mut r_off), 0);
    }
    let chunk = (pairs / ROUNDS).max(1);
    let mut best = [std::time::Duration::MAX; 4];
    for _ in 0..ROUNDS {
        best[0] = best[0].min(chunk_steady(&mut on, chunk, &mut r_on));
        best[1] = best[1].min(chunk_steady(&mut off, chunk, &mut r_off));
        best[2] = best[2].min(chunk_saw(&mut on, chunk, size, &mut r_on));
        best[3] = best[3].min(chunk_saw(&mut off, chunk, size, &mut r_off));
    }
    let rate = |d: std::time::Duration| chunk as f64 / d.as_secs_f64();
    let (s_on, s_off, w_on, w_off) = (rate(best[0]), rate(best[1]), rate(best[2]), rate(best[3]));
    println!(
        "  steady on {:.3} M/s off {:.3} M/s -> {:.3}x",
        s_on / 1e6,
        s_off / 1e6,
        s_on / s_off
    );
    println!(
        "  sawtooth on {:.3} M/s off {:.3} M/s -> {:.3}x",
        w_on / 1e6,
        w_off / 1e6,
        w_on / w_off
    );
    (s_on / s_off, w_on / w_off)
}

fn main() {
    let mut rng = 0xC0FFEEu64;
    for n in [64usize, 512, 4096] {
        bench_merge(n, &mut rng);
    }
    for n in [8usize, 16, 32] {
        bench_small_sort(n, &mut rng);
    }
    for (la, lb) in [(2usize, 2usize), (4, 4), (8, 8), (16, 16), (16, 8), (32, 32)] {
        bench_small_merge(la, lb, &mut rng);
    }
    for n in [13usize, 16, 33, 64, 128, 256] {
        bench_argmin(n, &mut rng);
    }
    println!("whole queue kernels on/off (size 8192, interleaved A/B):");
    let (s, w) = bench_queue_ab(
        Lsm::new(),
        Lsm::with_kernels_disabled(),
        8192,
        2_400_000,
        0xAB5EED,
    );
    println!("  -> geomean {:.3}x", (s * w).sqrt());
    for size in [8192usize, 100_000, 1 << 20] {
        println!(
            "whole queue {} vs simd-off (size {size}, interleaved A/B):",
            simd::active_tier().name()
        );
        let (s, w) = bench_queue_ab(
            Lsm::new(),
            Lsm::with_simd_disabled(),
            size,
            2_400_000,
            0xAB5EED,
        );
        println!("  -> geomean {:.3}x", (s * w).sqrt());
    }
    #[cfg(feature = "telemetry")]
    {
        use pq_traits::telemetry::{snapshot, Event};
        let counts = snapshot();
        println!("telemetry (whole run):");
        for ev in Event::ALL {
            let c = counts.get(ev);
            if c > 0 {
                println!("  {}: {c}", ev.name());
            }
        }
    }
}
