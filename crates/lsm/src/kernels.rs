//! Branch-free small-block kernels: sorting networks, bitonic and
//! bidirectional merges, and a k-way loser tree.
//!
//! PR 4 made the LSM merge path allocation-free; what remains in the hot
//! loops is element-at-a-time compare work. This module provides
//! data-independent replacements; the subset that *measured* faster than
//! the (already branchless) scalar kernels forms the production path:
//!
//! * **Bidirectional two-chain merge** ([`merge_bidirectional_append`]):
//!   the production pairwise merge from [`MERGE_PATH_MIN`] combined
//!   items up ([`crate::Block::merge_with`]). Two independent
//!   merge chains — one from the fronts, one from the backs — run
//!   interleaved inside a joint safe window, doubling the
//!   instruction-level parallelism of the latency-chain-bound scalar
//!   cursor merge. 1.2–1.9× on every measured shape from 4+4 up.
//! * **k-way loser tree** ([`k_way_merge_into`]): drains `k` sorted
//!   runs in one `O(total · log k)` pass — one comparison per tree
//!   level per emitted item — replacing the `O(total · k)`
//!   repeated-pairwise head scan in `take_all_sorted`. Tree state lives
//!   in a pooled scratch buffer plus fixed stack arrays.
//! * **Branchless head argmin** ([`argmin`]): conditional-move scan of
//!   the dense block-minima mirror, used by `delete_min`.
//! * **Sorting networks** ([`sort_items`], [`NETWORK_MAX_CAP`]):
//!   Batcher odd-even merge-sort networks over packed lanes,
//!   monomorphized per power-of-two size class (2..=32); the
//!   compare-exchange schedule depends only on indices, so every
//!   comparison compiles to conditional moves. Used for small batch
//!   sorting in `from_items`.
//!
//! Two further tiers — the tier-1 merge network ([`merge_network_into`])
//! and the chunked bitonic merge ([`merge_bitonic_chunked`], after
//! Chhugani et al.; see also arXiv:2504.11652) — measured *slower* than
//! the scalar cursor merge on the benched hardware (see EXPERIMENTS.md
//! "Branch-free kernel ablation" for numbers and the predictor-
//! memorization measurement caveat). They are kept fully tested and
//! telemetered as ablation arms, not dispatched on the production path.
//!
//! All kernels are allocation-free under the [`crate::BlockPool`]:
//! network buffers are fixed stack arrays, the loser tree's head mirror
//! is drawn from the pool, and outputs are written into pool-drawn
//! buffers. Kernel selection is observable through the
//! `lsm_kernel_network_hits` / `lsm_kernel_bitonic_hits` /
//! `lsm_kernel_bidi_hits` / `lsm_kernel_losertree_passes` telemetry
//! counters, and every kernel `debug_assert!`s the sortedness of its
//! output in debug builds.
//!
//! The cutoff constants below are the single source of truth; call sites
//! must reference them instead of repeating the numbers.

use crate::pool::BlockPool;
use crate::simd::{self, KernelTier};
use pq_traits::{telemetry, Item};

/// Largest combined block size handled by the tier-1 sorting/merging
/// networks. Chosen so the padded network buffer (32 × 16-byte items =
/// 512 B) stays inside L1 and the deepest network (Batcher over 32) is
/// still cheap; the `lsm_kernels` bench ablation (EXPERIMENTS.md
/// "Branch-free kernel ablation") backs this cutoff.
pub const NETWORK_MAX_CAP: usize = 32;

/// Items per refill chunk of the tier-2 bitonic merge: 8 items × 16 B =
/// two cache lines per load, a 16-element (four-stage) merge network per
/// emitted chunk. Both inputs must hold at least one full chunk or the
/// merge falls back to the scalar cursor kernel.
pub const BITONIC_CHUNK: usize = 8;

/// Stack buffer width of the tier-2 merge network (two chunks).
const BITONIC_BUF: usize = 2 * BITONIC_CHUNK;

/// Smallest combined size routed to the tier-2b bidirectional merge
/// ([`merge_bidirectional_append`]). The two-chain kernel wins on every
/// measured shape from 4+4 up (1.2–1.9× over the scalar cursor merge,
/// see EXPERIMENTS.md "Branch-free kernel ablation"); below this the
/// per-call window bookkeeping doesn't amortize and the scalar cursor
/// kernel is used. The tier-1 merge network and the tier-2 chunked
/// bitonic kernel measured *slower* than the already-branchless scalar
/// merge on the benched hardware, so they are kept (tested, telemetered)
/// as ablation arms rather than on the production merge path.
pub const MERGE_PATH_MIN: usize = 8;

/// Maximum fan-in of the loser tree: an LSM holds at most
/// `⌈log₂ n⌉ + 1 = 65` blocks on a 64-bit machine.
pub(crate) const MAX_FANOUT: usize = usize::BITS as usize + 1;

/// Loser-tree node capacity: [`MAX_FANOUT`] rounded up to a power of two.
const TREE_CAP: usize = MAX_FANOUT.next_power_of_two();

/// Padding value for network buffers and exhausted loser-tree runs.
/// A *real* item may compare equal to the sentinel; every kernel below
/// remains correct in that case because equal items are bit-identical
/// `Copy` data — emitting the sentinel copy instead of the real item
/// yields the same output bytes.
pub(crate) const SENTINEL: Item = Item::new(u64::MAX, u64::MAX);

/// Network lane: an [`Item`] packed as `(key << 64) | value`, so the
/// `(key, value)` lexicographic order becomes a single `u128` compare
/// and a compare-exchange is two integer-register conditional-move
/// pairs instead of a two-field struct compare the backend may lower to
/// branches. Packing costs one shift+or per loaded item, unpacking one
/// shift per emitted item — both off the critical compare path.
pub(crate) type Lane = u128;

/// [`SENTINEL`] in packed form (`u128::MAX`).
const LANE_MAX: Lane = Lane::MAX;

#[inline(always)]
fn pack(it: Item) -> Lane {
    ((it.key as Lane) << 64) | it.value as Lane
}

#[inline(always)]
fn unpack(lane: Lane) -> Item {
    Item::new((lane >> 64) as u64, lane as u64)
}

/// Branchless compare-exchange: after the call `buf[i] <= buf[j]`.
/// The order of operands depends only on the data values, not on any
/// branch — LLVM lowers the two selects to conditional moves.
#[inline(always)]
fn cex(buf: &mut [Lane], i: usize, j: usize) {
    debug_assert!(i < j);
    let a = buf[i];
    let b = buf[j];
    buf[i] = a.min(b);
    buf[j] = a.max(b);
}

/// Batcher odd-even merge-sort network over a fixed power-of-two size.
/// The `(p, k, j)` schedule is data-independent; for const `N` the
/// compiler monomorphizes (and largely unrolls) one network per size
/// class. The scalar tier runs the PR 5 per-element loop unchanged; the
/// SIMD tiers feed the same schedule through [`simd::cex_span`], whose
/// disjointness requirement the schedule satisfies because every span
/// is capped at `k` (all low indices land in `[j, j+k)`, all high in
/// `[j+k, j+2k)`).
fn batcher_sort<const N: usize>(buf: &mut [Lane; N], tier: KernelTier) {
    debug_assert!(N.is_power_of_two());
    if tier == KernelTier::Scalar {
        let mut p = 1;
        while p < N {
            let mut k = p;
            while k >= 1 {
                let mut j = k % p;
                while j + k < N {
                    let span = k.min(N - j - k);
                    for i in 0..span {
                        if (i + j) / (2 * p) == (i + j + k) / (2 * p) {
                            cex(buf, i + j, i + j + k);
                        }
                    }
                    j += 2 * k;
                }
                k /= 2;
            }
            p *= 2;
        }
        return;
    }
    let mut p = 1;
    while p < N {
        let mut k = p;
        while k >= 1 {
            let mut j = k % p;
            while j + k < N {
                let span = k.min(N - j - k);
                // The guard `(t)/(2p) == (t+k)/(2p)` holds exactly when
                // `t mod 2p < 2p - k`; over a window of length ≤ k ≤ p
                // it flips at most once per 2p boundary, so the valid
                // indices form contiguous runs that map onto vector
                // compare-exchange spans.
                let mut i = 0;
                while i < span {
                    let t = j + i;
                    let r = t % (2 * p);
                    if r < 2 * p - k {
                        let run = span.min(i + (2 * p - k - r)) - i;
                        simd::cex_span(tier, buf, t, t + k, run);
                        i += run;
                    } else {
                        i += 2 * p - r;
                    }
                }
                j += 2 * k;
            }
            k /= 2;
        }
        p *= 2;
    }
}

/// Bitonic merge network: sorts a bitonic sequence (ascending run
/// followed by a descending run) of fixed power-of-two length ascending.
/// `log₂ N` stages of `N/2` independent compare-exchanges each. The
/// scalar tier runs the PR 5 per-element loop unchanged; the SIMD tiers
/// run each stage as `N/2k` disjoint compare-exchange spans of length
/// `k` (pairs `(i, i+k)` for `i` in a `k`-aligned block).
fn bitonic_merge_pow2<const N: usize>(buf: &mut [Lane; N], tier: KernelTier) {
    debug_assert!(N.is_power_of_two());
    if tier == KernelTier::Scalar {
        let mut k = N / 2;
        while k >= 1 {
            let mut i = 0;
            while i < N {
                cex(buf, i, i + k);
                i += 1;
                // Skip to the next pair block once the low `k` indices of
                // this one are exhausted (index arithmetic only).
                if i & k != 0 {
                    i += k;
                }
            }
            k /= 2;
        }
        return;
    }
    let mut k = N / 2;
    while k >= 1 {
        let mut i = 0;
        while i < N {
            simd::cex_span(tier, buf, i, i + k, k);
            i += 2 * k;
        }
        k /= 2;
    }
}

/// Run the monomorphized Batcher network matching `n`'s size class over
/// the first `next_power_of_two(n)` slots of `buf`.
#[inline]
fn batcher_dispatch(buf: &mut [Lane; NETWORK_MAX_CAP], n: usize, tier: KernelTier) {
    debug_assert!(n <= NETWORK_MAX_CAP);
    match n.next_power_of_two().max(2) {
        2 => batcher_sort::<2>((&mut buf[..2]).try_into().expect("size 2"), tier),
        4 => batcher_sort::<4>((&mut buf[..4]).try_into().expect("size 4"), tier),
        8 => batcher_sort::<8>((&mut buf[..8]).try_into().expect("size 8"), tier),
        16 => batcher_sort::<16>((&mut buf[..16]).try_into().expect("size 16"), tier),
        _ => batcher_sort::<32>(buf, tier),
    }
}

/// Run the monomorphized bitonic merge network matching `n`'s size class.
#[inline]
fn bitonic_dispatch(buf: &mut [Lane; NETWORK_MAX_CAP], n: usize, tier: KernelTier) {
    debug_assert!(n <= NETWORK_MAX_CAP);
    match n.next_power_of_two().max(2) {
        2 => bitonic_merge_pow2::<2>((&mut buf[..2]).try_into().expect("size 2"), tier),
        4 => bitonic_merge_pow2::<4>((&mut buf[..4]).try_into().expect("size 4"), tier),
        8 => bitonic_merge_pow2::<8>((&mut buf[..8]).try_into().expect("size 8"), tier),
        16 => bitonic_merge_pow2::<16>((&mut buf[..16]).try_into().expect("size 16"), tier),
        _ => bitonic_merge_pow2::<32>(buf, tier),
    }
}

/// Sort up to [`NETWORK_MAX_CAP`] items in place through the sorting
/// network of their size class. Items are staged — packed — through a
/// sentinel-padded stack buffer so the network always runs at its full
/// class width.
pub(crate) fn sort_network(items: &mut [Item], tier: KernelTier) {
    let n = items.len();
    debug_assert!(n <= NETWORK_MAX_CAP);
    if n <= 1 {
        return;
    }
    telemetry::record_quiet(telemetry::Event::LsmKernelNetworkHit);
    if tier != KernelTier::Scalar {
        telemetry::record_quiet(telemetry::Event::LsmKernelSimdCexHit);
    }
    let mut buf = [LANE_MAX; NETWORK_MAX_CAP];
    for (lane, &it) in buf.iter_mut().zip(items.iter()) {
        *lane = pack(it);
    }
    batcher_dispatch(&mut buf, n, tier);
    for (it, &lane) in items.iter_mut().zip(buf.iter()) {
        *it = unpack(lane);
    }
    debug_assert!(items.windows(2).all(|w| w[0] <= w[1]));
}

/// Sort a batch of items: the tier-1 network for small batches,
/// `sort_unstable` beyond the network cutoff. `Item`'s total order over
/// `(key, seq)` makes stability moot — equal items are bit-identical.
/// Runs the process-wide [`simd::active_tier`]; queue internals that
/// carry an instance tier use [`sort_items_tier`].
pub fn sort_items(items: &mut [Item]) {
    sort_items_tier(items, simd::active_tier());
}

/// [`sort_items`] at an explicit kernel tier.
pub fn sort_items_tier(items: &mut [Item], tier: KernelTier) {
    if items.len() <= NETWORK_MAX_CAP {
        sort_network(items, tier);
    } else {
        items.sort_unstable();
    }
}

/// Tier-1 merge of two sorted runs with `a.len() + b.len() <=`
/// [`NETWORK_MAX_CAP`], appended to `out`. The runs are staged as a
/// bitonic sequence — `a` ascending, sentinel padding, `b` reversed —
/// and a single bitonic merge network of the combined size class sorts
/// them with no data-dependent branches at all.
pub fn merge_network_into(a: &[Item], b: &[Item], out: &mut Vec<Item>, tier: KernelTier) {
    let total = a.len() + b.len();
    debug_assert!(0 < total && total <= NETWORK_MAX_CAP);
    debug_assert!(a.windows(2).all(|w| w[0] <= w[1]));
    debug_assert!(b.windows(2).all(|w| w[0] <= w[1]));
    telemetry::record_quiet(telemetry::Event::LsmKernelNetworkHit);
    if tier != KernelTier::Scalar {
        telemetry::record_quiet(telemetry::Event::LsmKernelSimdCexHit);
    }
    let n = total.next_power_of_two().max(2);
    let mut buf = [LANE_MAX; NETWORK_MAX_CAP];
    for (lane, &x) in buf.iter_mut().zip(a.iter()) {
        *lane = pack(x);
    }
    // `a` ascending, a sentinel plateau, then `b` descending: bitonic.
    for (i, &x) in b.iter().enumerate() {
        buf[n - 1 - i] = pack(x);
    }
    bitonic_dispatch(&mut buf, n, tier);
    let mut emit = [SENTINEL; NETWORK_MAX_CAP];
    for (it, &lane) in emit.iter_mut().zip(buf.iter()) {
        *it = unpack(lane);
    }
    out.extend_from_slice(&emit[..total]);
    debug_assert!(out.windows(2).all(|w| w[0] <= w[1]) || out.len() > total);
}

/// Scalar branchless cursor merge of two sorted runs, appended to `out`
/// (the PR 4 kernel, generalized to append). Exactly one cursor advances
/// per iteration, by `take_a as usize`, compiling to conditional moves.
/// Remains the fallback for lopsided merges the chunked kernel cannot
/// cover and for the kernels-off A/B arm.
pub fn scalar_merge_append(sa: &[Item], sb: &[Item], out: &mut Vec<Item>) {
    let total = sa.len() + sb.len();
    let base = out.len();
    out.reserve(total);
    // SAFETY: `out` holds capacity for `base + total` items; each loop
    // iteration writes one item and advances exactly one source cursor,
    // so `po` is bumped exactly `total` times across the loop and the
    // two tail copies. Sources and destination are distinct buffers,
    // and `Item` is `Copy`.
    unsafe {
        let mut pa = sa.as_ptr();
        let ea = pa.add(sa.len());
        let mut pb = sb.as_ptr();
        let eb = pb.add(sb.len());
        let mut po = out.as_mut_ptr().add(base);
        while pa != ea && pb != eb {
            let (x, y) = (*pa, *pb);
            let take_a = x <= y;
            *po = if take_a { x } else { y };
            po = po.add(1);
            pa = pa.add(take_a as usize);
            pb = pb.add(!take_a as usize);
        }
        let ra = ea.offset_from(pa) as usize;
        po.copy_from_nonoverlapping(pa, ra);
        po.add(ra)
            .copy_from_nonoverlapping(pb, eb.offset_from(pb) as usize);
        out.set_len(base + total);
    }
}

/// Tier-2b bidirectional branch-free merge of two sorted runs, appended
/// to `out`. Used above [`MERGE_PATH_MIN`] total items, where the
/// scalar cursor merge is limited by its serial `compare → conditional
/// cursor bump → dependent load` chain (~a dozen cycles per item)
/// rather than by branch mispredictions — the cursor kernel is already
/// branchless.
///
/// The output is produced as two *independent* dependency chains
/// interleaved in one loop: a forward chain emits the `total/2`
/// smallest items from the fronts of both runs, while a backward chain
/// emits the `total - total/2` largest from the backs, writing
/// descending from the end of the output. Determinism of the merge
/// (ties broken towards `a` in front order, towards `b` in back order)
/// makes the two chains consume exactly complementary item sets, so
/// they meet in the middle without communicating — the CPU overlaps
/// the two chains and the critical path per item halves. Exhaustion
/// guards are branches that stay predictable (taken only once a side
/// runs dry).
pub fn merge_bidirectional_append(a: &[Item], b: &[Item], out: &mut Vec<Item>) {
    let (na, nb) = (a.len(), b.len());
    let total = na + nb;
    debug_assert!(a.windows(2).all(|w| w[0] <= w[1]));
    debug_assert!(b.windows(2).all(|w| w[0] <= w[1]));
    if na == 0 || nb == 0 {
        out.extend_from_slice(a);
        out.extend_from_slice(b);
        return;
    }
    telemetry::record_quiet(telemetry::Event::LsmKernelBidiHit);
    let base = out.len();
    out.reserve(total);
    let steps_f = total / 2;
    let steps_b = total - steps_f;
    // Each step is straight-line cmov code with *no* exhaustion guards:
    // the outer loops only run a chain for as many steps as both of its
    // cursors are provably in bounds (`chunk` is the joint safe window,
    // recomputed whenever it closes), and once one input side of a chain
    // is exhausted the chain's remaining output is a bulk tail copy of
    // the other side. Determinism of the merge (ties → `a` in front
    // order, mirrored to `b` from the back) makes the two chains consume
    // exactly complementary item sets, so the forward cursors never pass
    // the backward ones and the tail copies read exactly the unconsumed
    // items.
    //
    // SAFETY: `out` has capacity for `base + total`; the forward chain
    // writes indices `base..base + steps_f` exactly once ascending, the
    // backward chain `base + steps_f..base + total` exactly once
    // descending. The window bookkeeping keeps `ia < na`, `ib < nb`,
    // `ja > 0`, `jb > 0` inside the step loops.
    unsafe {
        let po = out.as_mut_ptr().add(base);
        let (mut ia, mut ib) = (0usize, 0usize);
        let (mut ja, mut jb) = (na, nb);
        let mut of = 0usize;
        let mut ob = total;
        let (mut fl, mut bl) = (steps_f, steps_b);
        macro_rules! fwd_step {
            () => {{
                let av = pack(*a.get_unchecked(ia));
                let bv = pack(*b.get_unchecked(ib));
                // Tie → `a`, matching the scalar cursor kernel.
                let ta = av <= bv;
                *po.add(of) = unpack(if ta { av } else { bv });
                of += 1;
                ia += ta as usize;
                ib += !ta as usize;
            }};
        }
        macro_rules! bwd_step {
            () => {{
                let aw = pack(*a.get_unchecked(ja - 1));
                let bw = pack(*b.get_unchecked(jb - 1));
                // Mirror tie rule: tie → `b` (it follows `a` in front
                // order, so it leads from the back).
                let tb = bw >= aw;
                ob -= 1;
                *po.add(ob) = unpack(if tb { bw } else { aw });
                ja -= !tb as usize;
                jb -= tb as usize;
            }};
        }
        // Interleaved phase: both chains advance guard-free inside the
        // joint safe window.
        loop {
            let chunk = fl.min(bl).min(na - ia).min(nb - ib).min(ja).min(jb);
            if chunk == 0 {
                break;
            }
            for _ in 0..chunk {
                fwd_step!();
                bwd_step!();
            }
            fl -= chunk;
            bl -= chunk;
        }
        // Finish the forward chain alone, then its tail copy.
        loop {
            let chunk = fl.min(na - ia).min(nb - ib);
            if chunk == 0 {
                break;
            }
            for _ in 0..chunk {
                fwd_step!();
            }
            fl -= chunk;
        }
        if fl > 0 {
            let (src, cur) = if ia == na { (b, &mut ib) } else { (a, &mut ia) };
            po.add(of).copy_from_nonoverlapping(src.as_ptr().add(*cur), fl);
            *cur += fl;
        }
        // Finish the backward chain alone, then its tail copy.
        loop {
            let chunk = bl.min(ja).min(jb);
            if chunk == 0 {
                break;
            }
            for _ in 0..chunk {
                bwd_step!();
            }
            bl -= chunk;
        }
        if bl > 0 {
            let (src, cur) = if ja == 0 { (b, &mut jb) } else { (a, &mut ja) };
            po.add(ob - bl)
                .copy_from_nonoverlapping(src.as_ptr().add(*cur - bl), bl);
        }
        out.set_len(base + total);
    }
    debug_assert!(out[base..].windows(2).all(|w| w[0] <= w[1]));
}

/// Branch-free argmin over a non-empty slice of items: index of the
/// smallest element (first occurrence on ties). The running best value
/// and index update through conditional moves on the packed lane, so a
/// random-ordered `heads` mirror costs no mispredictions — the branchy
/// `if h < best` scan it replaces mispredicts every time the minimum
/// moves. Used by `delete_min` on the heads mirror.
pub(crate) fn argmin(items: &[Item]) -> usize {
    debug_assert!(!items.is_empty());
    let mut best = pack(items[0]);
    let mut idx = 0usize;
    for (i, &h) in items.iter().enumerate().skip(1) {
        let v = pack(h);
        let better = v < best;
        best = if better { v } else { best };
        idx = if better { i } else { idx };
    }
    idx
}

/// Tier-2 chunked bitonic merge of two sorted runs (each at least
/// [`BITONIC_CHUNK`] long), appended to `out`.
///
/// The kernel keeps a `2 × BITONIC_CHUNK` stack buffer: the low half
/// holds the carry (smallest unemitted items), the high half is refilled
/// — reversed, making the buffer bitonic — from whichever input's next
/// head is smaller. One four-stage merge network then makes the low half
/// the next emitted chunk and the high half the new carry. The only
/// data-dependent branch is the per-chunk refill choice. Tails shorter
/// than a chunk are finished with the scalar kernel through a pooled
/// scratch buffer.
pub fn merge_bitonic_chunked(
    a: &[Item],
    b: &[Item],
    out: &mut Vec<Item>,
    pool: &mut BlockPool,
    tier: KernelTier,
) {
    const W: usize = BITONIC_CHUNK;
    debug_assert!(a.len() >= W && b.len() >= W);
    debug_assert!(a.windows(2).all(|w| w[0] <= w[1]));
    debug_assert!(b.windows(2).all(|w| w[0] <= w[1]));
    telemetry::record_quiet(telemetry::Event::LsmKernelBitonicHit);
    if tier != KernelTier::Scalar {
        telemetry::record_quiet(telemetry::Event::LsmKernelSimdCexHit);
    }
    let base = out.len();
    out.reserve(a.len() + b.len());
    let mut buf = [LANE_MAX; BITONIC_BUF];
    for i in 0..W {
        buf[i] = pack(a[i]);
        buf[BITONIC_BUF - 1 - i] = pack(b[i]);
    }
    let (mut ia, mut ib) = (W, W);
    loop {
        bitonic_merge_pow2::<BITONIC_BUF>(&mut buf, tier);
        let mut emit = [SENTINEL; W];
        for (it, &lane) in emit.iter_mut().zip(buf.iter()) {
            *it = unpack(lane);
        }
        out.extend_from_slice(&emit);
        if ia + W > a.len() || ib + W > b.len() {
            break;
        }
        // Carry the W largest forward; refill from the input whose next
        // item is smaller (the W smallest of everything loaded so far
        // are then guaranteed to sit in the buffer).
        buf.copy_within(W.., 0);
        let from_a = a[ia] <= b[ib];
        let src = if from_a { &a[ia..ia + W] } else { &b[ib..ib + W] };
        for i in 0..W {
            buf[BITONIC_BUF - 1 - i] = pack(src[i]);
        }
        if from_a {
            ia += W;
        } else {
            ib += W;
        }
    }
    // Tail: the carry (sorted, W items) plus both input remainders, of
    // which at least one is shorter than a chunk. Merge the carry with
    // the shorter remainder through pooled scratch, then append the
    // result against the longer one with the scalar kernel.
    let mut carry = [SENTINEL; W];
    for (it, &lane) in carry.iter_mut().zip(buf[W..].iter()) {
        *it = unpack(lane);
    }
    let (ra, rb) = (&a[ia..], &b[ib..]);
    let (short, long) = if ra.len() <= rb.len() { (ra, rb) } else { (rb, ra) };
    let mut scratch = pool.acquire(W + short.len());
    scalar_merge_append(&carry, short, &mut scratch);
    scalar_merge_append(&scratch, long, out);
    pool.release(scratch);
    debug_assert!(out[base..].windows(2).all(|w| w[0] <= w[1]));
    debug_assert_eq!(out.len() - base, a.len() + b.len());
}

/// Tier-3 k-way merge of `runs` (each sorted ascending) into `out`
/// through a loser tree: one comparison per tree level per emitted item,
/// `O(total · log k)` overall, versus the `O(total · k)` repeated
/// head-scan it replaces.
///
/// `heads` is a pooled scratch buffer (capacity at least
/// `runs.len().next_power_of_two()`) holding the current head of every
/// (sentinel-padded) run, so the inner loop reads one dense array; the
/// loser/cursor index arrays are fixed stack arrays sized for
/// [`MAX_FANOUT`]. Exhausted and padded runs hold [`SENTINEL`]; ties
/// with real sentinel-valued items emit bit-identical copies, so the
/// output multiset is preserved (exactly `total` items are emitted).
pub(crate) fn k_way_merge_into(runs: &[&[Item]], heads: &mut Vec<Item>, out: &mut Vec<Item>) {
    let k = runs.len();
    debug_assert!((2..=MAX_FANOUT).contains(&k));
    telemetry::record_quiet(telemetry::Event::LsmKernelLoserTreePass);
    let kk = k.next_power_of_two();
    debug_assert!(kk <= TREE_CAP && heads.capacity() >= kk);
    let base = out.len();
    let total: usize = runs.iter().map(|r| r.len()).sum();
    heads.clear();
    for r in runs {
        heads.push(r.first().copied().unwrap_or(SENTINEL));
    }
    heads.resize(kk, SENTINEL);
    // Cursor per run and loser per internal node; `win` is build-only.
    let mut pos = [0u32; TREE_CAP];
    let mut loser = [0u32; TREE_CAP];
    let mut win = [0u32; 2 * TREE_CAP];
    for n in (1..2 * kk).rev() {
        if n >= kk {
            win[n] = (n - kk) as u32;
        } else {
            let (x, y) = (win[2 * n], win[2 * n + 1]);
            let x_wins = heads[x as usize] <= heads[y as usize];
            win[n] = if x_wins { x } else { y };
            loser[n] = if x_wins { y } else { x };
        }
    }
    let mut winner = win[1];
    for _ in 0..total {
        let w = winner as usize;
        out.push(heads[w]);
        pos[w] += 1;
        heads[w] = runs
            .get(w)
            .and_then(|r| r.get(pos[w] as usize))
            .copied()
            .unwrap_or(SENTINEL);
        // Replay the path from leaf `w` to the root: one comparison per
        // level, swapping the path node's loser with the running winner
        // whenever the stored loser is smaller.
        let mut n = (kk + w) >> 1;
        let mut cur = winner;
        while n >= 1 {
            if heads[loser[n] as usize] < heads[cur as usize] {
                core::mem::swap(&mut loser[n], &mut cur);
            }
            n >>= 1;
        }
        winner = cur;
    }
    debug_assert_eq!(out.len() - base, total);
    debug_assert!(out[base..].windows(2).all(|w| w[0] <= w[1]));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(keys: &[u64]) -> Vec<Item> {
        keys.iter()
            .enumerate()
            .map(|(i, &k)| Item::new(k, i as u64))
            .collect()
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn cutoffs_are_consistent() {
        assert!(NETWORK_MAX_CAP.is_power_of_two());
        assert!(BITONIC_CHUNK.is_power_of_two());
        assert!(BITONIC_BUF <= NETWORK_MAX_CAP);
        assert!(TREE_CAP >= MAX_FANOUT);
    }

    #[test]
    fn sort_network_every_size_reversed() {
        for tier in KernelTier::available_tiers() {
            for n in 0..=NETWORK_MAX_CAP {
                let mut v = items(&(0..n as u64).rev().collect::<Vec<_>>());
                sort_network(&mut v, tier);
                let mut expect = v.clone();
                expect.sort();
                assert_eq!(v, expect, "size {n} tier {}", tier.name());
            }
        }
    }

    #[test]
    fn sort_network_handles_sentinel_valued_items() {
        for tier in KernelTier::available_tiers() {
            let mut v = vec![
                Item::new(u64::MAX, u64::MAX),
                Item::new(3, 0),
                Item::new(u64::MAX, u64::MAX),
                Item::new(1, 9),
            ];
            sort_network(&mut v, tier);
            assert_eq!(v[0], Item::new(1, 9));
            assert_eq!(v[1], Item::new(3, 0));
            assert_eq!(v[2], Item::new(u64::MAX, u64::MAX));
            assert_eq!(v[3], Item::new(u64::MAX, u64::MAX));
        }
    }

    #[test]
    fn merge_network_all_split_shapes() {
        for tier in KernelTier::available_tiers() {
            for la in 1..=16usize {
                for lb in 1..=16usize {
                    let a: Vec<Item> = (0..la as u64).map(|k| Item::new(2 * k, 0)).collect();
                    let b: Vec<Item> = (0..lb as u64).map(|k| Item::new(2 * k + 1, 1)).collect();
                    let mut out = Vec::with_capacity(la + lb);
                    merge_network_into(&a, &b, &mut out, tier);
                    let mut expect = [a, b].concat();
                    expect.sort();
                    assert_eq!(out, expect, "la={la} lb={lb} tier {}", tier.name());
                }
            }
        }
    }

    #[test]
    fn chunked_bitonic_matches_scalar() {
        let mut pool = BlockPool::new();
        let mut rng = 0x1234u64;
        let mut next = move || {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            rng >> 33
        };
        for tier in KernelTier::available_tiers() {
            for (la, lb) in [(8, 8), (8, 9), (17, 8), (64, 64), (100, 9), (9, 100), (33, 57)] {
                let mut a: Vec<Item> = (0..la).map(|i| Item::new(next() % 64, i)).collect();
                let mut b: Vec<Item> = (0..lb).map(|i| Item::new(next() % 64, 1000 + i)).collect();
                a.sort();
                b.sort();
                let mut out = Vec::new();
                merge_bitonic_chunked(&a, &b, &mut out, &mut pool, tier);
                let mut expect = [a.clone(), b.clone()].concat();
                expect.sort();
                assert_eq!(out, expect, "la={la} lb={lb} tier {}", tier.name());
            }
        }
    }

    #[test]
    fn loser_tree_merges_uneven_runs() {
        let runs_owned: Vec<Vec<Item>> = vec![
            items(&[1, 5, 9, 13]),
            items(&[2, 2, 2]),
            items(&[0]),
            vec![],
            items(&[3, 4, 6, 7, 8, 10, 11, 12]),
        ];
        let runs: Vec<&[Item]> = runs_owned.iter().map(|r| r.as_slice()).collect();
        let mut heads = Vec::with_capacity(TREE_CAP);
        let mut out = Vec::new();
        k_way_merge_into(&runs, &mut heads, &mut out);
        let mut expect: Vec<Item> = runs_owned.concat();
        expect.sort();
        assert_eq!(out, expect);
    }

    #[test]
    fn loser_tree_handles_sentinel_ties() {
        let max = Item::new(u64::MAX, u64::MAX);
        let runs_owned: Vec<Vec<Item>> = vec![vec![Item::new(1, 0), max], vec![max], vec![max]];
        let runs: Vec<&[Item]> = runs_owned.iter().map(|r| r.as_slice()).collect();
        let mut heads = Vec::with_capacity(TREE_CAP);
        let mut out = Vec::new();
        k_way_merge_into(&runs, &mut heads, &mut out);
        assert_eq!(out, vec![Item::new(1, 0), max, max, max]);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn kernel_tiers_record_telemetry() {
        use pq_traits::telemetry::{snapshot, Event};
        let before = snapshot();
        let mut v = items(&[3, 1, 2]);
        sort_network(&mut v, KernelTier::Scalar);
        let mut out = Vec::new();
        merge_network_into(&v, &v.clone(), &mut out, KernelTier::Scalar);
        let big: Vec<Item> = (0..32).map(|k| Item::new(k, 0)).collect();
        out.clear();
        merge_bitonic_chunked(&big, &big.clone(), &mut out, &mut BlockPool::new(), KernelTier::Scalar);
        let runs = [big.as_slice(), v.as_slice()];
        let mut heads = Vec::with_capacity(TREE_CAP);
        out.clear();
        k_way_merge_into(&runs, &mut heads, &mut out);
        let d = snapshot().since(&before);
        assert!(d.get(Event::LsmKernelNetworkHit) >= 2);
        assert!(d.get(Event::LsmKernelBitonicHit) >= 1);
        assert!(d.get(Event::LsmKernelLoserTreePass) >= 1);
    }

    #[test]
    fn bidi_merge_adversarial_shapes() {
        let max = Item::new(u64::MAX, u64::MAX);
        let zero = Item::new(0, 0);
        let cases: Vec<(Vec<Item>, Vec<Item>)> = vec![
            // All-equal runs, including both packed-lane extremes.
            (vec![zero; 5], vec![zero; 9]),
            (vec![max; 7], vec![max; 3]),
            (vec![zero, zero, max, max], vec![zero, max]),
            // Fully disjoint ranges, either order.
            (items(&[1, 2, 3, 4]), items(&[10, 11, 12, 13])),
            (items(&[10, 11, 12, 13]), items(&[1, 2, 3, 4])),
            // Perfect interleave and lopsided lengths (tail-copy paths).
            (items(&[0, 2, 4, 6, 8]), items(&[1, 3, 5, 7, 9])),
            (items(&[5]), items(&(0..40).collect::<Vec<_>>())),
            ((0..40).map(|k| Item::new(k, 0)).collect(), vec![Item::new(20, 1)]),
            // Odd totals and empty sides.
            (items(&[1, 1, 2]), items(&[1, 1])),
            (Vec::new(), items(&[1, 2, 3])),
            (items(&[1, 2, 3]), Vec::new()),
        ];
        for (a, b) in cases {
            let mut a = a;
            let mut b = b;
            a.sort();
            b.sort();
            let mut got = Vec::new();
            merge_bidirectional_append(&a, &b, &mut got);
            let mut expect = Vec::new();
            scalar_merge_append(&a, &b, &mut expect);
            assert_eq!(got, expect, "a={a:?} b={b:?}");
        }
    }

    #[test]
    fn argmin_returns_first_minimum() {
        // Ties must resolve to the first occurrence, matching the
        // branchy `<` scan the kernels-off arm runs.
        let v = items(&[5, 2, 9, 2, 7]);
        assert_eq!(argmin(&v), 1);
        let same = vec![Item::new(4, 4); 6];
        assert_eq!(argmin(&same), 0);
        assert_eq!(argmin(&[Item::new(1, 1)]), 0);
    }

    proptest::proptest! {
        /// The bidirectional kernel is byte-for-byte equivalent to the
        /// scalar cursor merge on arbitrary sorted runs with duplicate
        /// keys (distinct values witness tie handling).
        #[test]
        fn prop_bidi_matches_scalar(
            a in proptest::collection::vec(0u64..50, 0..120),
            b in proptest::collection::vec(0u64..50, 0..120),
        ) {
            let mut a: Vec<Item> = a.iter().map(|&k| Item::new(k, 0)).collect();
            let mut b: Vec<Item> = b.iter().map(|&k| Item::new(k, 1)).collect();
            a.sort();
            b.sort();
            let mut got = Vec::new();
            merge_bidirectional_append(&a, &b, &mut got);
            let mut expect = Vec::new();
            scalar_merge_append(&a, &b, &mut expect);
            proptest::prop_assert_eq!(got, expect);
        }

        /// `argmin` agrees with the reference linear scan (first
        /// occurrence on ties) on arbitrary non-empty slices.
        #[test]
        fn prop_argmin_matches_scan(
            keys in proptest::collection::vec(0u64..30, 1..80)
        ) {
            let v = items(&keys);
            let expect = v
                .iter()
                .enumerate()
                .min_by_key(|&(_, it)| it)
                .map(|(i, _)| i)
                .expect("non-empty");
            proptest::prop_assert_eq!(argmin(&v), expect);
        }

        #[test]
        fn prop_batcher_matches_std_sort(
            keys in proptest::collection::vec(0u64..16, 0..NETWORK_MAX_CAP + 1)
        ) {
            for tier in KernelTier::available_tiers() {
                let mut v = items(&keys);
                let mut expect = v.clone();
                sort_network(&mut v, tier);
                expect.sort();
                proptest::prop_assert_eq!(v, expect);
            }
        }

        #[test]
        fn prop_chunked_bitonic_equivalent(
            a in proptest::collection::vec(0u64..100, BITONIC_CHUNK..80),
            b in proptest::collection::vec(0u64..100, BITONIC_CHUNK..80),
        ) {
            let (mut a, mut b) = (a, b);
            a.sort_unstable();
            b.sort_unstable();
            let ia: Vec<Item> = a.iter().map(|&k| Item::new(k, 0)).collect();
            let ib: Vec<Item> = b.iter().map(|&k| Item::new(k, 1)).collect();
            let mut expect = [ia.clone(), ib.clone()].concat();
            expect.sort();
            for tier in KernelTier::available_tiers() {
                let mut out = Vec::new();
                merge_bitonic_chunked(&ia, &ib, &mut out, &mut BlockPool::new(), tier);
                proptest::prop_assert_eq!(out, expect.clone());
            }
        }
    }
}
