//! A sorted block of items with a logically-deleted prefix.
//!
//! Blocks are the unit of storage in the LSM. A block owns a sorted array
//! of items plus a `first` index: deletions advance `first` instead of
//! shifting the array, so `pop_front` is O(1). The *capacity* of a block
//! is the smallest power of two ≥ the number of items it was built with;
//! the LSM maintains the paper's invariant `C/2 < len ≤ C` by compacting
//! blocks that decay below half capacity.
//!
//! The merge/compact kernels are allocation-free in steady state: merging
//! draws its output buffer from a [`BlockPool`] and recycles both source
//! buffers, and compaction reuses the block's own allocation via
//! `copy_within`/`truncate` instead of copying to a fresh vector.
//!
//! Merging dispatches on size and kernel tier: the vector chunked merge
//! from [`crate::simd`] whenever the dispatched SIMD tier covers the
//! shape, the bidirectional two-chain kernel from
//! [`crate::kernels::MERGE_PATH_MIN`] combined items up, and the scalar
//! cursor merge below it (and on the kernels-off A/B arm, which is the
//! frozen PR 4 baseline for every size; the simd-off arm freezes the
//! PR 5 dispatch by pinning [`KernelTier::Scalar`]).

use crate::kernels;
use crate::pool::BlockPool;
use crate::simd::{self, KernelTier};
use pq_traits::Item;

/// Sorted block with O(1) front removal.
#[derive(Clone, Debug)]
pub struct Block {
    items: Vec<Item>,
    first: usize,
    capacity: usize,
}

impl Block {
    /// Block holding a single item (capacity 1).
    pub fn singleton(item: Item) -> Self {
        Self {
            items: vec![item],
            first: 0,
            capacity: 1,
        }
    }

    /// As [`Block::singleton`], but drawing the one-slot buffer from
    /// `pool` instead of the allocator.
    pub fn singleton_from(pool: &mut BlockPool, item: Item) -> Self {
        let mut items = pool.acquire(1);
        items.push(item);
        Self {
            items,
            first: 0,
            capacity: 1,
        }
    }

    /// Block from a sorted, non-empty item vector.
    pub fn from_sorted(items: Vec<Item>) -> Self {
        debug_assert!(!items.is_empty());
        debug_assert!(items.windows(2).all(|w| w[0] <= w[1]));
        let capacity = items.len().next_power_of_two();
        Self {
            items,
            first: 0,
            capacity,
        }
    }

    /// An empty stand-in used to move a block out of a slot before
    /// replacing it. Never stored between operations.
    pub(crate) fn placeholder() -> Self {
        Self {
            items: Vec::new(),
            first: 0,
            capacity: 0,
        }
    }

    /// Number of live items.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len() - self.first
    }

    /// `true` if no live items remain.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.first >= self.items.len()
    }

    /// Power-of-two capacity this block was sized for.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Smallest live item, if any.
    #[inline]
    pub fn peek(&self) -> Option<Item> {
        self.items.get(self.first).copied()
    }

    /// Remove and return the smallest live item.
    #[inline]
    pub fn pop_front(&mut self) -> Option<Item> {
        let item = self.items.get(self.first).copied()?;
        self.first += 1;
        Some(item)
    }

    /// Smallest live item of a block known to be non-empty. The LSM's
    /// fill invariant (`len > C/2 ≥ 0` between operations) makes this
    /// the common case, sparing the `Option` plumbing of [`Block::peek`]
    /// on the `delete_min` scan.
    #[inline]
    pub(crate) fn head(&self) -> Item {
        debug_assert!(!self.is_empty());
        self.items[self.first]
    }

    /// Logically delete the smallest live item of a non-empty block.
    #[inline]
    pub(crate) fn drop_front(&mut self) {
        debug_assert!(!self.is_empty());
        self.first += 1;
    }

    /// Live items in ascending order.
    #[inline]
    pub fn live_slice(&self) -> &[Item] {
        &self.items[self.first..]
    }

    /// Iterate over live items in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = &Item> {
        self.live_slice().iter()
    }

    /// Two-way merge of the live items of two blocks into a buffer drawn
    /// from `pool`; both source buffers are recycled into `pool`.
    /// Equivalent to [`Block::merge_with`] with the branch-free kernels
    /// enabled at the process-wide [`simd::active_tier`].
    pub fn merge_into(a: Block, b: Block, pool: &mut BlockPool) -> Block {
        Self::merge_with(a, b, pool, true, simd::active_tier())
    }

    /// Two-way merge with explicit kernel selection (`branch_free` is
    /// false only on the kernels-off A/B arm, `tier` is
    /// [`KernelTier::Scalar`] on the simd-off arm): the in-register
    /// vector small-merge wherever the whole-queue A/B measured it
    /// profitable ([`KernelTier::merge_profitable`] — an empty set on
    /// the measured host), the bidirectional two-chain kernel from
    /// [`kernels::MERGE_PATH_MIN`] items up, and the scalar branchless
    /// cursor merge below it. The tier-1 merge network, tier-2 chunked
    /// bitonic kernel, and every vector merge regime measured slower
    /// than this dispatch at every size, so they are ablation arms,
    /// not production dispatch targets; see the EXPERIMENTS.md kernel
    /// ablations.
    pub(crate) fn merge_with(
        a: Block,
        b: Block,
        pool: &mut BlockPool,
        branch_free: bool,
        tier: KernelTier,
    ) -> Block {
        let (sa, sb) = (a.live_slice(), b.live_slice());
        let total = sa.len() + sb.len();
        debug_assert!(total > 0, "merging two empty blocks");
        let mut out = pool.acquire(total);
        debug_assert!(out.is_empty() && out.capacity() >= total);
        if branch_free && tier.merge_profitable(sa.len(), sb.len()) {
            simd::merge_simd_append(tier, sa, sb, &mut out);
        } else if branch_free && total >= kernels::MERGE_PATH_MIN {
            kernels::merge_bidirectional_append(sa, sb, &mut out);
        } else {
            kernels::scalar_merge_append(sa, sb, &mut out);
        }
        debug_assert_eq!(out.len(), total);
        pool.release(a.into_buffer());
        pool.release(b.into_buffer());
        Block::from_sorted(out)
    }

    /// Rebuild the block around its live items only, recomputing
    /// capacity. Reuses the block's own allocation: the live suffix is
    /// shifted to the front with `copy_within` and the tail truncated —
    /// no heap traffic.
    pub fn compact_in_place(&mut self) {
        debug_assert!(!self.is_empty());
        if self.first > 0 {
            let live = self.len();
            self.items.copy_within(self.first.., 0);
            self.items.truncate(live);
            self.first = 0;
        }
        self.capacity = self.items.len().next_power_of_two();
    }

    /// Consume the block, returning its live items sorted ascending.
    pub fn into_sorted_items(mut self) -> Vec<Item> {
        self.items.drain(..self.first);
        self.items
    }

    /// Consume the block, returning its raw buffer (including any
    /// logically-deleted prefix) for recycling.
    pub(crate) fn into_buffer(self) -> Vec<Item> {
        self.items
    }

    /// `true` if live items are sorted (tests only).
    #[doc(hidden)]
    pub fn is_sorted(&self) -> bool {
        self.live_slice().windows(2).all(|w| w[0] <= w[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(keys: &[u64]) -> Vec<Item> {
        keys.iter().map(|&k| Item::new(k, 0)).collect()
    }

    fn merge(a: Block, b: Block) -> Block {
        Block::merge_into(a, b, &mut BlockPool::new())
    }

    #[test]
    fn singleton_shape() {
        let b = Block::singleton(Item::new(5, 1));
        assert_eq!(b.len(), 1);
        assert_eq!(b.capacity(), 1);
        assert_eq!(b.peek(), Some(Item::new(5, 1)));
    }

    #[test]
    fn singleton_from_pool_reuses_buffer() {
        let mut pool = BlockPool::new();
        let b = Block::singleton_from(&mut pool, Item::new(9, 0));
        assert_eq!(b.len(), 1);
        pool.release(b.into_buffer());
        let c = Block::singleton_from(&mut pool, Item::new(3, 0));
        assert_eq!(c.peek(), Some(Item::new(3, 0)));
        assert_eq!(pool.stats().hits, 1);
    }

    #[test]
    fn capacity_rounds_up() {
        let b = Block::from_sorted(items(&[1, 2, 3, 4, 5]));
        assert_eq!(b.capacity(), 8);
        let b = Block::from_sorted(items(&[1, 2, 3, 4]));
        assert_eq!(b.capacity(), 4);
    }

    #[test]
    fn pop_front_in_order() {
        let mut b = Block::from_sorted(items(&[1, 3, 5]));
        assert_eq!(b.pop_front().map(|i| i.key), Some(1));
        assert_eq!(b.pop_front().map(|i| i.key), Some(3));
        assert_eq!(b.len(), 1);
        assert_eq!(b.pop_front().map(|i| i.key), Some(5));
        assert!(b.is_empty());
        assert_eq!(b.pop_front(), None);
    }

    #[test]
    fn merge_interleaves() {
        let a = Block::from_sorted(items(&[1, 4, 7]));
        let b = Block::from_sorted(items(&[2, 3, 9]));
        let m = merge(a, b);
        let got: Vec<u64> = m.iter().map(|i| i.key).collect();
        assert_eq!(got, vec![1, 2, 3, 4, 7, 9]);
        assert_eq!(m.capacity(), 8);
    }

    #[test]
    fn merge_skips_deleted_prefix() {
        let mut a = Block::from_sorted(items(&[1, 4, 7]));
        a.pop_front();
        let b = Block::from_sorted(items(&[2, 9]));
        let m = merge(a, b);
        let got: Vec<u64> = m.iter().map(|i| i.key).collect();
        assert_eq!(got, vec![2, 4, 7, 9]);
    }

    #[test]
    fn merge_recycles_source_buffers() {
        let mut pool = BlockPool::new();
        let a = Block::from_sorted(items(&[1, 2, 3, 4]));
        let b = Block::from_sorted(items(&[5, 6, 7, 8]));
        let m = Block::merge_into(a, b, &mut pool);
        assert_eq!(m.len(), 8);
        // Both 4-capacity source buffers are parked for reuse.
        assert_eq!(pool.free_buffers(), 2);
        let reused = pool.acquire(4);
        assert!(reused.capacity() >= 4);
        assert_eq!(pool.stats().hits, 1);
    }

    /// Regression: `merge_into` must preserve the paper's block fill
    /// invariant `C/2 < len ≤ C` for every input shape, including blocks
    /// with logically-deleted prefixes.
    #[test]
    fn merge_into_preserves_capacity_invariant() {
        for na in 1usize..24 {
            for nb in 1usize..24 {
                for dead in 0..na.min(8) {
                    let mut a = Block::from_sorted(items(
                        &(0..na as u64).map(|k| 2 * k).collect::<Vec<_>>(),
                    ));
                    for _ in 0..dead {
                        a.pop_front();
                    }
                    if a.is_empty() {
                        continue;
                    }
                    let b = Block::from_sorted(items(
                        &(0..nb as u64).map(|k| 2 * k + 1).collect::<Vec<_>>(),
                    ));
                    let expect = a.len() + b.len();
                    let m = Block::merge_into(a, b, &mut BlockPool::new());
                    assert_eq!(m.len(), expect);
                    assert!(m.capacity().is_power_of_two());
                    assert!(
                        m.len() <= m.capacity() && 2 * m.len() > m.capacity(),
                        "C/2 < len <= C violated: len={} cap={}",
                        m.len(),
                        m.capacity()
                    );
                    assert!(m.is_sorted());
                }
            }
        }
    }

    #[test]
    fn compact_in_place_recomputes_capacity() {
        let mut b = Block::from_sorted(items(&[1, 2, 3, 4, 5, 6, 7, 8]));
        for _ in 0..6 {
            b.pop_front();
        }
        assert_eq!(b.capacity(), 8);
        b.compact_in_place();
        assert_eq!(b.len(), 2);
        assert_eq!(b.capacity(), 2);
        assert_eq!(b.pop_front(), Some(Item::new(7, 0)));
        assert_eq!(b.pop_front(), Some(Item::new(8, 0)));
    }

    #[test]
    fn compact_in_place_without_dead_prefix_is_noop_shrink() {
        let mut b = Block::from_sorted(items(&[1, 2, 3]));
        b.compact_in_place();
        assert_eq!(b.len(), 3);
        assert_eq!(b.capacity(), 4);
        assert!(b.is_sorted());
    }

    #[test]
    fn into_sorted_items_drops_deleted() {
        let mut b = Block::from_sorted(items(&[1, 2, 3]));
        b.pop_front();
        assert_eq!(b.into_sorted_items(), items(&[2, 3]));
    }
}
