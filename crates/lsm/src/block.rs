//! A sorted block of items with a logically-deleted prefix.
//!
//! Blocks are the unit of storage in the LSM. A block owns a sorted array
//! of items plus a `first` index: deletions advance `first` instead of
//! shifting the array, so `pop_front` is O(1). The *capacity* of a block
//! is the smallest power of two ≥ the number of items it was built with;
//! the LSM maintains the paper's invariant `C/2 < len ≤ C` by compacting
//! blocks that decay below half capacity.

use pq_traits::Item;

/// Sorted block with O(1) front removal.
#[derive(Clone, Debug)]
pub struct Block {
    items: Vec<Item>,
    first: usize,
    capacity: usize,
}

impl Block {
    /// Block holding a single item (capacity 1).
    pub fn singleton(item: Item) -> Self {
        Self {
            items: vec![item],
            first: 0,
            capacity: 1,
        }
    }

    /// Block from a sorted, non-empty item vector.
    pub fn from_sorted(items: Vec<Item>) -> Self {
        debug_assert!(!items.is_empty());
        debug_assert!(items.windows(2).all(|w| w[0] <= w[1]));
        let capacity = items.len().next_power_of_two();
        Self {
            items,
            first: 0,
            capacity,
        }
    }

    /// Number of live items.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len() - self.first
    }

    /// `true` if no live items remain.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.first >= self.items.len()
    }

    /// Power-of-two capacity this block was sized for.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Smallest live item, if any.
    #[inline]
    pub fn peek(&self) -> Option<Item> {
        self.items.get(self.first).copied()
    }

    /// Remove and return the smallest live item.
    #[inline]
    pub fn pop_front(&mut self) -> Option<Item> {
        let item = self.items.get(self.first).copied()?;
        self.first += 1;
        Some(item)
    }

    /// Iterate over live items in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = &Item> {
        self.items[self.first..].iter()
    }

    /// Two-way merge of the live items of two blocks into a fresh block.
    pub fn merge(a: Block, b: Block) -> Block {
        let mut out = Vec::with_capacity(a.len() + b.len());
        let mut ia = a.items[a.first..].iter().copied().peekable();
        let mut ib = b.items[b.first..].iter().copied().peekable();
        loop {
            match (ia.peek(), ib.peek()) {
                (Some(&x), Some(&y)) => {
                    if x <= y {
                        out.push(x);
                        ia.next();
                    } else {
                        out.push(y);
                        ib.next();
                    }
                }
                (Some(_), None) => {
                    out.extend(ia.by_ref());
                }
                (None, Some(_)) => {
                    out.extend(ib.by_ref());
                }
                (None, None) => break,
            }
        }
        debug_assert!(!out.is_empty(), "merging two empty blocks");
        Block::from_sorted(out)
    }

    /// Rebuild the block around its live items only, recomputing capacity.
    pub fn compact(self) -> Block {
        let live: Vec<Item> = self.items[self.first..].to_vec();
        Block::from_sorted(live)
    }

    /// Consume the block, returning its live items sorted ascending.
    pub fn into_sorted_items(mut self) -> Vec<Item> {
        self.items.drain(..self.first);
        self.items
    }

    /// `true` if live items are sorted (tests only).
    #[doc(hidden)]
    pub fn is_sorted(&self) -> bool {
        self.items[self.first..].windows(2).all(|w| w[0] <= w[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(keys: &[u64]) -> Vec<Item> {
        keys.iter().map(|&k| Item::new(k, 0)).collect()
    }

    #[test]
    fn singleton_shape() {
        let b = Block::singleton(Item::new(5, 1));
        assert_eq!(b.len(), 1);
        assert_eq!(b.capacity(), 1);
        assert_eq!(b.peek(), Some(Item::new(5, 1)));
    }

    #[test]
    fn capacity_rounds_up() {
        let b = Block::from_sorted(items(&[1, 2, 3, 4, 5]));
        assert_eq!(b.capacity(), 8);
        let b = Block::from_sorted(items(&[1, 2, 3, 4]));
        assert_eq!(b.capacity(), 4);
    }

    #[test]
    fn pop_front_in_order() {
        let mut b = Block::from_sorted(items(&[1, 3, 5]));
        assert_eq!(b.pop_front().map(|i| i.key), Some(1));
        assert_eq!(b.pop_front().map(|i| i.key), Some(3));
        assert_eq!(b.len(), 1);
        assert_eq!(b.pop_front().map(|i| i.key), Some(5));
        assert!(b.is_empty());
        assert_eq!(b.pop_front(), None);
    }

    #[test]
    fn merge_interleaves() {
        let a = Block::from_sorted(items(&[1, 4, 7]));
        let b = Block::from_sorted(items(&[2, 3, 9]));
        let m = Block::merge(a, b);
        let got: Vec<u64> = m.iter().map(|i| i.key).collect();
        assert_eq!(got, vec![1, 2, 3, 4, 7, 9]);
        assert_eq!(m.capacity(), 8);
    }

    #[test]
    fn merge_skips_deleted_prefix() {
        let mut a = Block::from_sorted(items(&[1, 4, 7]));
        a.pop_front();
        let b = Block::from_sorted(items(&[2, 9]));
        let m = Block::merge(a, b);
        let got: Vec<u64> = m.iter().map(|i| i.key).collect();
        assert_eq!(got, vec![2, 4, 7, 9]);
    }

    #[test]
    fn compact_recomputes_capacity() {
        let mut b = Block::from_sorted(items(&[1, 2, 3, 4, 5, 6, 7, 8]));
        for _ in 0..6 {
            b.pop_front();
        }
        assert_eq!(b.capacity(), 8);
        let c = b.compact();
        assert_eq!(c.len(), 2);
        assert_eq!(c.capacity(), 2);
    }

    #[test]
    fn into_sorted_items_drops_deleted() {
        let mut b = Block::from_sorted(items(&[1, 2, 3]));
        b.pop_front();
        assert_eq!(b.into_sorted_items(), items(&[2, 3]));
    }
}
