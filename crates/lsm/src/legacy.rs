//! The pre-pool LSM kernels, frozen for A/B benchmarking.
//!
//! [`LegacyLsm`] is the sequential LSM exactly as it stood before the
//! block pool landed: every singleton insert allocates a fresh `Vec`,
//! every cascade merge allocates its output and drops its sources,
//! compaction copies to a new vector, `restore_distinct_capacities`
//! shifts the block vector with `remove`/`insert` and restarts its sweep
//! from the end, draining collects and sorts, and the largest block is
//! removed from the vector front. The `lsm_kernels` microbenchmark in
//! `pq-bench` runs it against [`crate::Lsm`] to quantify what the pooled,
//! allocation-free kernels buy; it is not used by any queue.

use pq_traits::{Item, Key, SequentialPq, Value};

/// Pre-pool sorted block: identical storage, allocating kernels.
#[derive(Clone, Debug)]
struct LegacyBlock {
    items: Vec<Item>,
    first: usize,
    capacity: usize,
}

impl LegacyBlock {
    fn singleton(item: Item) -> Self {
        Self {
            items: vec![item],
            first: 0,
            capacity: 1,
        }
    }

    fn from_sorted(items: Vec<Item>) -> Self {
        let capacity = items.len().next_power_of_two();
        Self {
            items,
            first: 0,
            capacity,
        }
    }

    fn len(&self) -> usize {
        self.items.len() - self.first
    }

    fn is_empty(&self) -> bool {
        self.first >= self.items.len()
    }

    fn peek(&self) -> Option<Item> {
        self.items.get(self.first).copied()
    }

    fn pop_front(&mut self) -> Option<Item> {
        let item = self.items.get(self.first).copied()?;
        self.first += 1;
        Some(item)
    }

    fn iter(&self) -> impl Iterator<Item = &Item> {
        self.items[self.first..].iter()
    }

    /// Two-way merge into a *fresh* vector; sources dropped.
    fn merge(a: LegacyBlock, b: LegacyBlock) -> LegacyBlock {
        let mut out = Vec::with_capacity(a.len() + b.len());
        let mut ia = a.items[a.first..].iter().copied().peekable();
        let mut ib = b.items[b.first..].iter().copied().peekable();
        loop {
            match (ia.peek(), ib.peek()) {
                (Some(&x), Some(&y)) => {
                    if x <= y {
                        out.push(x);
                        ia.next();
                    } else {
                        out.push(y);
                        ib.next();
                    }
                }
                (Some(_), None) => out.extend(ia.by_ref()),
                (None, Some(_)) => out.extend(ib.by_ref()),
                (None, None) => break,
            }
        }
        LegacyBlock::from_sorted(out)
    }

    /// Copying compaction: live items into a fresh vector.
    fn compact(self) -> LegacyBlock {
        let live: Vec<Item> = self.items[self.first..].to_vec();
        LegacyBlock::from_sorted(live)
    }

    fn into_sorted_items(mut self) -> Vec<Item> {
        self.items.drain(..self.first);
        self.items
    }
}

/// The sequential LSM with the pre-pool kernels. Same semantics as
/// [`crate::Lsm`]; only the memory management differs.
#[derive(Clone, Debug, Default)]
pub struct LegacyLsm {
    /// Sorted by strictly decreasing capacity.
    blocks: Vec<LegacyBlock>,
    len: usize,
}

impl LegacyLsm {
    /// Create an empty legacy LSM.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drain all live items, sorted ascending, by collecting and
    /// sorting (the pre-pool drain kernel).
    pub fn take_all_sorted(&mut self) -> Vec<Item> {
        let mut all: Vec<Item> = self.blocks.iter().flat_map(|b| b.iter()).copied().collect();
        all.sort_unstable();
        self.blocks.clear();
        self.len = 0;
        all
    }

    /// Remove and return the largest block's live items, shifting the
    /// whole block vector (the pre-pool eviction kernel).
    pub fn pop_largest_block(&mut self) -> Option<Vec<Item>> {
        if self.blocks.is_empty() {
            return None;
        }
        let block = self.blocks.remove(0);
        self.len -= block.len();
        Some(block.into_sorted_items())
    }

    fn restore_distinct_capacities(&mut self) {
        let mut i = self.blocks.len();
        while i >= 2 {
            let a = self.blocks[i - 2].capacity;
            let b = self.blocks[i - 1].capacity;
            if b >= a {
                let small = self.blocks.remove(i - 1);
                let big = self.blocks.remove(i - 2);
                let merged = LegacyBlock::merge(big, small);
                let pos = self
                    .blocks
                    .iter()
                    .position(|blk| blk.capacity <= merged.capacity)
                    .unwrap_or(self.blocks.len());
                self.blocks.insert(pos, merged);
                i = self.blocks.len();
            } else {
                i -= 1;
            }
        }
    }

    fn shrink_at(&mut self, idx: usize) {
        if self.blocks[idx].is_empty() {
            self.blocks.remove(idx);
            return;
        }
        if self.blocks[idx].len() * 2 > self.blocks[idx].capacity {
            return;
        }
        let block = self.blocks.remove(idx);
        let shrunk = block.compact();
        let pos = self
            .blocks
            .iter()
            .position(|blk| blk.capacity <= shrunk.capacity)
            .unwrap_or(self.blocks.len());
        self.blocks.insert(pos, shrunk);
        self.restore_distinct_capacities();
    }
}

impl SequentialPq for LegacyLsm {
    fn insert(&mut self, key: Key, value: Value) {
        self.blocks.push(LegacyBlock::singleton(Item::new(key, value)));
        self.len += 1;
        self.restore_distinct_capacities();
    }

    fn delete_min(&mut self) -> Option<Item> {
        let mut best: Option<(usize, Item)> = None;
        for (i, b) in self.blocks.iter().enumerate() {
            if let Some(head) = b.peek() {
                if best.is_none_or(|(_, cur)| head < cur) {
                    best = Some((i, head));
                }
            }
        }
        let (idx, item) = best?;
        self.blocks[idx].pop_front();
        self.len -= 1;
        self.shrink_at(idx);
        Some(item)
    }

    fn peek_min(&self) -> Option<Item> {
        self.blocks.iter().filter_map(LegacyBlock::peek).min()
    }

    fn len(&self) -> usize {
        self.len
    }

    fn clear(&mut self) {
        self.blocks.clear();
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legacy_sorted_output() {
        let mut l = LegacyLsm::new();
        let keys = [13u64, 7, 42, 1, 99, 3, 56, 21, 0, 77];
        for &k in &keys {
            l.insert(k, k);
        }
        let out: Vec<Key> = std::iter::from_fn(|| l.delete_min()).map(|i| i.key).collect();
        let mut expect = keys.to_vec();
        expect.sort_unstable();
        assert_eq!(out, expect);
    }

    #[test]
    fn legacy_drain_and_evict() {
        let mut l = LegacyLsm::new();
        for k in 0..64u64 {
            l.insert(k, 0);
        }
        let bulk = l.pop_largest_block().unwrap();
        assert!(bulk.windows(2).all(|w| w[0] <= w[1]));
        let rest = l.take_all_sorted();
        assert_eq!(bulk.len() + rest.len(), 64);
        assert!(l.is_empty());
    }
}
