//! Sequential Log-Structured Merge-Tree (LSM) priority queue.
//!
//! Appendix B of the paper: "The LSM consists of a logarithmic number of
//! sorted arrays (called blocks) storing key-value containers (items).
//! Blocks have capacities C = 2^i and capacities within the LSM are
//! distinct. A block with capacity C must contain more than C/2 and at
//! most C items. Insertions initially add a new singleton block to the
//! LSM, and then merge blocks with identical capacities until all block
//! capacities within the LSM are once again distinct. Deletions simply
//! return the smallest of all blocks' minimal item."
//!
//! Both k-LSM components reuse this structure: the DLSM holds one LSM per
//! thread, and the SLSM publishes immutable LSM blocks behind an epoch.
//! This crate is purely sequential; `&mut self` everywhere.

#![warn(missing_docs)]

pub mod block;

pub use block::Block;

use pq_traits::{Item, Key, SequentialPq, Value};

/// Sequential LSM priority queue.
///
/// Blocks are kept sorted by strictly decreasing capacity; the last block
/// is the smallest. Insertion appends a singleton block and merges equal
/// capacities right-to-left, so insertion cost is O(log n) amortized and
/// `delete_min` is O(log n) worst case (scan of ≤ log n block heads).
#[derive(Clone, Debug, Default)]
pub struct Lsm {
    /// Sorted by strictly decreasing capacity.
    blocks: Vec<Block>,
    len: usize,
}

impl Lsm {
    /// Create an empty LSM.
    pub fn new() -> Self {
        Self {
            blocks: Vec::new(),
            len: 0,
        }
    }

    /// Build an LSM holding `items` (need not be sorted) as a single
    /// block. O(n log n).
    pub fn from_items(mut items: Vec<Item>) -> Self {
        items.sort_unstable();
        Self::from_sorted(items)
    }

    /// Build an LSM from already-sorted items as a single block.
    pub fn from_sorted(items: Vec<Item>) -> Self {
        debug_assert!(items.windows(2).all(|w| w[0] <= w[1]));
        if items.is_empty() {
            return Self::new();
        }
        let len = items.len();
        let mut lsm = Self {
            blocks: vec![Block::from_sorted(items)],
            len,
        };
        lsm.restore_distinct_capacities();
        lsm
    }

    /// Number of blocks currently held. At most ⌈log₂ n⌉ + 1.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Iterate over `(capacity, live_len)` per block, largest first.
    pub fn block_shapes(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.blocks.iter().map(|b| (b.capacity(), b.len()))
    }

    /// Iterate over all live items in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = &Item> {
        self.blocks.iter().flat_map(|b| b.iter())
    }

    /// Remove and return the live items of the block with the *largest*
    /// capacity, sorted ascending. Used by the k-LSM to evict the bulk of
    /// a thread-local LSM into the shared LSM when it exceeds `k` items.
    pub fn pop_largest_block(&mut self) -> Option<Vec<Item>> {
        if self.blocks.is_empty() {
            return None;
        }
        let block = self.blocks.remove(0);
        self.len -= block.len();
        Some(block.into_sorted_items())
    }

    /// Drain all live items, sorted ascending. Used by DLSM spying.
    pub fn take_all_sorted(&mut self) -> Vec<Item> {
        let mut all: Vec<Item> = self.iter().copied().collect();
        all.sort_unstable();
        self.blocks.clear();
        self.len = 0;
        all
    }

    /// Merge neighbouring blocks until all capacities are distinct,
    /// maintaining the decreasing-capacity order.
    fn restore_distinct_capacities(&mut self) {
        // Only the tail can violate distinctness (insertions append the
        // smallest block), but deletions may shrink interior blocks, so we
        // sweep from the back.
        let mut i = self.blocks.len();
        while i >= 2 {
            let a = self.blocks[i - 2].capacity();
            let b = self.blocks[i - 1].capacity();
            if b >= a {
                let small = self.blocks.remove(i - 1);
                let big = self.blocks.remove(i - 2);
                let merged = Block::merge(big, small);
                // Re-insert at the position keeping capacities decreasing.
                let pos = self
                    .blocks
                    .iter()
                    .position(|blk| blk.capacity() <= merged.capacity())
                    .unwrap_or(self.blocks.len());
                self.blocks.insert(pos, merged);
                i = self.blocks.len();
            } else {
                i -= 1;
            }
        }
        debug_assert!(self.check_invariants());
    }

    /// Compact away a block that has decayed below half its capacity
    /// (deletions shrink blocks in place; the paper's invariant is
    /// restored lazily here).
    fn shrink_at(&mut self, idx: usize) {
        if self.blocks[idx].is_empty() {
            self.blocks.remove(idx);
            return;
        }
        if self.blocks[idx].len() * 2 > self.blocks[idx].capacity() {
            return;
        }
        let block = self.blocks.remove(idx);
        let shrunk = block.compact();
        let pos = self
            .blocks
            .iter()
            .position(|blk| blk.capacity() <= shrunk.capacity())
            .unwrap_or(self.blocks.len());
        self.blocks.insert(pos, shrunk);
        self.restore_distinct_capacities();
    }

    /// Verify the paper's structural invariants (tests only):
    /// capacities strictly decreasing, each block `C/2 < len ≤ C`, len
    /// consistent.
    #[doc(hidden)]
    pub fn check_invariants(&self) -> bool {
        let caps_decreasing = self
            .blocks
            .windows(2)
            .all(|w| w[0].capacity() > w[1].capacity());
        let fill_ok = self
            .blocks
            .iter()
            .all(|b| b.len() * 2 > b.capacity() && b.len() <= b.capacity() && b.is_sorted());
        let len_ok = self.len == self.blocks.iter().map(Block::len).sum::<usize>();
        caps_decreasing && fill_ok && len_ok
    }
}

impl SequentialPq for Lsm {
    fn insert(&mut self, key: Key, value: Value) {
        self.blocks.push(Block::singleton(Item::new(key, value)));
        self.len += 1;
        self.restore_distinct_capacities();
    }

    fn delete_min(&mut self) -> Option<Item> {
        let mut best: Option<(usize, Item)> = None;
        for (i, b) in self.blocks.iter().enumerate() {
            if let Some(head) = b.peek() {
                if best.is_none_or(|(_, cur)| head < cur) {
                    best = Some((i, head));
                }
            }
        }
        let (idx, item) = best?;
        self.blocks[idx].pop_front();
        self.len -= 1;
        self.shrink_at(idx);
        debug_assert!(self.check_invariants());
        Some(item)
    }

    fn peek_min(&self) -> Option<Item> {
        self.blocks.iter().filter_map(Block::peek).min()
    }

    fn len(&self) -> usize {
        self.len
    }

    fn clear(&mut self) {
        self.blocks.clear();
        self.len = 0;
    }
}

impl FromIterator<Item> for Lsm {
    fn from_iter<I: IntoIterator<Item = Item>>(iter: I) -> Self {
        Self::from_items(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_lsm() {
        let mut l = Lsm::new();
        assert!(l.is_empty());
        assert_eq!(l.delete_min(), None);
        assert_eq!(l.peek_min(), None);
        assert_eq!(l.block_count(), 0);
    }

    #[test]
    fn insert_merges_to_distinct_capacities() {
        let mut l = Lsm::new();
        for k in 0..8u64 {
            l.insert(k, 0);
            assert!(l.check_invariants(), "after insert {k}: {l:?}");
        }
        // 8 items fit in a single capacity-8 block.
        assert_eq!(l.block_count(), 1);
        assert_eq!(l.len(), 8);
    }

    #[test]
    fn block_count_is_logarithmic() {
        let mut l = Lsm::new();
        for k in 0..1000u64 {
            l.insert(k, 0);
        }
        assert!(l.block_count() <= 11, "blocks = {}", l.block_count());
    }

    #[test]
    fn sorted_output() {
        let mut l = Lsm::new();
        let keys = [13u64, 7, 42, 1, 99, 3, 56, 21, 0, 77];
        for &k in &keys {
            l.insert(k, k);
        }
        let out: Vec<Key> = std::iter::from_fn(|| l.delete_min()).map(|i| i.key).collect();
        let mut expect = keys.to_vec();
        expect.sort_unstable();
        assert_eq!(out, expect);
    }

    #[test]
    fn from_sorted_builds_valid_lsm() {
        let items: Vec<Item> = (0..100).map(|k| Item::new(k, 0)).collect();
        let l = Lsm::from_sorted(items);
        assert_eq!(l.len(), 100);
        assert!(l.check_invariants());
        assert_eq!(l.peek_min(), Some(Item::new(0, 0)));
    }

    #[test]
    fn pop_largest_block_returns_sorted_bulk() {
        let mut l = Lsm::new();
        for k in (0..64u64).rev() {
            l.insert(k, 0);
        }
        let before = l.len();
        let bulk = l.pop_largest_block().unwrap();
        assert!(bulk.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(l.len() + bulk.len(), before);
        assert!(l.check_invariants());
    }

    #[test]
    fn take_all_sorted_drains() {
        let mut l = Lsm::from_items((0..37).map(|k| Item::new(37 - k, k)).collect());
        let all = l.take_all_sorted();
        assert_eq!(all.len(), 37);
        assert!(all.windows(2).all(|w| w[0] <= w[1]));
        assert!(l.is_empty());
        assert_eq!(l.block_count(), 0);
    }

    #[test]
    fn deletions_shrink_blocks() {
        let mut l = Lsm::new();
        for k in 0..128u64 {
            l.insert(k, 0);
        }
        for _ in 0..100 {
            l.delete_min();
            assert!(l.check_invariants());
        }
        assert_eq!(l.len(), 28);
    }

    proptest::proptest! {
        #[test]
        fn prop_matches_model(
            ops in proptest::collection::vec((proptest::bool::ANY, 0u64..1000), 0..400)
        ) {
            let mut l = Lsm::new();
            let mut model: Vec<Item> = Vec::new();
            for (i, &(is_insert, k)) in ops.iter().enumerate() {
                if is_insert {
                    l.insert(k, i as u64);
                    model.push(Item::new(k, i as u64));
                } else {
                    model.sort();
                    let expect = if model.is_empty() { None } else { Some(model.remove(0)) };
                    proptest::prop_assert_eq!(l.delete_min(), expect);
                }
                proptest::prop_assert!(l.check_invariants());
                proptest::prop_assert_eq!(l.len(), model.len());
            }
        }

        #[test]
        fn prop_block_count_logarithmic(n in 1usize..2000) {
            let mut l = Lsm::new();
            for k in 0..n as u64 {
                l.insert(k, 0);
            }
            let bound = (usize::BITS - n.leading_zeros()) as usize + 1;
            proptest::prop_assert!(l.block_count() <= bound);
        }
    }
}
