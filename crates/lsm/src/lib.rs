//! Sequential Log-Structured Merge-Tree (LSM) priority queue.
//!
//! Appendix B of the paper: "The LSM consists of a logarithmic number of
//! sorted arrays (called blocks) storing key-value containers (items).
//! Blocks have capacities C = 2^i and capacities within the LSM are
//! distinct. A block with capacity C must contain more than C/2 and at
//! most C items. Insertions initially add a new singleton block to the
//! LSM, and then merge blocks with identical capacities until all block
//! capacities within the LSM are once again distinct. Deletions simply
//! return the smallest of all blocks' minimal item."
//!
//! Both k-LSM components reuse this structure: the DLSM holds one LSM per
//! thread, and the SLSM publishes immutable LSM blocks behind an epoch.
//! This crate is purely sequential; `&mut self` everywhere.
//!
//! # Memory management
//!
//! Every block buffer is drawn from and recycled into a per-LSM
//! [`BlockPool`] (see [`pool`]), so the insert/delete steady state
//! performs no heap allocation: inserts stage in a one-item field and
//! pair into pool-drawn capacity-2 blocks, the merge cascade recycles
//! its sources, and compaction happens in place. `cargo test -p lsm
//! --test alloc_free` proves this with a counting global allocator.
//! Merging and draining run the branch-free kernels from [`kernels`];
//! [`Lsm::with_kernels_disabled`] keeps the PR 4 scalar path as an A/B
//! arm, and [`legacy::LegacyLsm`] preserves the pre-pool kernels
//! (`lsm_kernels` in `pq-bench` benches all five arms, including
//! [`Lsm::with_simd_disabled`], the scalar-tier dispatch).

#![warn(missing_docs)]

pub mod block;
pub mod kernels;
pub mod legacy;
pub mod pool;
pub mod simd;

pub use block::Block;
pub use kernels::{sort_items, sort_items_tier, BITONIC_CHUNK, MERGE_PATH_MIN, NETWORK_MAX_CAP};
pub use pool::{BlockPool, PoolStats};
pub use simd::{active_tier, KernelTier};

use std::collections::VecDeque;

use pq_traits::{Item, Key, SequentialPq, Value};

/// Sequential LSM priority queue.
///
/// Blocks are kept sorted by strictly decreasing capacity in a deque:
/// the front block is the largest (popped wholesale by the k-LSM's
/// eviction) and the back block is the smallest (where insertions
/// cascade). Insertion appends a singleton block and merges the tail run
/// right-to-left, so insertion cost is O(log n) amortized and
/// `delete_min` is O(log n) worst case (scan of ≤ log n block heads).
#[derive(Clone, Debug)]
pub struct Lsm {
    /// Sorted by strictly decreasing capacity; front is largest.
    blocks: VecDeque<Block>,
    /// `heads[i]` mirrors `blocks[i]`'s smallest live item. `delete_min`
    /// and `peek_min` scan this dense array instead of dereferencing
    /// every block's buffer — one or two contiguous cache lines instead
    /// of a scattered load per block.
    heads: Vec<Item>,
    /// `head_keys[i] == heads[i].key`: a keys-only twin of the head
    /// mirror. The SIMD argmin reads this array with plain 512-bit
    /// loads — eight candidate keys per register with no key-extraction
    /// shuffles — and only touches `heads` to tie-break equal keys.
    /// Maintained unconditionally (one extra `u64` store per head
    /// update) so every A/B arm pays the same bookkeeping.
    head_keys: Vec<u64>,
    len: usize,
    pool: BlockPool,
    /// Branch-free kernel tiers enabled (see [`kernels`]). `false` only
    /// on the kernels-off A/B arm, which runs the PR 4 scalar merge and
    /// repeated-pairwise drain instead.
    branch_free: bool,
    /// SIMD kernel tier dispatched at construction (see [`simd`]):
    /// [`simd::active_tier`] by default, [`KernelTier::Scalar`] on the
    /// simd-off A/B arm (the frozen PR 5 dispatch) and whenever
    /// `branch_free` is off.
    tier: KernelTier,
    /// Deferred singleton (branch-free arm only): every other insert
    /// parks its item here in O(1) instead of materializing a
    /// capacity-1 block, and the next insert merges the pair straight
    /// into a capacity-2 block — the singleton block machinery (pool
    /// round-trip, capacity computation, deque and head-mirror pushes)
    /// drops out of the hot path entirely. `delete_min`/`peek_min`
    /// compare it against the block heads; drains flush it first.
    staged: Option<Item>,
}

impl Default for Lsm {
    fn default() -> Self {
        Self {
            blocks: VecDeque::new(),
            heads: Vec::new(),
            head_keys: Vec::new(),
            len: 0,
            pool: BlockPool::new(),
            branch_free: true,
            tier: simd::active_tier(),
            staged: None,
        }
    }
}

impl Lsm {
    /// Create an empty LSM.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an empty LSM whose pool never recycles buffers (every
    /// structural change allocates, as pre-pool). The "pool off" arm of
    /// the allocation ablation; kernels are otherwise identical.
    pub fn with_pool_disabled() -> Self {
        Self {
            pool: BlockPool::disabled(),
            ..Self::default()
        }
    }

    /// Create an empty LSM with the branch-free kernel tiers disabled:
    /// merges run the scalar cursor kernel and draining runs the
    /// repeated-pairwise head scan, exactly the PR 4 pooled baseline.
    /// The "kernels off" arm of the `lsm_kernels` ablation.
    pub fn with_kernels_disabled() -> Self {
        Self {
            branch_free: false,
            tier: KernelTier::Scalar,
            ..Self::default()
        }
    }

    /// Create an empty LSM with the scalar kernel tier pinned: the full
    /// PR 5 branch-free dispatch (bidirectional merge, loser tree,
    /// branchless argmin) but none of the SIMD kernels. The "simd off"
    /// arm of the `lsm_kernels` ablation.
    pub fn with_simd_disabled() -> Self {
        Self::with_tier(KernelTier::Scalar)
    }

    /// Create an empty LSM dispatching an explicit kernel tier, clamped
    /// to what the running CPU supports. Lets one process exercise
    /// several tiers side by side (the forced-tier equivalence tests);
    /// production construction uses [`Lsm::new`], which dispatches
    /// [`simd::active_tier`].
    pub fn with_tier(tier: KernelTier) -> Self {
        let hw = KernelTier::detect_hw();
        Self {
            tier: tier.min(hw),
            ..Self::default()
        }
    }

    /// The SIMD kernel tier this LSM dispatches.
    pub fn kernel_tier(&self) -> KernelTier {
        self.tier
    }

    /// Build an LSM holding `items` (need not be sorted) as a single
    /// block. O(n log n); small batches go through the tier-1 sorting
    /// network.
    pub fn from_items(mut items: Vec<Item>) -> Self {
        kernels::sort_items(&mut items);
        Self::from_sorted(items)
    }

    /// As [`Lsm::from_items`] at an explicit kernel tier (clamped to
    /// hardware support), covering the batch-sort path too.
    pub fn from_items_tier(mut items: Vec<Item>, tier: KernelTier) -> Self {
        let mut lsm = Self::with_tier(tier);
        kernels::sort_items_tier(&mut items, lsm.tier);
        lsm.rebuild_from_sorted(items);
        lsm
    }

    /// Build an LSM from already-sorted items as a single block.
    pub fn from_sorted(items: Vec<Item>) -> Self {
        let mut lsm = Self::new();
        lsm.rebuild_from_sorted(items);
        lsm
    }

    /// Pool hit/miss/recycling counters for this LSM.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Number of blocks currently held. At most ⌈log₂ n⌉ + 1.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Iterate over `(capacity, live_len)` per block, largest first.
    pub fn block_shapes(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.blocks.iter().map(|b| (b.capacity(), b.len()))
    }

    /// Iterate over all live items in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = &Item> {
        self.blocks
            .iter()
            .flat_map(|b| b.iter())
            .chain(self.staged.iter())
    }

    /// Remove and return the live items of the block with the *largest*
    /// capacity, sorted ascending. Used by the k-LSM to evict the bulk of
    /// a thread-local LSM into the shared LSM when it exceeds `k` items.
    /// O(1) structural cost: the largest block sits at the deque front.
    pub fn pop_largest_block(&mut self) -> Option<Vec<Item>> {
        let block = self.blocks.pop_front()?;
        // Front-shift of at most ~log n cached heads; eviction is rare.
        self.heads_remove(0);
        self.len -= block.len();
        Some(block.into_sorted_items())
    }

    /// Drain all live items, sorted ascending, via a k-way merge of the
    /// already-sorted blocks (no collect-then-sort). Used by DLSM
    /// spying. The drained block buffers are recycled into the pool.
    ///
    /// With the branch-free kernels enabled the k-way merge runs through
    /// the [`kernels`] loser tree — one comparison per tree level per
    /// emitted item, `O(total · log k)` — with its head mirror in a
    /// pooled scratch buffer. The kernels-off arm keeps the PR 4
    /// repeated-pairwise head scan (`O(total · k)`), which doubles as
    /// the reference for the differential tests.
    pub fn take_all_sorted(&mut self) -> Vec<Item> {
        self.flush_staged();
        match self.blocks.len() {
            0 => return Vec::new(),
            1 => {
                let block = self.blocks.pop_back().expect("one block");
                self.heads_clear();
                self.len = 0;
                return block.into_sorted_items();
            }
            _ => {}
        }
        let nb = self.blocks.len();
        let mut out = self.pool.acquire(self.len);
        if self.branch_free {
            let mut scratch = self.pool.acquire(nb.next_power_of_two());
            // ≤ ⌈log₂ n⌉ + 1 blocks on a 64-bit machine, so a fixed
            // run-slice array suffices.
            let mut runs: [&[Item]; usize::BITS as usize + 1] = [&[]; usize::BITS as usize + 1];
            debug_assert!(nb <= runs.len());
            for (slot, block) in runs.iter_mut().zip(self.blocks.iter()) {
                *slot = block.live_slice();
            }
            kernels::k_way_merge_into(&runs[..nb], &mut scratch, &mut out);
            self.pool.release(scratch);
        } else {
            let mut cursors = [0usize; usize::BITS as usize + 1];
            debug_assert!(nb <= cursors.len());
            loop {
                let mut best: Option<(usize, Item)> = None;
                for (i, block) in self.blocks.iter().enumerate() {
                    let live = block.live_slice();
                    if let Some(&head) = live.get(cursors[i]) {
                        if best.is_none_or(|(_, cur)| head < cur) {
                            best = Some((i, head));
                        }
                    }
                }
                match best {
                    Some((i, item)) => {
                        out.push(item);
                        cursors[i] += 1;
                    }
                    None => break,
                }
            }
        }
        debug_assert_eq!(out.len(), self.len);
        for _ in 0..nb {
            let block = self.blocks.pop_back().expect("counted");
            self.pool.release(block.into_buffer());
        }
        self.heads_clear();
        self.len = 0;
        out
    }

    /// Replace this LSM's contents with `items` (already sorted), keeping
    /// the pool. Existing block buffers are recycled.
    pub fn rebuild_from_sorted(&mut self, items: Vec<Item>) {
        debug_assert!(items.windows(2).all(|w| w[0] <= w[1]));
        while let Some(block) = self.blocks.pop_back() {
            self.pool.release(block.into_buffer());
        }
        self.heads_clear();
        self.staged = None;
        self.len = items.len();
        if !items.is_empty() {
            let block = Block::from_sorted(items);
            let head = block.head();
            self.blocks.push_back(block);
            self.heads_push(head);
        }
        debug_assert!(self.check_invariants());
    }

    /// Materialize a staged singleton (if any) as a regular block so
    /// whole-structure operations (drains, splits) see every item in
    /// the block deque. Off the hot path; `len` already counts it.
    fn flush_staged(&mut self) {
        if let Some(item) = self.staged.take() {
            let singleton = Block::singleton_from(&mut self.pool, item);
            self.blocks.push_back(singleton);
            self.heads_push(item);
            self.restore_distinct_capacities();
        }
    }

    /// Merge a sorted batch into this LSM as one bulk operation: the
    /// batch is installed as a single tail block and the capacity
    /// cascade merges it into place, instead of `items.len()` separate
    /// insert cascades. Cost is proportional to the blocks the new
    /// block collides with — O(batch) amortized, never a full drain —
    /// so it is safe on the per-commit path of batched handles as well
    /// as for DLSM spying's stolen-item installs.
    pub fn merge_in_sorted(&mut self, items: Vec<Item>) {
        debug_assert!(items.windows(2).all(|w| w[0] <= w[1]));
        if items.is_empty() {
            return;
        }
        self.len += items.len();
        let block = Block::from_sorted(items);
        let head = block.head();
        self.blocks.push_back(block);
        self.heads_push(head);
        self.restore_distinct_capacities();
    }

    /// As [`Lsm::merge_in_sorted`], but copying from a borrowed sorted
    /// slice into a pool-drawn buffer, so a caller-retained staging
    /// buffer (e.g. a handle's insert buffer) can be reused across
    /// flushes without surrendering its allocation.
    pub fn merge_in_from(&mut self, items: &[Item]) {
        debug_assert!(items.windows(2).all(|w| w[0] <= w[1]));
        if items.is_empty() {
            return;
        }
        let mut buf = self.pool.acquire(items.len());
        buf.extend_from_slice(items);
        self.merge_in_sorted(buf);
    }

    /// Split for work stealing: drain everything, keep the even-indexed
    /// items (so both sides retain a sample of the full key range,
    /// including the minimum) and return the odd-indexed ones, sorted. A
    /// single remaining item is returned outright so a victim can always
    /// be fully drained. One pass, all buffers drawn from the pool.
    pub fn split_alternating(&mut self) -> Vec<Item> {
        if self.len == 0 {
            return Vec::new();
        }
        let all = self.take_all_sorted();
        if all.len() == 1 {
            return all;
        }
        let mut keep = self.pool.acquire(all.len().div_ceil(2));
        let mut steal = self.pool.acquire(all.len() / 2);
        for (i, &item) in all.iter().enumerate() {
            if i % 2 == 0 {
                keep.push(item);
            } else {
                steal.push(item);
            }
        }
        self.pool.release(all);
        self.len = keep.len();
        let block = Block::from_sorted(keep);
        let head = block.head();
        self.blocks.push_back(block);
        self.heads_push(head);
        debug_assert!(self.check_invariants());
        steal
    }

    /// Merge the tail run until all capacities are distinct again after
    /// an insertion appended a singleton: a single right-to-left cascade
    /// of pop/merge/push steps at the deque back. Each merge of two
    /// equal-capacity blocks (both filled past half) yields exactly the
    /// doubled capacity, so violations can only ever sit at the tail —
    /// no interior shifting, no restarts.
    ///
    /// Each level's pairwise merge dispatches through
    /// [`Block::merge_with`], so with the branch-free kernels enabled
    /// every level of at least [`kernels::MERGE_PATH_MIN`] combined
    /// items runs on the bidirectional two-chain kernel. (A fused
    /// variant that drained the whole colliding run in one tier-3
    /// loser-tree pass was benched and lost: its per-call tree setup
    /// and per-item replay cost more than the level-by-level rewrites
    /// it saved — see the EXPERIMENTS.md kernel ablation.)
    fn restore_distinct_capacities(&mut self) {
        let n = self.blocks.len();
        if n < 2 || self.blocks[n - 1].capacity() < self.blocks[n - 2].capacity() {
            debug_assert!(self.check_invariants());
            return;
        }
        // Carry the merged block in a local across cascade levels
        // instead of round-tripping it through the deques at each one.
        let mut carried = self.blocks.pop_back().expect("len >= 2");
        let mut carried_head = self.heads_pop().expect("mirrors blocks");
        while let Some(prev) = self.blocks.back() {
            if prev.capacity() > carried.capacity() {
                break;
            }
            let prev = self.blocks.pop_back().expect("checked non-empty");
            let prev_head = self.heads_pop().expect("mirrors blocks");
            carried_head = carried_head.min(prev_head);
            carried =
                Block::merge_with(prev, carried, &mut self.pool, self.branch_free, self.tier);
        }
        self.blocks.push_back(carried);
        self.heads_push(carried_head);
        debug_assert!(self.check_invariants());
    }

    /// Compact a non-empty block that has decayed to half its capacity
    /// or below (deletions shrink blocks in place; the paper's invariant
    /// is restored lazily here). Compaction happens in the block's own
    /// buffer; if the shrunken capacity collides with the right
    /// neighbour, one pairwise merge restores distinctness — the fill
    /// invariant guarantees the result cannot conflict any further
    /// (merged capacity ≥ the neighbour's but ≤ the pre-shrink one).
    fn shrink_at(&mut self, idx: usize) {
        self.blocks[idx].compact_in_place();
        if idx + 1 < self.blocks.len()
            && self.blocks[idx + 1].capacity() >= self.blocks[idx].capacity()
        {
            let right = self.blocks.remove(idx + 1).expect("index in range");
            self.heads_remove(idx + 1);
            let left = std::mem::replace(&mut self.blocks[idx], Block::placeholder());
            self.blocks[idx] =
                Block::merge_with(left, right, &mut self.pool, self.branch_free, self.tier);
            let head = self.blocks[idx].head();
            self.heads_set(idx, head);
        }
        debug_assert!(self.check_invariants());
    }

    /// Append a head to both mirrors.
    #[inline]
    fn heads_push(&mut self, item: Item) {
        self.heads.push(item);
        self.head_keys.push(item.key);
    }

    /// Pop the tail head from both mirrors.
    #[inline]
    fn heads_pop(&mut self) -> Option<Item> {
        self.head_keys.pop();
        self.heads.pop()
    }

    /// Remove `heads[idx]` from both mirrors.
    #[inline]
    fn heads_remove(&mut self, idx: usize) {
        self.heads.remove(idx);
        self.head_keys.remove(idx);
    }

    /// Overwrite `heads[idx]` in both mirrors.
    #[inline]
    fn heads_set(&mut self, idx: usize, item: Item) {
        self.heads[idx] = item;
        self.head_keys[idx] = item.key;
    }

    /// Clear both mirrors.
    #[inline]
    fn heads_clear(&mut self) {
        self.heads.clear();
        self.head_keys.clear();
    }

    /// Verify the paper's structural invariants (tests only):
    /// capacities strictly decreasing, each block `C/2 < len ≤ C`, len
    /// consistent.
    #[doc(hidden)]
    pub fn check_invariants(&self) -> bool {
        let caps_decreasing = self
            .blocks
            .iter()
            .zip(self.blocks.iter().skip(1))
            .all(|(a, b)| a.capacity() > b.capacity());
        let fill_ok = self
            .blocks
            .iter()
            .all(|b| b.len() * 2 > b.capacity() && b.len() <= b.capacity() && b.is_sorted());
        let len_ok = self.len
            == self.blocks.iter().map(Block::len).sum::<usize>() + usize::from(self.staged.is_some());
        let heads_ok = self.heads.len() == self.blocks.len()
            && self
                .heads
                .iter()
                .zip(self.blocks.iter())
                .all(|(&h, b)| b.peek() == Some(h))
            && self.head_keys.len() == self.heads.len()
            && self
                .head_keys
                .iter()
                .zip(self.heads.iter())
                .all(|(&k, h)| k == h.key);
        let staged_ok = self.staged.is_none() || self.branch_free;
        caps_decreasing && fill_ok && len_ok && heads_ok && staged_ok
    }
}

impl SequentialPq for Lsm {
    fn insert(&mut self, key: Key, value: Value) {
        let item = Item::new(key, value);
        self.len += 1;
        // Branch-free arm: defer the singleton. Every other insert is a
        // single field store; the next one merges the staged pair —
        // one compare, two stores — directly into a capacity-2 block
        // and lets the cascade continue from there.
        if self.branch_free {
            match self.staged.take() {
                None => self.staged = Some(item),
                Some(prev) => {
                    let (lo, hi) = if item <= prev { (item, prev) } else { (prev, item) };
                    let mut buf = self.pool.acquire(2);
                    buf.push(lo);
                    buf.push(hi);
                    self.blocks.push_back(Block::from_sorted(buf));
                    self.heads_push(lo);
                    self.restore_distinct_capacities();
                }
            }
            return;
        }
        // Kernels-off arm (frozen PR 4 baseline): half of all inserts
        // land next to a capacity-1 tail block and immediately merge
        // with it inline, skipping the singleton materialization for
        // the hottest cascade level.
        if self.blocks.back().is_some_and(|b| b.capacity() == 1) {
            let old = self.blocks.pop_back().expect("checked non-empty");
            self.heads_pop();
            let prev = old.head();
            let (lo, hi) = if item <= prev { (item, prev) } else { (prev, item) };
            let mut buf = self.pool.acquire(2);
            buf.push(lo);
            buf.push(hi);
            self.pool.release(old.into_buffer());
            self.blocks.push_back(Block::from_sorted(buf));
            self.heads_push(lo);
            self.restore_distinct_capacities();
        } else {
            let singleton = Block::singleton_from(&mut self.pool, item);
            self.blocks.push_back(singleton);
            self.heads_push(item);
        }
    }

    fn delete_min(&mut self) -> Option<Item> {
        // Scan the dense head mirror, not the blocks: the whole scan
        // reads a few contiguous cache lines and dereferences exactly
        // one block buffer (the winner's), instead of chasing every
        // block's heap buffer for its head.
        if self.heads.is_empty() {
            if let Some(s) = self.staged.take() {
                self.len -= 1;
                return Some(s);
            }
            return None;
        }
        let idx = if self.branch_free {
            simd::argmin(self.tier, &self.head_keys, &self.heads)
        } else {
            let mut best = self.heads[0];
            let mut idx = 0;
            for (i, &h) in self.heads.iter().enumerate().skip(1) {
                if h < best {
                    best = h;
                    idx = i;
                }
            }
            idx
        };
        let best = self.heads[idx];
        if let Some(s) = self.staged {
            // A staged tie is served first: equal items are
            // bit-identical, so either order yields the same bytes.
            if s <= best {
                self.staged = None;
                self.len -= 1;
                return Some(s);
            }
        }
        debug_assert_eq!(self.blocks[idx].peek(), Some(best));
        let block = &mut self.blocks[idx];
        block.drop_front();
        self.len -= 1;
        if block.is_empty() {
            let empty = self.blocks.remove(idx).expect("index in range");
            self.heads_remove(idx);
            self.pool.release(empty.into_buffer());
        } else {
            // The winner's next head sits adjacent to the popped item —
            // almost always the same cache line.
            let head = block.head();
            let needs_shrink = 2 * block.len() <= block.capacity();
            self.heads_set(idx, head);
            if needs_shrink {
                self.shrink_at(idx);
            }
        }
        debug_assert!(self.check_invariants());
        Some(best)
    }

    fn peek_min(&self) -> Option<Item> {
        match (self.heads.iter().min().copied(), self.staged) {
            (Some(h), Some(s)) => Some(h.min(s)),
            (h, s) => h.or(s),
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn clear(&mut self) {
        while let Some(block) = self.blocks.pop_back() {
            self.pool.release(block.into_buffer());
        }
        self.heads_clear();
        self.staged = None;
        self.len = 0;
    }
}

impl FromIterator<Item> for Lsm {
    fn from_iter<I: IntoIterator<Item = Item>>(iter: I) -> Self {
        Self::from_items(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_lsm() {
        let mut l = Lsm::new();
        assert!(l.is_empty());
        assert_eq!(l.delete_min(), None);
        assert_eq!(l.peek_min(), None);
        assert_eq!(l.block_count(), 0);
    }

    #[test]
    fn insert_merges_to_distinct_capacities() {
        let mut l = Lsm::new();
        for k in 0..8u64 {
            l.insert(k, 0);
            assert!(l.check_invariants(), "after insert {k}: {l:?}");
        }
        // 8 items fit in a single capacity-8 block.
        assert_eq!(l.block_count(), 1);
        assert_eq!(l.len(), 8);
    }

    #[test]
    fn block_count_is_logarithmic() {
        let mut l = Lsm::new();
        for k in 0..1000u64 {
            l.insert(k, 0);
        }
        assert!(l.block_count() <= 11, "blocks = {}", l.block_count());
    }

    #[test]
    fn sorted_output() {
        let mut l = Lsm::new();
        let keys = [13u64, 7, 42, 1, 99, 3, 56, 21, 0, 77];
        for &k in &keys {
            l.insert(k, k);
        }
        let out: Vec<Key> = std::iter::from_fn(|| l.delete_min()).map(|i| i.key).collect();
        let mut expect = keys.to_vec();
        expect.sort_unstable();
        assert_eq!(out, expect);
    }

    #[test]
    fn from_sorted_builds_valid_lsm() {
        let items: Vec<Item> = (0..100).map(|k| Item::new(k, 0)).collect();
        let l = Lsm::from_sorted(items);
        assert_eq!(l.len(), 100);
        assert!(l.check_invariants());
        assert_eq!(l.peek_min(), Some(Item::new(0, 0)));
    }

    #[test]
    fn pop_largest_block_returns_sorted_bulk() {
        let mut l = Lsm::new();
        for k in (0..64u64).rev() {
            l.insert(k, 0);
        }
        let before = l.len();
        let bulk = l.pop_largest_block().unwrap();
        assert!(bulk.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(l.len() + bulk.len(), before);
        assert!(l.check_invariants());
    }

    #[test]
    fn take_all_sorted_drains() {
        let mut l = Lsm::from_items((0..37).map(|k| Item::new(37 - k, k)).collect());
        let all = l.take_all_sorted();
        assert_eq!(all.len(), 37);
        assert!(all.windows(2).all(|w| w[0] <= w[1]));
        assert!(l.is_empty());
        assert_eq!(l.block_count(), 0);
    }

    #[test]
    fn take_all_sorted_merges_many_blocks() {
        // Interleave inserts and deletes to build a multi-block shape,
        // then check the k-way merge output exactly.
        let mut l = Lsm::new();
        let mut expect = Vec::new();
        for k in 0..100u64 {
            let key = (k * 37) % 256;
            l.insert(key, k);
            expect.push(Item::new(key, k));
        }
        for _ in 0..23 {
            let it = l.delete_min().unwrap();
            let pos = expect.iter().position(|&e| e == it).unwrap();
            expect.remove(pos);
        }
        assert!(l.block_count() > 1, "want a multi-block merge");
        let all = l.take_all_sorted();
        expect.sort_unstable();
        assert_eq!(all, expect);
        assert!(l.is_empty());
    }

    #[test]
    fn steady_state_hits_the_pool() {
        let mut l = Lsm::new();
        for k in 0..512u64 {
            l.insert(k, 0);
        }
        for k in 0..10_000u64 {
            l.insert(k % 997, 0);
            l.delete_min();
        }
        let stats = l.pool_stats();
        assert!(
            stats.hit_rate() > 0.9,
            "steady state should recycle nearly every buffer: {stats:?}"
        );
        assert!(stats.recycled_bytes > 0);
    }

    #[test]
    fn pool_disabled_still_correct() {
        let mut l = Lsm::with_pool_disabled();
        for k in (0..200u64).rev() {
            l.insert(k, k);
        }
        let out: Vec<Key> = std::iter::from_fn(|| l.delete_min()).map(|i| i.key).collect();
        assert_eq!(out, (0..200).collect::<Vec<_>>());
        assert_eq!(l.pool_stats().hits, 0);
    }

    #[test]
    fn rebuild_keeps_pool_and_contents() {
        let mut l = Lsm::new();
        for k in 0..64u64 {
            l.insert(k, 0);
        }
        l.rebuild_from_sorted((10..20).map(|k| Item::new(k, 1)).collect());
        assert_eq!(l.len(), 10);
        assert!(l.check_invariants());
        assert_eq!(l.peek_min(), Some(Item::new(10, 1)));
        // The old buffers were recycled, not leaked to the allocator.
        assert!(l.pool_stats().recycled_bytes > 0);
    }

    #[test]
    fn merge_in_sorted_bulk_installs() {
        let mut l = Lsm::new();
        for k in [5u64, 9, 1] {
            l.insert(k, 0);
        }
        l.merge_in_sorted(vec![Item::new(2, 1), Item::new(7, 1)]);
        assert_eq!(l.len(), 5);
        assert!(l.check_invariants());
        let out: Vec<Key> = std::iter::from_fn(|| l.delete_min()).map(|i| i.key).collect();
        assert_eq!(out, vec![1, 2, 5, 7, 9]);
        // Merging into an empty LSM installs directly.
        let mut e = Lsm::new();
        e.merge_in_sorted(vec![Item::new(3, 0)]);
        assert_eq!(e.len(), 1);
        e.merge_in_sorted(Vec::new());
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn split_alternating_halves() {
        let mut l = Lsm::new();
        for k in 0..101u64 {
            l.insert(k, k);
        }
        let steal = l.split_alternating();
        assert_eq!(steal.len(), 50);
        assert_eq!(l.len(), 51);
        assert!(l.check_invariants());
        assert!(steal.windows(2).all(|w| w[0] <= w[1]));
        // Stolen items are the odd-indexed ones; the victim keeps the min.
        assert_eq!(steal[0].key, 1);
        assert_eq!(l.peek_min(), Some(Item::new(0, 0)));
        // A single remaining item is stolen outright.
        let mut single = Lsm::new();
        single.insert(7, 7);
        let steal = single.split_alternating();
        assert_eq!(steal.len(), 1);
        assert!(single.is_empty());
        // And an empty LSM yields nothing.
        assert!(Lsm::new().split_alternating().is_empty());
    }

    /// Adversarial loser-tree differential: build identical multi-block
    /// shapes with the branch-free and kernels-off arms and compare
    /// `take_all_sorted` on all-equal, pre-sorted and reverse-sorted
    /// block sets (the pairwise head scan is the reference kernel).
    #[test]
    fn take_all_sorted_matches_pairwise_reference() {
        type KeyFn = Box<dyn Fn(u64) -> u64>;
        let shapes: [(&str, KeyFn); 3] = [
            ("all-equal", Box::new(|_| 42)),
            ("pre-sorted", Box::new(|k| k)),
            ("reverse-sorted", Box::new(|k| 500 - k)),
        ];
        for (name, keyed) in shapes {
            let mut fast = Lsm::new();
            let mut reference = Lsm::with_kernels_disabled();
            for k in 0..500u64 {
                fast.insert(keyed(k), k);
                reference.insert(keyed(k), k);
            }
            // Interior deletions give some blocks dead prefixes.
            for _ in 0..77 {
                assert_eq!(fast.delete_min(), reference.delete_min(), "{name}");
            }
            assert!(fast.block_count() > 1, "{name}: want a k-way merge");
            assert_eq!(fast.take_all_sorted(), reference.take_all_sorted(), "{name}");
            assert!(fast.is_empty() && reference.is_empty());
        }
    }

    #[test]
    fn kernels_disabled_still_correct() {
        let mut l = Lsm::with_kernels_disabled();
        for k in (0..300u64).rev() {
            l.insert(k, k);
        }
        let out: Vec<Key> = std::iter::from_fn(|| l.delete_min()).map(|i| i.key).collect();
        assert_eq!(out, (0..300).collect::<Vec<_>>());
    }

    #[test]
    fn merge_in_from_retains_caller_buffer() {
        let mut l = Lsm::new();
        l.insert(5, 0);
        let staged = vec![Item::new(1, 1), Item::new(9, 1)];
        l.merge_in_from(&staged);
        assert_eq!(staged.len(), 2, "caller keeps the staging buffer");
        assert_eq!(l.len(), 3);
        assert!(l.check_invariants());
        l.merge_in_from(&[]);
        assert_eq!(l.len(), 3);
        let out: Vec<Key> = std::iter::from_fn(|| l.delete_min()).map(|i| i.key).collect();
        assert_eq!(out, vec![1, 5, 9]);
    }

    #[test]
    fn deletions_shrink_blocks() {
        let mut l = Lsm::new();
        for k in 0..128u64 {
            l.insert(k, 0);
        }
        for _ in 0..100 {
            l.delete_min();
            assert!(l.check_invariants());
        }
        assert_eq!(l.len(), 28);
    }

    #[test]
    fn staged_singleton_is_observable_everywhere() {
        // One insert parks the item in the staging slot: no block
        // exists yet, but every read path must see it.
        let mut l = Lsm::new();
        l.insert(7, 9);
        assert_eq!(l.len(), 1);
        assert_eq!(l.block_count(), 0);
        assert_eq!(l.peek_min(), Some(Item::new(7, 9)));
        assert_eq!(l.iter().copied().collect::<Vec<_>>(), vec![Item::new(7, 9)]);
        assert!(l.check_invariants());
        assert_eq!(l.delete_min(), Some(Item::new(7, 9)));
        assert_eq!(l.delete_min(), None);

        // Drains flush the staged item into the output.
        let mut l = Lsm::new();
        for k in [5u64, 3, 1] {
            l.insert(k, 0);
        }
        let drained: Vec<Key> = l.take_all_sorted().iter().map(|i| i.key).collect();
        assert_eq!(drained, vec![1, 3, 5]);
        assert!(l.is_empty());

        // A staged item smaller than every block head is served first.
        let mut l = Lsm::new();
        l.insert(5, 0);
        l.insert(3, 0);
        l.insert(1, 0);
        assert_eq!(l.delete_min(), Some(Item::new(1, 0)));
        assert_eq!(l.delete_min(), Some(Item::new(3, 0)));
        assert_eq!(l.delete_min(), Some(Item::new(5, 0)));
    }

    #[test]
    fn split_alternating_sees_staged_item() {
        let mut l = Lsm::new();
        for k in 0..5u64 {
            l.insert(k, 0);
        }
        // 5 inserts leave the fifth staged; the split must cover it.
        let steal = l.split_alternating();
        assert_eq!(steal.len() + l.len(), 5);
        let mut all: Vec<Key> = steal.iter().map(|i| i.key).collect();
        all.extend(l.take_all_sorted().iter().map(|i| i.key));
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
    }

    proptest::proptest! {
        #[test]
        fn prop_matches_model(
            ops in proptest::collection::vec((proptest::bool::ANY, 0u64..1000), 0..400)
        ) {
            let mut l = Lsm::new();
            let mut model: Vec<Item> = Vec::new();
            for (i, &(is_insert, k)) in ops.iter().enumerate() {
                if is_insert {
                    l.insert(k, i as u64);
                    model.push(Item::new(k, i as u64));
                } else {
                    model.sort();
                    let expect = if model.is_empty() { None } else { Some(model.remove(0)) };
                    proptest::prop_assert_eq!(l.delete_min(), expect);
                }
                proptest::prop_assert!(l.check_invariants());
                proptest::prop_assert_eq!(l.len(), model.len());
            }
        }

        #[test]
        fn prop_block_count_logarithmic(n in 1usize..2000) {
            let mut l = Lsm::new();
            for k in 0..n as u64 {
                l.insert(k, 0);
            }
            let bound = (usize::BITS - n.leading_zeros()) as usize + 1;
            proptest::prop_assert!(l.block_count() <= bound);
        }

        /// The branch-free tiers are a drop-in replacement: any op
        /// sequence yields the same observable behaviour as the
        /// kernels-off (PR 4 scalar) arm, including mid-sequence drains.
        #[test]
        fn prop_matches_kernels_off(
            ops in proptest::collection::vec((0u8..4, 0u64..500), 0..300)
        ) {
            let mut fast = Lsm::new();
            let mut reference = Lsm::with_kernels_disabled();
            for (i, &(op, k)) in ops.iter().enumerate() {
                match op {
                    0 | 1 => {
                        fast.insert(k, i as u64);
                        reference.insert(k, i as u64);
                    }
                    2 => proptest::prop_assert_eq!(fast.delete_min(), reference.delete_min()),
                    _ => proptest::prop_assert_eq!(
                        fast.take_all_sorted(),
                        reference.take_all_sorted()
                    ),
                }
                proptest::prop_assert_eq!(fast.len(), reference.len());
                proptest::prop_assert!(fast.check_invariants());
            }
        }

        #[test]
        fn prop_matches_legacy_kernels(
            ops in proptest::collection::vec((proptest::bool::ANY, 0u64..500), 0..300)
        ) {
            let mut new = Lsm::new();
            let mut old = legacy::LegacyLsm::new();
            for (i, &(is_insert, k)) in ops.iter().enumerate() {
                if is_insert {
                    new.insert(k, i as u64);
                    old.insert(k, i as u64);
                } else {
                    proptest::prop_assert_eq!(new.delete_min(), old.delete_min());
                }
                proptest::prop_assert_eq!(new.len(), old.len());
                proptest::prop_assert!(new.check_invariants());
            }
        }
    }
}
