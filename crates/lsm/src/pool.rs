//! Size-classed pool of block buffers.
//!
//! Every structural change in the LSM — inserting a singleton, merging
//! two blocks in the cascade, compacting a decayed block, draining for a
//! spy — used to allocate a fresh `Vec<Item>` and drop the old one. The
//! companion k-LSM paper (arXiv:1503.05698) calls out pooling and reuse
//! of block arrays as essential to making the merge cascade competitive,
//! so this module keeps retired buffers on per-LSM free lists, one list
//! per power-of-two size class, and hands them back to the merge kernels.
//!
//! The pool is owned by a single [`crate::Lsm`] (which is `&mut self`
//! everywhere), so it needs no synchronisation: hit/miss bookkeeping is
//! two plain `u64` increments. The same events are additionally mirrored
//! into [`pq_traits::telemetry`] (`lsm_pool_hit` / `lsm_pool_miss` /
//! `lsm_pool_recycled_bytes`) so concurrent harness runs can export pool
//! behaviour per benchmark cell behind the `telemetry` cargo feature.

use pq_traits::telemetry;
use pq_traits::Item;

/// Retired buffers kept per size class. Two is the steady-state need of
/// the merge cascade (one source released per merge, one acquired one
/// class up); a little slack absorbs spy splits and shrink merges.
const MAX_FREE_PER_CLASS: usize = 4;

/// Plain counters describing pool behaviour since construction.
///
/// Always maintained (they cost two non-atomic increments per pool
/// operation), independent of the `telemetry` cargo feature, so the
/// microbenchmarks can report hit rates from any build.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffer requests served from a free list.
    pub hits: u64,
    /// Buffer requests that fell back to a fresh heap allocation.
    pub misses: u64,
    /// Bytes of buffer capacity returned to free lists for reuse.
    pub recycled_bytes: u64,
    /// Buffers dropped because their free list was full.
    pub dropped: u64,
}

impl PoolStats {
    /// Fraction of requests served without allocating, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Per-LSM free lists of power-of-two `Vec<Item>` buffers.
#[derive(Debug, Default)]
pub struct BlockPool {
    /// `classes[c]` holds empty buffers with capacity ≥ `1 << c`.
    classes: Vec<Vec<Vec<Item>>>,
    stats: PoolStats,
    /// When set, `acquire` always allocates and `release` always drops —
    /// the A/B "pool off" arm of the allocation ablation.
    disabled: bool,
}

/// Pools are intentionally not cloned with their owner: a cloned LSM
/// starts with empty free lists and zeroed counters (the buffers inside
/// the cloned blocks are cloned by `Block` itself).
impl Clone for BlockPool {
    fn clone(&self) -> Self {
        Self {
            classes: Vec::new(),
            stats: PoolStats::default(),
            disabled: self.disabled,
        }
    }
}

impl BlockPool {
    /// An empty, enabled pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// A pool that never recycles: every `acquire` allocates, every
    /// `release` drops. Used by the ablation benchmarks.
    pub fn disabled() -> Self {
        Self {
            disabled: true,
            ..Self::default()
        }
    }

    /// `true` if this pool recycles buffers.
    pub fn is_enabled(&self) -> bool {
        !self.disabled
    }

    /// Counters since construction.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Size class that can serve a request for `min_capacity` items:
    /// `log2` of the next power of two.
    #[inline]
    fn class_for(min_capacity: usize) -> usize {
        min_capacity
            .next_power_of_two()
            .trailing_zeros() as usize
    }

    /// Fetch an empty buffer with capacity ≥ `min_capacity`, reusing a
    /// retired one when the matching free list is non-empty.
    ///
    /// Pool events use the telemetry `record_quiet` variants: the pool
    /// only runs under `&mut self`, so its events are not useful chaos
    /// hook points and must not tax the kernel hot path.
    #[inline]
    pub fn acquire(&mut self, min_capacity: usize) -> Vec<Item> {
        let class = Self::class_for(min_capacity);
        if let Some(buf) = self.classes.get_mut(class).and_then(Vec::pop) {
            debug_assert!(buf.is_empty() && buf.capacity() >= min_capacity);
            self.stats.hits += 1;
            telemetry::record_quiet(telemetry::Event::LsmPoolHit);
            return buf;
        }
        self.stats.misses += 1;
        telemetry::record_quiet(telemetry::Event::LsmPoolMiss);
        Vec::with_capacity(1usize << class)
    }

    /// Return a retired buffer to the free list matching its capacity
    /// (rounded *down* to a power of two, so an acquired buffer is never
    /// smaller than its class promises). Full lists drop the buffer.
    #[inline]
    pub fn release(&mut self, mut buf: Vec<Item>) {
        if self.disabled || buf.capacity() == 0 {
            return;
        }
        buf.clear();
        let class = (usize::BITS - 1 - buf.capacity().leading_zeros()) as usize;
        if self.classes.len() <= class {
            self.classes.resize_with(class + 1, Vec::new);
        }
        let list = &mut self.classes[class];
        if list.len() >= MAX_FREE_PER_CLASS {
            self.stats.dropped += 1;
            return;
        }
        let bytes = (buf.capacity() * core::mem::size_of::<Item>()) as u64;
        self.stats.recycled_bytes += bytes;
        telemetry::record_n_quiet(telemetry::Event::LsmPoolRecycledBytes, bytes);
        list.push(buf);
    }

    /// Number of buffers currently parked on free lists.
    pub fn free_buffers(&self) -> usize {
        self.classes.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_miss_then_hit() {
        let mut p = BlockPool::new();
        let buf = p.acquire(5);
        assert!(buf.capacity() >= 5);
        assert_eq!(p.stats().misses, 1);
        p.release(buf);
        assert_eq!(p.free_buffers(), 1);
        let again = p.acquire(5);
        assert!(again.capacity() >= 5);
        assert_eq!(p.stats().hits, 1);
        assert!(p.stats().recycled_bytes > 0);
    }

    #[test]
    fn release_rounds_capacity_down() {
        let mut p = BlockPool::new();
        // A capacity-5 buffer lands in class 2 (4), so acquiring for 8
        // must miss rather than hand back something too small.
        p.release(Vec::with_capacity(5));
        let buf = p.acquire(8);
        assert!(buf.capacity() >= 8);
        assert_eq!(p.stats().misses, 1);
        let small = p.acquire(3);
        assert!(small.capacity() >= 3);
        assert_eq!(p.stats().hits, 1);
    }

    #[test]
    fn full_class_drops() {
        let mut p = BlockPool::new();
        for _ in 0..MAX_FREE_PER_CLASS + 2 {
            p.release(Vec::with_capacity(8));
        }
        assert_eq!(p.free_buffers(), MAX_FREE_PER_CLASS);
        assert_eq!(p.stats().dropped, 2);
    }

    #[test]
    fn disabled_pool_never_recycles() {
        let mut p = BlockPool::disabled();
        p.release(Vec::with_capacity(16));
        assert_eq!(p.free_buffers(), 0);
        let _ = p.acquire(16);
        assert_eq!(p.stats().hits, 0);
        assert_eq!(p.stats().misses, 1);
        assert!(!p.is_enabled());
    }

    #[test]
    fn clone_starts_empty() {
        let mut p = BlockPool::new();
        p.release(Vec::with_capacity(4));
        let q = p.clone();
        assert_eq!(q.free_buffers(), 0);
        assert_eq!(q.stats(), PoolStats::default());
    }

    #[test]
    fn zero_capacity_request_is_served() {
        let mut p = BlockPool::new();
        let buf = p.acquire(0);
        assert!(buf.capacity() >= 1);
    }
}
