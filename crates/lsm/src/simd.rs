//! Runtime-dispatched SIMD kernels: vector merge, wide argmin, and
//! vector compare-exchange lanes for the sorting networks.
//!
//! PR 5 established that the branch-free scalar kernels are limited by
//! instruction-level parallelism, not branches — the bidirectional
//! two-chain merge won 1.2–1.9× purely by running two independent
//! dependency chains. This module converts that headroom into data
//! parallelism with explicit `core::arch::x86_64` kernels over the
//! 16-byte `Item` (two `u64`s compared lexicographically), giving 2
//! lanes per ymm (AVX2) and 4 lanes per zmm (AVX-512):
//!
//! * **Vector merge** ([`merge_simd_append`]), three regimes:
//!   *small* merges (combined size within
//!   [`KernelTier::small_merge_cap`]) build one bitonic lane image
//!   with masked sentinel-filled loads and run a single in-register
//!   bitonic network — no loop at all; *mid* sizes run the streaming
//!   register-resident chunked bitonic merge (after Chhugani et al.) —
//!   a carry of the [`KernelTier::merge_chunk`] largest in-flight
//!   items lives in registers, each round refills — reversed — from
//!   whichever input's head is smaller (branchless pointer select) and
//!   runs the full network; *large* merges (≥ [`CHAINS_MIN`]) split at
//!   the merge-path midpoint (cf. the merge-path bulk operations of
//!   arXiv:2504.11652) and run the two halves as interleaved chains,
//!   because one chain alone is latency-bound: its carry feeds the
//!   next round through the full network depth, and two independent
//!   dependency chains fill those bubbles — the same trick that won
//!   PR 5's bidirectional scalar merge.
//! * **Wide argmin** ([`argmin`]): `vpminuq` vertical min over the
//!   queue's keys-only `head_keys` mirror — eight candidate keys per
//!   plain 512-bit load, no key-extraction shuffles — with a masked
//!   sentinel-filled tail load, a three-round broadcast-reduce, and an
//!   equality re-scan that recovers the *first* index via a compare
//!   mask, falling back to the item-level scan only when a duplicated
//!   minimum key needs the lexicographic tie-break. Replaces the
//!   serial conditional-move chain of `kernels::argmin` on the dense
//!   `heads` mirror.
//! * **Vector compare-exchange spans** ([`cex_span`]): one
//!   `vpcmpuq`/blend pair handles 2 (AVX2) or 4 (AVX-512) packed
//!   `u128` lanes, re-arming the Batcher sorting networks and the
//!   chunked-bitonic ablation tier in [`crate::kernels`] — every
//!   network stage is a set of disjoint `(i, i+k)` spans, which map
//!   directly onto vertical vector compare-exchanges.
//!
//! # Dispatch
//!
//! The tier is selected once at queue construction ([`active_tier`]):
//! `is_x86_feature_detected!` picks the best of scalar → AVX2 →
//! AVX-512 (`avx512f/bw/dq/vl`), and the `LSM_FORCE_KERNEL_TIER`
//! environment variable (`scalar|avx2|avx512`) forces a lower tier for
//! tests, benches, and deterministic CI (forcing a tier the host
//! cannot run clamps down with a warning rather than crashing). All
//! vector code is `cfg`-gated to `x86_64`; every other target compiles
//! to the scalar kernels unconditionally. The PR 5 scalar kernels
//! remain the always-available fallback and the `simd-off` A/B arm
//! ([`crate::Lsm::with_simd_disabled`]).
//!
//! Production dispatch was settled the PR 5 way — whole-queue
//! interleaved A/B in the `lsm_kernels` bench, not raw microbenches
//! (see EXPERIMENTS.md "SIMD kernel ablation" for the
//! predictor-memorization caveat and the recorded numbers). On the
//! measured host the A/B kept *every* production path scalar: the
//! merge kernels are port-5 throughput-bound and lose to the
//! bidirectional two-chain scalar merge outright, and the wide argmin
//! — despite winning the standalone throughput microbench 1.4–2.7× —
//! loses in-queue because its ~25-cycle reduce chain sits on
//! `delete_min`'s serial critical path while the head mirror never
//! grows past ~20 entries (see [`SIMD_ARGMIN_MIN`] and
//! [`KernelTier::merge_profitable`]). Every vector kernel remains a
//! tested, telemetered ablation arm reachable via forced tiers; kernel
//! selection is observable through the `lsm_kernel_simd_merge_hits` /
//! `lsm_kernel_simd_argmin_hits` / `lsm_kernel_simd_cex_hits`
//! telemetry counters.
//!
//! # Layout contract
//!
//! The kernels load `Item` arrays straight into vector registers —  no
//! pack/unpack shifts on the merge path — relying on `Item` being
//! `repr(C)` with `key` at offset 0 and `value` at offset 8. Within a
//! 128-bit lane the *low* `u64` element is therefore the primary sort
//! key; the packed-`u128` network buffers of [`crate::kernels`] keep
//! the key in the *high* element. Both comparison orders are
//! implemented; the compile-time asserts below pin the layout.

use crate::kernels::{self, Lane};
use pq_traits::{telemetry, Item};

const _: () = {
    assert!(core::mem::size_of::<Item>() == 16);
    assert!(core::mem::align_of::<Item>() == 8);
    assert!(core::mem::offset_of!(Item, key) == 0);
    assert!(core::mem::offset_of!(Item, value) == 8);
};

/// Kernel tier dispatched by an LSM instance. Ordered: a tier can run
/// every kernel of the tiers below it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum KernelTier {
    /// The PR 5 branch-free scalar kernels (always available; the
    /// `simd-off` A/B arm and the only tier on non-x86_64 targets).
    Scalar,
    /// 256-bit kernels: 2 item lanes per ymm (`avx2`).
    Avx2,
    /// 512-bit kernels: 4 item lanes per zmm (`avx512f/bw/dq/vl`).
    Avx512,
}

impl KernelTier {
    /// Stable lowercase name, also the accepted `LSM_FORCE_KERNEL_TIER`
    /// values and the `simd_tier` string in `--metrics` JSON exports.
    pub fn name(self) -> &'static str {
        match self {
            KernelTier::Scalar => "scalar",
            KernelTier::Avx2 => "avx2",
            KernelTier::Avx512 => "avx512",
        }
    }

    /// Parse a [`KernelTier::name`] string.
    pub fn parse(s: &str) -> Option<KernelTier> {
        match s {
            "scalar" => Some(KernelTier::Scalar),
            "avx2" => Some(KernelTier::Avx2),
            "avx512" => Some(KernelTier::Avx512),
            _ => None,
        }
    }

    /// Best tier the running CPU supports (ignores the env override).
    pub fn detect_hw() -> KernelTier {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx512f")
                && std::arch::is_x86_feature_detected!("avx512bw")
                && std::arch::is_x86_feature_detected!("avx512dq")
                && std::arch::is_x86_feature_detected!("avx512vl")
            {
                return KernelTier::Avx512;
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                return KernelTier::Avx2;
            }
        }
        KernelTier::Scalar
    }

    /// `true` if the running CPU can execute this tier's kernels.
    pub fn available(self) -> bool {
        self <= KernelTier::detect_hw()
    }

    /// Runtime-detected CPU feature names relevant to kernel dispatch,
    /// in a fixed order, for embedding in benchmark metadata. Empty on
    /// non-x86_64 targets (the dispatch is scalar-only there).
    pub fn detected_cpu_features() -> Vec<&'static str> {
        #[cfg(target_arch = "x86_64")]
        {
            let mut out = Vec::new();
            macro_rules! probe {
                ($($f:tt),*) => {
                    $(if std::arch::is_x86_feature_detected!($f) {
                        out.push($f);
                    })*
                };
            }
            probe!("sse4.2", "avx", "avx2", "avx512f", "avx512bw", "avx512dq", "avx512vl");
            out
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            Vec::new()
        }
    }

    /// Every tier the running CPU supports, lowest first. The forced-
    /// tier equivalence tests iterate this so they exercise exactly the
    /// kernels the host can run.
    pub fn available_tiers() -> Vec<KernelTier> {
        [KernelTier::Scalar, KernelTier::Avx2, KernelTier::Avx512]
            .into_iter()
            .filter(|t| t.available())
            .collect()
    }

    /// Items per merge chunk of the streaming vector merge: one chunk
    /// is two registers ([`merge_simd_append`] keeps a two-register
    /// carry and runs a `2 × chunk`-lane network per round).
    pub fn merge_chunk(self) -> usize {
        match self {
            KernelTier::Scalar => usize::MAX, // never viable
            KernelTier::Avx2 => 4,
            KernelTier::Avx512 => 8,
        }
    }

    /// Largest combined merge size handled entirely in registers by the
    /// small-merge kernels (one masked load per input register, one
    /// bitonic network, masked stores — no loop at all).
    pub fn small_merge_cap(self) -> usize {
        match self {
            KernelTier::Scalar => 0,
            KernelTier::Avx2 => 8,
            KernelTier::Avx512 => 16,
        }
    }

    /// `true` if [`merge_simd_append`] covers a merge of two runs of
    /// these lengths on this tier: either the whole merge fits the
    /// in-register small kernel, or both sides can supply at least one
    /// full streaming chunk. The scalar tier never routes here.
    pub fn merge_viable(self, la: usize, lb: usize) -> bool {
        self != KernelTier::Scalar
            && (la + lb <= self.small_merge_cap()
                || (la >= self.merge_chunk() && lb >= self.merge_chunk()))
    }

    /// `true` if the *production* queue routes a merge of these
    /// lengths to the vector kernel — the subset of [`merge_viable`]
    /// shapes where the whole-queue interleaved A/B measured a win
    /// (see EXPERIMENTS.md "SIMD kernel ablation"). On the measured
    /// host that subset is *empty*: the streaming and two-chain
    /// merges are port-5 throughput-bound (every `vpcmpuq` and lane
    /// shuffle competes for one port) and lose 0.43–0.73× to the
    /// bidirectional scalar merge at every size, and the in-register
    /// small kernels peak at ~1.05× standalone over too narrow a
    /// window to survive the whole-queue A/B (0.96–0.99×). All vector
    /// merge kernels are retained as tested, telemetered ablation
    /// arms reachable through [`merge_viable`] + [`merge_simd_append`]
    /// rather than production paths; a host whose A/B clears the
    /// `lsm_kernels` gate can re-open the window here.
    pub fn merge_profitable(self, la: usize, lb: usize) -> bool {
        let _ = (self, la, lb);
        false
    }
}

/// Tier forced or detected for this process: `LSM_FORCE_KERNEL_TIER`
/// when set (clamped to what the CPU supports, with a one-time warning
/// if clamping or parsing had to intervene), the hardware detection
/// result otherwise. Cached — construction-time queries after the first
/// are a single atomic load.
pub fn active_tier() -> KernelTier {
    static ACTIVE: std::sync::OnceLock<KernelTier> = std::sync::OnceLock::new();
    *ACTIVE.get_or_init(|| {
        let hw = KernelTier::detect_hw();
        match std::env::var("LSM_FORCE_KERNEL_TIER") {
            Ok(raw) => match KernelTier::parse(&raw) {
                Some(forced) if forced <= hw => forced,
                Some(forced) => {
                    eprintln!(
                        "lsm: LSM_FORCE_KERNEL_TIER={} not supported by this CPU \
                         (detected {}), clamping",
                        forced.name(),
                        hw.name()
                    );
                    hw
                }
                None => {
                    eprintln!(
                        "lsm: ignoring invalid LSM_FORCE_KERNEL_TIER='{raw}' \
                         (expected scalar|avx2|avx512), using detected {}",
                        hw.name()
                    );
                    hw
                }
            },
            Err(_) => hw,
        }
    })
}

/// Smallest `heads` length routed to the wide argmin on the AVX-512
/// tier: the measured *serial-latency* crossover. The vector kernel
/// wins the standalone throughput microbench from ~13 keys up
/// (1.4–2.7×, iterations pipeline), but inside `delete_min` each call
/// sits on the op-to-op critical path, where what counts is the
/// ~25-cycle load → `vpminuq` → three-round broadcast-reduce →
/// mask-compare → `kmov`+`tzcnt` dependency chain — longer than the
/// scalar conditional-move scan (≈ n cycles) until roughly two dozen
/// heads. The whole-queue interleaved A/B confirmed it: gating at 8
/// lost 14–18% of steady throughput at sizes 100k–1M. The mirror
/// holds at most ⌈log₂ n⌉ + 1 heads (≈ 21 at a million items), so on
/// realistic sizes this threshold never fires and production argmin
/// is effectively scalar on the measured host; the vector kernels
/// stay reachable as forced ablation arms via [`argmin_forced`]. The
/// AVX2 tier is worse still — without `vpminuq` its vertical min is a
/// three-op compare+blend — and has no profitable length at all.
pub const SIMD_ARGMIN_MIN: usize = 24;

/// Branch-free argmin over a non-empty item slice and its keys-only
/// twin (`keys[i] == items[i].key`, the queue's `head_keys` mirror):
/// index of the smallest item, first occurrence on ties — bit-for-bit
/// the contract of [`kernels::argmin`], which remains both the scalar
/// tier and the short-slice fallback. The vector tiers reduce over the
/// dense key array (eight candidates per 512-bit load, no lane
/// shuffles) and only touch `items` when a duplicated minimum key
/// forces a lexicographic tie-break.
#[inline]
pub fn argmin(tier: KernelTier, keys: &[u64], items: &[Item]) -> usize {
    debug_assert!(!items.is_empty());
    debug_assert_eq!(keys.len(), items.len());
    if tier == KernelTier::Avx512 && items.len() >= SIMD_ARGMIN_MIN {
        return argmin_forced(tier, keys, items);
    }
    let _ = (tier, keys);
    kernels::argmin(items)
}

/// Dispatch straight to the tier's vector argmin with no length
/// cutoff. The equivalence tests and the kernel probe use this to
/// exercise the vector kernels below [`SIMD_ARGMIN_MIN`]; production
/// code goes through [`argmin`].
#[doc(hidden)]
pub fn argmin_forced(tier: KernelTier, keys: &[u64], items: &[Item]) -> usize {
    debug_assert!(!items.is_empty());
    debug_assert_eq!(keys.len(), items.len());
    #[cfg(target_arch = "x86_64")]
    {
        if items.len() >= 2 {
            match tier {
                KernelTier::Avx512 => {
                    telemetry::record_quiet(telemetry::Event::LsmKernelSimdArgminHit);
                    // SAFETY: tier dispatch guarantees the features.
                    return unsafe { x86::argmin_keys_avx512(keys, items) };
                }
                KernelTier::Avx2 => {
                    telemetry::record_quiet(telemetry::Event::LsmKernelSimdArgminHit);
                    // SAFETY: tier dispatch guarantees the features.
                    return unsafe { x86::argmin_keys_avx2(keys, items) };
                }
                KernelTier::Scalar => {}
            }
        }
    }
    let _ = (tier, keys);
    kernels::argmin(items)
}

/// Combined merge size at or above which the AVX-512 path splits the
/// merge at its midpoint (merge-path partition) and runs the two
/// halves as *interleaved* register chains. One chain's bitonic
/// network is a serial dependency (the carry feeds the next round
/// through the full network depth); two independent chains fill the
/// latency bubbles, exactly the trick that won PR 5's bidirectional
/// scalar merge. Below this the split/tail overhead doesn't pay.
pub const CHAINS_MIN: usize = 64;

/// Merge-path partition: smallest `i` (ties drawn from `a` first) such
/// that `a[..i]` and `b[..k-i]` are exactly the `k` smallest items of
/// the merge under the stable "take `a` on ties" order of
/// [`kernels::scalar_merge_append`]. Returns `(i, k - i)`.
#[cfg(target_arch = "x86_64")]
fn merge_path_split(a: &[Item], b: &[Item], k: usize) -> (usize, usize) {
    let (na, nb) = (a.len(), b.len());
    debug_assert!(k <= na + nb);
    let mut lo = k.saturating_sub(nb);
    let mut hi = k.min(na);
    while lo < hi {
        let i = (lo + hi) / 2;
        let j = k - i;
        // `a[i]` still belongs to the first `k` while some `b[j-1] >=
        // a[i]` is counted there in its place.
        if i < na && j > 0 && b[j - 1] >= a[i] {
            lo = i + 1;
        } else {
            hi = i;
        }
    }
    let (i, j) = (lo, k - lo);
    debug_assert!(i == 0 || j == nb || a[i - 1] <= b[j]);
    debug_assert!(j == 0 || i == na || b[j - 1] < a[i]);
    (i, j)
}

/// Vector merge of two sorted runs, appended to `out`. Requires
/// [`KernelTier::merge_viable`]. Three regimes (AVX-512; AVX2 has the
/// first two): combined size within [`KernelTier::small_merge_cap`]
/// runs one in-register bitonic network over masked sentinel-filled
/// loads; mid sizes run the streaming single-chain register merge;
/// sizes at or past [`CHAINS_MIN`] split at the merge-path midpoint
/// into two interleaved chains. Tails shorter than a chunk finish
/// through a stack buffer with the scalar cursor kernel — no heap
/// traffic. Output is byte-identical to
/// [`kernels::scalar_merge_append`].
pub fn merge_simd_append(tier: KernelTier, a: &[Item], b: &[Item], out: &mut Vec<Item>) {
    debug_assert!(tier.merge_viable(a.len(), b.len()));
    debug_assert!(a.windows(2).all(|w| w[0] <= w[1]));
    debug_assert!(b.windows(2).all(|w| w[0] <= w[1]));
    telemetry::record_quiet(telemetry::Event::LsmKernelSimdMergeHit);
    #[cfg(target_arch = "x86_64")]
    {
        let total = a.len() + b.len();
        let base = out.len();
        out.reserve(total);
        // SAFETY: tier dispatch guarantees the features; merge_viable
        // guarantees the small kernel fits or both runs hold at least
        // one full chunk; `out` has `total` reserved slots which every
        // kernel below fills exactly.
        unsafe {
            let po = out.as_mut_ptr().add(base);
            match tier {
                KernelTier::Avx512 => {
                    if total <= KernelTier::Avx512.small_merge_cap() {
                        x86::merge_small_avx512(a, b, po);
                    } else if total >= CHAINS_MIN {
                        let (i, j) = merge_path_split(a, b, total / 2);
                        x86::merge_segment_pair_avx512(
                            &a[..i],
                            &b[..j],
                            po,
                            &a[i..],
                            &b[j..],
                            po.add(total / 2),
                        );
                    } else {
                        x86::merge_segment_avx512(a, b, po);
                    }
                }
                KernelTier::Avx2 => {
                    if total <= KernelTier::Avx2.small_merge_cap() {
                        x86::merge_small_avx2(a, b, po);
                    } else {
                        x86::merge_segment_avx2(a, b, po);
                    }
                }
                KernelTier::Scalar => unreachable!("merge_viable excludes the scalar tier"),
            }
            out.set_len(base + total);
        }
        debug_assert!(out[base..].windows(2).all(|w| w[0] <= w[1]));
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        // Unreachable: merge_viable is false for every tier off x86_64.
        let _ = (a, b, out);
        unreachable!("no SIMD tier exists off x86_64")
    }
}

/// Vertical compare-exchange span over packed [`Lane`]s: for `t` in
/// `0..n`, order `buf[i + t] <= buf[j + t]`. Spans must be disjoint
/// (`j >= i + n`), which every Batcher/bitonic network stage satisfies.
/// The scalar tier (and sub-vector remainders) run the plain `u128`
/// min/max compare-exchange.
#[inline]
pub(crate) fn cex_span(tier: KernelTier, buf: &mut [Lane], i: usize, j: usize, n: usize) {
    debug_assert!(j >= i + n, "overlapping cex span");
    debug_assert!(j + n <= buf.len());
    #[cfg(target_arch = "x86_64")]
    {
        match tier {
            // SAFETY: tier dispatch guarantees the features; bounds
            // checked by the debug_asserts above and the callers'
            // network schedules.
            KernelTier::Avx512 if n >= 4 => unsafe {
                return x86::cex_span_avx512(buf.as_mut_ptr(), i, j, n);
            },
            KernelTier::Avx2 if n >= 2 => unsafe {
                return x86::cex_span_avx2(buf.as_mut_ptr(), i, j, n);
            },
            _ => {}
        }
    }
    let _ = tier;
    for t in 0..n {
        let (x, y) = (buf[i + t], buf[j + t]);
        buf[i + t] = x.min(y);
        buf[j + t] = x.max(y);
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! The raw vector kernels. Everything here is `unsafe` and
    //! `target_feature`-gated; the safe dispatchers in the parent
    //! module guarantee the features before calling in.
    //!
    //! Two lane orders appear (see the module-level layout contract):
    //! raw `Item` loads carry the key in the *low* `u64` of each
    //! 128-bit lane, packed [`Lane`] buffers carry it in the *high*
    //! element. The `lt_*` helpers encode the lexicographic
    //! `(key, value)` compare for each order: per-`u64` unsigned
    //! compares combined as `key_lt | (key_eq & value_lt)`.

    use super::{Item, Lane};
    use core::arch::x86_64::*;

    pub(super) const SENTINEL: Item = Item::new(u64::MAX, u64::MAX);

    // ---------------------------------------------------------- AVX2

    /// Per-128-bit-lane `a < b` (all-ones / all-zeros), raw `Item`
    /// order: primary = low `u64` (key), secondary = high (value).
    /// AVX2 has no unsigned 64-bit compare, so both operands are
    /// sign-bias-flipped and compared signed.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn lt_items_avx2(a: __m256i, b: __m256i) -> __m256i {
        let sign = _mm256_set1_epi64x(i64::MIN);
        let ltu = _mm256_cmpgt_epi64(_mm256_xor_si256(b, sign), _mm256_xor_si256(a, sign));
        let eq = _mm256_cmpeq_epi64(a, b);
        let lt_key = _mm256_shuffle_epi32::<0x44>(ltu); // broadcast low u64
        let eq_key = _mm256_shuffle_epi32::<0x44>(eq);
        let lt_val = _mm256_shuffle_epi32::<0xEE>(ltu); // broadcast high u64
        _mm256_or_si256(lt_key, _mm256_and_si256(eq_key, lt_val))
    }

    /// As [`lt_items_avx2`] for packed [`Lane`]s: primary = high `u64`.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn lt_packed_avx2(a: __m256i, b: __m256i) -> __m256i {
        let sign = _mm256_set1_epi64x(i64::MIN);
        let ltu = _mm256_cmpgt_epi64(_mm256_xor_si256(b, sign), _mm256_xor_si256(a, sign));
        let eq = _mm256_cmpeq_epi64(a, b);
        let lt_key = _mm256_shuffle_epi32::<0xEE>(ltu);
        let eq_key = _mm256_shuffle_epi32::<0xEE>(eq);
        let lt_val = _mm256_shuffle_epi32::<0x44>(ltu);
        _mm256_or_si256(lt_key, _mm256_and_si256(eq_key, lt_val))
    }

    /// Vertical compare-exchange of two registers of raw items:
    /// returns `(min, max)` per 128-bit lane. Ties keep `b` in the min
    /// slot — equal items are bit-identical, so the output bytes match
    /// the scalar kernels either way.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn cex_items_avx2(a: __m256i, b: __m256i) -> (__m256i, __m256i) {
        let lt = lt_items_avx2(a, b);
        (
            _mm256_blendv_epi8(b, a, lt),
            _mm256_blendv_epi8(a, b, lt),
        )
    }

    /// In-register compare-exchange of the two 128-bit lanes: result
    /// low lane = min, high lane = max.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn cex_within_avx2(v: __m256i) -> __m256i {
        let s = _mm256_permute2x128_si256::<0x01>(v, v);
        let lt = lt_items_avx2(v, s);
        let mn = _mm256_blendv_epi8(s, v, lt);
        let mx = _mm256_blendv_epi8(v, s, lt);
        _mm256_blend_epi32::<0xF0>(mn, mx)
    }

    /// Unsigned 64-bit vertical min. AVX2 has no `vpminuq`, so this is
    /// the classic three-op emulation: bias both sides into signed
    /// range, signed compare, blend.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn min_epu64_avx2(a: __m256i, b: __m256i) -> __m256i {
        let bias = _mm256_set1_epi64x(i64::MIN);
        let gt = _mm256_cmpgt_epi64(_mm256_xor_si256(a, bias), _mm256_xor_si256(b, bias));
        _mm256_blendv_epi8(a, b, gt)
    }

    /// Wide argmin over the keys-only head mirror, 4 keys per step:
    /// vertical [`min_epu64_avx2`], horizontal reduce through a stack
    /// spill, then an equality re-scan recovering the first matching
    /// index (and the match count) via `movmskpd`. A duplicated
    /// minimum key falls back to the scalar item scan for the
    /// lexicographic tie-break.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn argmin_keys_avx2(keys: &[u64], items: &[Item]) -> usize {
        let n = keys.len();
        debug_assert!(n >= 2 && n == items.len());
        let p = keys.as_ptr();
        let mut m = _mm256_set1_epi64x(-1); // u64::MAX fill
        let mut i = 0usize;
        while i + 4 <= n {
            m = min_epu64_avx2(m, _mm256_loadu_si256(p.add(i).cast()));
            i += 4;
        }
        let mut best = u64::MAX;
        while i < n {
            best = best.min(*p.add(i));
            i += 1;
        }
        let mut lanes = [0u64; 4];
        _mm256_storeu_si256(lanes.as_mut_ptr().cast(), m);
        for &l in &lanes {
            best = best.min(l);
        }
        // Re-scan for the first key equal to `best`, counting matches
        // so a duplicated min key can bail to the scalar tie-break.
        let pat = _mm256_set1_epi64x(best as i64);
        let mut first = usize::MAX;
        let mut cnt = 0u32;
        let mut i = 0usize;
        while i + 4 <= n {
            let v = _mm256_loadu_si256(p.add(i).cast());
            let eq = _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(v, pat))) as u32;
            cnt += eq.count_ones();
            if first == usize::MAX && eq != 0 {
                first = i + eq.trailing_zeros() as usize;
            }
            i += 4;
        }
        while i < n {
            if *p.add(i) == best {
                cnt += 1;
                if first == usize::MAX {
                    first = i;
                }
            }
            i += 1;
        }
        if cnt == 1 {
            first
        } else {
            super::kernels::argmin(items)
        }
    }

    /// Load one chunk (4 items, two ymm) *reversed*, making it the
    /// descending half of a bitonic sequence.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn load_rev4_avx2(p: *const __m256i) -> (__m256i, __m256i) {
        let v0 = _mm256_loadu_si256(p.cast()); // items 0,1
        let v1 = _mm256_loadu_si256(p.add(1).cast()); // items 2,3
        (
            _mm256_permute2x128_si256::<0x01>(v1, v1), // 3,2
            _mm256_permute2x128_si256::<0x01>(v0, v0), // 1,0
        )
    }

    /// Scalar cursor merge (ties take `a`) writing exactly
    /// `a.len() + b.len()` items at `po`. Segment tails and thin
    /// merge-path segments come through here.
    unsafe fn scalar_merge_ptr(a: &[Item], b: &[Item], mut po: *mut Item) {
        let (mut ia, mut ib) = (0usize, 0usize);
        while ia < a.len() && ib < b.len() {
            let x = *a.get_unchecked(ia);
            let y = *b.get_unchecked(ib);
            let take_a = x <= y;
            *po = if take_a { x } else { y };
            po = po.add(1);
            ia += take_a as usize;
            ib += !take_a as usize;
        }
        core::ptr::copy_nonoverlapping(a.as_ptr().add(ia), po, a.len() - ia);
        po = po.add(a.len() - ia);
        core::ptr::copy_nonoverlapping(b.as_ptr().add(ib), po, b.len() - ib);
    }

    /// Finish a streaming segment once one input can no longer fill a
    /// chunk: merge the register carry (one sorted chunk of the
    /// largest unemitted items) with the shorter input remainder
    /// through a stack buffer, then merge that against the longer
    /// remainder straight into the output cursor. The shorter
    /// remainder is below a chunk, so `carry + short <= 15` items and
    /// the buffer never spills to the heap.
    #[inline]
    unsafe fn finish_tail(
        carry: &[Item],
        a: &[Item],
        ia: usize,
        b: &[Item],
        ib: usize,
        po: *mut Item,
    ) {
        let (ra, rb) = (&a[ia..], &b[ib..]);
        let (short, long) = if ra.len() <= rb.len() { (ra, rb) } else { (rb, ra) };
        let mut buf = [SENTINEL; 15];
        debug_assert!(carry.len() + short.len() <= buf.len());
        scalar_merge_ptr(carry, short, buf.as_mut_ptr());
        scalar_merge_ptr(&buf[..carry.len() + short.len()], long, po);
    }

    /// Item-granular load/store masks for the AVX2 small-merge kernel
    /// (`cnt` whole 128-bit item lanes of a ymm).
    const AVX2_MASKS: [[i64; 4]; 3] = [[0; 4], [-1, -1, 0, 0], [-1; 4]];

    /// Load `cnt` (0..=2) items from `p`, sentinel-filling the rest.
    /// AVX2's `maskload` zero-fills masked-out lanes, so the fill is
    /// OR-ed up to the all-ones sentinel the networks expect.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn load_sent_avx2(p: *const i64, cnt: usize) -> __m256i {
        let m = _mm256_loadu_si256(AVX2_MASKS[cnt].as_ptr().cast());
        let v = _mm256_maskload_epi64(p, m);
        _mm256_or_si256(v, _mm256_andnot_si256(m, _mm256_set1_epi64x(-1)))
    }

    /// Store the low `cnt` (0..=2) items of `v` at `p`.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn store_cnt_avx2(p: *mut i64, v: __m256i, cnt: usize) {
        let m = _mm256_loadu_si256(AVX2_MASKS[cnt].as_ptr().cast());
        _mm256_maskstore_epi64(p, m, v);
    }

    /// Reverse the two 128-bit item lanes.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn rev2_avx2(v: __m256i) -> __m256i {
        _mm256_permute2x128_si256::<0x01>(v, v)
    }

    /// In-register merge of two sorted runs with `a.len() + b.len() <=
    /// 8`: build one bitonic lane image — `a` ascending from lane 0,
    /// `b` reversed down from the top lane, all-ones sentinel plateau
    /// between (the occupied lane sets are disjoint, so an AND
    /// combines them) — run one bitonic merge network, masked-store
    /// exactly `total` items at `po`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn merge_small_avx2(a: &[Item], b: &[Item], po: *mut Item) {
        let (la, lb) = (a.len(), b.len());
        let total = la + lb;
        debug_assert!(total <= 8);
        let pa = a.as_ptr() as *const i64;
        let pb = b.as_ptr() as *const i64;
        let po = po as *mut i64;
        if total <= 2 {
            let v = _mm256_and_si256(load_sent_avx2(pa, la), rev2_avx2(load_sent_avx2(pb, lb)));
            let v = cex_within_avx2(v);
            store_cnt_avx2(po, v, total);
        } else if total <= 4 {
            let mut r0 = _mm256_and_si256(
                load_sent_avx2(pa, la.min(2)),
                rev2_avx2(load_sent_avx2(pb.wrapping_add(4), lb.saturating_sub(2))),
            );
            let mut r1 = _mm256_and_si256(
                load_sent_avx2(pa.wrapping_add(4), la.saturating_sub(2)),
                rev2_avx2(load_sent_avx2(pb, lb.min(2))),
            );
            (r0, r1) = cex_items_avx2(r0, r1);
            r0 = cex_within_avx2(r0);
            r1 = cex_within_avx2(r1);
            store_cnt_avx2(po, r0, 2);
            store_cnt_avx2(po.wrapping_add(4), r1, total - 2);
        } else {
            let mut r0 = _mm256_and_si256(
                load_sent_avx2(pa, la.min(2)),
                rev2_avx2(load_sent_avx2(pb.wrapping_add(12), lb.saturating_sub(6))),
            );
            let mut r1 = _mm256_and_si256(
                load_sent_avx2(pa.wrapping_add(4), la.saturating_sub(2).min(2)),
                rev2_avx2(load_sent_avx2(pb.wrapping_add(8), lb.saturating_sub(4).min(2))),
            );
            let mut r2 = _mm256_and_si256(
                load_sent_avx2(pa.wrapping_add(8), la.saturating_sub(4).min(2)),
                rev2_avx2(load_sent_avx2(pb.wrapping_add(4), lb.saturating_sub(2).min(2))),
            );
            let mut r3 = _mm256_and_si256(
                load_sent_avx2(pa.wrapping_add(12), la.saturating_sub(6)),
                rev2_avx2(load_sent_avx2(pb, lb.min(2))),
            );
            // 8-lane bitonic merge: distances 4 and 2 vertical,
            // distance 1 in-register.
            (r0, r2) = cex_items_avx2(r0, r2);
            (r1, r3) = cex_items_avx2(r1, r3);
            (r0, r1) = cex_items_avx2(r0, r1);
            (r2, r3) = cex_items_avx2(r2, r3);
            r0 = cex_within_avx2(r0);
            r1 = cex_within_avx2(r1);
            r2 = cex_within_avx2(r2);
            r3 = cex_within_avx2(r3);
            store_cnt_avx2(po, r0, 2);
            store_cnt_avx2(po.wrapping_add(4), r1, 2);
            store_cnt_avx2(po.wrapping_add(8), r2, (total - 4).min(2));
            store_cnt_avx2(po.wrapping_add(12), r3, total.saturating_sub(6));
        }
    }

    /// Streaming single-chain register merge of one segment, AVX2 tier
    /// (chunk = 4 items over two ymm; an 8-lane bitonic network per
    /// round): exactly `a.len() + b.len()` items written at `po`. Both
    /// sides must hold at least one chunk. Each round emits the 4
    /// smallest unemitted items, carries the 4 largest in registers,
    /// and refills — reversed — from the input whose next item is
    /// smaller (branchless pointer select).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn merge_segment_avx2(a: &[Item], b: &[Item], po: *mut Item) {
        const W: usize = 4;
        debug_assert!(a.len() >= W && b.len() >= W);
        let pa = a.as_ptr() as *const __m256i;
        let pb = b.as_ptr() as *const __m256i;
        let mut po = po as *mut __m256i;
        let mut c0 = _mm256_loadu_si256(pa.cast());
        let mut c1 = _mm256_loadu_si256(pa.add(1).cast());
        let (mut h0, mut h1) = load_rev4_avx2(pb);
        let (mut ia, mut ib) = (W, W);
        loop {
            (c0, h0) = cex_items_avx2(c0, h0);
            (c1, h1) = cex_items_avx2(c1, h1);
            (c0, c1) = cex_items_avx2(c0, c1);
            (h0, h1) = cex_items_avx2(h0, h1);
            c0 = cex_within_avx2(c0);
            c1 = cex_within_avx2(c1);
            h0 = cex_within_avx2(h0);
            h1 = cex_within_avx2(h1);
            _mm256_storeu_si256(po.cast(), c0);
            _mm256_storeu_si256(po.add(1).cast(), c1);
            po = po.add(2);
            if ia + W > a.len() || ib + W > b.len() {
                break;
            }
            (c0, c1) = (h0, h1);
            let take_a = *a.get_unchecked(ia) <= *b.get_unchecked(ib);
            let src = if take_a { pa.byte_add(16 * ia) } else { pb.byte_add(16 * ib) };
            (h0, h1) = load_rev4_avx2(src);
            ia += W * take_a as usize;
            ib += W * !take_a as usize;
        }
        let mut carry = [SENTINEL; W];
        let pc = carry.as_mut_ptr() as *mut __m256i;
        _mm256_storeu_si256(pc.cast(), h0);
        _mm256_storeu_si256(pc.add(1).cast(), h1);
        finish_tail(&carry, a, ia, b, ib, po as *mut Item);
    }

    // ---------------------------------------------------------- AVX-512

    /// Per-128-bit-lane `a < b` as a `u64`-granular blend mask (both
    /// bits of a winning lane set), raw `Item` order: primary = low
    /// `u64` of each lane (even mask bits).
    #[inline]
    #[target_feature(enable = "avx512f")]
    unsafe fn lt_items_mask_avx512(a: __m512i, b: __m512i) -> __mmask8 {
        let ltu = _mm512_cmplt_epu64_mask(a, b);
        let eq = _mm512_cmpeq_epi64_mask(a, b);
        let key = 0x55u8; // even u64 slots hold the keys
        let lt128 = (ltu & key) | ((eq & key) & ((ltu >> 1) & key));
        lt128 | (lt128 << 1)
    }

    /// As [`lt_items_mask_avx512`] for packed [`Lane`]s: primary =
    /// high `u64` (odd mask bits).
    #[inline]
    #[target_feature(enable = "avx512f")]
    unsafe fn lt_packed_mask_avx512(a: __m512i, b: __m512i) -> __mmask8 {
        let ltu = _mm512_cmplt_epu64_mask(a, b);
        let eq = _mm512_cmpeq_epi64_mask(a, b);
        let key = 0xAAu8; // odd u64 slots hold the keys
        let hi = (ltu & key) | ((eq & key) & ((ltu << 1) & key));
        hi | (hi >> 1)
    }

    /// Vertical compare-exchange of two zmm of raw items.
    #[inline]
    #[target_feature(enable = "avx512f")]
    unsafe fn cex_items_avx512(a: __m512i, b: __m512i) -> (__m512i, __m512i) {
        let lt = lt_items_mask_avx512(a, b);
        (
            _mm512_mask_blend_epi64(lt, b, a),
            _mm512_mask_blend_epi64(lt, a, b),
        )
    }

    /// In-register stage at distance 2: compare-exchange lanes (0,2)
    /// and (1,3); low pair keeps the mins, high pair the maxes.
    #[inline]
    #[target_feature(enable = "avx512f")]
    unsafe fn cex_d2_avx512(v: __m512i) -> __m512i {
        let s = _mm512_shuffle_i64x2::<0x4E>(v, v); // lanes [2,3,0,1]
        let lt = lt_items_mask_avx512(v, s);
        let mn = _mm512_mask_blend_epi64(lt, s, v);
        let mx = _mm512_mask_blend_epi64(lt, v, s);
        _mm512_mask_blend_epi64(0xF0, mn, mx)
    }

    /// In-register stage at distance 1: compare-exchange lanes (0,1)
    /// and (2,3); even lanes keep the mins, odd lanes the maxes.
    #[inline]
    #[target_feature(enable = "avx512f")]
    unsafe fn cex_d1_avx512(v: __m512i) -> __m512i {
        let s = _mm512_shuffle_i64x2::<0xB1>(v, v); // lanes [1,0,3,2]
        let lt = lt_items_mask_avx512(v, s);
        let mn = _mm512_mask_blend_epi64(lt, s, v);
        let mx = _mm512_mask_blend_epi64(lt, v, s);
        _mm512_mask_blend_epi64(0xCC, mn, mx)
    }

    /// Wide argmin over the keys-only head mirror, 8 keys per plain
    /// 512-bit load: `vpminuq` accumulates the vertical min — a 1-op
    /// compare-free reduction the 128-bit lexicographic item lanes
    /// can't match, with no key-extraction shuffles at all — then a
    /// three-round broadcast-reduce and an equality re-scan recover
    /// the index via compare mask. A duplicated minimum *key* (values
    /// must break the tie) falls back to the scalar item scan; with
    /// the queue's unique-ish head keys that path is cold, and
    /// correctness never depends on it being rare.
    #[target_feature(enable = "avx512f,avx512bw,avx512dq,avx512vl")]
    pub(super) unsafe fn argmin_keys_avx512(keys: &[u64], items: &[Item]) -> usize {
        let n = keys.len();
        debug_assert!(n >= 2 && n == items.len());
        let p = keys.as_ptr() as *const i64;
        let sent = _mm512_set1_epi64(-1);
        let mut m = sent;
        let mut i = 0usize;
        while i + 8 <= n {
            m = _mm512_min_epu64(m, _mm512_loadu_epi64(p.add(i)));
            i += 8;
        }
        if i < n {
            // Fault-suppressing masked tail load, sentinel-filled so
            // the dead lanes never win the min.
            let k = ((1u16 << (n - i)) - 1) as u8;
            m = _mm512_min_epu64(m, _mm512_mask_loadu_epi64(sent, k, p.add(i)));
        }
        // Broadcast-reduce: after three swap+min rounds every lane
        // holds the global minimum key.
        m = _mm512_min_epu64(m, _mm512_shuffle_i64x2::<0x4E>(m, m));
        m = _mm512_min_epu64(m, _mm512_shuffle_i64x2::<0xB1>(m, m));
        m = _mm512_min_epu64(m, _mm512_permutex_epi64::<0xB1>(m));
        // Re-scan: first index whose key equals the minimum, counting
        // matches so a duplicated min key (tie on values) can bail to
        // the scalar scan. The masked compare keeps fill lanes out of
        // the equality, so a sentinel-valued minimum cannot match its
        // own fill.
        let mut first = usize::MAX;
        let mut cnt = 0u32;
        let mut i = 0usize;
        while i < n {
            let k = ((1u16 << (n - i).min(8)) - 1) as u8;
            let v = _mm512_mask_loadu_epi64(sent, k, p.add(i));
            let eq = _mm512_mask_cmpeq_epi64_mask(k, v, m);
            cnt += eq.count_ones();
            if first == usize::MAX && eq != 0 {
                first = i + eq.trailing_zeros() as usize;
            }
            i += 8;
        }
        if cnt == 1 {
            first
        } else {
            super::kernels::argmin(items)
        }
    }

    /// Load one chunk (8 items, two zmm) reversed.
    #[inline]
    #[target_feature(enable = "avx512f")]
    unsafe fn load_rev8_avx512(p: *const i64) -> (__m512i, __m512i) {
        let v0 = _mm512_loadu_epi64(p); // items 0..4
        let v1 = _mm512_loadu_epi64(p.add(8)); // items 4..8
        (
            _mm512_shuffle_i64x2::<0x1B>(v1, v1), // 7,6,5,4
            _mm512_shuffle_i64x2::<0x1B>(v0, v0), // 3,2,1,0
        )
    }

    /// Reverse the four 128-bit item lanes of one zmm.
    #[inline]
    #[target_feature(enable = "avx512f")]
    unsafe fn rev4_avx512(v: __m512i) -> __m512i {
        _mm512_shuffle_i64x2::<0x1B>(v, v)
    }

    /// Load `cnt` (0..=4) items from `p`, sentinel-filling the rest
    /// (masked lanes neither fault nor load).
    #[inline]
    #[target_feature(enable = "avx512f")]
    unsafe fn load_sent_avx512(p: *const i64, cnt: usize) -> __m512i {
        let k: __mmask8 = ((1u16 << (2 * cnt)) - 1) as u8;
        _mm512_mask_loadu_epi64(_mm512_set1_epi64(-1), k, p)
    }

    /// Store the low `cnt` (0..=4) items of `v` at `p`.
    #[inline]
    #[target_feature(enable = "avx512f")]
    unsafe fn store_cnt_avx512(p: *mut i64, v: __m512i, cnt: usize) {
        let k: __mmask8 = ((1u16 << (2 * cnt)) - 1) as u8;
        _mm512_mask_storeu_epi64(p, k, v);
    }

    /// In-register merge of two sorted runs with `a.len() + b.len() <=
    /// 16`: one bitonic lane image (`a` ascending from lane 0, `b`
    /// reversed down from the top lane, all-ones sentinel plateau
    /// between — disjoint occupied lanes, so an AND combines them),
    /// one bitonic merge network, masked stores of exactly `total`
    /// items at `po`. No loop, no branch past the size-class pick.
    #[target_feature(enable = "avx512f,avx512bw,avx512dq,avx512vl")]
    pub(super) unsafe fn merge_small_avx512(a: &[Item], b: &[Item], po: *mut Item) {
        let (la, lb) = (a.len(), b.len());
        let total = la + lb;
        debug_assert!(total <= 16);
        let pa = a.as_ptr() as *const i64;
        let pb = b.as_ptr() as *const i64;
        let po = po as *mut i64;
        if total <= 4 {
            let v = _mm512_and_si512(
                load_sent_avx512(pa, la),
                rev4_avx512(load_sent_avx512(pb, lb)),
            );
            let v = cex_d2_avx512(v);
            let v = cex_d1_avx512(v);
            store_cnt_avx512(po, v, total);
        } else if total <= 8 {
            let mut r0 = _mm512_and_si512(
                load_sent_avx512(pa, la.min(4)),
                rev4_avx512(load_sent_avx512(pb.wrapping_add(8), lb.saturating_sub(4))),
            );
            let mut r1 = _mm512_and_si512(
                load_sent_avx512(pa.wrapping_add(8), la.saturating_sub(4)),
                rev4_avx512(load_sent_avx512(pb, lb.min(4))),
            );
            (r0, r1) = cex_items_avx512(r0, r1);
            r0 = cex_d2_avx512(r0);
            r1 = cex_d2_avx512(r1);
            r0 = cex_d1_avx512(r0);
            r1 = cex_d1_avx512(r1);
            store_cnt_avx512(po, r0, 4);
            store_cnt_avx512(po.wrapping_add(8), r1, total - 4);
        } else {
            let mut r0 = _mm512_and_si512(
                load_sent_avx512(pa, la.min(4)),
                rev4_avx512(load_sent_avx512(pb.wrapping_add(24), lb.saturating_sub(12))),
            );
            let mut r1 = _mm512_and_si512(
                load_sent_avx512(pa.wrapping_add(8), la.saturating_sub(4).min(4)),
                rev4_avx512(load_sent_avx512(
                    pb.wrapping_add(16),
                    lb.saturating_sub(8).min(4),
                )),
            );
            let mut r2 = _mm512_and_si512(
                load_sent_avx512(pa.wrapping_add(16), la.saturating_sub(8).min(4)),
                rev4_avx512(load_sent_avx512(
                    pb.wrapping_add(8),
                    lb.saturating_sub(4).min(4),
                )),
            );
            let mut r3 = _mm512_and_si512(
                load_sent_avx512(pa.wrapping_add(24), la.saturating_sub(12)),
                rev4_avx512(load_sent_avx512(pb, lb.min(4))),
            );
            // 16-lane bitonic merge: distances 8 and 4 vertical, 2 and
            // 1 in-register.
            (r0, r2) = cex_items_avx512(r0, r2);
            (r1, r3) = cex_items_avx512(r1, r3);
            (r0, r1) = cex_items_avx512(r0, r1);
            (r2, r3) = cex_items_avx512(r2, r3);
            r0 = cex_d2_avx512(r0);
            r1 = cex_d2_avx512(r1);
            r2 = cex_d2_avx512(r2);
            r3 = cex_d2_avx512(r3);
            r0 = cex_d1_avx512(r0);
            r1 = cex_d1_avx512(r1);
            r2 = cex_d1_avx512(r2);
            r3 = cex_d1_avx512(r3);
            store_cnt_avx512(po, r0, 4);
            store_cnt_avx512(po.wrapping_add(8), r1, 4);
            store_cnt_avx512(po.wrapping_add(16), r2, (total - 8).min(4));
            store_cnt_avx512(po.wrapping_add(24), r3, total.saturating_sub(12));
        }
    }

    /// Streaming single-chain register merge of one segment, AVX-512
    /// tier (chunk = 8 items over two zmm; a 16-lane bitonic network
    /// per round): exactly `a.len() + b.len()` items written at `po`.
    /// Both sides must hold at least one chunk.
    #[target_feature(enable = "avx512f,avx512bw,avx512dq,avx512vl")]
    pub(super) unsafe fn merge_segment_avx512(a: &[Item], b: &[Item], po: *mut Item) {
        const W: usize = 8;
        debug_assert!(a.len() >= W && b.len() >= W);
        let pa = a.as_ptr() as *const i64;
        let pb = b.as_ptr() as *const i64;
        let mut po = po as *mut i64;
        let mut c0 = _mm512_loadu_epi64(pa);
        let mut c1 = _mm512_loadu_epi64(pa.add(8));
        let (mut h0, mut h1) = load_rev8_avx512(pb);
        let (mut ia, mut ib) = (W, W);
        loop {
            (c0, h0) = cex_items_avx512(c0, h0);
            (c1, h1) = cex_items_avx512(c1, h1);
            (c0, c1) = cex_items_avx512(c0, c1);
            (h0, h1) = cex_items_avx512(h0, h1);
            c0 = cex_d2_avx512(c0);
            c1 = cex_d2_avx512(c1);
            h0 = cex_d2_avx512(h0);
            h1 = cex_d2_avx512(h1);
            c0 = cex_d1_avx512(c0);
            c1 = cex_d1_avx512(c1);
            h0 = cex_d1_avx512(h0);
            h1 = cex_d1_avx512(h1);
            _mm512_storeu_epi64(po, c0);
            _mm512_storeu_epi64(po.add(8), c1);
            po = po.add(16);
            if ia + W > a.len() || ib + W > b.len() {
                break;
            }
            (c0, c1) = (h0, h1);
            let take_a = *a.get_unchecked(ia) <= *b.get_unchecked(ib);
            let src = if take_a { pa.add(2 * ia) } else { pb.add(2 * ib) };
            (h0, h1) = load_rev8_avx512(src);
            ia += W * take_a as usize;
            ib += W * !take_a as usize;
        }
        let mut carry = [SENTINEL; W];
        let pc = carry.as_mut_ptr() as *mut i64;
        _mm512_storeu_epi64(pc, h0);
        _mm512_storeu_epi64(pc.add(8), h1);
        finish_tail(&carry, a, ia, b, ib, po as *mut Item);
    }

    /// Two merge-path segments run as *interleaved* register chains:
    /// segment 0 merges `a0`/`b0` into `po0`, segment 1 merges
    /// `a1`/`b1` into `po1`, alternating rounds so the two bitonic
    /// networks' dependency chains overlap (one chain alone is
    /// latency-bound: its carry feeds the next round through the full
    /// network depth). A segment whose shorter side can't fill a chunk
    /// falls back to the scalar cursor merge — the merge-path split
    /// lands near the middle of both inputs unless one run dominates,
    /// so that's the rare case.
    #[target_feature(enable = "avx512f,avx512bw,avx512dq,avx512vl")]
    pub(super) unsafe fn merge_segment_pair_avx512(
        a0: &[Item],
        b0: &[Item],
        po0: *mut Item,
        a1: &[Item],
        b1: &[Item],
        po1: *mut Item,
    ) {
        const W: usize = 8;
        let reg0 = a0.len() >= W && b0.len() >= W;
        let reg1 = a1.len() >= W && b1.len() >= W;
        if !reg0 {
            scalar_merge_ptr(a0, b0, po0);
            if reg1 {
                merge_segment_avx512(a1, b1, po1);
            } else {
                scalar_merge_ptr(a1, b1, po1);
            }
            return;
        }
        if !reg1 {
            scalar_merge_ptr(a1, b1, po1);
            merge_segment_avx512(a0, b0, po0);
            return;
        }
        let pa0 = a0.as_ptr() as *const i64;
        let pb0 = b0.as_ptr() as *const i64;
        let pa1 = a1.as_ptr() as *const i64;
        let pb1 = b1.as_ptr() as *const i64;
        let mut po0 = po0 as *mut i64;
        let mut po1 = po1 as *mut i64;
        macro_rules! init {
            ($c0:ident, $c1:ident, $h0:ident, $h1:ident, $ia:ident, $ib:ident, $pa:ident, $pb:ident) => {
                let mut $c0 = _mm512_loadu_epi64($pa);
                let mut $c1 = _mm512_loadu_epi64($pa.add(8));
                let (mut $h0, mut $h1) = load_rev8_avx512($pb);
                let (mut $ia, mut $ib) = (W, W);
            };
        }
        macro_rules! round {
            ($c0:ident, $c1:ident, $h0:ident, $h1:ident, $ia:ident, $ib:ident, $po:ident,
             $a:ident, $b:ident, $pa:ident, $pb:ident, $act:ident) => {
                ($c0, $h0) = cex_items_avx512($c0, $h0);
                ($c1, $h1) = cex_items_avx512($c1, $h1);
                ($c0, $c1) = cex_items_avx512($c0, $c1);
                ($h0, $h1) = cex_items_avx512($h0, $h1);
                $c0 = cex_d2_avx512($c0);
                $c1 = cex_d2_avx512($c1);
                $h0 = cex_d2_avx512($h0);
                $h1 = cex_d2_avx512($h1);
                $c0 = cex_d1_avx512($c0);
                $c1 = cex_d1_avx512($c1);
                $h0 = cex_d1_avx512($h0);
                $h1 = cex_d1_avx512($h1);
                _mm512_storeu_epi64($po, $c0);
                _mm512_storeu_epi64($po.add(8), $c1);
                $po = $po.add(16);
                if $ia + W > $a.len() || $ib + W > $b.len() {
                    $act = false;
                } else {
                    ($c0, $c1) = ($h0, $h1);
                    let take_a = *$a.get_unchecked($ia) <= *$b.get_unchecked($ib);
                    let src = if take_a { $pa.add(2 * $ia) } else { $pb.add(2 * $ib) };
                    ($h0, $h1) = load_rev8_avx512(src);
                    $ia += W * take_a as usize;
                    $ib += W * !take_a as usize;
                }
            };
        }
        macro_rules! finish {
            ($h0:ident, $h1:ident, $ia:ident, $ib:ident, $po:ident, $a:ident, $b:ident) => {
                let mut carry = [SENTINEL; W];
                let pc = carry.as_mut_ptr() as *mut i64;
                _mm512_storeu_epi64(pc, $h0);
                _mm512_storeu_epi64(pc.add(8), $h1);
                finish_tail(&carry, $a, $ia, $b, $ib, $po as *mut Item);
            };
        }
        init!(c00, c01, h00, h01, ia0, ib0, pa0, pb0);
        init!(c10, c11, h10, h11, ia1, ib1, pa1, pb1);
        let (mut act0, mut act1) = (true, true);
        while act0 && act1 {
            round!(c00, c01, h00, h01, ia0, ib0, po0, a0, b0, pa0, pb0, act0);
            round!(c10, c11, h10, h11, ia1, ib1, po1, a1, b1, pa1, pb1, act1);
        }
        while act0 {
            round!(c00, c01, h00, h01, ia0, ib0, po0, a0, b0, pa0, pb0, act0);
        }
        while act1 {
            round!(c10, c11, h10, h11, ia1, ib1, po1, a1, b1, pa1, pb1, act1);
        }
        finish!(h00, h01, ia0, ib0, po0, a0, b0);
        finish!(h10, h11, ia1, ib1, po1, a1, b1);
    }

    /// Vertical compare-exchange span over packed lanes, 4 per step.
    #[target_feature(enable = "avx512f,avx512bw,avx512dq,avx512vl")]
    pub(super) unsafe fn cex_span_avx512(buf: *mut Lane, i: usize, j: usize, n: usize) {
        let p = buf as *mut i64;
        let mut t = 0usize;
        while t + 4 <= n {
            let x = _mm512_loadu_epi64(p.add(2 * (i + t)));
            let y = _mm512_loadu_epi64(p.add(2 * (j + t)));
            let lt = lt_packed_mask_avx512(x, y);
            _mm512_storeu_epi64(p.add(2 * (i + t)), _mm512_mask_blend_epi64(lt, y, x));
            _mm512_storeu_epi64(p.add(2 * (j + t)), _mm512_mask_blend_epi64(lt, x, y));
            t += 4;
        }
        while t < n {
            let (x, y) = (*buf.add(i + t), *buf.add(j + t));
            *buf.add(i + t) = x.min(y);
            *buf.add(j + t) = x.max(y);
            t += 1;
        }
    }

    /// Vertical compare-exchange span over packed lanes, 2 per step.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn cex_span_avx2(buf: *mut Lane, i: usize, j: usize, n: usize) {
        let p = buf as *mut __m256i;
        let mut t = 0usize;
        while t + 2 <= n {
            let x = _mm256_loadu_si256(p.byte_add(16 * (i + t)).cast());
            let y = _mm256_loadu_si256(p.byte_add(16 * (j + t)).cast());
            let lt = lt_packed_avx2(x, y);
            _mm256_storeu_si256(
                p.byte_add(16 * (i + t)).cast(),
                _mm256_blendv_epi8(y, x, lt),
            );
            _mm256_storeu_si256(
                p.byte_add(16 * (j + t)).cast(),
                _mm256_blendv_epi8(x, y, lt),
            );
            t += 2;
        }
        while t < n {
            let (x, y) = (*buf.add(i + t), *buf.add(j + t));
            *buf.add(i + t) = x.min(y);
            *buf.add(j + t) = x.max(y);
            t += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_ordering_and_names_roundtrip() {
        assert!(KernelTier::Scalar < KernelTier::Avx2);
        assert!(KernelTier::Avx2 < KernelTier::Avx512);
        for t in [KernelTier::Scalar, KernelTier::Avx2, KernelTier::Avx512] {
            assert_eq!(KernelTier::parse(t.name()), Some(t));
        }
        assert_eq!(KernelTier::parse("avx1024"), None);
    }

    #[test]
    fn available_tiers_start_at_scalar() {
        let tiers = KernelTier::available_tiers();
        assert_eq!(tiers.first(), Some(&KernelTier::Scalar));
        // Monotone: everything below the detected tier is available.
        assert!(tiers.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(tiers.last(), Some(&KernelTier::detect_hw()));
    }

    #[test]
    fn active_tier_is_hardware_clamped() {
        assert!(active_tier() <= KernelTier::detect_hw());
    }

    /// Deterministic keys with heavy ties: a small key universe plus
    /// runs of sentinel-valued items, the adversarial shapes for the
    /// vector compare paths (equal primary keys force the secondary
    /// lane compare; sentinel plateaus hit the masked-tail fills).
    fn adversarial_run(len: usize, rng: &mut u64, universe: u64, sentinels: bool) -> Vec<Item> {
        let mut v: Vec<Item> = (0..len)
            .map(|i| {
                *rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let r = *rng >> 33;
                if sentinels && r.is_multiple_of(3) {
                    Item::new(u64::MAX, u64::MAX)
                } else {
                    Item::new(r % universe, i as u64)
                }
            })
            .collect();
        v.sort();
        v
    }

    #[test]
    fn simd_merge_matches_scalar_all_shapes() {
        let mut rng = 0xDEADBEEFu64;
        for tier in KernelTier::available_tiers() {
            if tier == KernelTier::Scalar {
                continue;
            }
            let w = tier.merge_chunk();
            // Every viable (la, lb): the whole in-register small-merge
            // triangle (including empty and lopsided sides), plus
            // streaming lengths straddling every chunk-alignment class
            // and both sides of the two-chain CHAINS_MIN cutoff.
            let cap = tier.small_merge_cap();
            let mut shapes: Vec<(usize, usize)> = Vec::new();
            for la in 0..=cap {
                for lb in 0..=(cap - la) {
                    shapes.push((la, lb));
                }
            }
            for la in [w, w + 1, 2 * w - 1, 2 * w, 5 * w + 3, CHAINS_MIN - w, 64, 100] {
                for lb in [w, w + 2, 3 * w - 1, 41, CHAINS_MIN, 128] {
                    shapes.push((la, lb));
                }
            }
            for (la, lb) in shapes {
                for sentinels in [false, true] {
                    let a = adversarial_run(la, &mut rng, 8, sentinels);
                    let b = adversarial_run(lb, &mut rng, 8, sentinels);
                    assert!(tier.merge_viable(a.len(), b.len()), "shape list is viable");
                    let mut got = Vec::new();
                    merge_simd_append(tier, &a, &b, &mut got);
                    let mut expect = Vec::new();
                    kernels::scalar_merge_append(&a, &b, &mut expect);
                    assert_eq!(
                        got,
                        expect,
                        "tier {} la={la} lb={lb} sentinels={sentinels}",
                        tier.name()
                    );
                }
            }
        }
    }

    #[test]
    fn merge_path_split_is_valid_at_every_k() {
        #[cfg(target_arch = "x86_64")]
        {
            let mut rng = 42u64;
            for (la, lb) in [(0, 10), (10, 0), (7, 13), (32, 32), (64, 3)] {
                let a = adversarial_run(la, &mut rng, 5, true);
                let b = adversarial_run(lb, &mut rng, 5, true);
                let mut expect = Vec::new();
                kernels::scalar_merge_append(&a, &b, &mut expect);
                for k in 0..=(la + lb) {
                    let (i, j) = merge_path_split(&a, &b, k);
                    // The two halves re-merge to the stable result.
                    let mut got = Vec::new();
                    kernels::scalar_merge_append(&a[..i], &b[..j], &mut got);
                    kernels::scalar_merge_append(&a[i..], &b[j..], &mut got);
                    assert_eq!(got, expect, "la={la} lb={lb} k={k}");
                }
            }
        }
    }

    /// Keys-only twin of an item slice, as `Lsm` maintains alongside
    /// its head mirror.
    fn keys_of(v: &[Item]) -> Vec<u64> {
        v.iter().map(|it| it.key).collect()
    }

    #[test]
    fn simd_argmin_matches_scalar_incl_sentinel_min() {
        for tier in KernelTier::available_tiers() {
            // All-sentinel input: the masked-tail fill value equals the
            // true minimum, so the equality re-scan must not index a
            // fill lane past the end. `argmin_forced` bypasses the
            // SIMD_ARGMIN_MIN length gate so the vector kernels are
            // exercised at realistic `heads` lengths.
            for n in 1..40 {
                let v = vec![Item::new(u64::MAX, u64::MAX); n];
                let k = keys_of(&v);
                assert_eq!(
                    argmin_forced(tier, &k, &v),
                    0,
                    "all-sentinel n={n} tier {}",
                    tier.name()
                );
                assert_eq!(argmin(tier, &k, &v), 0);
            }
            // Minimum at every position, with ties after it.
            for n in [6usize, 7, 8, 9, 13, 16, 31, 130] {
                for min_at in 0..n {
                    let mut v: Vec<Item> = (0..n).map(|i| Item::new(10 + i as u64, 0)).collect();
                    v[min_at] = Item::new(1, 0);
                    if min_at + 2 < n {
                        v[min_at + 2] = Item::new(1, 0); // tie, later index
                    }
                    let k = keys_of(&v);
                    assert_eq!(
                        argmin_forced(tier, &k, &v),
                        min_at,
                        "n={n} min_at={min_at} tier {}",
                        tier.name()
                    );
                    assert_eq!(argmin(tier, &k, &v), min_at);
                }
            }
            // Duplicated minimum key whose *later* occurrence has the
            // smaller value: the key-level re-scan cannot decide this,
            // so the lexicographic fallback must.
            for n in [8usize, 13, 16] {
                let mut v: Vec<Item> = (0..n).map(|i| Item::new(10 + i as u64, 0)).collect();
                v[1] = Item::new(1, 9);
                v[n - 1] = Item::new(1, 5);
                let k = keys_of(&v);
                assert_eq!(argmin_forced(tier, &k, &v), n - 1, "tier {}", tier.name());
                assert_eq!(argmin(tier, &k, &v), n - 1);
            }
        }
    }

    #[test]
    fn cex_span_orders_pairs_and_matches_scalar() {
        let mut rng = 77u64;
        for tier in KernelTier::available_tiers() {
            for n in 1..=9usize {
                for gap in [0usize, 1, 3] {
                    let len = 2 * n + gap;
                    let mut buf: Vec<Lane> = (0..len)
                        .map(|_| {
                            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(99);
                            (rng as Lane) << 64 | (rng >> 7) as Lane
                        })
                        .collect();
                    let mut expect = buf.clone();
                    for t in 0..n {
                        let (x, y) = (expect[t], expect[n + gap + t]);
                        expect[t] = x.min(y);
                        expect[n + gap + t] = x.max(y);
                    }
                    cex_span(tier, &mut buf, 0, n + gap, n);
                    assert_eq!(buf, expect, "tier {} n={n} gap={gap}", tier.name());
                }
            }
        }
    }

    proptest::proptest! {
        /// The vector chunked merge is byte-for-byte equivalent to the
        /// scalar cursor merge at every available SIMD tier, on runs
        /// with duplicate keys (distinct values witness tie handling)
        /// and non-multiple-of-lane-width lengths.
        #[test]
        fn prop_simd_merge_matches_scalar(
            a in proptest::collection::vec(0u64..40, 0..120),
            b in proptest::collection::vec(0u64..40, 0..120),
        ) {
            let mut a: Vec<Item> = a.iter().map(|&k| Item::new(k, 0)).collect();
            let mut b: Vec<Item> = b.iter().map(|&k| Item::new(k, 1)).collect();
            a.sort();
            b.sort();
            let mut expect = Vec::new();
            kernels::scalar_merge_append(&a, &b, &mut expect);
            for tier in KernelTier::available_tiers() {
                if !tier.merge_viable(a.len(), b.len()) {
                    continue;
                }
                let mut got = Vec::new();
                merge_simd_append(tier, &a, &b, &mut got);
                proptest::prop_assert_eq!(&got, &expect);
            }
        }

        /// The wide argmin agrees with the reference scan (first
        /// occurrence on ties) at every available tier.
        #[test]
        fn prop_simd_argmin_matches_scan(
            keys in proptest::collection::vec(0u64..6, 1..70)
        ) {
            // Tie-heavy keys with per-index values: duplicated minimum
            // keys force the lexicographic fallback, and the reference
            // is the full (key, value) order.
            let v: Vec<Item> = keys
                .iter()
                .enumerate()
                .map(|(i, &k)| Item::new(k, (i % 3) as u64))
                .collect();
            let k = keys_of(&v);
            let expect = v
                .iter()
                .enumerate()
                .min_by_key(|&(_, it)| it)
                .map(|(i, _)| i)
                .expect("non-empty");
            for tier in KernelTier::available_tiers() {
                proptest::prop_assert_eq!(argmin_forced(tier, &k, &v), expect);
                proptest::prop_assert_eq!(argmin(tier, &k, &v), expect);
            }
        }

        /// Whole-queue differential: an LSM at any forced tier behaves
        /// identically to the simd-off (scalar-tier) LSM under
        /// arbitrary op sequences, including mid-sequence drains.
        #[test]
        fn prop_forced_tiers_match_simd_off(
            ops in proptest::collection::vec((0u8..4, 0u64..300), 0..250)
        ) {
            use pq_traits::SequentialPq;
            let mut queues: Vec<crate::Lsm> = KernelTier::available_tiers()
                .into_iter()
                .map(crate::Lsm::with_tier)
                .collect();
            for (i, &(op, k)) in ops.iter().enumerate() {
                match op {
                    0 | 1 => {
                        for q in queues.iter_mut() {
                            q.insert(k, i as u64);
                        }
                    }
                    2 => {
                        let expect = queues[0].delete_min();
                        for q in queues.iter_mut().skip(1) {
                            proptest::prop_assert_eq!(q.delete_min(), expect);
                        }
                    }
                    _ => {
                        let expect = queues[0].take_all_sorted();
                        for q in queues.iter_mut().skip(1) {
                            proptest::prop_assert_eq!(q.take_all_sorted(), expect.clone());
                        }
                    }
                }
                for q in queues.iter() {
                    proptest::prop_assert!(q.check_invariants());
                }
            }
        }
    }
}
