//! Proof that the pooled LSM's insert/delete steady state performs zero
//! heap allocations after warmup.
//!
//! A counting global allocator tallies every `alloc`/`realloc`; after a
//! warmup phase that grows the structure past its working-set size (so
//! every buffer size class the steady state can request has been
//! allocated once and parked in the pool), a measured phase of the
//! uniform insert/delete-min workload must not allocate at all.
//!
//! This file intentionally contains a single `#[test]`: the counter is
//! process-global, and a sibling test running on another thread would
//! pollute the measured window. CI runs it under both `telemetry`
//! feature states (the telemetry shard and chaos hook must not allocate
//! on the hot path either).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use lsm::{KernelTier, Lsm};
use pq_traits::SequentialPq;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: defers to `System` for every operation; only adds counting.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Deterministic splitmix64 stream for uniform keys.
fn next_key(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Run warmup + measured phase for one queue; asserts the measured
/// phase allocates nothing. `label` names the kernel tier under test
/// in failure messages.
fn assert_steady_state_alloc_free(mut l: Lsm, label: &str) {
    const SIZE: usize = 1024;
    const OPS: usize = 50_000;
    let mut rng = 0x5EEDu64;

    // Warmup, phase 1: grow well past the steady-state size and drain
    // back down. This forces merges up to a capacity class strictly
    // larger than any the measured phase can request, parking a buffer
    // of every class in the pool (and sizing the dense `heads` /
    // `head_keys` mirrors past any length the measured phase reaches),
    // and exercises the shrink/compact path.
    for _ in 0..4 * SIZE {
        l.insert(next_key(&mut rng), 0);
    }
    while l.len() > SIZE {
        l.delete_min();
    }
    // Warmup, phase 2: the exact workload shape of the measured phase
    // (uniform keys, alternating insert/delete at constant size), long
    // enough to touch every pool class and telemetry/chaos thread-local
    // the steady state uses.
    for _ in 0..OPS {
        l.insert(next_key(&mut rng), 0);
        l.delete_min().expect("non-empty by construction");
    }

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..OPS {
        l.insert(next_key(&mut rng), 0);
        l.delete_min().expect("non-empty by construction");
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    assert_eq!(
        after - before,
        0,
        "[{label}] steady-state insert/delete-min allocated {} time(s) over {OPS} op pairs \
         (pool stats: {:?})",
        after - before,
        l.pool_stats()
    );

    // Sanity: the pool really is carrying the load.
    let stats = l.pool_stats();
    assert!(
        stats.hit_rate() > 0.9,
        "[{label}] expected a >90% pool hit rate in steady state, got {stats:?}"
    );
    assert_eq!(l.len(), SIZE);
}

#[test]
fn steady_state_insert_delete_allocates_nothing() {
    // Production dispatch first (whatever tier the host detects), then
    // every tier the host can force — the SIMD kernels must be exactly
    // as allocation-free as the scalar ones (the telemetry hit
    // counters are atomics, not heap traffic).
    assert_steady_state_alloc_free(Lsm::new(), "dispatch");
    for tier in KernelTier::available_tiers() {
        assert_steady_state_alloc_free(Lsm::with_tier(tier), tier.name());
    }
}
