//! Benchmark configuration: the full parameter set of appendix F.

use std::time::Duration;

use pq_traits::Item;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::keys::{KeyDistribution, KeyGen};

/// Which threads insert and which delete.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Workload {
    /// Every thread performs ~50 % insertions and ~50 % deletions,
    /// randomly chosen.
    Uniform,
    /// Half the threads only insert, the other half only delete.
    Split,
    /// Every thread strictly alternates insertions and deletions.
    Alternating,
    /// Every thread inserts with the given probability (in permille) and
    /// deletes otherwise — appendix F's general "operation distribution"
    /// knob; `Uniform` is the 500‰ special case.
    Biased {
        /// Probability of an insert, in permille (0–1000).
        insert_permille: u16,
    },
    /// Every thread alternates *batches* of insertions and deletions;
    /// large batches correspond to the sorting benchmark of Larkin, Sen
    /// and Tarjan (cited in §2).
    Sorting {
        /// Operations per batch.
        batch: u64,
    },
}

impl Workload {
    /// Short name used in reports.
    pub fn name(&self) -> String {
        match self {
            Workload::Uniform => "uniform".to_owned(),
            Workload::Split => "split".to_owned(),
            Workload::Alternating => "alternating".to_owned(),
            Workload::Biased { insert_permille } => format!("biased{insert_permille}"),
            Workload::Sorting { batch } => format!("sorting{batch}"),
        }
    }
}

/// Stop criterion: run for a fixed time (throughput mode) or a fixed
/// per-thread operation count (latency / quality mode).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopCondition {
    /// Measure for this long and report operations per second.
    Duration(Duration),
    /// Perform exactly this many operations per thread.
    OpsPerThread(u64),
}

/// A full benchmark configuration (appendix F parameter set).
#[derive(Clone, Debug)]
pub struct BenchConfig {
    /// Thread count.
    pub threads: usize,
    /// Thread role assignment.
    pub workload: Workload,
    /// Key base range and dependency.
    pub key_dist: KeyDistribution,
    /// Items inserted before measurement starts (paper: 10⁶).
    pub prefill: usize,
    /// Throughput window or operation budget.
    pub stop: StopCondition,
    /// Independent repetitions (paper: 10, reporting mean and confidence
    /// intervals).
    pub reps: usize,
    /// Master seed; every thread/rep derives its own deterministic
    /// sub-stream.
    pub seed: u64,
}

impl BenchConfig {
    /// The paper's standard configuration scaled for quick runs: uniform
    /// workload, uniform 32-bit keys, 10⁶ prefill.
    pub fn paper_default(threads: usize) -> Self {
        Self {
            threads,
            workload: Workload::Uniform,
            key_dist: KeyDistribution::uniform(32),
            prefill: 1_000_000,
            stop: StopCondition::Duration(Duration::from_millis(300)),
            reps: 10,
            seed: 0x5EED,
        }
    }

    /// Human-readable configuration id, e.g.
    /// `"uniform workload, uniform32 keys"`.
    pub fn label(&self) -> String {
        format!("{} workload, {} keys", self.workload.name(), self.key_dist.name())
    }

    /// Generate the prefill items "according to the workload and key
    /// distribution" (appendix F): keys from the configured distribution,
    /// values encoding a unique id ≥ `value_base`.
    pub fn prefill_items(&self, value_base: u64) -> Vec<Item> {
        let mut gen = KeyGen::new(self.key_dist, self.seed ^ 0xF00D, u64::MAX);
        (0..self.prefill)
            .map(|i| Item::new(gen.next_key(), value_base + i as u64))
            .collect()
    }

    /// Deterministic RNG for auxiliary decisions of rep `rep`.
    pub fn rep_rng(&self, rep: usize) -> SmallRng {
        SmallRng::seed_from_u64(self.seed.wrapping_add(rep as u64 * 0x9E37_79B9))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        let mut c = BenchConfig::paper_default(4);
        assert_eq!(c.label(), "uniform workload, uniform32 keys");
        c.workload = Workload::Split;
        c.key_dist = KeyDistribution::ascending();
        assert_eq!(c.label(), "split workload, ascending keys");
    }

    #[test]
    fn prefill_respects_count_and_distribution() {
        let mut c = BenchConfig::paper_default(2);
        c.prefill = 1000;
        c.key_dist = KeyDistribution::uniform(8);
        let items = c.prefill_items(500);
        assert_eq!(items.len(), 1000);
        assert!(items.iter().all(|it| it.key < 256));
        assert_eq!(items[0].value, 500);
        assert_eq!(items[999].value, 1499);
    }

    #[test]
    fn prefill_deterministic() {
        let c = {
            let mut c = BenchConfig::paper_default(2);
            c.prefill = 100;
            c
        };
        assert_eq!(c.prefill_items(0), c.prefill_items(0));
    }

    #[test]
    fn workload_names() {
        assert_eq!(Workload::Uniform.name(), "uniform");
        assert_eq!(Workload::Split.name(), "split");
        assert_eq!(Workload::Alternating.name(), "alternating");
    }
}
