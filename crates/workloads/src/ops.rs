//! Operation streams: which operation does a thread perform next?

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::config::Workload;

/// A single benchmark operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// Insert a freshly generated key.
    Insert,
    /// Delete-min.
    DeleteMin,
}

/// The operation mix assigned to one thread by the workload.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ThreadRole {
    /// Insert with probability `insert_prob`, delete otherwise.
    Mixed {
        /// Probability of an operation being an insert.
        insert_prob: f64,
    },
    /// Only insertions.
    InserterOnly,
    /// Only deletions.
    DeleterOnly,
    /// Strictly alternate insert, delete, insert, ...
    Alternating,
    /// Alternate *batches*: `batch` insertions, then `batch` deletions
    /// (appendix F: "an operation batch size can be set to alternate
    /// between batches of insertions and deletions"; large batches
    /// correspond to the sorting benchmark of Larkin, Sen and Tarjan).
    Batched {
        /// Operations per batch.
        batch: u64,
    },
}

impl ThreadRole {
    /// The role workload `w` assigns to thread `thread` of `threads`.
    ///
    /// For `split`, the first ⌈P/2⌉ threads insert and the rest delete,
    /// as in the paper ("half the threads perform only insertions, and
    /// the other half only deletions").
    pub fn for_thread(w: Workload, thread: usize, threads: usize) -> Self {
        match w {
            Workload::Uniform => ThreadRole::Mixed { insert_prob: 0.5 },
            Workload::Split => {
                if thread < threads.div_ceil(2) {
                    ThreadRole::InserterOnly
                } else {
                    ThreadRole::DeleterOnly
                }
            }
            Workload::Alternating => ThreadRole::Alternating,
            Workload::Biased { insert_permille } => ThreadRole::Mixed {
                insert_prob: f64::from(insert_permille.min(1000)) / 1000.0,
            },
            Workload::Sorting { batch } => ThreadRole::Batched { batch },
        }
    }
}

/// Deterministic per-thread operation stream.
#[derive(Clone, Debug)]
pub struct OpStream {
    role: ThreadRole,
    rng: SmallRng,
    counter: u64,
}

impl OpStream {
    /// Stream for `role` seeded by (`seed`, `thread`).
    pub fn new(role: ThreadRole, seed: u64, thread: u64) -> Self {
        Self {
            role,
            rng: SmallRng::seed_from_u64(
                seed ^ 0xD1B54A32D192ED03u64.wrapping_mul(thread.wrapping_add(1)),
            ),
            counter: 0,
        }
    }

    /// The next operation this thread should perform.
    #[inline]
    pub fn next_op(&mut self) -> OpKind {
        let c = self.counter;
        self.counter += 1;
        match self.role {
            ThreadRole::Mixed { insert_prob } => {
                if self.rng.gen_bool(insert_prob) {
                    OpKind::Insert
                } else {
                    OpKind::DeleteMin
                }
            }
            ThreadRole::InserterOnly => OpKind::Insert,
            ThreadRole::DeleterOnly => OpKind::DeleteMin,
            ThreadRole::Alternating => {
                if c.is_multiple_of(2) {
                    OpKind::Insert
                } else {
                    OpKind::DeleteMin
                }
            }
            ThreadRole::Batched { batch } => {
                if (c / batch.max(1)).is_multiple_of(2) {
                    OpKind::Insert
                } else {
                    OpKind::DeleteMin
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_role_is_mixed_for_all() {
        for t in 0..8 {
            assert_eq!(
                ThreadRole::for_thread(Workload::Uniform, t, 8),
                ThreadRole::Mixed { insert_prob: 0.5 }
            );
        }
    }

    #[test]
    fn split_role_halves_threads() {
        let roles: Vec<_> = (0..4)
            .map(|t| ThreadRole::for_thread(Workload::Split, t, 4))
            .collect();
        assert_eq!(roles[0], ThreadRole::InserterOnly);
        assert_eq!(roles[1], ThreadRole::InserterOnly);
        assert_eq!(roles[2], ThreadRole::DeleterOnly);
        assert_eq!(roles[3], ThreadRole::DeleterOnly);
    }

    #[test]
    fn split_odd_thread_count_rounds_up_inserters() {
        let roles: Vec<_> = (0..3)
            .map(|t| ThreadRole::for_thread(Workload::Split, t, 3))
            .collect();
        assert_eq!(roles[0], ThreadRole::InserterOnly);
        assert_eq!(roles[1], ThreadRole::InserterOnly);
        assert_eq!(roles[2], ThreadRole::DeleterOnly);
    }

    #[test]
    fn single_thread_split_still_inserts() {
        assert_eq!(
            ThreadRole::for_thread(Workload::Split, 0, 1),
            ThreadRole::InserterOnly
        );
    }

    #[test]
    fn alternating_strictly_alternates() {
        let mut s = OpStream::new(ThreadRole::Alternating, 1, 0);
        for i in 0..100 {
            let expect = if i % 2 == 0 {
                OpKind::Insert
            } else {
                OpKind::DeleteMin
            };
            assert_eq!(s.next_op(), expect);
        }
    }

    #[test]
    fn mixed_is_roughly_half_and_half() {
        let mut s = OpStream::new(ThreadRole::Mixed { insert_prob: 0.5 }, 9, 1);
        let inserts = (0..10_000).filter(|_| s.next_op() == OpKind::Insert).count();
        assert!((4500..5500).contains(&inserts), "{inserts} inserts of 10000");
    }

    #[test]
    fn biased_workload_respects_probability() {
        let role = ThreadRole::for_thread(Workload::Biased { insert_permille: 900 }, 0, 4);
        assert_eq!(role, ThreadRole::Mixed { insert_prob: 0.9 });
        let mut s = OpStream::new(role, 3, 0);
        let inserts = (0..10_000).filter(|_| s.next_op() == OpKind::Insert).count();
        assert!((8700..9300).contains(&inserts), "{inserts} inserts of 10000");
    }

    #[test]
    fn sorting_workload_batches() {
        let role = ThreadRole::for_thread(Workload::Sorting { batch: 4 }, 2, 4);
        assert_eq!(role, ThreadRole::Batched { batch: 4 });
        let mut s = OpStream::new(role, 3, 0);
        let ops: Vec<OpKind> = (0..16).map(|_| s.next_op()).collect();
        let expect: Vec<OpKind> = [OpKind::Insert; 4]
            .into_iter()
            .chain([OpKind::DeleteMin; 4])
            .chain([OpKind::Insert; 4])
            .chain([OpKind::DeleteMin; 4])
            .collect();
        assert_eq!(ops, expect);
    }

    #[test]
    fn batched_zero_batch_is_safe() {
        let mut s = OpStream::new(ThreadRole::Batched { batch: 0 }, 1, 0);
        // batch 0 clamps to 1: strict alternation.
        assert_eq!(s.next_op(), OpKind::Insert);
        assert_eq!(s.next_op(), OpKind::DeleteMin);
    }

    #[test]
    fn streams_deterministic() {
        let a: Vec<OpKind> = {
            let mut s = OpStream::new(ThreadRole::Mixed { insert_prob: 0.5 }, 5, 2);
            (0..64).map(|_| s.next_op()).collect()
        };
        let b: Vec<OpKind> = {
            let mut s = OpStream::new(ThreadRole::Mixed { insert_prob: 0.5 }, 5, 2);
            (0..64).map(|_| s.next_op()).collect()
        };
        assert_eq!(a, b);
    }
}
