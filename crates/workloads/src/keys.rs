//! Key generation: base ranges, distributions and dependency switches.

use pq_traits::Key;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// How the next key depends on earlier activity (appendix F's "key
/// dependency switch").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KeyDependency {
    /// Keys are independent draws from the base range.
    None,
    /// The random base key is *added to the operation number*, so keys
    /// drift upward over time (the paper's `ascending` distribution).
    Ascending,
    /// The random base key is *subtracted from a high starting point*
    /// shifted down by the operation number (`descending`).
    Descending,
    /// Hold model (Jones 1986): the next key is the last *deleted* key
    /// plus a random increment from the base range. Mimics discrete
    /// event simulation, where new events are scheduled relative to the
    /// current simulation time.
    Hold,
}

/// Shape of the base-key distribution within its range (appendix F
/// points to Jones 1986, which compares uniform, exponential, biased and
/// triangular event-time distributions).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum KeyShape {
    /// Uniform over the whole base range (the paper's configuration).
    #[default]
    Uniform,
    /// Log-uniform (Zipf-like heavy head): small keys are exponentially
    /// more likely; `key = N^u` for `u` uniform in [0,1).
    Zipf,
    /// Exponential with mean `N/16`, clamped to the range.
    Exponential,
    /// Triangular (sum of two uniforms, peak at N/2).
    Triangular,
    /// Bimodal (Jones): 90 % of keys in the lowest tenth of the range,
    /// 10 % in the upper half.
    Bimodal,
}

impl KeyShape {
    fn name(&self) -> &'static str {
        match self {
            KeyShape::Uniform => "uniform",
            KeyShape::Zipf => "zipf",
            KeyShape::Exponential => "exp",
            KeyShape::Triangular => "tri",
            KeyShape::Bimodal => "bimodal",
        }
    }
}

/// Key distribution: a base range (over `bits` bits), a shape within the
/// range, plus a dependency switch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KeyDistribution {
    /// Width of the base range in bits (8, 16 or 32 in the paper).
    pub bits: u32,
    /// Shape of the distribution within the base range.
    pub shape: KeyShape,
    /// Dependency switch.
    pub dependency: KeyDependency,
}

impl KeyDistribution {
    /// Uniform keys over `bits`-bit integers.
    pub const fn uniform(bits: u32) -> Self {
        Self {
            bits,
            shape: KeyShape::Uniform,
            dependency: KeyDependency::None,
        }
    }

    /// Independent keys with the given non-uniform shape over `bits`
    /// bits.
    pub const fn shaped(shape: KeyShape, bits: u32) -> Self {
        Self {
            bits,
            shape,
            dependency: KeyDependency::None,
        }
    }

    /// Ascending keys: 8-bit random base plus the operation number. (The
    /// paper draws the base from a small fixed-width range; the exact
    /// width is garbled in the arXiv text, we use 8 bits.)
    pub const fn ascending() -> Self {
        Self {
            bits: 8,
            shape: KeyShape::Uniform,
            dependency: KeyDependency::Ascending,
        }
    }

    /// Descending keys: mirror image of [`KeyDistribution::ascending`].
    pub const fn descending() -> Self {
        Self {
            bits: 8,
            shape: KeyShape::Uniform,
            dependency: KeyDependency::Descending,
        }
    }

    /// Hold-model keys with an 8-bit increment range.
    pub const fn hold() -> Self {
        Self {
            bits: 8,
            shape: KeyShape::Uniform,
            dependency: KeyDependency::Hold,
        }
    }

    /// Short name used in reports ("uniform32", "zipf32", "ascending").
    pub fn name(&self) -> String {
        match self.dependency {
            KeyDependency::None => format!("{}{}", self.shape.name(), self.bits),
            KeyDependency::Ascending => "ascending".to_owned(),
            KeyDependency::Descending => "descending".to_owned(),
            KeyDependency::Hold => "hold".to_owned(),
        }
    }
}

/// Starting point for descending keys: keys count down from here, leaving
/// plenty of headroom for billions of operations.
const DESCENDING_START: u64 = 1 << 40;

/// Per-thread deterministic key generator.
#[derive(Clone, Debug)]
pub struct KeyGen {
    dist: KeyDistribution,
    rng: SmallRng,
    op_num: u64,
    last_deleted: Key,
}

impl KeyGen {
    /// Create a generator for `dist` seeded by (`seed`, `thread`).
    pub fn new(dist: KeyDistribution, seed: u64, thread: u64) -> Self {
        Self {
            dist,
            rng: SmallRng::seed_from_u64(seed ^ thread.wrapping_mul(0x9E3779B97F4A7C15)),
            op_num: 0,
            last_deleted: 0,
        }
    }

    #[inline]
    fn base(&mut self) -> u64 {
        let n = if self.dist.bits >= 64 {
            u64::MAX
        } else {
            1u64 << self.dist.bits
        };
        match self.dist.shape {
            KeyShape::Uniform => self.rng.gen::<u64>() & n.wrapping_sub(1),
            KeyShape::Zipf => {
                // Log-uniform: N^u; heavy mass at small keys.
                let u: f64 = self.rng.gen();
                let k = (n as f64).powf(u) - 1.0;
                (k as u64).min(n - 1)
            }
            KeyShape::Exponential => {
                let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
                let scale = n as f64 / 16.0;
                ((-u.ln()) * scale) as u64
            }
            .min(n - 1),
            KeyShape::Triangular => {
                let a = self.rng.gen::<u64>() % n;
                let b = self.rng.gen::<u64>() % n;
                a / 2 + b / 2
            }
            KeyShape::Bimodal => {
                if self.rng.gen_bool(0.9) {
                    self.rng.gen_range(0..(n / 10).max(1))
                } else {
                    self.rng.gen_range(n / 2..n)
                }
            }
        }
    }

    /// Generate the key for the next insertion.
    #[inline]
    pub fn next_key(&mut self) -> Key {
        let base = self.base();
        let op = self.op_num;
        self.op_num += 1;
        match self.dist.dependency {
            KeyDependency::None => base,
            KeyDependency::Ascending => op + base,
            KeyDependency::Descending => DESCENDING_START.saturating_sub(op) + base,
            KeyDependency::Hold => self.last_deleted.saturating_add(base),
        }
    }

    /// Feed back the key of the last deleted item (used by the hold
    /// model; a no-op for other dependencies).
    #[inline]
    pub fn observe_delete(&mut self, key: Key) {
        self.last_deleted = key;
    }

    /// Operations generated so far.
    pub fn ops_generated(&self) -> u64 {
        self.op_num
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_respects_bit_range() {
        for bits in [8u32, 16, 32] {
            let mut g = KeyGen::new(KeyDistribution::uniform(bits), 1, 0);
            for _ in 0..1000 {
                let k = g.next_key();
                assert!(k < (1u64 << bits), "{k} out of {bits}-bit range");
            }
        }
    }

    #[test]
    fn uniform_8bit_covers_range() {
        let mut g = KeyGen::new(KeyDistribution::uniform(8), 7, 0);
        let mut seen = [false; 256];
        for _ in 0..10_000 {
            seen[g.next_key() as usize] = true;
        }
        let covered = seen.iter().filter(|&&b| b).count();
        assert!(covered > 250, "only {covered}/256 key values seen");
    }

    #[test]
    fn ascending_drifts_up() {
        let mut g = KeyGen::new(KeyDistribution::ascending(), 3, 0);
        let early: u64 = (0..100).map(|_| g.next_key()).sum();
        for _ in 0..10_000 {
            g.next_key();
        }
        let late: u64 = (0..100).map(|_| g.next_key()).sum();
        assert!(late > early + 100 * 9_000, "ascending keys did not drift");
    }

    #[test]
    fn descending_drifts_down() {
        let mut g = KeyGen::new(KeyDistribution::descending(), 3, 0);
        let early = g.next_key();
        for _ in 0..10_000 {
            g.next_key();
        }
        let late = g.next_key();
        assert!(late < early, "descending keys did not drift down");
    }

    #[test]
    fn hold_follows_last_deleted() {
        let mut g = KeyGen::new(KeyDistribution::hold(), 3, 0);
        g.observe_delete(1_000_000);
        let k = g.next_key();
        assert!((1_000_000..1_000_256).contains(&k));
    }

    #[test]
    fn deterministic_per_seed_and_thread() {
        let ks1: Vec<Key> = {
            let mut g = KeyGen::new(KeyDistribution::uniform(32), 42, 3);
            (0..50).map(|_| g.next_key()).collect()
        };
        let ks2: Vec<Key> = {
            let mut g = KeyGen::new(KeyDistribution::uniform(32), 42, 3);
            (0..50).map(|_| g.next_key()).collect()
        };
        let ks3: Vec<Key> = {
            let mut g = KeyGen::new(KeyDistribution::uniform(32), 42, 4);
            (0..50).map(|_| g.next_key()).collect()
        };
        assert_eq!(ks1, ks2);
        assert_ne!(ks1, ks3, "different threads must get different streams");
    }

    #[test]
    fn names() {
        assert_eq!(KeyDistribution::uniform(32).name(), "uniform32");
        assert_eq!(KeyDistribution::uniform(8).name(), "uniform8");
        assert_eq!(KeyDistribution::ascending().name(), "ascending");
        assert_eq!(KeyDistribution::descending().name(), "descending");
        assert_eq!(KeyDistribution::hold().name(), "hold");
        assert_eq!(
            KeyDistribution::shaped(KeyShape::Zipf, 32).name(),
            "zipf32"
        );
        assert_eq!(
            KeyDistribution::shaped(KeyShape::Bimodal, 16).name(),
            "bimodal16"
        );
    }

    fn mean_of(shape: KeyShape, bits: u32) -> f64 {
        let mut g = KeyGen::new(KeyDistribution::shaped(shape, bits), 11, 0);
        let n = 20_000;
        (0..n).map(|_| g.next_key() as f64).sum::<f64>() / n as f64
    }

    #[test]
    fn shaped_keys_stay_in_range() {
        for shape in [
            KeyShape::Zipf,
            KeyShape::Exponential,
            KeyShape::Triangular,
            KeyShape::Bimodal,
        ] {
            let mut g = KeyGen::new(KeyDistribution::shaped(shape, 16), 3, 0);
            for _ in 0..5_000 {
                let k = g.next_key();
                assert!(k < (1 << 16), "{shape:?} produced out-of-range {k}");
            }
        }
    }

    #[test]
    fn zipf_is_head_heavy() {
        // Log-uniform: median at sqrt(N), far below the uniform median.
        let mut g = KeyGen::new(KeyDistribution::shaped(KeyShape::Zipf, 16), 5, 0);
        let below_sqrt = (0..10_000).filter(|_| g.next_key() < 256).count();
        assert!(
            (4_000..6_000).contains(&below_sqrt),
            "zipf median off: {below_sqrt}/10000 below sqrt(N)"
        );
    }

    #[test]
    fn exponential_mean_near_scale() {
        let mean = mean_of(KeyShape::Exponential, 16);
        let scale = 65_536.0 / 16.0;
        assert!(
            (scale * 0.8..scale * 1.2).contains(&mean),
            "exp mean {mean} vs scale {scale}"
        );
    }

    #[test]
    fn triangular_mean_near_center() {
        let mean = mean_of(KeyShape::Triangular, 16);
        assert!(
            (30_000.0..35_500.0).contains(&mean),
            "triangular mean {mean}"
        );
    }

    #[test]
    fn bimodal_mass_split() {
        let mut g = KeyGen::new(KeyDistribution::shaped(KeyShape::Bimodal, 16), 9, 0);
        let n = 10_000;
        let mut low = 0;
        let mut high = 0;
        for _ in 0..n {
            let k = g.next_key();
            if k < 6_554 {
                low += 1;
            } else if k >= 32_768 {
                high += 1;
            }
        }
        assert!(low > 8_500, "low mode {low}");
        assert!((500..1_500).contains(&high), "high mode {high}");
        assert_eq!(low + high, n, "no keys between the modes");
    }
}
