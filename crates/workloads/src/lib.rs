//! Configurable benchmark workloads — the paper's actual contribution.
//!
//! Appendix F sketches a Synchrobench-style parameterized benchmark with
//! orthogonal knobs; this crate implements them:
//!
//! * **Workload** — the fraction of threads inserting vs deleting:
//!   `uniform` (every thread mixes 50/50 at random), `split` (half the
//!   threads only insert, half only delete), `alternating` (every thread
//!   strictly alternates insert/delete).
//! * **Key distribution** — `uniform` over an 8/16/32-bit base range,
//!   or `ascending`/`descending` where a small random base key is shifted
//!   by the operation number, plus the `hold`-model dependency (Jones
//!   1986) where the next key depends on the last deleted key.
//! * **Operation distribution** — probability of an operation being an
//!   insert (default 50 % so the queue stays in steady state), or strict
//!   batch alternation.
//! * **Prefill** — number of items inserted before measurement starts
//!   (paper: 10⁶), drawn from the configured distribution.
//!
//! Everything is deterministic given a seed, so throughput and quality
//! runs are reproducible.

#![warn(missing_docs)]

pub mod config;
pub mod keys;
pub mod ops;

pub use config::{BenchConfig, Workload};
pub use keys::{KeyDependency, KeyDistribution, KeyGen, KeyShape};
pub use ops::{OpKind, OpStream, ThreadRole};
