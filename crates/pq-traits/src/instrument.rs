//! Instrumentation wrapper: count operations on any concurrent priority
//! queue without touching its implementation.
//!
//! Wraps a [`ConcurrentPq`] and tallies insertions, successful
//! deletions, *empty* deletions (a `delete_min` that returned `None`)
//! and flushes. Empty deletions are an interesting signal of their own:
//! the paper's split workload makes deleting threads outrun inserting
//! ones, and relaxed queues differ in how often they spuriously report
//! empty.
//!
//! Counters are sharded per handle: every [`InstrumentedHandle`] owns a
//! cache-line-aligned [`CounterShard`] and increments it with relaxed,
//! uncontended atomic adds; [`Instrumented::counts`] sums the shards.
//! The previous design kept three shared `AtomicU64`s on the queue —
//! at high thread counts those became their own contention hotspot and
//! skewed the very measurements the wrapper exists to take.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::{ConcurrentPq, Item, Key, PqHandle, Value};

/// Aggregate operation counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Completed insertions.
    pub inserts: u64,
    /// Deletions that returned an item.
    pub deletes: u64,
    /// Deletions that found the queue (apparently) empty.
    pub empty_deletes: u64,
    /// `flush` calls made through instrumented handles.
    pub flushes: u64,
    /// Buffered items committed to the shared structure across all
    /// flushes (0 for unbuffered queues).
    pub flushed_items: u64,
}

impl OpCounts {
    /// Total queue operations (flushes are bookkeeping, not operations).
    pub fn total(&self) -> u64 {
        self.inserts + self.deletes + self.empty_deletes
    }

    /// Net items that should remain in the queue (inserts − deletes).
    pub fn net_items(&self) -> i64 {
        self.inserts as i64 - self.deletes as i64
    }

    /// Mean buffered items committed per flush (0 if never flushed).
    pub fn items_per_flush(&self) -> f64 {
        if self.flushes == 0 {
            0.0
        } else {
            self.flushed_items as f64 / self.flushes as f64
        }
    }
}

/// One handle's counter shard. `#[repr(align(64))]` gives every shard
/// its own cache line, so concurrent handles never write to a shared
/// line (the false-sharing fix over the old shared-atomics design).
#[repr(align(64))]
#[derive(Debug, Default)]
struct CounterShard {
    inserts: AtomicU64,
    deletes: AtomicU64,
    empty_deletes: AtomicU64,
    flushes: AtomicU64,
    flushed_items: AtomicU64,
}

/// A queue wrapper that counts operations.
#[derive(Debug, Default)]
pub struct Instrumented<Q> {
    inner: Q,
    /// Every shard ever handed to a handle; `Arc` keeps a shard's counts
    /// alive (and included in [`Instrumented::counts`]) after its handle
    /// drops.
    shards: Mutex<Vec<Arc<CounterShard>>>,
}

impl<Q> Instrumented<Q> {
    /// Wrap a queue.
    pub fn new(inner: Q) -> Self {
        Self {
            inner,
            shards: Mutex::new(Vec::new()),
        }
    }

    /// The wrapped queue.
    pub fn inner(&self) -> &Q {
        &self.inner
    }

    /// Snapshot of the counters, summed over all handle shards.
    pub fn counts(&self) -> OpCounts {
        let shards = self.shards.lock().unwrap();
        let mut out = OpCounts::default();
        for s in shards.iter() {
            out.inserts += s.inserts.load(Ordering::Relaxed);
            out.deletes += s.deletes.load(Ordering::Relaxed);
            out.empty_deletes += s.empty_deletes.load(Ordering::Relaxed);
            out.flushes += s.flushes.load(Ordering::Relaxed);
            out.flushed_items += s.flushed_items.load(Ordering::Relaxed);
        }
        out
    }

    /// Reset all counters to zero (shards of dropped handles included).
    pub fn reset_counts(&self) {
        for s in self.shards.lock().unwrap().iter() {
            s.inserts.store(0, Ordering::Relaxed);
            s.deletes.store(0, Ordering::Relaxed);
            s.empty_deletes.store(0, Ordering::Relaxed);
            s.flushes.store(0, Ordering::Relaxed);
            s.flushed_items.store(0, Ordering::Relaxed);
        }
    }

    /// Unwrap.
    pub fn into_inner(self) -> Q {
        self.inner
    }
}

/// Handle of an [`Instrumented`] queue.
pub struct InstrumentedHandle<'a, Q: ConcurrentPq + 'a> {
    inner: Q::Handle<'a>,
    shard: Arc<CounterShard>,
}

impl<'a, Q: ConcurrentPq> PqHandle for InstrumentedHandle<'a, Q> {
    fn insert(&mut self, key: Key, value: Value) {
        self.inner.insert(key, value);
        self.shard.inserts.fetch_add(1, Ordering::Relaxed);
    }

    fn delete_min(&mut self) -> Option<Item> {
        let out = self.inner.delete_min();
        if out.is_some() {
            self.shard.deletes.fetch_add(1, Ordering::Relaxed);
        } else {
            self.shard.empty_deletes.fetch_add(1, Ordering::Relaxed);
        }
        out
    }

    fn flush(&mut self) -> u64 {
        let committed = self.inner.flush();
        self.shard.flushes.fetch_add(1, Ordering::Relaxed);
        self.shard.flushed_items.fetch_add(committed, Ordering::Relaxed);
        committed
    }
}

impl<Q: ConcurrentPq> ConcurrentPq for Instrumented<Q> {
    type Handle<'a>
        = InstrumentedHandle<'a, Q>
    where
        Q: 'a;

    fn handle(&self) -> InstrumentedHandle<'_, Q> {
        let shard = Arc::new(CounterShard::default());
        self.shards.lock().unwrap().push(Arc::clone(&shard));
        InstrumentedHandle {
            inner: self.inner.handle(),
            shard,
        }
    }

    fn name(&self) -> String {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SequentialPq;

    /// Minimal test double: a mutex-free single-threaded "concurrent"
    /// queue over a Vec (only used under one handle at a time here).
    #[derive(Default, Debug)]
    struct ToyPq {
        items: std::sync::Mutex<Vec<Item>>,
    }

    struct ToyHandle<'a>(&'a ToyPq);

    impl PqHandle for ToyHandle<'_> {
        fn insert(&mut self, key: Key, value: Value) {
            self.0.items.lock().unwrap().push(Item::new(key, value));
        }

        fn delete_min(&mut self) -> Option<Item> {
            let mut v = self.0.items.lock().unwrap();
            let (idx, _) = v.iter().enumerate().min_by_key(|(_, it)| **it)?;
            Some(v.swap_remove(idx))
        }
    }

    impl ConcurrentPq for ToyPq {
        type Handle<'a> = ToyHandle<'a>;

        fn handle(&self) -> ToyHandle<'_> {
            ToyHandle(self)
        }

        fn name(&self) -> String {
            "toy".to_owned()
        }
    }

    #[test]
    fn counts_every_operation_kind() {
        let q = Instrumented::new(ToyPq::default());
        let mut h = q.handle();
        h.insert(3, 0);
        h.insert(1, 1);
        assert_eq!(h.delete_min().map(|i| i.key), Some(1));
        assert_eq!(h.delete_min().map(|i| i.key), Some(3));
        assert_eq!(h.delete_min(), None);
        let c = q.counts();
        assert_eq!(
            c,
            OpCounts {
                inserts: 2,
                deletes: 2,
                empty_deletes: 1,
                flushes: 0,
                flushed_items: 0,
            }
        );
        assert_eq!(c.total(), 5);
        assert_eq!(c.net_items(), 0);
    }

    #[test]
    fn counts_aggregate_across_handles_and_survive_drop() {
        let q = Instrumented::new(ToyPq::default());
        {
            let mut h1 = q.handle();
            let mut h2 = q.handle();
            h1.insert(1, 1);
            h2.insert(2, 2);
            h2.insert(3, 3);
        }
        // Both handles dropped; their shards still count.
        let c = q.counts();
        assert_eq!(c.inserts, 3);
        let mut h3 = q.handle();
        assert!(h3.delete_min().is_some());
        assert_eq!(q.counts().deletes, 1);
        assert_eq!(q.counts().inserts, 3);
    }

    #[test]
    fn flushes_are_counted() {
        let q = Instrumented::new(ToyPq::default());
        let mut h = q.handle();
        h.insert(1, 1);
        assert_eq!(h.flush(), 0); // ToyPq is unbuffered.
        assert_eq!(h.flush(), 0);
        let c = q.counts();
        assert_eq!(c.flushes, 2);
        assert_eq!(c.flushed_items, 0);
        assert_eq!(c.items_per_flush(), 0.0);
        // Flushes are not operations.
        assert_eq!(c.total(), 1);
    }

    #[test]
    fn flushed_items_forwarded_from_inner() {
        /// Pretends every flush committed 7 buffered items.
        struct BufferedToy(ToyPq);
        struct BufferedToyHandle<'a>(ToyHandle<'a>);
        impl PqHandle for BufferedToyHandle<'_> {
            fn insert(&mut self, key: Key, value: Value) {
                self.0.insert(key, value);
            }
            fn delete_min(&mut self) -> Option<Item> {
                self.0.delete_min()
            }
            fn flush(&mut self) -> u64 {
                7
            }
        }
        impl ConcurrentPq for BufferedToy {
            type Handle<'a> = BufferedToyHandle<'a>;
            fn handle(&self) -> BufferedToyHandle<'_> {
                BufferedToyHandle(self.0.handle())
            }
            fn name(&self) -> String {
                "buffered-toy".to_owned()
            }
        }

        let q = Instrumented::new(BufferedToy(ToyPq::default()));
        let mut h = q.handle();
        assert_eq!(h.flush(), 7);
        assert_eq!(h.flush(), 7);
        let c = q.counts();
        assert_eq!(c.flushes, 2);
        assert_eq!(c.flushed_items, 14);
        assert_eq!(c.items_per_flush(), 7.0);
    }

    #[test]
    fn reset_clears() {
        let q = Instrumented::new(ToyPq::default());
        let mut h = q.handle();
        h.insert(1, 1);
        h.flush();
        q.reset_counts();
        assert_eq!(q.counts(), OpCounts::default());
        assert_eq!(q.name(), "toy");
        assert_eq!(q.inner().items.lock().unwrap().len(), 1);
    }

    #[test]
    fn shards_are_cache_line_aligned() {
        assert_eq!(std::mem::align_of::<CounterShard>() % 64, 0);
        assert!(std::mem::size_of::<CounterShard>() >= 64);
    }

    /// The toy double's delete must be exact-min for the wrapper tests
    /// to be meaningful.
    #[test]
    fn toy_is_strict() {
        let q = ToyPq::default();
        let mut h = q.handle();
        for k in [5u64, 2, 9] {
            h.insert(k, k);
        }
        assert_eq!(h.delete_min().map(|i| i.key), Some(2));
    }

    #[allow(dead_code)]
    fn compiles_with_sequentialpq_too<P: SequentialPq>(_p: P) {}
}
