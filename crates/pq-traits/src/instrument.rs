//! Instrumentation wrapper: count operations on any concurrent priority
//! queue without touching its implementation.
//!
//! Wraps a [`ConcurrentPq`] and tallies insertions, successful
//! deletions, and *empty* deletions (a `delete_min` that returned
//! `None`). Empty deletions are an interesting signal of their own: the
//! paper's split workload makes deleting threads outrun inserting ones,
//! and relaxed queues differ in how often they spuriously report empty.

use core::sync::atomic::{AtomicU64, Ordering};

use crate::{ConcurrentPq, Item, Key, PqHandle, Value};

/// Aggregate operation counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Completed insertions.
    pub inserts: u64,
    /// Deletions that returned an item.
    pub deletes: u64,
    /// Deletions that found the queue (apparently) empty.
    pub empty_deletes: u64,
}

impl OpCounts {
    /// Total operations.
    pub fn total(&self) -> u64 {
        self.inserts + self.deletes + self.empty_deletes
    }

    /// Net items that should remain in the queue (inserts − deletes).
    pub fn net_items(&self) -> i64 {
        self.inserts as i64 - self.deletes as i64
    }
}

/// A queue wrapper that counts operations.
#[derive(Debug, Default)]
pub struct Instrumented<Q> {
    inner: Q,
    inserts: AtomicU64,
    deletes: AtomicU64,
    empty_deletes: AtomicU64,
}

impl<Q> Instrumented<Q> {
    /// Wrap a queue.
    pub fn new(inner: Q) -> Self {
        Self {
            inner,
            inserts: AtomicU64::new(0),
            deletes: AtomicU64::new(0),
            empty_deletes: AtomicU64::new(0),
        }
    }

    /// The wrapped queue.
    pub fn inner(&self) -> &Q {
        &self.inner
    }

    /// Snapshot of the counters.
    pub fn counts(&self) -> OpCounts {
        OpCounts {
            inserts: self.inserts.load(Ordering::Relaxed),
            deletes: self.deletes.load(Ordering::Relaxed),
            empty_deletes: self.empty_deletes.load(Ordering::Relaxed),
        }
    }

    /// Reset all counters to zero.
    pub fn reset_counts(&self) {
        self.inserts.store(0, Ordering::Relaxed);
        self.deletes.store(0, Ordering::Relaxed);
        self.empty_deletes.store(0, Ordering::Relaxed);
    }

    /// Unwrap.
    pub fn into_inner(self) -> Q {
        self.inner
    }
}

/// Handle of an [`Instrumented`] queue.
pub struct InstrumentedHandle<'a, Q: ConcurrentPq + 'a> {
    outer: &'a Instrumented<Q>,
    inner: Q::Handle<'a>,
}

impl<'a, Q: ConcurrentPq> PqHandle for InstrumentedHandle<'a, Q> {
    fn insert(&mut self, key: Key, value: Value) {
        self.inner.insert(key, value);
        self.outer.inserts.fetch_add(1, Ordering::Relaxed);
    }

    fn delete_min(&mut self) -> Option<Item> {
        let out = self.inner.delete_min();
        if out.is_some() {
            self.outer.deletes.fetch_add(1, Ordering::Relaxed);
        } else {
            self.outer.empty_deletes.fetch_add(1, Ordering::Relaxed);
        }
        out
    }

    fn flush(&mut self) {
        // Not an operation of its own; forward without counting.
        self.inner.flush();
    }
}

impl<Q: ConcurrentPq> ConcurrentPq for Instrumented<Q> {
    type Handle<'a>
        = InstrumentedHandle<'a, Q>
    where
        Q: 'a;

    fn handle(&self) -> InstrumentedHandle<'_, Q> {
        InstrumentedHandle {
            outer: self,
            inner: self.inner.handle(),
        }
    }

    fn name(&self) -> String {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SequentialPq;

    /// Minimal test double: a mutex-free single-threaded "concurrent"
    /// queue over a Vec (only used under one handle at a time here).
    #[derive(Default, Debug)]
    struct ToyPq {
        items: std::sync::Mutex<Vec<Item>>,
    }

    struct ToyHandle<'a>(&'a ToyPq);

    impl PqHandle for ToyHandle<'_> {
        fn insert(&mut self, key: Key, value: Value) {
            self.0.items.lock().unwrap().push(Item::new(key, value));
        }

        fn delete_min(&mut self) -> Option<Item> {
            let mut v = self.0.items.lock().unwrap();
            let (idx, _) = v.iter().enumerate().min_by_key(|(_, it)| **it)?;
            Some(v.swap_remove(idx))
        }
    }

    impl ConcurrentPq for ToyPq {
        type Handle<'a> = ToyHandle<'a>;

        fn handle(&self) -> ToyHandle<'_> {
            ToyHandle(self)
        }

        fn name(&self) -> String {
            "toy".to_owned()
        }
    }

    #[test]
    fn counts_every_operation_kind() {
        let q = Instrumented::new(ToyPq::default());
        let mut h = q.handle();
        h.insert(3, 0);
        h.insert(1, 1);
        assert_eq!(h.delete_min().map(|i| i.key), Some(1));
        assert_eq!(h.delete_min().map(|i| i.key), Some(3));
        assert_eq!(h.delete_min(), None);
        let c = q.counts();
        assert_eq!(
            c,
            OpCounts {
                inserts: 2,
                deletes: 2,
                empty_deletes: 1
            }
        );
        assert_eq!(c.total(), 5);
        assert_eq!(c.net_items(), 0);
    }

    #[test]
    fn reset_clears() {
        let q = Instrumented::new(ToyPq::default());
        let mut h = q.handle();
        h.insert(1, 1);
        q.reset_counts();
        assert_eq!(q.counts(), OpCounts::default());
        assert_eq!(q.name(), "toy");
        assert_eq!(q.inner().items.lock().unwrap().len(), 1);
    }

    /// The toy double's delete must be exact-min for the wrapper tests
    /// to be meaningful.
    #[test]
    fn toy_is_strict() {
        let q = ToyPq::default();
        let mut h = q.handle();
        for k in [5u64, 2, 9] {
            h.insert(k, k);
        }
        assert_eq!(h.delete_min().map(|i| i.key), Some(2));
    }

    #[allow(dead_code)]
    fn compiles_with_sequentialpq_too<P: SequentialPq>(_p: P) {}
}
