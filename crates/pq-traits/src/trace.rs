//! Flight-recorder tracing: per-thread timestamped event timelines.
//!
//! The [`crate::telemetry`] counters say *that* a queue's slow paths
//! fired, summed over a whole benchmark cell; they cannot say *which
//! threads* hit them, *when*, or *in what phase* of the run. The
//! throughput cliffs the paper (and the Engineering-MultiQueues line)
//! explains — warm-up transients, spy storms, stickiness phase changes —
//! are time- and thread-resolved phenomena, so this module records a
//! timeline: every recording thread owns a cache-line-padded,
//! fixed-capacity ring buffer of timestamped records, written lock-free
//! by its owner and drained by the harness at cell end.
//!
//! Three record classes share the rings:
//!
//! * **Spans** ([`SpanOp`]) — op begin/end intervals. The latency
//!   harness records one span per operation (it already timestamps each
//!   op); the throughput and quality harnesses record one
//!   [`SpanOp::OpBatch`] span per 64-op batch (one extra clock read per
//!   batch, so tracing stays inside the `instr_overhead` budget); the
//!   window-end `flush` is recorded individually.
//! * **Telemetry events** — every [`crate::telemetry::Event`] recorded
//!   through [`crate::telemetry::record_n`] is forwarded here with its
//!   count, reusing the same hook points as [`crate::chaos`]: the queue
//!   crates need no new instrumentation sites.
//! * **Phase markers** ([`PhaseKind`]) — the harness marks
//!   prefill/measure/rep boundaries so events can be attributed to
//!   warm-up vs. steady state.
//!
//! # Zero-cost discipline
//!
//! Everything is gated on the `trace` cargo feature, with the same
//! contract as `telemetry`: without the feature every function here is
//! an empty `#[inline]` body and [`active`] is a `const false`, so call
//! sites (and the argument computations they guard) compile to nothing.
//! With the feature on but no trace running, the cost is one relaxed
//! load per call.
//!
//! # Ring semantics
//!
//! Rings are flight recorders: when full they overwrite the **oldest**
//! record and bump a per-ring dropped-record count, so a drained
//! timeline is always the most recent window and truncation is never
//! silent — [`ThreadTimeline::dropped`] and [`TraceData::dropped_total`]
//! report exactly how many records were lost.
//!
//! Rings are single-producer (the owning thread); [`stop`] reads them
//! after deactivating tracing. The harness drains only after joining
//! its workers, so drains observe quiescent rings; a drain racing a
//! still-recording thread can at worst read one torn (garbled) record —
//! counters and slots are plain atomics, so this is a data-quality
//! caveat, not unsoundness.
//!
//! # Timestamps
//!
//! All timestamps are nanoseconds on a process-wide monotonic epoch
//! (first use of the module), so per-thread timelines merge into one
//! clock-normalized timeline without cross-thread clock games;
//! [`stop`] rebases them to the cell's [`start`] call.

use std::time::Instant;

use crate::telemetry::Event;

/// Number of `u64` words per ring slot (timestamp, payload, tag).
#[cfg_attr(not(feature = "trace"), allow(dead_code))]
const SLOT_WORDS: usize = 3;

/// Default ring capacity in records (per thread). At 24 bytes a record
/// this is ~768 KiB per recording thread, which holds several hundred
/// milliseconds of batch-level activity.
pub const DEFAULT_CAPACITY: usize = 1 << 15;

/// Operation kinds recorded as spans.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SpanOp {
    /// One `insert` call.
    Insert,
    /// One `delete_min` call (successful or empty).
    DeleteMin,
    /// One `flush` call (window-end buffer commit).
    Flush,
    /// A batch of harness operations (mixed insert/delete) recorded as
    /// one span; the record's `ops` field carries the batch size.
    OpBatch,
}

impl SpanOp {
    /// All span kinds, indexed by discriminant.
    #[cfg_attr(not(feature = "trace"), allow(dead_code))]
    const ALL: [SpanOp; 4] = [
        SpanOp::Insert,
        SpanOp::DeleteMin,
        SpanOp::Flush,
        SpanOp::OpBatch,
    ];

    /// Stable snake_case name (Chrome trace event name).
    pub fn name(self) -> &'static str {
        match self {
            SpanOp::Insert => "insert",
            SpanOp::DeleteMin => "delete_min",
            SpanOp::Flush => "flush",
            SpanOp::OpBatch => "ops",
        }
    }
}

/// Harness phase boundaries recorded as instant markers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PhaseKind {
    /// Prefill of this repetition is starting.
    Prefill,
    /// Prefill complete; the measured window is starting.
    Measure,
    /// This repetition's measured window ended (workers joined).
    RepEnd,
}

impl PhaseKind {
    /// All phase kinds, indexed by discriminant.
    #[cfg_attr(not(feature = "trace"), allow(dead_code))]
    const ALL: [PhaseKind; 3] = [PhaseKind::Prefill, PhaseKind::Measure, PhaseKind::RepEnd];

    /// Stable snake_case name.
    pub fn name(self) -> &'static str {
        match self {
            PhaseKind::Prefill => "prefill",
            PhaseKind::Measure => "measure",
            PhaseKind::RepEnd => "rep_end",
        }
    }
}

/// Payload of one decoded trace record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecordData {
    /// An operation span; `ts_ns` is the span begin.
    Span {
        /// What ran.
        op: SpanOp,
        /// Span length in nanoseconds.
        dur_ns: u64,
        /// Queue operations covered (1 for single ops, the batch size
        /// for [`SpanOp::OpBatch`]).
        ops: u32,
    },
    /// A queue-internal telemetry event (instantaneous).
    Event {
        /// Which event.
        event: Event,
        /// Occurrences recorded at this instant (`record_n`'s `n`).
        count: u64,
    },
    /// A harness phase boundary (instantaneous).
    Phase {
        /// Which boundary.
        phase: PhaseKind,
        /// Repetition index the boundary belongs to.
        rep: u32,
    },
}

/// One decoded record of a thread's timeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Nanoseconds since the cell's [`start`] (span records: the span's
    /// *begin*).
    pub ts_ns: u64,
    /// What happened.
    pub data: RecordData,
}

/// One thread's drained timeline.
#[derive(Clone, Debug, Default)]
pub struct ThreadTimeline {
    /// Stable thread identifier (ring registration order, process-wide).
    pub thread: u64,
    /// Records in ring order (roughly chronological; sort by `ts_ns`
    /// before rendering).
    pub records: Vec<TraceRecord>,
    /// Records lost to ring overwrite during this cell. Non-zero means
    /// `records` holds only the **newest** part of the timeline.
    pub dropped: u64,
}

/// Everything drained from one traced cell.
#[derive(Clone, Debug, Default)]
pub struct TraceData {
    /// Per-thread timelines, in thread-id order. Threads that recorded
    /// nothing during the cell are absent.
    pub timelines: Vec<ThreadTimeline>,
}

impl TraceData {
    /// Total records across all threads.
    pub fn records_total(&self) -> usize {
        self.timelines.iter().map(|t| t.records.len()).sum()
    }

    /// Total records lost to ring overwrite — non-zero totals must be
    /// surfaced wherever this trace is exported.
    pub fn dropped_total(&self) -> u64 {
        self.timelines.iter().map(|t| t.dropped).sum()
    }

    /// True when nothing was recorded (always the case without the
    /// `trace` feature).
    pub fn is_empty(&self) -> bool {
        self.timelines.is_empty()
    }
}

/// `true` when the crate was built with the `trace` cargo feature.
pub const fn compiled() -> bool {
    cfg!(feature = "trace")
}

/// `true` while a trace is being recorded ([`start`] … [`stop`]).
/// Always `false` (and const-foldable) without the `trace` feature, so
/// `if trace::active() { … }` guards compile away entirely.
#[inline]
pub fn active() -> bool {
    imp::active()
}

/// Nanoseconds since the process-wide trace epoch. Use sparingly — one
/// clock read; prefer [`Anchor`] for converting already-taken
/// [`Instant`]s.
#[inline]
pub fn now_ns() -> u64 {
    imp::now_ns()
}

/// Begin recording a traced cell: ring contents recorded before this
/// call are excluded from the next [`stop`], and dropped-record
/// accounting restarts. `capacity` sizes rings created after this call
/// (existing rings keep theirs); pass [`DEFAULT_CAPACITY`] when in
/// doubt.
pub fn start(capacity: usize) {
    imp::start(capacity);
}

/// Stop recording and drain every thread's ring into a merged,
/// clock-normalized [`TraceData`] (timestamps rebased to the matching
/// [`start`]). Rings of exited threads are released. Returns an empty
/// `TraceData` without the `trace` feature.
pub fn stop() -> TraceData {
    imp::stop()
}

/// Record an operation span from `begin_ns` to `end_ns` (both from
/// [`now_ns`] / [`Anchor::ns_at`]) covering `ops` queue operations.
#[inline]
pub fn span(op: SpanOp, begin_ns: u64, end_ns: u64, ops: u32) {
    imp::span(op, begin_ns, end_ns, ops);
}

/// Record a harness phase boundary for repetition `rep`.
#[inline]
pub fn phase(kind: PhaseKind, rep: u32) {
    imp::phase(kind, rep);
}

/// Telemetry hook: called by [`crate::telemetry::record_n`] (and its
/// quiet variants) for every recorded event, mirroring the
/// [`crate::chaos::on_event`] hook. One relaxed load while no trace is
/// running; nothing at all without the `trace` feature.
#[inline]
pub fn on_event(event: Event, n: u64) {
    imp::on_event(event, n);
}

/// Converts thread-local [`Instant`]s to epoch nanoseconds with **no
/// extra clock reads**: anchor once (one clock read), then `ns_at` is
/// pure arithmetic. The harness anchors next to its own
/// `Instant::now()` so existing timestamps are reused for spans.
#[derive(Clone, Copy, Debug)]
pub struct Anchor {
    base: Instant,
    base_ns: u64,
}

impl Anchor {
    /// Anchor at `base`, which must be at (or a few nanoseconds before)
    /// the current instant.
    #[inline]
    pub fn at(base: Instant) -> Self {
        Self {
            base,
            base_ns: now_ns(),
        }
    }

    /// Epoch nanoseconds of `at` (must not precede the anchor).
    #[inline]
    pub fn ns_at(&self, at: Instant) -> u64 {
        self.base_ns + at.saturating_duration_since(self.base).as_nanos() as u64
    }

    /// Epoch nanoseconds of the anchor itself.
    #[inline]
    pub fn base_ns(&self) -> u64 {
        self.base_ns
    }
}

/// Record classes packed into a slot's tag word (bits 0–7).
#[cfg_attr(not(feature = "trace"), allow(dead_code))]
mod class {
    pub const SPAN: u64 = 1;
    pub const EVENT: u64 = 2;
    pub const PHASE: u64 = 3;
}

#[cfg(feature = "trace")]
mod imp {
    use super::*;
    use core::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::{Arc, Mutex, OnceLock};

    /// One thread's ring. The first slot word starts a fresh cache line
    /// (the atomics before it are written by the owner / reader only
    /// around cell boundaries, never on the record fast path).
    #[repr(align(64))]
    struct Ring {
        /// Process-wide registration index (stable thread id).
        id: u64,
        /// Capacity in records.
        capacity: usize,
        /// Total records ever written by the owner (monotone).
        head: AtomicU64,
        /// `head` value at the most recent [`start`]; records before it
        /// belong to earlier cells and are excluded from drains.
        mark: AtomicU64,
        /// `capacity * SLOT_WORDS` words of record storage.
        slots: Box<[AtomicU64]>,
    }

    impl Ring {
        fn new(id: u64, capacity: usize) -> Self {
            let capacity = capacity.max(1);
            Self {
                id,
                capacity,
                head: AtomicU64::new(0),
                mark: AtomicU64::new(0),
                slots: (0..capacity * SLOT_WORDS).map(|_| AtomicU64::new(0)).collect(),
            }
        }

        /// Owner-only: append one record, overwriting the oldest when
        /// full.
        #[inline]
        fn push(&self, w0: u64, w1: u64, w2: u64) {
            let head = self.head.load(Ordering::Relaxed);
            let base = (head as usize % self.capacity) * SLOT_WORDS;
            self.slots[base].store(w0, Ordering::Relaxed);
            self.slots[base + 1].store(w1, Ordering::Relaxed);
            self.slots[base + 2].store(w2, Ordering::Relaxed);
            // Release-publish the slot words before the new head.
            self.head.store(head + 1, Ordering::Release);
        }
    }

    /// Whether a trace is currently recording.
    static ACTIVE: AtomicBool = AtomicBool::new(false);
    /// Ring capacity for rings created after the latest [`start`].
    static CAPACITY: AtomicU64 = AtomicU64::new(super::DEFAULT_CAPACITY as u64);
    /// Epoch nanoseconds of the latest [`start`] (drain rebases to it).
    static START_NS: AtomicU64 = AtomicU64::new(0);
    /// Registration order of recording threads (stable thread ids).
    static RING_CTR: AtomicU64 = AtomicU64::new(0);

    fn epoch() -> Instant {
        static EPOCH: OnceLock<Instant> = OnceLock::new();
        *EPOCH.get_or_init(Instant::now)
    }

    fn registry() -> &'static Mutex<Vec<Arc<Ring>>> {
        static REGISTRY: OnceLock<Mutex<Vec<Arc<Ring>>>> = OnceLock::new();
        REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
    }

    thread_local! {
        static RING: Arc<Ring> = {
            let ring = Arc::new(Ring::new(
                RING_CTR.fetch_add(1, Ordering::Relaxed),
                CAPACITY.load(Ordering::Relaxed) as usize,
            ));
            registry().lock().unwrap().push(Arc::clone(&ring));
            ring
        };
    }

    #[inline]
    pub fn active() -> bool {
        ACTIVE.load(Ordering::Relaxed)
    }

    #[inline]
    pub fn now_ns() -> u64 {
        epoch().elapsed().as_nanos() as u64
    }

    pub fn start(capacity: usize) {
        CAPACITY.store(capacity.max(1) as u64, Ordering::Relaxed);
        for ring in registry().lock().unwrap().iter() {
            ring.mark
                .store(ring.head.load(Ordering::Acquire), Ordering::Relaxed);
        }
        START_NS.store(now_ns(), Ordering::Relaxed);
        ACTIVE.store(true, Ordering::Release);
    }

    pub fn stop() -> TraceData {
        ACTIVE.store(false, Ordering::Release);
        let start_ns = START_NS.load(Ordering::Relaxed);
        let mut registry = registry().lock().unwrap();
        let mut timelines = Vec::new();
        for ring in registry.iter() {
            let head = ring.head.load(Ordering::Acquire);
            let mark = ring.mark.load(Ordering::Relaxed);
            let since = head.saturating_sub(mark);
            if since == 0 {
                continue;
            }
            let available = since.min(ring.capacity as u64);
            let dropped = since - available;
            let mut records = Vec::with_capacity(available as usize);
            for seq in (head - available)..head {
                let base = (seq as usize % ring.capacity) * SLOT_WORDS;
                let w0 = ring.slots[base].load(Ordering::Relaxed);
                let w1 = ring.slots[base + 1].load(Ordering::Relaxed);
                let w2 = ring.slots[base + 2].load(Ordering::Relaxed);
                if let Some(r) = decode(w0, w1, w2, start_ns) {
                    records.push(r);
                }
            }
            timelines.push(ThreadTimeline {
                thread: ring.id,
                records,
                dropped,
            });
        }
        // Rings whose thread exited (strong count 1: only the registry
        // holds them) have been fully drained; release their memory so
        // repeated traced cells don't accumulate dead rings.
        registry.retain(|ring| Arc::strong_count(ring) > 1);
        timelines.sort_by_key(|t| t.thread);
        TraceData { timelines }
    }

    /// Decode one slot; `None` for never-written or torn slots.
    fn decode(w0: u64, w1: u64, w2: u64, start_ns: u64) -> Option<TraceRecord> {
        let sub = ((w2 >> 8) & 0xFF) as usize;
        let data = match w2 & 0xFF {
            class::SPAN => RecordData::Span {
                op: *SpanOp::ALL.get(sub)?,
                dur_ns: w1,
                ops: (w2 >> 32) as u32,
            },
            class::EVENT => RecordData::Event {
                event: *Event::ALL.get(sub)?,
                count: w1,
            },
            class::PHASE => RecordData::Phase {
                phase: *PhaseKind::ALL.get(sub)?,
                rep: (w2 >> 32) as u32,
            },
            _ => return None,
        };
        Some(TraceRecord {
            ts_ns: w0.saturating_sub(start_ns),
            data,
        })
    }

    #[inline]
    fn push(w0: u64, w1: u64, w2: u64) {
        RING.with(|ring| ring.push(w0, w1, w2));
    }

    #[inline]
    pub fn span(op: SpanOp, begin_ns: u64, end_ns: u64, ops: u32) {
        if !active() {
            return;
        }
        push(
            begin_ns,
            end_ns.saturating_sub(begin_ns),
            class::SPAN | ((op as u64) << 8) | ((ops as u64) << 32),
        );
    }

    #[inline]
    pub fn phase(kind: PhaseKind, rep: u32) {
        if !active() {
            return;
        }
        push(
            now_ns(),
            0,
            class::PHASE | ((kind as u64) << 8) | ((rep as u64) << 32),
        );
    }

    #[inline]
    pub fn on_event(event: Event, n: u64) {
        if !active() {
            return;
        }
        push(now_ns(), n, class::EVENT | ((event as u64) << 8));
    }
}

#[cfg(not(feature = "trace"))]
mod imp {
    use super::*;

    #[inline(always)]
    pub fn active() -> bool {
        false
    }

    #[inline(always)]
    pub fn now_ns() -> u64 {
        0
    }

    pub fn start(_capacity: usize) {}

    pub fn stop() -> TraceData {
        TraceData::default()
    }

    #[inline(always)]
    pub fn span(_op: SpanOp, _begin_ns: u64, _end_ns: u64, _ops: u32) {}

    #[inline(always)]
    pub fn phase(_kind: PhaseKind, _rep: u32) {}

    #[inline(always)]
    pub fn on_event(_event: Event, _n: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable() {
        for op in SpanOp::ALL {
            assert!(op.name().chars().all(|c| c.is_ascii_lowercase() || c == '_'));
        }
        for p in PhaseKind::ALL {
            assert!(p.name().chars().all(|c| c.is_ascii_lowercase() || c == '_'));
        }
        assert_eq!(SpanOp::ALL[SpanOp::Flush as usize], SpanOp::Flush);
        assert_eq!(PhaseKind::ALL[PhaseKind::RepEnd as usize], PhaseKind::RepEnd);
    }

    #[test]
    fn anchor_is_monotone() {
        let base = Instant::now();
        let a = Anchor::at(base);
        let later = a.ns_at(Instant::now());
        assert!(later >= a.base_ns());
        // An instant before the anchor saturates instead of panicking.
        assert_eq!(a.ns_at(base), a.base_ns());
    }

    #[cfg(not(feature = "trace"))]
    #[test]
    fn disabled_records_nothing() {
        assert!(!compiled());
        assert!(!active());
        start(64);
        assert!(!active());
        span(SpanOp::Insert, 0, 10, 1);
        phase(PhaseKind::Measure, 0);
        on_event(Event::MqEmptySample, 3);
        let data = stop();
        assert!(data.is_empty());
        assert_eq!(data.dropped_total(), 0);
        assert_eq!(data.records_total(), 0);
    }

    // The feature-gated tests drive the global recorder, so they run in
    // one #[test] to avoid cross-test interference under the parallel
    // test runner (same discipline as the chaos tests).
    #[cfg(feature = "trace")]
    #[test]
    fn record_drain_roundtrip_overflow_and_multithread() {
        assert!(compiled());
        assert!(!active(), "tracing must start disabled");
        // Records while inactive go nowhere.
        span(SpanOp::Insert, 0, 10, 1);

        // --- Roundtrip with every record class.
        start(1024);
        assert!(active());
        let t0 = now_ns();
        phase(PhaseKind::Prefill, 0);
        span(SpanOp::Insert, t0, t0 + 50, 1);
        span(SpanOp::OpBatch, t0 + 50, t0 + 150, 64);
        on_event(Event::SlsmPivotRebuild, 7);
        phase(PhaseKind::RepEnd, 0);
        let data = stop();
        assert!(!active());
        assert_eq!(data.dropped_total(), 0);
        let mine: Vec<&TraceRecord> = data
            .timelines
            .iter()
            .flat_map(|t| t.records.iter())
            .collect();
        assert_eq!(mine.len(), 5, "all five records drained: {mine:?}");
        assert!(mine.iter().any(|r| matches!(
            r.data,
            RecordData::Span { op: SpanOp::OpBatch, dur_ns: 100, ops: 64 }
        )));
        assert!(mine.iter().any(|r| matches!(
            r.data,
            RecordData::Event { event: Event::SlsmPivotRebuild, count: 7 }
        )));
        assert!(mine.iter().any(|r| matches!(
            r.data,
            RecordData::Phase { phase: PhaseKind::Prefill, rep: 0 }
        )));
        // Timestamps are rebased to the cell start.
        for r in &mine {
            assert!(r.ts_ns < 10_000_000_000, "ts {} not cell-relative", r.ts_ns);
        }

        // --- A second cell must not see the first cell's records, and
        // ring overflow keeps the newest records while counting drops.
        // `start`'s capacity applies to rings created after it (existing
        // rings keep theirs), so record from a fresh thread.
        start(16);
        let t1 = now_ns();
        std::thread::scope(|scope| {
            scope.spawn(|| {
                for i in 0..40u32 {
                    span(SpanOp::DeleteMin, t1 + i as u64, t1 + i as u64 + 1, 1);
                }
            });
        });
        let data = stop();
        let tl = data
            .timelines
            .iter()
            .find(|t| t.dropped > 0)
            .expect("the fresh thread overflowed its ring");
        // Ring overflow kept the newest 16 and reported 24 dropped.
        assert_eq!(tl.records.len(), 16);
        assert_eq!(tl.dropped, 24);
        assert_eq!(data.dropped_total(), 24);
        for r in &tl.records {
            assert!(
                matches!(r.data, RecordData::Span { op: SpanOp::DeleteMin, .. }),
                "stale record leaked into second cell: {r:?}"
            );
        }
        let ops: Vec<u64> = tl.records.iter().map(|r| r.ts_ns).collect();
        assert!(ops.windows(2).all(|w| w[0] <= w[1]), "ring order chronological");

        // --- Worker threads get their own timelines; rings survive
        // thread exit until drained.
        start(1024);
        let base = now_ns();
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    span(SpanOp::OpBatch, base, base + 10, 64);
                    on_event(Event::MqEmptySample, 1);
                });
            }
        });
        let data = stop();
        let with_batch = data
            .timelines
            .iter()
            .filter(|t| {
                t.records
                    .iter()
                    .any(|r| matches!(r.data, RecordData::Span { op: SpanOp::OpBatch, .. }))
            })
            .count();
        assert_eq!(with_batch, 3, "one timeline per worker: {:?}", data.timelines.len());
        for t in &data.timelines {
            assert_eq!(t.dropped, 0);
        }
        // Thread ids are unique.
        let mut ids: Vec<u64> = data.timelines.iter().map(|t| t.thread).collect();
        ids.dedup();
        assert_eq!(ids.len(), data.timelines.len());
    }
}
