//! Per-thread operation histories for semantic checking.
//!
//! The `checker` crate verifies conservation and rank bounds from a
//! complete record of what every thread did to a queue. [`Recorded`]
//! wraps any [`ConcurrentPq`] and stamps each operation twice on a
//! queue-wide logical clock: a `start` load before the inner call and a
//! unique `ts` `fetch_add` after it returns (the completion convention
//! matches the harness's quality benchmark, so replay tooling can share
//! slack assumptions). Each handle buffers its records in a plain `Vec`
//! and commits it to the queue-level registry when dropped, so the
//! recording hot path is two atomics plus a vector push. Every
//! operation also passes through [`crate::chaos::tick`], so a checker
//! run under chaos perturbs even queues that have no internal telemetry
//! hook points.
//!
//! Recording is a per-queue runtime choice: [`Recorded::disabled`]
//! builds a pass-through wrapper whose operations skip the clock and the
//! buffer entirely, which lets generic drivers keep one code path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::{ConcurrentPq, Item, Key, PqHandle, RelaxationBound, Value};

/// One completed operation and its observed result.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// `insert(key, value)` returned.
    Insert(Item),
    /// `delete_min()` returned this result (`None` = appeared empty).
    DeleteMin(Option<Item>),
    /// `flush()` committed this many buffered items.
    Flush(u64),
}

/// An [`Op`] stamped with its invocation and completion times on the
/// queue's logical clock. Completion timestamps are unique per queue
/// (fetch_add), so sorting by `ts` yields one total order consistent
/// with per-thread program order — but *not* necessarily with
/// linearization order, since the operation's effect lands somewhere in
/// `[start, ts]`. Checkers exploit the interval: an observation that is
/// explainable at *either* endpoint (or is off by no more than the
/// in-flight operation count) cannot be blamed on the queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpRecord {
    /// Logical clock value when the operation was invoked (a plain
    /// load, so not unique — ties broken by `ts`).
    pub start: u64,
    /// Logical completion timestamp (unique).
    pub ts: u64,
    /// The operation.
    pub op: Op,
}

/// Recording wrapper around a concurrent priority queue.
///
/// Shareable by reference exactly like the queue it wraps; handles
/// created through it record every operation (when enabled) into
/// per-handle buffers collected by [`Recorded::take_histories`].
pub struct Recorded<Q> {
    inner: Q,
    enabled: bool,
    clock: AtomicU64,
    histories: Mutex<Vec<Vec<OpRecord>>>,
}

impl<Q> Recorded<Q> {
    /// Wrap `inner` with recording enabled.
    pub fn new(inner: Q) -> Self {
        Self {
            inner,
            enabled: true,
            clock: AtomicU64::new(0),
            histories: Mutex::new(Vec::new()),
        }
    }

    /// Wrap `inner` as a pass-through: operations forward directly with
    /// no clock traffic and no recording.
    pub fn disabled(inner: Q) -> Self {
        Self {
            enabled: false,
            ..Self::new(inner)
        }
    }

    /// `true` when handles record their operations.
    pub fn is_recording(&self) -> bool {
        self.enabled
    }

    /// Current logical clock value. All records committed so far have
    /// `ts` strictly below this; drivers capture it between phases (with
    /// the threads quiescent at a barrier) to partition histories.
    pub fn now(&self) -> u64 {
        self.clock.load(Ordering::SeqCst)
    }

    /// Drain every committed per-handle history. Histories from handles
    /// that are still alive are not included — drop (or flush and drop)
    /// all handles first.
    pub fn take_histories(&self) -> Vec<Vec<OpRecord>> {
        std::mem::take(&mut *self.histories.lock().unwrap())
    }

    /// The wrapped queue.
    pub fn inner(&self) -> &Q {
        &self.inner
    }

    /// Unwrap, discarding any recorded histories.
    pub fn into_inner(self) -> Q {
        self.inner
    }
}

impl<Q: ConcurrentPq> ConcurrentPq for Recorded<Q> {
    type Handle<'a>
        = RecordedHandle<'a, Q>
    where
        Self: 'a;

    fn handle(&self) -> Self::Handle<'_> {
        RecordedHandle {
            inner: self.inner.handle(),
            owner: self,
            local: Vec::new(),
        }
    }

    fn name(&self) -> String {
        self.inner.name()
    }
}

impl<Q: RelaxationBound> RelaxationBound for Recorded<Q> {
    fn rank_bound(&self, threads: usize) -> Option<u64> {
        self.inner.rank_bound(threads)
    }

    fn rank_bound_is_guaranteed(&self) -> bool {
        self.inner.rank_bound_is_guaranteed()
    }
}

/// Handle produced by [`Recorded`]; forwards to the wrapped queue's
/// handle and (when recording) logs each completed operation.
pub struct RecordedHandle<'a, Q: ConcurrentPq + 'a> {
    inner: Q::Handle<'a>,
    owner: &'a Recorded<Q>,
    local: Vec<OpRecord>,
}

impl<'a, Q: ConcurrentPq> RecordedHandle<'a, Q> {
    /// Invocation stamp, taken before the inner operation runs. Ops
    /// with completion stamps below the returned value have fully
    /// finished (stamped) at this point.
    #[inline]
    fn start(&self) -> u64 {
        if self.owner.enabled {
            self.owner.clock.load(Ordering::SeqCst)
        } else {
            0
        }
    }

    #[inline]
    fn log(&mut self, start: u64, op: Op) {
        // Completion stamp *after* the operation returned: the record
        // order within a thread matches program order, and the clock
        // never runs ahead of the operations it describes.
        let ts = self.owner.clock.fetch_add(1, Ordering::SeqCst);
        self.local.push(OpRecord { start, ts, op });
    }
}

impl<'a, Q: ConcurrentPq> PqHandle for RecordedHandle<'a, Q> {
    #[inline]
    fn insert(&mut self, key: Key, value: Value) {
        crate::chaos::tick();
        let start = self.start();
        self.inner.insert(key, value);
        if self.owner.enabled {
            self.log(start, Op::Insert(Item::new(key, value)));
        }
    }

    #[inline]
    fn delete_min(&mut self) -> Option<Item> {
        crate::chaos::tick();
        let start = self.start();
        let got = self.inner.delete_min();
        if self.owner.enabled {
            self.log(start, Op::DeleteMin(got));
        }
        got
    }

    #[inline]
    fn flush(&mut self) -> u64 {
        let start = self.start();
        let n = self.inner.flush();
        if self.owner.enabled {
            self.log(start, Op::Flush(n));
        }
        n
    }
}

impl<'a, Q: ConcurrentPq> Drop for RecordedHandle<'a, Q> {
    fn drop(&mut self) {
        if self.owner.enabled && !self.local.is_empty() {
            let mut histories = self.owner.histories.lock().unwrap();
            histories.push(std::mem::take(&mut self.local));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tiny strict queue for exercising the wrapper.
    #[derive(Default)]
    struct VecPq {
        items: Mutex<Vec<Item>>,
    }

    struct VecPqHandle<'a>(&'a VecPq);

    impl ConcurrentPq for VecPq {
        type Handle<'a> = VecPqHandle<'a>;

        fn handle(&self) -> VecPqHandle<'_> {
            VecPqHandle(self)
        }

        fn name(&self) -> String {
            "vecpq".into()
        }
    }

    impl PqHandle for VecPqHandle<'_> {
        fn insert(&mut self, key: Key, value: Value) {
            self.0.items.lock().unwrap().push(Item::new(key, value));
        }

        fn delete_min(&mut self) -> Option<Item> {
            let mut items = self.0.items.lock().unwrap();
            let idx = items
                .iter()
                .enumerate()
                .min_by_key(|(_, it)| **it)
                .map(|(i, _)| i)?;
            Some(items.swap_remove(idx))
        }
    }

    #[test]
    fn records_ops_with_monotone_timestamps() {
        let q = Recorded::new(VecPq::default());
        assert!(q.is_recording());
        assert_eq!(q.name(), "vecpq");
        {
            let mut h = q.handle();
            h.insert(3, 30);
            h.insert(1, 10);
            assert_eq!(h.delete_min(), Some(Item::new(1, 10)));
            assert_eq!(h.flush(), 0);
        }
        let boundary = q.now();
        assert_eq!(boundary, 4);
        {
            let mut h = q.handle();
            assert_eq!(h.delete_min(), Some(Item::new(3, 30)));
            assert_eq!(h.delete_min(), None);
        }
        let histories = q.take_histories();
        assert_eq!(histories.len(), 2);
        let mut all: Vec<OpRecord> = histories.concat();
        all.sort_by_key(|r| r.ts);
        assert_eq!(all.len(), 6);
        assert_eq!(all[0].op, Op::Insert(Item::new(3, 30)));
        assert_eq!(all[3].op, Op::Flush(0));
        assert!(all[..4].iter().all(|r| r.ts < boundary));
        assert!(all[4..].iter().all(|r| r.ts >= boundary));
        assert_eq!(all[5].op, Op::DeleteMin(None));
        // Histories were drained.
        assert!(q.take_histories().is_empty());
    }

    #[test]
    fn disabled_wrapper_records_nothing() {
        let q = Recorded::disabled(VecPq::default());
        assert!(!q.is_recording());
        {
            let mut h = q.handle();
            h.insert(5, 50);
            assert_eq!(h.delete_min(), Some(Item::new(5, 50)));
        }
        assert_eq!(q.now(), 0, "disabled recording never touches the clock");
        assert!(q.take_histories().is_empty());
    }
}
