//! Common traits and item types shared by every priority queue in this
//! workspace.
//!
//! The paper ("Benchmarking Concurrent Priority Queues", SPAA 2016)
//! considers priority queues over key-value pairs supporting exactly two
//! operations: `insert` and `delete_min`. Strict queues return *the*
//! minimal key in some linearization; relaxed queues may return one of the
//! `ρ` smallest keys, where `ρ` is a structure-specific relaxation bound
//! (e.g. `kP` for the k-LSM with relaxation parameter `k` on `P` threads).
//!
//! Concurrent queues here follow the same handle-based design as the
//! original C++ k-LSM: the shared queue object is cheap to share
//! (`&Q: Send + Sync`), and each thread obtains a [`PqHandle`] through
//! which it performs operations. For purely shared structures the handle
//! is a thin wrapper; for the k-LSM it owns the thread-local DLSM.
//!
//! ```
//! use pq_traits::{Item, SequentialPq};
//!
//! fn drain_sorted<P: SequentialPq>(pq: &mut P) -> Vec<Item> {
//!     std::iter::from_fn(|| pq.delete_min()).collect()
//! }
//! ```

#![warn(missing_docs)]

pub mod chaos;
pub mod history;
pub mod instrument;
pub mod item;
pub mod seed;
pub mod telemetry;
pub mod trace;

pub use history::{Op, OpRecord, Recorded, RecordedHandle};
pub use instrument::{Instrumented, OpCounts};
pub use item::{Item, Key, Value};
pub use seed::{handle_seed, DEFAULT_QUEUE_SEED};

/// A sequential priority queue over `(Key, Value)` pairs.
///
/// Used for the substrates (binary heap, pairing heap, LSM) and by the
/// lock-based wrappers. Mutation requires `&mut self`.
pub trait SequentialPq {
    /// Insert a key-value pair.
    fn insert(&mut self, key: Key, value: Value);

    /// Remove and return a pair with the minimal key, or `None` if empty.
    fn delete_min(&mut self) -> Option<Item>;

    /// Return the minimal key currently stored without removing it.
    fn peek_min(&self) -> Option<Item>;

    /// Number of stored items.
    fn len(&self) -> usize;

    /// `true` if no items are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Remove all items.
    fn clear(&mut self) {
        while self.delete_min().is_some() {}
    }
}

/// A concurrent priority queue.
///
/// The queue itself is shared between threads by reference; every thread
/// calls [`ConcurrentPq::handle`] once and then performs all operations
/// through the returned [`PqHandle`].
pub trait ConcurrentPq: Send + Sync {
    /// Per-thread operation handle.
    type Handle<'a>: PqHandle
    where
        Self: 'a;

    /// Create a handle for the calling thread.
    ///
    /// Handles are not required to be `Send`; each thread must create its
    /// own. Creating more handles than the configured thread bound (where
    /// a structure has one, such as the k-LSM's thread slots) may panic.
    fn handle(&self) -> Self::Handle<'_>;

    /// Short display name used by the benchmark harness ("klsm256",
    /// "linden", "multiqueue", ...).
    fn name(&self) -> String;
}

/// Per-thread handle through which queue operations are performed.
pub trait PqHandle {
    /// Insert a key-value pair.
    fn insert(&mut self, key: Key, value: Value);

    /// Remove and return an item with a small key.
    ///
    /// For strict queues this is a minimal item in some linearization; for
    /// relaxed queues it is one of the `ρ` smallest, per the structure's
    /// documented relaxation bound. Returns `None` only if the queue
    /// appeared empty (for relaxed queues: *locally* empty — a concurrent
    /// insert may not yet be visible).
    fn delete_min(&mut self) -> Option<Item>;

    /// Commit any handle-buffered operations to the shared structure,
    /// returning how many buffered items were committed.
    ///
    /// Buffering handles (e.g. the sticky MultiQueue's insertion and
    /// deletion buffers) override this to push pending inserts into the
    /// shared queue and return deletion-buffered items to it, so that no
    /// item is lost when the handle goes idle. The harness calls it at
    /// the end of every measurement window and before emptiness checks;
    /// buffering handles must also call it on drop. The return value
    /// feeds the [`instrument::Instrumented`] flush counters so buffer
    /// commit frequency is observable. Default: no-op returning 0
    /// (unbuffered handles have nothing to commit).
    fn flush(&mut self) -> u64 {
        0
    }
}

/// Relaxation metadata, used by the quality benchmark to compare measured
/// rank errors against claimed bounds.
pub trait RelaxationBound {
    /// Upper bound on the *rank* (0-based position within a snapshot of
    /// the queue) of items returned by `delete_min`, as a function of the
    /// number of participating threads. `Some(0)` means strict semantics;
    /// `None` means no bound is claimed (e.g. the MultiQueue).
    fn rank_bound(&self, threads: usize) -> Option<u64>;

    /// Whether [`RelaxationBound::rank_bound`] is a *guaranteed*
    /// per-operation bound — one a semantic checker may enforce on every
    /// deletion — as opposed to a probabilistic or expected reference
    /// curve (the SprayList's `O(P log³ P)` holds only with high
    /// probability, so individual deletions may land deeper). Defaults
    /// to `true`; queues whose bound is a curve, not a contract, must
    /// override.
    fn rank_bound_is_guaranteed(&self) -> bool {
        true
    }
}
