//! Key-value item type used by all queues in the workspace.

/// Priority key. The paper benchmarks 8-, 16- and 32-bit integer ranges
/// plus ascending/descending dependent keys; `u64` accommodates all of
/// them (the ascending distribution adds the operation number to a random
/// base and can exceed 32 bits in long runs).
pub type Key = u64;

/// Payload value. The benchmarks use it to carry a unique operation id so
/// the quality benchmark can match insertions to deletions.
pub type Value = u64;

/// A key-value pair. Ordered by key, then value, so that items with equal
/// keys still have a deterministic total order (required by the
/// order-statistic replay structure).
///
/// `repr(C)` pins the field order (`key` at offset 0, `value` at offset
/// 8): the LSM SIMD kernels load `Item` arrays directly into vector
/// registers and compare the two `u64` fields positionally, so the
/// layout is part of the contract (asserted at compile time in
/// `lsm::simd`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(C)]
pub struct Item {
    /// Priority key (smaller = higher priority).
    pub key: Key,
    /// Payload.
    pub value: Value,
}

impl Item {
    /// Create an item.
    #[inline]
    pub const fn new(key: Key, value: Value) -> Self {
        Self { key, value }
    }
}

impl PartialOrd for Item {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Item {
    #[inline]
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        (self.key, self.value).cmp(&(other.key, other.value))
    }
}

impl From<(Key, Value)> for Item {
    #[inline]
    fn from((key, value): (Key, Value)) -> Self {
        Self { key, value }
    }
}

impl From<Item> for (Key, Value) {
    #[inline]
    fn from(it: Item) -> Self {
        (it.key, it.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_key_then_value() {
        let a = Item::new(1, 9);
        let b = Item::new(2, 0);
        let c = Item::new(1, 10);
        assert!(a < b);
        assert!(a < c);
        assert!(c < b);
    }

    #[test]
    fn tuple_conversions_roundtrip() {
        let it: Item = (7, 42).into();
        assert_eq!(it, Item::new(7, 42));
        let t: (Key, Value) = it.into();
        assert_eq!(t, (7, 42));
    }

    #[test]
    fn equal_items_compare_equal() {
        assert_eq!(
            Item::new(3, 3).cmp(&Item::new(3, 3)),
            core::cmp::Ordering::Equal
        );
    }
}
