//! Deterministic per-handle RNG seeding, shared by every queue crate.
//!
//! The `workloads` crate promises that a benchmark run is fully
//! determined by its seed; that contract only holds if the queues keep
//! it too. Several structures use a per-handle RNG on their operation
//! paths (the MultiQueue's two-choice sampling, the SprayList's spray
//! walk, the Mound's random leaf probe, the Lindén skiplist's tower
//! heights), and seeding those from entropy makes quality/rank-error
//! runs non-reproducible. Instead, every queue holds a 64-bit queue
//! seed plus a handle counter, and derives handle `i`'s RNG seed with
//! [`handle_seed`] — distinct streams per handle, identical streams
//! across runs.

/// Default queue seed used by `new()` constructors. Benchmarks that
/// want run-to-run variation opt in via a `with_entropy()`-style
/// constructor instead.
pub const DEFAULT_QUEUE_SEED: u64 = 0x5EED_4D51;

/// Mix a handle index into a queue seed (splitmix-style odd constant so
/// consecutive indices map to well-separated seeds). Index 0 is offset
/// by one so `handle_seed(s, 0) != s` — the queue seed itself never
/// doubles as a handle seed.
#[inline]
pub fn handle_seed(queue_seed: u64, handle_idx: u64) -> u64 {
    queue_seed ^ handle_idx.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handle_seeds_are_distinct_and_stable() {
        let seeds: Vec<u64> = (0..64).map(|i| handle_seed(DEFAULT_QUEUE_SEED, i)).collect();
        let mut uniq = seeds.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), seeds.len(), "handle seeds must not collide");
        assert!(!seeds.contains(&DEFAULT_QUEUE_SEED));
        // Stable across calls (pure function of its inputs).
        assert_eq!(handle_seed(7, 3), handle_seed(7, 3));
        assert_ne!(handle_seed(7, 3), handle_seed(8, 3));
    }
}
