//! Schedule-perturbation ("chaos") shim for stress testing.
//!
//! Concurrency bugs in the queues live on their slow paths: a `find`
//! restart in the skiplist, a lost CAS, a DLSM spy, an SLSM pivot
//! rebuild, a sticky-MultiQueue buffer flush. Those are exactly the
//! points already annotated with [`crate::telemetry`] events, so this
//! module piggybacks on them: [`crate::telemetry::record_n`] forwards
//! every event to [`on_event`], which — when chaos is enabled — rolls a
//! thread-local deterministic RNG and injects either a
//! `std::thread::yield_now()` or a short bounded spin. Stretching the
//! window around contended transitions makes rare interleavings common,
//! and seeding the RNG makes a stress run's perturbation *schedule*
//! reproducible (the OS scheduler still has the last word, but a failing
//! seed usually keeps failing).
//!
//! Chaos is a **runtime** switch, not a cargo feature: the queues'
//! telemetry call sites sit on slow paths only, so the disabled cost —
//! one relaxed load and a predicted branch — is noise there, and a
//! runtime flag avoids feature-unification surprises across the
//! workspace. When disabled (the default), nothing else happens.
//!
//! Per-thread streams derive from `global seed ⊕ mix(registration
//! index)` using the same mixing as [`crate::seed::handle_seed`];
//! [`configure`] bumps an epoch so threads re-derive their stream and
//! the process can run many independent chaos cells.

use core::sync::atomic::{AtomicU64, Ordering};
use std::cell::Cell;

use crate::seed::handle_seed;
use crate::telemetry::Event;

/// 0 = disabled; any other value is the current configuration epoch.
static EPOCH: AtomicU64 = AtomicU64::new(0);
static SEED: AtomicU64 = AtomicU64::new(0);
/// Per-mille probability of a `yield_now` per event.
static YIELD_PERMILLE: AtomicU64 = AtomicU64::new(0);
/// Per-mille probability of a bounded spin per event.
static SPIN_PERMILLE: AtomicU64 = AtomicU64::new(0);
/// Upper bound (exclusive) on injected spin iterations.
static SPIN_MAX: AtomicU64 = AtomicU64::new(0);
/// Registration order of perturbing threads within the current epoch.
static THREAD_CTR: AtomicU64 = AtomicU64::new(0);
/// Total perturbations injected since the last [`configure`]. For
/// logging only — never put this in a report that must be
/// run-to-run deterministic.
static INJECTED: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// (epoch this thread last reseeded at, xorshift64* state).
    static STATE: Cell<(u64, u64)> = const { Cell::new((0, 0)) };
}

/// Chaos injection parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Global seed; per-thread streams derive from it.
    pub seed: u64,
    /// Per-mille probability of injecting `thread::yield_now()` at a
    /// hook event.
    pub yield_permille: u32,
    /// Per-mille probability of injecting a bounded spin instead.
    pub spin_permille: u32,
    /// Exclusive upper bound on spin iterations per injection.
    pub spin_max: u32,
}

impl ChaosConfig {
    /// Defaults that perturb aggressively enough to matter on slow
    /// paths without collapsing throughput: 40‰ yields, 100‰ spins of
    /// up to 128 iterations.
    pub fn aggressive(seed: u64) -> Self {
        Self {
            seed,
            yield_permille: 40,
            spin_permille: 100,
            spin_max: 128,
        }
    }
}

/// Enable chaos injection process-wide with `cfg`. Threads pick up the
/// new configuration (and re-derive their RNG stream) at their next
/// hook event. Resets the [`injected`] counter.
pub fn configure(cfg: ChaosConfig) {
    SEED.store(cfg.seed, Ordering::Relaxed);
    YIELD_PERMILLE.store(cfg.yield_permille as u64, Ordering::Relaxed);
    SPIN_PERMILLE.store(cfg.spin_permille as u64, Ordering::Relaxed);
    SPIN_MAX.store(cfg.spin_max.max(1) as u64, Ordering::Relaxed);
    THREAD_CTR.store(0, Ordering::Relaxed);
    INJECTED.store(0, Ordering::Relaxed);
    // Bump last so a racing on_event never sees a half-written config
    // under the new epoch with the old seed. Skip 0 (the disabled
    // sentinel) on wrap.
    let mut next = EPOCH.load(Ordering::Relaxed).wrapping_add(1);
    if next == 0 {
        next = 1;
    }
    EPOCH.store(next, Ordering::Release);
}

/// Disable chaos injection process-wide.
pub fn disable() {
    EPOCH.store(0, Ordering::Release);
}

/// `true` while chaos injection is configured on.
pub fn enabled() -> bool {
    EPOCH.load(Ordering::Relaxed) != 0
}

/// Perturbations injected since the last [`configure`] (diagnostic
/// only; not deterministic across runs).
pub fn injected() -> u64 {
    INJECTED.load(Ordering::Relaxed)
}

/// Telemetry hook: called by [`crate::telemetry::record_n`] for every
/// recorded event. A single relaxed load when chaos is off.
#[inline]
pub fn on_event(_event: Event) {
    tick();
}

/// Event-less perturbation point: a single relaxed load when chaos is
/// off, a seeded yield/spin roll when it is on. Queues without internal
/// telemetry events (the locked heaps, the chunk queue) still get
/// perturbed through this — [`crate::history::RecordedHandle`] calls it
/// on every operation, so the checker stresses every queue uniformly.
#[inline]
pub fn tick() {
    let epoch = EPOCH.load(Ordering::Relaxed);
    if epoch == 0 {
        return;
    }
    perturb(epoch);
}

#[cold]
fn perturb(epoch: u64) {
    STATE.with(|cell| {
        let (seen, mut s) = cell.get();
        if seen != epoch {
            let idx = THREAD_CTR.fetch_add(1, Ordering::Relaxed);
            s = handle_seed(SEED.load(Ordering::Relaxed), idx);
            if s == 0 {
                s = 0x9E37_79B9_7F4A_7C15;
            }
        }
        // xorshift64* step; state is never zero.
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        cell.set((epoch, s));

        let roll = s.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 32;
        let roll = roll % 1000;
        let yield_p = YIELD_PERMILLE.load(Ordering::Relaxed);
        let spin_p = SPIN_PERMILLE.load(Ordering::Relaxed);
        if roll < yield_p {
            INJECTED.fetch_add(1, Ordering::Relaxed);
            std::thread::yield_now();
        } else if roll < yield_p + spin_p {
            INJECTED.fetch_add(1, Ordering::Relaxed);
            let spins = s >> 48 | 1;
            let spins = spins % SPIN_MAX.load(Ordering::Relaxed).max(1) + 1;
            for _ in 0..spins {
                core::hint::spin_loop();
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    // Chaos state is process-global, so keep everything in one test to
    // avoid cross-test interference under the parallel test runner.
    #[test]
    fn configure_enable_disable_roundtrip() {
        assert!(!enabled(), "chaos must start disabled");
        on_event(Event::SkiplistCasRetry); // no-op, must not panic

        configure(ChaosConfig {
            seed: 42,
            yield_permille: 0,
            spin_permille: 1000,
            spin_max: 4,
        });
        assert!(enabled());
        for _ in 0..64 {
            on_event(Event::SkiplistCasRetry);
        }
        // Other tests in this binary may record telemetry events (and
        // thus perturb) concurrently, so assert lower bounds only.
        assert!(injected() >= 64, "spin_permille=1000 injects every event");

        // Reconfiguring resets the injection counter and epoch.
        configure(ChaosConfig::aggressive(7));
        assert!(enabled());
        assert!(injected() < 64, "configure resets the injected counter");

        disable();
        assert!(!enabled());
        on_event(Event::MqBufferFlush); // no-op, must not panic
    }
}
