//! Queue-internal contention telemetry.
//!
//! The paper's *explanations* for its throughput and rank-error results
//! rest on internal events the benchmarks cannot see: CAS retries in the
//! skiplist, spy-driven work stealing in the DLSM, lost claim races and
//! pivot rebuilds in the SLSM, empty-looking samples and buffer flushes
//! in the MultiQueue. This module gives every queue crate a single,
//! dependency-free place to record those events.
//!
//! # Design
//!
//! Each recording thread owns a cache-line-aligned shard of counters
//! (one slot per [`Event`]); shards are registered in a global list and
//! summed on [`snapshot`]. Recording is therefore a single uncontended
//! relaxed `fetch_add` on a thread-private cache line — no shared-line
//! ping-pong even with dozens of threads hammering the same event.
//!
//! The counters are gated on the `telemetry` cargo feature: without
//! it, [`snapshot`] returns all zeros and the counting side of
//! [`record`]/[`record_n`] compiles to nothing. What always remains is
//! the [`crate::chaos`] hook — one relaxed load per call site — so the
//! schedule-perturbation stress layer can piggyback on these same
//! slow-path markers without a separate build. Check [`enabled`]
//! before paying for anything (e.g. pre-computing a count to pass to
//! [`record_n`]).
//!
//! Counters are process-global and **monotone** — there is deliberately
//! no reset. A reset would be a process-wide write racing every other
//! concurrently running cell or test (the parallel `cargo test` runner
//! makes that the common case, not the exception). Instead, consumers
//! take a [`snapshot`] before a cell and attribute with
//! [`EventCounts::since`] afterwards; deltas compose soundly no matter
//! how many cells run in parallel, as long as each cell's own events
//! land between its two snapshots (true when the cell joins its worker
//! threads before the closing snapshot).

use core::sync::atomic::AtomicU64;

/// A queue-internal event worth counting.
///
/// Each variant names the structure it belongs to; see the module docs
/// of the recording crates (and EXPERIMENTS.md §Observability) for what
/// each event means for the paper's explanations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Event {
    /// Skiplist: a `find` pass had to restart from the head because a
    /// helping unlink CAS failed.
    SkiplistFindRestart,
    /// Skiplist: a CAS on a node's bottom-level pointer failed (insert
    /// publish or delete-min claim lost a race) and was retried.
    SkiplistCasRetry,
    /// DLSM: a deletion found its thread-local LSM empty and went
    /// looking for a victim to spy from.
    DlsmSpyAttempt,
    /// DLSM: a spy attempt found a non-empty victim and stole items.
    DlsmSpySteal,
    /// DLSM: number of items moved by successful spies (recorded with
    /// [`record_n`]).
    DlsmSpyItems,
    /// SLSM: a `try_take` on a pivot candidate failed because another
    /// thread claimed the entry first.
    SlsmLostRace,
    /// SLSM: the pivot range was exhausted while live items remained and
    /// had to be rebuilt (the k-LSM slow path).
    SlsmPivotRebuild,
    /// MultiQueue: a two-choice sample observed both sub-queue minima as
    /// empty (spurious or real emptiness signal).
    MqEmptySample,
    /// MultiQueue (sticky): an insertion buffer was committed to a
    /// sub-queue under one lock acquire.
    MqBufferFlush,
    /// MultiQueue (sticky): number of items committed by buffer flushes
    /// (recorded with [`record_n`]).
    MqBufferFlushItems,
    /// LSM block pool: a buffer request was served from a free list
    /// (no heap allocation).
    LsmPoolHit,
    /// LSM block pool: a buffer request missed every free list and fell
    /// back to a fresh heap allocation.
    LsmPoolMiss,
    /// LSM block pool: bytes of buffer capacity returned to a free list
    /// for reuse (recorded with [`record_n`]).
    LsmPoolRecycledBytes,
    /// LSM kernels: a sort or merge ran through a tier-1 sorting/merge
    /// network (combined size ≤ `NETWORK_MAX_CAP`).
    LsmKernelNetworkHit,
    /// LSM kernels: a merge ran through the tier-2 chunked bitonic
    /// kernel (both inputs at least one `BITONIC_CHUNK` long).
    LsmKernelBitonicHit,
    /// LSM kernels: a merge ran through the tier-2b bidirectional
    /// two-chain kernel (combined size ≥ `MERGE_PATH_MIN`).
    LsmKernelBidiHit,
    /// LSM kernels: a drain ran through the tier-3 k-way loser tree
    /// (one `take_all_sorted` pass over ≥ 2 blocks).
    LsmKernelLoserTreePass,
    /// LSM SIMD kernels: a block merge ran through the vector chunked
    /// merge (`lsm::simd::merge_simd_append`, AVX2 or AVX-512 tier).
    LsmKernelSimdMergeHit,
    /// LSM SIMD kernels: a `delete_min` head scan ran through the wide
    /// vector argmin instead of the scalar conditional-move scan.
    LsmKernelSimdArgminHit,
    /// LSM SIMD kernels: a sorting/merge network ran its
    /// compare-exchange schedule through vector spans (one count per
    /// network invocation at a SIMD tier, not per span).
    LsmKernelSimdCexHit,
    /// Flat combining: a thread won the combiner lock (`try_lock`
    /// succeeded) and entered a combining critical section.
    FcLockAcquire,
    /// Flat combining: one scan pass over the publication list that
    /// applied at least one pending operation.
    FcCombineRound,
    /// Flat combining: number of published operations applied by
    /// combiners on behalf of any thread (recorded with [`record_n`]).
    FcOpsCombined,
}

impl Event {
    /// Every event, in stable export order.
    pub const ALL: [Event; 23] = [
        Event::SkiplistFindRestart,
        Event::SkiplistCasRetry,
        Event::DlsmSpyAttempt,
        Event::DlsmSpySteal,
        Event::DlsmSpyItems,
        Event::SlsmLostRace,
        Event::SlsmPivotRebuild,
        Event::MqEmptySample,
        Event::MqBufferFlush,
        Event::MqBufferFlushItems,
        Event::LsmPoolHit,
        Event::LsmPoolMiss,
        Event::LsmPoolRecycledBytes,
        Event::LsmKernelNetworkHit,
        Event::LsmKernelBitonicHit,
        Event::LsmKernelBidiHit,
        Event::LsmKernelLoserTreePass,
        Event::LsmKernelSimdMergeHit,
        Event::LsmKernelSimdArgminHit,
        Event::LsmKernelSimdCexHit,
        Event::FcLockAcquire,
        Event::FcCombineRound,
        Event::FcOpsCombined,
    ];

    /// Number of distinct events.
    pub const COUNT: usize = Self::ALL.len();

    /// Stable snake_case name used as the JSON key in metrics exports.
    pub fn name(self) -> &'static str {
        match self {
            Event::SkiplistFindRestart => "skiplist_find_restart",
            Event::SkiplistCasRetry => "skiplist_cas_retry",
            Event::DlsmSpyAttempt => "dlsm_spy_attempt",
            Event::DlsmSpySteal => "dlsm_spy_steal",
            Event::DlsmSpyItems => "dlsm_spy_items",
            Event::SlsmLostRace => "slsm_lost_race",
            Event::SlsmPivotRebuild => "slsm_pivot_rebuild",
            Event::MqEmptySample => "mq_empty_sample",
            Event::MqBufferFlush => "mq_buffer_flush",
            Event::MqBufferFlushItems => "mq_buffer_flush_items",
            Event::LsmPoolHit => "lsm_pool_hit",
            Event::LsmPoolMiss => "lsm_pool_miss",
            Event::LsmPoolRecycledBytes => "lsm_pool_recycled_bytes",
            Event::LsmKernelNetworkHit => "lsm_kernel_network_hits",
            Event::LsmKernelBitonicHit => "lsm_kernel_bitonic_hits",
            Event::LsmKernelBidiHit => "lsm_kernel_bidi_hits",
            Event::LsmKernelLoserTreePass => "lsm_kernel_losertree_passes",
            Event::LsmKernelSimdMergeHit => "lsm_kernel_simd_merge_hits",
            Event::LsmKernelSimdArgminHit => "lsm_kernel_simd_argmin_hits",
            Event::LsmKernelSimdCexHit => "lsm_kernel_simd_cex_hits",
            Event::FcLockAcquire => "fc_lock_acquires",
            Event::FcCombineRound => "fc_combine_rounds",
            Event::FcOpsCombined => "fc_ops_combined",
        }
    }
}

/// Snapshot of every event counter, summed over all thread shards.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EventCounts {
    counts: [u64; Event::COUNT],
}

impl EventCounts {
    /// Count recorded for one event.
    pub fn get(&self, event: Event) -> u64 {
        self.counts[event as usize]
    }

    /// Iterate `(event, count)` pairs in [`Event::ALL`] order.
    pub fn iter(&self) -> impl Iterator<Item = (Event, u64)> + '_ {
        Event::ALL.iter().map(|&e| (e, self.get(e)))
    }

    /// Sum of all counters.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// `true` if no event was recorded (always the case with the
    /// `telemetry` feature disabled).
    pub fn is_zero(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }

    /// Per-event difference `self − earlier`, saturating at zero (counts
    /// are monotone between resets, so saturation only absorbs a
    /// concurrent reset).
    pub fn since(&self, earlier: &EventCounts) -> EventCounts {
        let mut out = EventCounts::default();
        for i in 0..Event::COUNT {
            out.counts[i] = self.counts[i].saturating_sub(earlier.counts[i]);
        }
        out
    }
}

/// `true` when the crate was built with the `telemetry` feature, i.e.
/// when [`record`] actually records.
pub const fn enabled() -> bool {
    cfg!(feature = "telemetry")
}

/// Record one occurrence of `event`.
#[inline]
pub fn record(event: Event) {
    record_n(event, 1);
}

/// Record `n` occurrences of `event` (bulk counters such as
/// [`Event::DlsmSpyItems`]).
///
/// Also the hook point for the schedule-perturbation shim and the
/// flight recorder: every recorded event is forwarded to
/// [`crate::chaos::on_event`] (one relaxed load while chaos is
/// disabled; may inject a yield or bounded spin during a stress run)
/// and to [`crate::trace::on_event`] (nothing without the `trace`
/// feature; one relaxed load while no trace is recording). Both hooks
/// are independent of the `telemetry` feature — the events mark the
/// interesting slow-path transitions either way.
#[inline]
pub fn record_n(event: Event, n: u64) {
    crate::chaos::on_event(event);
    crate::trace::on_event(event, n);
    imp::record_n(event, n);
}

/// Record one occurrence of `event` WITHOUT marking a chaos hook point.
///
/// For events on purely sequential internal paths (e.g. the LSM block
/// pool, which only ever runs under `&mut self`): schedule perturbation
/// at such a site cannot surface interleavings, so the chaos shim's
/// relaxed load is pure overhead there. With the `telemetry` feature
/// disabled this compiles to nothing at all.
#[inline]
pub fn record_quiet(event: Event) {
    record_n_quiet(event, 1);
}

/// As [`record_quiet`], recording `n` occurrences. Quiet only with
/// respect to chaos: the flight recorder still sees the event, since a
/// timeline without the sequential-path events (pool hits, kernel tier
/// selections) would misattribute their cost to neighboring spans.
#[inline]
pub fn record_n_quiet(event: Event, n: u64) {
    crate::trace::on_event(event, n);
    imp::record_n(event, n);
}

/// Sum every thread's shard into one [`EventCounts`].
///
/// Counters are never reset; bracket a region with two snapshots and
/// diff them with [`EventCounts::since`] to attribute events to it.
pub fn snapshot() -> EventCounts {
    imp::snapshot()
}

/// One thread's counter shard, aligned to a cache line so concurrent
/// recording threads never share one. Kept out of the feature gate so
/// the type (and its alignment contract) is always compiled and
/// testable.
#[repr(align(64))]
#[cfg_attr(not(feature = "telemetry"), allow(dead_code))]
struct Shard {
    counts: [AtomicU64; Event::COUNT],
}

impl Shard {
    #[cfg_attr(not(feature = "telemetry"), allow(dead_code))]
    fn new() -> Self {
        Self {
            counts: core::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

#[cfg(feature = "telemetry")]
mod imp {
    use super::{Event, EventCounts, Shard};
    use core::sync::atomic::Ordering;
    use std::sync::{Arc, Mutex, OnceLock};

    /// All shards ever created. `Arc` keeps a shard (and its counts)
    /// alive after its owning thread exits, so totals never regress.
    fn registry() -> &'static Mutex<Vec<Arc<Shard>>> {
        static REGISTRY: OnceLock<Mutex<Vec<Arc<Shard>>>> = OnceLock::new();
        REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
    }

    thread_local! {
        static SHARD: Arc<Shard> = {
            let shard = Arc::new(Shard::new());
            registry().lock().unwrap().push(Arc::clone(&shard));
            shard
        };
    }

    #[inline]
    pub fn record_n(event: Event, n: u64) {
        // The shard is thread-private for writes; the atomic only makes
        // cross-thread snapshot reads sound, it is never contended.
        SHARD.with(|s| {
            s.counts[event as usize].fetch_add(n, Ordering::Relaxed);
        });
    }

    pub fn snapshot() -> EventCounts {
        let mut out = EventCounts::default();
        for shard in registry().lock().unwrap().iter() {
            for e in Event::ALL {
                out.counts[e as usize] =
                    out.counts[e as usize].wrapping_add(shard.counts[e as usize].load(Ordering::Relaxed));
            }
        }
        out
    }

}

#[cfg(not(feature = "telemetry"))]
mod imp {
    use super::{Event, EventCounts};

    #[inline(always)]
    pub fn record_n(_event: Event, _n: u64) {}

    pub fn snapshot() -> EventCounts {
        EventCounts::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_snake_case() {
        let mut names: Vec<&str> = Event::ALL.iter().map(|e| e.name()).collect();
        assert!(names
            .iter()
            .all(|n| n.chars().all(|c| c.is_ascii_lowercase() || c == '_')));
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Event::COUNT);
    }

    #[test]
    fn shard_is_cache_line_aligned() {
        assert_eq!(core::mem::align_of::<Shard>() % 64, 0);
    }

    #[test]
    fn counts_since_saturates() {
        let mut a = EventCounts::default();
        let mut b = EventCounts::default();
        a.counts[0] = 5;
        b.counts[0] = 7;
        b.counts[1] = 2;
        let d = b.since(&a);
        assert_eq!(d.counts[0], 2);
        assert_eq!(d.counts[1], 2);
        assert_eq!(a.since(&b).counts[0], 0, "negative delta saturates");
        assert_eq!(d.total(), 4);
        assert!(!d.is_zero());
        assert!(EventCounts::default().is_zero());
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn record_snapshot_reset_roundtrip() {
        // Other tests in the process may record concurrently, so assert
        // on deltas of one event from a dedicated thread.
        let before = snapshot().get(Event::SlsmPivotRebuild);
        std::thread::spawn(|| {
            record(Event::SlsmPivotRebuild);
            record_n(Event::SlsmPivotRebuild, 4);
        })
        .join()
        .unwrap();
        let after = snapshot().get(Event::SlsmPivotRebuild);
        assert!(after >= before + 5, "after {after} < before {before} + 5");
        assert!(enabled());
    }

    #[cfg(not(feature = "telemetry"))]
    #[test]
    fn disabled_records_nothing() {
        record(Event::MqEmptySample);
        record_n(Event::MqEmptySample, 100);
        assert!(snapshot().is_zero());
        assert!(!enabled());
    }
}
