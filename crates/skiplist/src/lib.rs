//! Lock-free skiplist substrate and the two skiplist-based competitors
//! benchmarked by the paper.
//!
//! * [`list::SkipList`] — a Fraser/Harris-style lock-free skiplist with
//!   marked (tagged) next pointers, helping searches, and epoch-based
//!   memory reclamation (crossbeam-epoch). This is the substrate the
//!   original SprayList builds on (Fraser's skiplist) and the basis of
//!   the Lindén–Jonsson queue.
//! * [`linden::LindenPq`] — strict, linearizable, lock-free priority
//!   queue: `delete_min` claims the first live node of the bottom level
//!   with a single CAS on the node's own next pointer (Lindén &
//!   Jonsson's logical-deletion technique; see the module docs for how
//!   our physical cleanup differs from their batched restructuring).
//! * [`spray::SprayList`] — relaxed priority queue: `delete_min` performs
//!   a random *spray* walk over the head of the list and claims the node
//!   it lands on, returning one of the O(P log³ P) smallest items
//!   (Alistarh et al., PPoPP 2015).

#![warn(missing_docs)]

pub mod linden;
pub mod list;
pub mod spray;

pub use linden::LindenPq;
pub use list::SkipList;
pub use spray::SprayList;
