//! The Lindén–Jonsson strict skiplist-based priority queue (`linden`).
//!
//! Lindén & Jonsson (OPODIS 2013) observed that most CAS traffic in
//! skiplist priority queues comes from physically unlinking the deleted
//! minimum at every level, and reduced `delete_min` to a *single* CAS
//! that sets a deletion flag on the claimed node's own next pointer,
//! deferring physical cleanup (batched "restructuring" of the deleted
//! prefix). Our substrate uses the same single-CAS logical claim on the
//! bottom-level next pointer; physical cleanup differs in that claimants
//! unlink eagerly via a helping search instead of batching prefix
//! restructures (see DESIGN.md §2 — the strict linearizable semantics are
//! identical, absolute throughput is somewhat lower).
//!
//! The queue is strict: `delete_min` returns the minimal item in some
//! linearization (rank bound 0).

use std::sync::atomic::{AtomicU64, Ordering};

use rand::rngs::SmallRng;
use rand::SeedableRng;

use pq_traits::seed::{handle_seed, DEFAULT_QUEUE_SEED};
use pq_traits::{ConcurrentPq, Item, Key, PqHandle, RelaxationBound, Value};

use crate::list::SkipList;

/// Strict, lock-free, linearizable skiplist priority queue.
#[derive(Debug)]
pub struct LindenPq {
    list: SkipList,
    seed: u64,
    handle_ctr: AtomicU64,
}

impl LindenPq {
    /// Create an empty queue with the default deterministic seed (the
    /// per-handle tower-height RNGs derive from it, so runs replay).
    pub fn new() -> Self {
        Self::with_seed(DEFAULT_QUEUE_SEED)
    }

    /// Create an empty queue whose handle RNGs derive from `seed`
    /// (handle `i` gets `seed ⊕ mix(i)`).
    pub fn with_seed(seed: u64) -> Self {
        Self {
            list: SkipList::new(),
            seed,
            handle_ctr: AtomicU64::new(0),
        }
    }

    /// Approximate number of stored items.
    pub fn len_hint(&self) -> usize {
        self.list.len_hint()
    }

    /// Smallest item without removing it.
    pub fn peek_min(&self) -> Option<Item> {
        self.list.peek_min()
    }
}

impl Default for LindenPq {
    fn default() -> Self {
        Self::new()
    }
}

/// Per-thread handle for [`LindenPq`].
pub struct LindenHandle<'a> {
    list: &'a SkipList,
    rng: SmallRng,
}

impl PqHandle for LindenHandle<'_> {
    fn insert(&mut self, key: Key, value: Value) {
        self.list.insert(key, value, &mut self.rng);
    }

    fn delete_min(&mut self) -> Option<Item> {
        self.list.delete_min()
    }
}

impl ConcurrentPq for LindenPq {
    type Handle<'a> = LindenHandle<'a>;

    fn handle(&self) -> LindenHandle<'_> {
        let idx = self.handle_ctr.fetch_add(1, Ordering::Relaxed);
        LindenHandle {
            list: &self.list,
            rng: SmallRng::seed_from_u64(handle_seed(self.seed, idx)),
        }
    }

    fn name(&self) -> String {
        "linden".to_owned()
    }
}

impl RelaxationBound for LindenPq {
    fn rank_bound(&self, _threads: usize) -> Option<u64> {
        Some(0) // strict semantics
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_sequential_order() {
        let q = LindenPq::new();
        let mut h = q.handle();
        for k in [7u64, 2, 9, 4, 1, 8] {
            h.insert(k, k);
        }
        let out: Vec<Key> = std::iter::from_fn(|| h.delete_min()).map(|i| i.key).collect();
        assert_eq!(out, vec![1, 2, 4, 7, 8, 9]);
    }

    #[test]
    fn rank_bound_is_zero() {
        assert_eq!(LindenPq::new().rank_bound(64), Some(0));
    }

    #[test]
    fn concurrent_deletes_are_globally_sorted_per_thread() {
        // Strict semantics: each thread's deletion sequence must be
        // non-decreasing when no inserts run concurrently.
        let q = std::sync::Arc::new(LindenPq::new());
        {
            let mut h = q.handle();
            for k in 0..10_000u64 {
                h.insert(k, k);
            }
        }
        std::thread::scope(|s| {
            for _ in 0..4 {
                let q = &q;
                s.spawn(move || {
                    let mut h = q.handle();
                    let mut prev: Option<Key> = None;
                    while let Some(it) = h.delete_min() {
                        if let Some(p) = prev {
                            assert!(it.key >= p, "out-of-order strict deletion");
                        }
                        prev = Some(it.key);
                    }
                });
            }
        });
        assert_eq!(q.len_hint(), 0);
    }
}
