//! The SprayList relaxed priority queue (`spray`).
//!
//! Alistarh, Kopinsky, Li and Shavit (PPoPP 2015): `delete_min` performs
//! a random walk ("spray") over the head region of a lock-free skiplist
//! — starting at height O(log P) and jumping a uniformly random number of
//! nodes at each level — and claims the node it lands on. With the
//! parameters used here the returned item is among the O(P log³ P)
//! smallest with high probability, which removes the sequential
//! bottleneck of contending on the exact minimum.
//!
//! The paper's benchmark notes the original SprayList implementation was
//! "not stable" outside the uniform-workload/uniform-key configuration;
//! this Rust implementation is stable in all configurations (epoch-based
//! reclamation removes the memory-management races), so we report all of
//! them and note the difference in EXPERIMENTS.md.

use std::sync::atomic::{AtomicU64, Ordering};

use rand::rngs::SmallRng;
use rand::SeedableRng;

use pq_traits::seed::{handle_seed, DEFAULT_QUEUE_SEED};
use pq_traits::{ConcurrentPq, Item, Key, PqHandle, RelaxationBound, Value};

use crate::list::SkipList;

/// Relaxed skiplist priority queue with random-walk deletions.
#[derive(Debug)]
pub struct SprayList {
    list: SkipList,
    threads: usize,
    seed: u64,
    handle_ctr: AtomicU64,
}

impl SprayList {
    /// Create an empty SprayList tuned for `threads` participants (the
    /// spray height and jump lengths scale with `log₂ threads`), with
    /// the default deterministic seed for the per-handle spray RNGs.
    pub fn new(threads: usize) -> Self {
        Self::with_seed(threads, DEFAULT_QUEUE_SEED)
    }

    /// Create an empty SprayList whose handle RNGs derive from `seed`
    /// (handle `i` gets `seed ⊕ mix(i)`), making spray walks — and so
    /// quality runs — reproducible.
    pub fn with_seed(threads: usize, seed: u64) -> Self {
        Self {
            list: SkipList::new(),
            threads: threads.max(1),
            seed,
            handle_ctr: AtomicU64::new(0),
        }
    }

    /// Approximate number of stored items.
    pub fn len_hint(&self) -> usize {
        self.list.len_hint()
    }

    /// The thread count the spray parameters are tuned for.
    pub fn threads(&self) -> usize {
        self.threads
    }
}

/// Per-thread handle for [`SprayList`].
pub struct SprayHandle<'a> {
    q: &'a SprayList,
    rng: SmallRng,
}

impl PqHandle for SprayHandle<'_> {
    fn insert(&mut self, key: Key, value: Value) {
        self.q.list.insert(key, value, &mut self.rng);
    }

    fn delete_min(&mut self) -> Option<Item> {
        self.q.list.spray_delete(&mut self.rng, self.q.threads)
    }
}

impl ConcurrentPq for SprayList {
    type Handle<'a> = SprayHandle<'a>;

    fn handle(&self) -> SprayHandle<'_> {
        let idx = self.handle_ctr.fetch_add(1, Ordering::Relaxed);
        SprayHandle {
            q: self,
            rng: SmallRng::seed_from_u64(handle_seed(self.seed, idx)),
        }
    }

    fn name(&self) -> String {
        "spray".to_owned()
    }
}

impl RelaxationBound for SprayList {
    fn rank_bound(&self, threads: usize) -> Option<u64> {
        // O(P log³ P) with high probability — not a hard bound, but the
        // quality benchmark uses it as the reference curve.
        let p = threads.max(2) as u64;
        let log_p = 64 - p.leading_zeros() as u64;
        Some(p * log_p * log_p * log_p)
    }

    fn rank_bound_is_guaranteed(&self) -> bool {
        // The curve above is w.h.p. only: a spray walk over random
        // towers can land arbitrarily deep, so per-deletion enforcement
        // would flag correct behavior.
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drains_all_items() {
        let q = SprayList::new(4);
        let mut h = q.handle();
        for k in 0..500u64 {
            h.insert(k, k);
        }
        let mut got: Vec<Key> = std::iter::from_fn(|| h.delete_min()).map(|i| i.key).collect();
        got.sort_unstable();
        assert_eq!(got, (0..500).collect::<Vec<_>>());
    }

    #[test]
    fn returns_small_ranked_items() {
        let q = SprayList::new(8);
        let mut h = q.handle();
        for k in 0..10_000u64 {
            h.insert(k, k);
        }
        // Every spray should land well within the head region.
        for i in 0..200 {
            let it = h.delete_min().unwrap();
            // Generous envelope: rank bound for 8 threads is 8·4³ = 512
            // w.h.p.; items deleted so far shift the scale by i.
            assert!(
                it.key < 2048 + i,
                "spray returned item with excessive rank: {it:?}"
            );
        }
    }

    #[test]
    fn empty_returns_none() {
        let q = SprayList::new(2);
        let mut h = q.handle();
        assert_eq!(h.delete_min(), None);
        h.insert(3, 3);
        assert_eq!(h.delete_min(), Some(Item::new(3, 3)));
        assert_eq!(h.delete_min(), None);
    }

    #[test]
    fn concurrent_conservation_mixed_config() {
        // Exercise the configurations under which the original C++
        // SprayList crashed: split workload and non-uniform keys.
        use std::sync::atomic::{AtomicUsize, Ordering};
        let q = std::sync::Arc::new(SprayList::new(4));
        let inserted = AtomicUsize::new(0);
        let deleted = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let q = &q;
                let inserted = &inserted;
                let deleted = &deleted;
                s.spawn(move || {
                    let mut h = q.handle();
                    if t < 2 {
                        // Inserting half: ascending keys.
                        for i in 0..5000u64 {
                            h.insert(i, t * 5000 + i);
                        }
                        inserted.fetch_add(5000, Ordering::Relaxed);
                    } else {
                        // Deleting half.
                        let mut n = 0;
                        for _ in 0..5000 {
                            if h.delete_min().is_some() {
                                n += 1;
                            }
                        }
                        deleted.fetch_add(n, Ordering::Relaxed);
                    }
                });
            }
        });
        let mut h = q.handle();
        let mut rest = 0;
        while h.delete_min().is_some() {
            rest += 1;
        }
        assert_eq!(
            deleted.load(Ordering::Relaxed) + rest,
            inserted.load(Ordering::Relaxed)
        );
    }
}
