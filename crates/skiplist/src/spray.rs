//! The SprayList relaxed priority queue (`spray`).
//!
//! Alistarh, Kopinsky, Li and Shavit (PPoPP 2015): `delete_min` performs
//! a random walk ("spray") over the head region of a lock-free skiplist
//! — starting at height O(log P) and jumping a uniformly random number of
//! nodes at each level — and claims the node it lands on. With the
//! parameters used here the returned item is among the O(P log³ P)
//! smallest with high probability, which removes the sequential
//! bottleneck of contending on the exact minimum.
//!
//! The paper's benchmark notes the original SprayList implementation was
//! "not stable" outside the uniform-workload/uniform-key configuration;
//! this Rust implementation is stable in all configurations (epoch-based
//! reclamation removes the memory-management races), so we report all of
//! them and note the difference in EXPERIMENTS.md.
//!
//! # Insert buffering (`spray-b{m}`)
//!
//! [`SprayList::with_batch`] gives every handle a local insertion buffer
//! of up to `m` items, committed as one ascending run through
//! [`SkipList::insert_batch_sorted`] — a single epoch pin and one finger
//! descent per run instead of a full search per item. Deletions follow
//! the PR 5 dlsm/klsm handle semantics: when the buffered minimum wins
//! (ties included — the buffered item never entered the shared
//! structure, so serving it can neither duplicate nor lose anything) the
//! deletion is served from the buffer; otherwise it sprays. `flush()`
//! commits the remaining run, and so does dropping the handle.

use std::sync::atomic::{AtomicU64, Ordering};

use rand::rngs::SmallRng;
use rand::SeedableRng;

use pq_traits::seed::{handle_seed, DEFAULT_QUEUE_SEED};
use pq_traits::{ConcurrentPq, Item, Key, PqHandle, RelaxationBound, Value};

use crate::list::SkipList;

/// Relaxed skiplist priority queue with random-walk deletions.
#[derive(Debug)]
pub struct SprayList {
    list: SkipList,
    threads: usize,
    seed: u64,
    batch: usize,
    handle_ctr: AtomicU64,
}

impl SprayList {
    /// Create an empty SprayList tuned for `threads` participants (the
    /// spray height and jump lengths scale with `log₂ threads`), with
    /// the default deterministic seed for the per-handle spray RNGs.
    pub fn new(threads: usize) -> Self {
        Self::with_seed(threads, DEFAULT_QUEUE_SEED)
    }

    /// Create an empty SprayList whose handle RNGs derive from `seed`
    /// (handle `i` gets `seed ⊕ mix(i)`), making spray walks — and so
    /// quality runs — reproducible.
    pub fn with_seed(threads: usize, seed: u64) -> Self {
        Self::with_batch(threads, seed, 1)
    }

    /// As [`SprayList::with_seed`], with per-handle insertion buffers of
    /// `batch` items committed as one sorted run (`<= 1` = unbuffered).
    pub fn with_batch(threads: usize, seed: u64, batch: usize) -> Self {
        Self {
            list: SkipList::new(),
            threads: threads.max(1),
            seed,
            batch: batch.max(1),
            handle_ctr: AtomicU64::new(0),
        }
    }

    /// Approximate number of stored items.
    pub fn len_hint(&self) -> usize {
        self.list.len_hint()
    }

    /// The thread count the spray parameters are tuned for.
    pub fn threads(&self) -> usize {
        self.threads
    }
}

/// Per-thread handle for [`SprayList`].
pub struct SprayHandle<'a> {
    q: &'a SprayList,
    rng: SmallRng,
    /// Insertion buffer, sorted descending so the minimum is `last()`
    /// (pop-from-the-end, the mq-sticky idiom). Capacity `q.batch`.
    ins_buf: Vec<Item>,
}

impl SprayHandle<'_> {
    /// Commit the buffered run as one ascending batch insert. Returns
    /// the number of committed items.
    fn commit_inserts(&mut self) -> u64 {
        let n = self.ins_buf.len() as u64;
        if n > 0 {
            self.ins_buf.reverse(); // descending → ascending
            self.q.list.insert_batch_sorted(&self.ins_buf, &mut self.rng);
            self.ins_buf.clear();
        }
        n
    }
}

impl PqHandle for SprayHandle<'_> {
    fn insert(&mut self, key: Key, value: Value) {
        if self.q.batch <= 1 {
            self.q.list.insert(key, value, &mut self.rng);
            return;
        }
        let it = Item::new(key, value);
        let pos = self.ins_buf.partition_point(|x| *x > it);
        self.ins_buf.insert(pos, it);
        if self.ins_buf.len() >= self.q.batch {
            self.commit_inserts();
        }
    }

    fn delete_min(&mut self) -> Option<Item> {
        if let Some(&buf_min) = self.ins_buf.last() {
            // Serve from the buffer when its min wins. Ties go to the
            // buffer: the buffered item never entered the shared list,
            // so taking it cannot duplicate or lose the shared copy.
            let buf_wins = match self.q.list.peek_min() {
                None => true,
                Some(shared_min) => buf_min <= shared_min,
            };
            if buf_wins {
                return self.ins_buf.pop();
            }
        }
        match self.q.list.spray_delete(&mut self.rng, self.q.threads) {
            Some(it) => Some(it),
            // The shared list emptied under us; fall back to the buffer.
            None => self.ins_buf.pop(),
        }
    }

    fn flush(&mut self) -> u64 {
        self.commit_inserts()
    }
}

impl Drop for SprayHandle<'_> {
    fn drop(&mut self) {
        self.commit_inserts();
    }
}

impl ConcurrentPq for SprayList {
    type Handle<'a> = SprayHandle<'a>;

    fn handle(&self) -> SprayHandle<'_> {
        let idx = self.handle_ctr.fetch_add(1, Ordering::Relaxed);
        SprayHandle {
            q: self,
            rng: SmallRng::seed_from_u64(handle_seed(self.seed, idx)),
            ins_buf: Vec::with_capacity(self.batch),
        }
    }

    fn name(&self) -> String {
        if self.batch <= 1 {
            "spray".to_owned()
        } else {
            format!("spray-b{}", self.batch)
        }
    }
}

impl RelaxationBound for SprayList {
    fn rank_bound(&self, threads: usize) -> Option<u64> {
        // O(P log³ P) with high probability — not a hard bound, but the
        // quality benchmark uses it as the reference curve. `log` is the
        // floor of log₂ (P ≥ 2 here, so the subtraction cannot wrap);
        // `64 − leading_zeros` would be the *bit length* (⌊log₂P⌋ + 1),
        // which inflated the curve ~2.4× at P = 8 and ~8× at P = 2.
        let p = threads.max(2) as u64;
        let log_p = 63 - p.leading_zeros() as u64;
        let curve = p * log_p * log_p * log_p;
        // Insert buffering adds up to m − 1 locally deferred items per
        // handle that a deletion elsewhere cannot see.
        Some(curve + ((self.batch as u64 - 1) * threads as u64))
    }

    fn rank_bound_is_guaranteed(&self) -> bool {
        // The curve above is w.h.p. only: a spray walk over random
        // towers can land arbitrarily deep, so per-deletion enforcement
        // would flag correct behavior.
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drains_all_items() {
        let q = SprayList::new(4);
        let mut h = q.handle();
        for k in 0..500u64 {
            h.insert(k, k);
        }
        let mut got: Vec<Key> = std::iter::from_fn(|| h.delete_min()).map(|i| i.key).collect();
        got.sort_unstable();
        assert_eq!(got, (0..500).collect::<Vec<_>>());
    }

    #[test]
    fn returns_small_ranked_items() {
        let q = SprayList::new(8);
        let mut h = q.handle();
        for k in 0..10_000u64 {
            h.insert(k, k);
        }
        // Every spray should land well within the head region.
        for i in 0..200 {
            let it = h.delete_min().unwrap();
            // Generous envelope: rank bound for 8 threads is 8·3³ = 216
            // w.h.p.; items deleted so far shift the scale by i.
            assert!(
                it.key < 2048 + i,
                "spray returned item with excessive rank: {it:?}"
            );
        }
    }

    #[test]
    fn rank_bound_curve_is_p_times_floor_log2_p_cubed() {
        // Pin P·⌊log₂P⌋³ so a bit-length regression (⌊log₂P⌋ + 1, which
        // gave 8·4³ = 512 at P = 8) cannot sneak back in.
        let q = SprayList::new(4);
        for (p, want) in [(2usize, 2u64), (4, 32), (8, 216), (64, 13_824)] {
            assert_eq!(q.rank_bound(p), Some(want), "P = {p}");
        }
        // threads < 2 clamps to P = 2.
        assert_eq!(q.rank_bound(1), Some(2));
        // Buffered variant adds (m − 1)·P on top of the curve.
        let qb = SprayList::with_batch(4, 7, 16);
        assert_eq!(qb.rank_bound(8), Some(216 + 15 * 8));
    }

    #[test]
    fn empty_returns_none() {
        let q = SprayList::new(2);
        let mut h = q.handle();
        assert_eq!(h.delete_min(), None);
        h.insert(3, 3);
        assert_eq!(h.delete_min(), Some(Item::new(3, 3)));
        assert_eq!(h.delete_min(), None);
    }

    #[test]
    fn batched_handle_serves_buffer_and_flushes() {
        let q = SprayList::with_batch(2, 11, 8);
        let mut h = q.handle();
        h.insert(5, 50);
        h.insert(2, 20);
        assert_eq!(q.len_hint(), 0, "runs below the batch stay buffered");
        // Buffered min wins over the empty shared list.
        assert_eq!(h.delete_min(), Some(Item::new(2, 20)));
        assert_eq!(h.flush(), 1);
        assert_eq!(q.len_hint(), 1);
        assert_eq!(h.delete_min(), Some(Item::new(5, 50)));
        assert_eq!(h.delete_min(), None);
    }

    #[test]
    fn batched_handle_commits_at_batch_size() {
        let q = SprayList::with_batch(2, 11, 4);
        let mut h = q.handle();
        for k in [9u64, 1, 7, 3] {
            h.insert(k, k);
        }
        assert_eq!(q.len_hint(), 4, "hitting the batch size commits the run");
        assert_eq!(h.flush(), 0);
    }

    #[test]
    fn dropped_batched_handle_flushes() {
        let q = SprayList::with_batch(2, 11, 64);
        {
            let mut h = q.handle();
            h.insert(42, 0);
            h.insert(43, 0);
        }
        let mut h2 = q.handle();
        // Spray deletions are relaxed (may skip past the head), so
        // compare the drained multiset, not the order.
        let mut got: Vec<Item> = std::iter::from_fn(|| h2.delete_min()).collect();
        got.sort_unstable();
        assert_eq!(got, vec![Item::new(42, 0), Item::new(43, 0)]);
    }

    #[test]
    fn buffered_tie_with_shared_min_neither_duplicates_nor_loses() {
        // Engineer buffered-min == shared-min (same key, distinct
        // values) and drain: every item must come back exactly once.
        let q = SprayList::with_batch(2, 11, 8);
        let mut committer = q.handle();
        committer.insert(5, 1);
        committer.flush();
        let mut h = q.handle();
        h.insert(5, 2); // buffered; ties with the shared (5, 1)
        let mut got = Vec::new();
        for _ in 0..2 {
            got.push(h.delete_min().expect("two items live"));
        }
        assert_eq!(h.delete_min(), None);
        got.sort_unstable();
        assert_eq!(got, vec![Item::new(5, 1), Item::new(5, 2)]);
    }

    #[test]
    fn concurrent_conservation_mixed_config() {
        // Exercise the configurations under which the original C++
        // SprayList crashed: split workload and non-uniform keys.
        use std::sync::atomic::{AtomicUsize, Ordering};
        let q = std::sync::Arc::new(SprayList::new(4));
        let inserted = AtomicUsize::new(0);
        let deleted = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let q = &q;
                let inserted = &inserted;
                let deleted = &deleted;
                s.spawn(move || {
                    let mut h = q.handle();
                    if t < 2 {
                        // Inserting half: ascending keys.
                        for i in 0..5000u64 {
                            h.insert(i, t * 5000 + i);
                        }
                        inserted.fetch_add(5000, Ordering::Relaxed);
                    } else {
                        // Deleting half.
                        let mut n = 0;
                        for _ in 0..5000 {
                            if h.delete_min().is_some() {
                                n += 1;
                            }
                        }
                        deleted.fetch_add(n, Ordering::Relaxed);
                    }
                });
            }
        });
        let mut h = q.handle();
        let mut rest = 0;
        while h.delete_min().is_some() {
            rest += 1;
        }
        assert_eq!(
            deleted.load(Ordering::Relaxed) + rest,
            inserted.load(Ordering::Relaxed)
        );
    }

    #[test]
    fn concurrent_conservation_batched_handles() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let q = std::sync::Arc::new(SprayList::with_batch(4, 3, 16));
        let deleted = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let q = &q;
                let deleted = &deleted;
                s.spawn(move || {
                    let mut h = q.handle();
                    let mut n = 0;
                    for i in 0..4000u64 {
                        h.insert((i * 31 + t) % 512, t * 10_000 + i);
                        if i % 3 == 2 && h.delete_min().is_some() {
                            n += 1;
                        }
                    }
                    h.flush();
                    deleted.fetch_add(n, Ordering::Relaxed);
                });
            }
        });
        let mut h = q.handle();
        let mut rest = 0;
        while h.delete_min().is_some() {
            rest += 1;
        }
        assert_eq!(deleted.load(Ordering::Relaxed) + rest, 4 * 4000);
    }
}
