//! Fraser/Harris-style lock-free skiplist with epoch reclamation.
//!
//! # Algorithm
//!
//! Every node carries a tower of `Atomic<Node>` next pointers. A node is
//! *logically deleted* when the tag bit of its next pointer is set at a
//! level; the bottom level (level 0) is authoritative: the thread whose
//! CAS tags `next[0]` *claims* the node and is the only one that will
//! return its item and later retire its memory. Searches (`SkipList::find`)
//! help by physically unlinking every marked node they encounter, per
//! Harris' original scheme; a claimed node is retired only after the
//! claimant completes a clean search pass, which guarantees the node is
//! no longer reachable from the head at any level.
//!
//! Nodes are ordered by `(Item, seq)` where `seq` is a per-list insertion
//! counter. This makes every node's position unique even under duplicate
//! key-value insertions, which in turn guarantees that a search for a
//! claimed node's exact coordinate always encounters (and unlinks) the
//! node itself rather than stopping at an equal neighbour — the property
//! the safety of memory retirement rests on.
//!
//! Priority-queue deletions only ever claim nodes near the head, but the
//! claim/unlink machinery is general and is reused by the SprayList's
//! random-walk deletions further into the list.

use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};

use crossbeam_epoch::{self as epoch, Atomic, Guard, Owned, Shared};
use rand::rngs::SmallRng;
use rand::Rng;

use pq_traits::telemetry;
use pq_traits::{Item, Key, Value};

/// Maximum tower height. 2^20 expected items per level-20 node; ample for
/// the paper's 10^6-element prefills.
pub const MAX_HEIGHT: usize = 20;

/// Tag bit marking a pointer's owning node as logically deleted at that
/// level.
const MARK: usize = 1;

/// Link-state handshake between an inserter and a claimant (deleter).
///
/// A claimant may catch a node whose inserter is still linking upper
/// levels. If the claimant retired the node after its own cleanup
/// search, the inserter could *re-link* the retired node at an upper
/// level, making freed memory reachable. Instead, retirement duty is
/// resolved by a CAS on this state: the loser of the race inherits the
/// duty — if the claimant's `INSERTING → CLAIMED_EARLY` CAS succeeds,
/// the inserter (the only thread that can create new links to the node)
/// unlinks and retires it when it finishes; otherwise the node was fully
/// linked and the claimant retires it as usual.
const LS_INSERTING: u8 = 0;
const LS_LINKED: u8 = 1;
const LS_CLAIMED_EARLY: u8 = 2;

pub(crate) struct Node {
    item: Item,
    /// Unique, monotone insertion sequence number; tie-breaker that makes
    /// node coordinates totally ordered even for duplicate items.
    seq: u64,
    /// See [`LS_INSERTING`].
    link_state: AtomicU8,
    tower: Box<[Atomic<Node>]>,
}

impl Node {
    #[inline]
    fn height(&self) -> usize {
        self.tower.len()
    }

    /// Total order over node coordinates.
    #[inline]
    fn coord(&self) -> (Item, u64) {
        (self.item, self.seq)
    }
}

/// Lock-free skiplist priority-queue substrate.
pub struct SkipList {
    head: Box<[Atomic<Node>]>,
    seq: AtomicU64,
    len: AtomicUsize,
}

// SAFETY: all shared state is managed through `Atomic` pointers with
// epoch-protected access.
unsafe impl Send for SkipList {}
unsafe impl Sync for SkipList {}

impl Default for SkipList {
    fn default() -> Self {
        Self::new()
    }
}

/// Search result: for each level, the predecessor of the target
/// coordinate and its successor, with all marked nodes on the path
/// unlinked.
#[derive(Clone, Copy)]
struct Position<'g> {
    preds: [&'g [Atomic<Node>]; MAX_HEIGHT],
    succs: [Shared<'g, Node>; MAX_HEIGHT],
}

impl SkipList {
    /// Create an empty list.
    pub fn new() -> Self {
        Self {
            head: (0..MAX_HEIGHT).map(|_| Atomic::null()).collect(),
            seq: AtomicU64::new(0),
            len: AtomicUsize::new(0),
        }
    }

    /// Approximate number of live items.
    pub fn len_hint(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// `true` if the list appears empty (no live node at the bottom
    /// level).
    pub fn is_empty_hint(&self) -> bool {
        self.len_hint() == 0
    }

    /// Geometric tower height in `[1, MAX_HEIGHT]` (p = 1/2).
    fn random_height(rng: &mut SmallRng) -> usize {
        let bits: u32 = rng.gen();
        ((bits.trailing_ones() as usize) + 1).min(MAX_HEIGHT)
    }

    /// Harris search for `target`, unlinking marked nodes encountered on
    /// the way. On return, `preds[l]`/`succs[l]` bracket the target
    /// coordinate at level `l` and no marked node with coordinate <
    /// `target` remains linked on the search path.
    fn find<'g>(&'g self, target: (Item, u64), guard: &'g Guard) -> Position<'g> {
        'retry: loop {
            let mut preds: [&'g [Atomic<Node>]; MAX_HEIGHT] = [&self.head; MAX_HEIGHT];
            let mut succs: [Shared<'g, Node>; MAX_HEIGHT] = [Shared::null(); MAX_HEIGHT];
            let mut pred: &'g [Atomic<Node>] = &self.head;
            for level in (0..MAX_HEIGHT).rev() {
                // A tag on pred's pointer marks *pred* as deleted, not its
                // successor — strip it so it cannot leak into succs (a
                // leaked tag would make a freshly inserted node's bottom
                // pointer appear claimed, losing the item).
                let mut cur = pred[level].load(Ordering::Acquire, guard).with_tag(0);
                // SAFETY: nodes are retired only after being
                // unreachable; the guard keeps reachable-at-load
                // memory alive.
                while let Some(cur_ref) = unsafe { cur.as_ref() } {
                    let next = cur_ref.tower[level].load(Ordering::Acquire, guard);
                    if next.tag() == MARK {
                        // `cur` is logically deleted: help unlink it.
                        match pred[level].compare_exchange(
                            cur.with_tag(0),
                            next.with_tag(0),
                            Ordering::AcqRel,
                            Ordering::Acquire,
                            guard,
                        ) {
                            Ok(_) => {
                                cur = next.with_tag(0);
                                continue;
                            }
                            Err(_) => {
                                telemetry::record(telemetry::Event::SkiplistFindRestart);
                                continue 'retry;
                            }
                        }
                    }
                    if cur_ref.coord() < target {
                        pred = &cur_ref.tower;
                        cur = next.with_tag(0);
                    } else {
                        break;
                    }
                }
                preds[level] = pred;
                succs[level] = cur;
            }
            return Position { preds, succs };
        }
    }

    /// Insert a key-value pair.
    pub fn insert(&self, key: Key, value: Value, rng: &mut SmallRng) {
        let guard = &epoch::pin();
        let item = Item::new(key, value);
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let height = Self::random_height(rng);
        let mut node = Owned::new(Node {
            item,
            seq,
            link_state: AtomicU8::new(LS_INSERTING),
            tower: (0..height).map(|_| Atomic::null()).collect(),
        });
        let target = (item, seq);
        // Publish at the bottom level.
        let node_shared = loop {
            let pos = self.find(target, guard);
            node.tower[0].store(pos.succs[0], Ordering::Relaxed);
            match pos.preds[0][0].compare_exchange(
                pos.succs[0],
                node,
                Ordering::AcqRel,
                Ordering::Acquire,
                guard,
            ) {
                Ok(shared) => break shared,
                Err(e) => {
                    telemetry::record(telemetry::Event::SkiplistCasRetry);
                    node = e.new;
                }
            }
        };
        self.len.fetch_add(1, Ordering::Relaxed);
        self.link_upper(node_shared, target, height, guard);
    }

    /// Insert an ascending-sorted run of items under a single epoch pin.
    ///
    /// The first item pays one full head-to-target descent; each later
    /// item advances the previous search position forward with a finger
    /// descent ([`SkipList::advance`]) that restarts only at the highest
    /// level whose bracket actually moves — one descent per run instead
    /// of one per item. Concurrency-safe: a stale finger at worst fails
    /// the bottom-level publish CAS and falls back to a full `find`.
    pub fn insert_batch_sorted(&self, items: &[Item], rng: &mut SmallRng) {
        debug_assert!(
            items.windows(2).all(|w| w[0] <= w[1]),
            "insert_batch_sorted requires an ascending run"
        );
        let guard = &epoch::pin();
        let mut finger: Option<Position<'_>> = None;
        for &item in items {
            let seq = self.seq.fetch_add(1, Ordering::Relaxed);
            let height = Self::random_height(rng);
            let mut node = Owned::new(Node {
                item,
                seq,
                link_state: AtomicU8::new(LS_INSERTING),
                tower: (0..height).map(|_| Atomic::null()).collect(),
            });
            // Ascending items and monotone seq make targets strictly
            // ascending, so the previous position is always behind us.
            let target = (item, seq);
            let node_shared = loop {
                let pos = match finger.take() {
                    Some(f) => self.advance(&f, target, guard),
                    None => self.find(target, guard),
                };
                node.tower[0].store(pos.succs[0], Ordering::Relaxed);
                match pos.preds[0][0].compare_exchange(
                    pos.succs[0],
                    node,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                    guard,
                ) {
                    Ok(shared) => {
                        finger = Some(pos);
                        break shared;
                    }
                    Err(e) => {
                        // Lost a race (or the finger was stale): retry
                        // with a full, unlinking search.
                        telemetry::record(telemetry::Event::SkiplistCasRetry);
                        node = e.new;
                    }
                }
            };
            self.len.fetch_add(1, Ordering::Relaxed);
            self.link_upper(node_shared, target, height, guard);
        }
    }

    /// Finger search: advance `prev` to a later `target` without
    /// restarting from the head. Levels whose recorded successor already
    /// lies at or past the target keep their previous bracket; the
    /// descent re-walks only from the highest level whose successor is
    /// before the target, carrying the predecessor down exactly like
    /// [`SkipList::find`]. Marked nodes are stepped over but *not*
    /// unlinked — if one sits directly in a returned bracket the caller's
    /// CAS fails and it falls back to `find`, which does unlink. Stale
    /// upper brackets are equally harmless: they only seed the next
    /// advance, and every walk re-loads pointers.
    fn advance<'g>(
        &'g self,
        prev: &Position<'g>,
        target: (Item, u64),
        guard: &'g Guard,
    ) -> Position<'g> {
        let mut preds = prev.preds;
        let mut succs = prev.succs;
        // Highest level whose recorded successor is before the target
        // (a null successor means "past everything": reusable).
        let mut top = 0;
        for level in (0..MAX_HEIGHT).rev() {
            // SAFETY: protected by `guard`; see `find`.
            if let Some(s) = unsafe { succs[level].as_ref() } {
                if s.coord() < target {
                    top = level;
                    break;
                }
            }
        }
        let mut pred = preds[top];
        for level in (0..=top).rev() {
            let mut cur = pred[level].load(Ordering::Acquire, guard).with_tag(0);
            // SAFETY: protected by `guard`; see `find`.
            while let Some(cur_ref) = unsafe { cur.as_ref() } {
                let next = cur_ref.tower[level].load(Ordering::Acquire, guard);
                if next.tag() == MARK {
                    // Logically deleted: step over without adopting it
                    // as a predecessor.
                    cur = next.with_tag(0);
                    continue;
                }
                if cur_ref.coord() < target {
                    pred = &cur_ref.tower;
                    cur = next.with_tag(0);
                } else {
                    break;
                }
            }
            preds[level] = pred;
            succs[level] = cur;
        }
        Position { preds, succs }
    }

    /// Link a freshly published node's upper levels, then resolve
    /// retirement duty with any concurrent claimant (see
    /// [`LS_INSERTING`]). Shared tail of [`SkipList::insert`] and
    /// [`SkipList::insert_batch_sorted`].
    fn link_upper<'g>(
        &'g self,
        node_shared: Shared<'g, Node>,
        target: (Item, u64),
        height: usize,
        guard: &'g Guard,
    ) {
        // Link the upper levels. Abort if the node gets claimed meanwhile.
        // SAFETY: `node_shared` is protected by the guard.
        let node_ref = unsafe { node_shared.deref() };
        'link: for level in 1..height {
            loop {
                if node_ref.tower[0].load(Ordering::Acquire, guard).tag() == MARK {
                    break 'link;
                }
                let pos = self.find(target, guard);
                let succ = pos.succs[level];
                // Point our tower at the successor (tagged = claimed ⇒
                // stop linking).
                let cur = node_ref.tower[level].load(Ordering::Acquire, guard);
                if cur.tag() == MARK {
                    break 'link;
                }
                if cur != succ
                    && node_ref.tower[level]
                        .compare_exchange(
                            cur,
                            succ,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                            guard,
                        )
                        .is_err()
                {
                    // Tag appeared or concurrent fixup; re-evaluate.
                    continue;
                }
                if pos.preds[level][level]
                    .compare_exchange(
                        succ,
                        node_shared,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                        guard,
                    )
                    .is_ok()
                {
                    continue 'link;
                }
                // Predecessor changed; retry this level.
            }
        }
        // Linking finished (or aborted on a claim). Resolve retirement
        // duty with the claimant: if a claimant already marked the node
        // while we were linking, the unlink-and-retire falls to us —
        // only after our final cleanup search is the node guaranteed to
        // never be re-linked.
        if node_ref
            .link_state
            .compare_exchange(
                LS_INSERTING,
                LS_LINKED,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_err()
        {
            let _ = self.find(node_ref.coord(), guard);
            // SAFETY: we are the only linker; after our clean find pass
            // the node is unreachable, and the claimant ceded retirement
            // to us, so this is the unique retire.
            unsafe { guard.defer_destroy(node_shared) };
        }
    }

    /// Mark the upper levels of a claimed node, help unlink it
    /// everywhere, and retire its memory. Must be called exactly once per
    /// node, by the claimant (the thread whose CAS tagged `next[0]`).
    fn finish_claim<'g>(&'g self, node: Shared<'g, Node>, guard: &'g Guard) {
        // SAFETY: claimant holds the guard; node not yet retired.
        let node_ref = unsafe { node.deref() };
        for level in (1..node_ref.height()).rev() {
            loop {
                let next = node_ref.tower[level].load(Ordering::Acquire, guard);
                if next.tag() == MARK {
                    break;
                }
                if node_ref.tower[level]
                    .compare_exchange(
                        next,
                        next.with_tag(MARK),
                        Ordering::AcqRel,
                        Ordering::Acquire,
                        guard,
                    )
                    .is_ok()
                {
                    break;
                }
            }
        }
        self.len.fetch_sub(1, Ordering::Relaxed);
        if node_ref
            .link_state
            .compare_exchange(
                LS_INSERTING,
                LS_CLAIMED_EARLY,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
        {
            // The inserter is still linking upper levels; it inherits the
            // unlink-and-retire duty (see LS_INSERTING docs). Help unlink
            // what is linked so far, but do NOT retire.
            let _ = self.find(node_ref.coord(), guard);
            return;
        }
        // Fully linked: a completed find pass unlinks the node at every
        // level it is still reachable on, so afterwards retirement is
        // safe.
        let _ = self.find(node_ref.coord(), guard);
        // SAFETY: unreachable after the clean find pass; claimed exactly
        // once and the inserter has finished, so retired exactly once.
        unsafe { guard.defer_destroy(node) };
    }

    /// Strict `delete_min`: claim the first live node on the bottom
    /// level.
    pub fn delete_min(&self) -> Option<Item> {
        let guard = &epoch::pin();
        let mut cur = self.head[0].load(Ordering::Acquire, guard);
        loop {
            // SAFETY: protected by `guard`.
            let cur_ref = unsafe { cur.as_ref() }?;
            let next = cur_ref.tower[0].load(Ordering::Acquire, guard);
            if next.tag() == MARK {
                // Already claimed: move over it.
                cur = next.with_tag(0);
                continue;
            }
            match cur_ref.tower[0].compare_exchange(
                next,
                next.with_tag(MARK),
                Ordering::AcqRel,
                Ordering::Acquire,
                guard,
            ) {
                Ok(_) => {
                    let item = cur_ref.item;
                    self.finish_claim(cur, guard);
                    return Some(item);
                }
                // Pointer changed (claimed by someone else or an insert
                // landed right after `cur`): re-read the same node.
                Err(_) => {
                    telemetry::record(telemetry::Event::SkiplistCasRetry);
                    continue;
                }
            }
        }
    }

    /// Relaxed spray deletion (Alistarh et al.): random-walk from the
    /// head and claim the node the walk lands on. `threads` parametrizes
    /// spray height and jump lengths. Falls back to a strict scan after
    /// repeated failed sprays so progress is guaranteed.
    pub fn spray_delete(&self, rng: &mut SmallRng, threads: usize) -> Option<Item> {
        let p = threads.max(2);
        let log_p = (usize::BITS - p.leading_zeros()) as usize; // ⌈log2 p⌉+ε
        let spray_height = (log_p + 1).min(MAX_HEIGHT);
        let max_jump = log_p.max(1) + 1;
        for _attempt in 0..2 {
            let guard = &epoch::pin();
            if let Some(item) = self.try_spray(rng, spray_height, max_jump, guard) {
                return Some(item);
            }
            // Emptiness must be decided on the bottom level, not on
            // `len_hint`: an inserter publishes its bottom-level CAS
            // before incrementing the counter, so a relaxed count of 0
            // can coexist with a live, linked node — and returning
            // `None` then would terminate a harness phase early.
            if self.bottom_is_empty(guard) {
                return None;
            }
        }
        // Fallback keeps the operation lock-free overall.
        self.delete_min()
    }

    /// `true` iff the bottom level holds no live (unmarked) node — the
    /// authoritative emptiness signal, in contrast to the relaxed
    /// [`SkipList::len_hint`] counter which lags behind published
    /// inserts.
    fn bottom_is_empty(&self, guard: &epoch::Guard) -> bool {
        let mut cur = self.head[0].load(Ordering::Acquire, guard);
        loop {
            // SAFETY: protected by `guard`.
            let Some(cur_ref) = (unsafe { cur.as_ref() }) else {
                return true;
            };
            let next = cur_ref.tower[0].load(Ordering::Acquire, guard);
            if next.tag() == MARK {
                cur = next.with_tag(0);
                continue;
            }
            return false;
        }
    }

    fn try_spray<'g>(
        &'g self,
        rng: &mut SmallRng,
        spray_height: usize,
        max_jump: usize,
        guard: &'g Guard,
    ) -> Option<Item> {
        let mut pred: &'g [Atomic<Node>] = &self.head;
        let mut landed: Shared<'g, Node> = Shared::null();
        for level in (0..spray_height).rev() {
            let jumps = rng.gen_range(0..=max_jump);
            // Strip pred's own deletion tag; see `find`.
            let mut cur = pred[level].load(Ordering::Acquire, guard).with_tag(0);
            for _ in 0..jumps {
                // SAFETY: protected by `guard`.
                let Some(cur_ref) = (unsafe { cur.as_ref() }) else {
                    break;
                };
                let next = cur_ref.tower[level].load(Ordering::Acquire, guard);
                if next.tag() == MARK {
                    // Don't count logically deleted nodes as progress.
                    cur = next.with_tag(0);
                    continue;
                }
                pred = &cur_ref.tower;
                landed = cur;
                cur = next;
            }
        }
        // Walk to a live node from where we landed (bottom level).
        let mut cur = if landed.is_null() {
            self.head[0].load(Ordering::Acquire, guard)
        } else {
            landed
        };
        for _ in 0..64 {
            // SAFETY: protected by `guard`.
            let cur_ref = unsafe { cur.as_ref() }?;
            let next = cur_ref.tower[0].load(Ordering::Acquire, guard);
            if next.tag() == MARK {
                cur = next.with_tag(0);
                continue;
            }
            match cur_ref.tower[0].compare_exchange(
                next,
                next.with_tag(MARK),
                Ordering::AcqRel,
                Ordering::Acquire,
                guard,
            ) {
                Ok(_) => {
                    let item = cur_ref.item;
                    self.finish_claim(cur, guard);
                    return Some(item);
                }
                Err(_) => {
                    telemetry::record(telemetry::Event::SkiplistCasRetry);
                    continue;
                }
            }
        }
        None
    }

    /// Smallest live item without removing it.
    pub fn peek_min(&self) -> Option<Item> {
        let guard = &epoch::pin();
        let mut cur = self.head[0].load(Ordering::Acquire, guard);
        loop {
            // SAFETY: protected by `guard`.
            let cur_ref = unsafe { cur.as_ref() }?;
            let next = cur_ref.tower[0].load(Ordering::Acquire, guard);
            if next.tag() == MARK {
                cur = next.with_tag(0);
                continue;
            }
            return Some(cur_ref.item);
        }
    }

    /// Snapshot of live items in ascending order. Quiescent use only
    /// (tests, diagnostics); concurrent mutations give a fuzzy view.
    pub fn collect_quiescent(&self) -> Vec<Item> {
        let guard = &epoch::pin();
        let mut out = Vec::new();
        let mut cur = self.head[0].load(Ordering::Acquire, guard);
        // SAFETY: protected by `guard`.
        while let Some(cur_ref) = unsafe { cur.as_ref() } {
            let next = cur_ref.tower[0].load(Ordering::Acquire, guard);
            if next.tag() != MARK {
                out.push(cur_ref.item);
            }
            cur = next.with_tag(0);
        }
        out
    }
}

impl Drop for SkipList {
    fn drop(&mut self) {
        // SAFETY: &mut self guarantees quiescence; walk the bottom level
        // and free every node (claimed-but-unlinked nodes were already
        // retired by their claimants and are NOT on the bottom chain —
        // they were unlinked — so no double free).
        unsafe {
            let guard = epoch::unprotected();
            let mut cur = self.head[0].load(Ordering::Relaxed, guard);
            while let Some(cur_ref) = cur.as_ref() {
                let next = cur_ref.tower[0].load(Ordering::Relaxed, guard);
                drop(cur.into_owned());
                cur = next.with_tag(0);
            }
        }
    }
}

impl std::fmt::Debug for SkipList {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SkipList")
            .field("len_hint", &self.len_hint())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(0xbeef)
    }

    #[test]
    fn empty_list() {
        let l = SkipList::new();
        assert_eq!(l.delete_min(), None);
        assert_eq!(l.peek_min(), None);
        assert!(l.is_empty_hint());
    }

    #[test]
    fn batch_insert_matches_item_at_a_time() {
        let l = SkipList::new();
        let mut r = rng();
        // Interleave single inserts with sorted runs (including
        // duplicate keys) and check the merged ascending order.
        l.insert(500, 1, &mut r);
        l.insert(10, 2, &mut r);
        let run: Vec<Item> = [3u64, 3, 40, 40, 900, 901]
            .iter()
            .enumerate()
            .map(|(i, &k)| Item::new(k, 100 + i as u64))
            .collect();
        l.insert_batch_sorted(&run, &mut r);
        l.insert_batch_sorted(&[], &mut r);
        l.insert_batch_sorted(&[Item::new(41, 7)], &mut r);
        let got = l.collect_quiescent();
        let mut want: Vec<Item> = run.clone();
        want.extend([Item::new(500, 1), Item::new(10, 2), Item::new(41, 7)]);
        want.sort_unstable();
        assert_eq!(got, want);
        assert_eq!(l.len_hint(), want.len());
    }

    #[test]
    fn batch_insert_long_runs_drain_sorted() {
        let l = SkipList::new();
        let mut r = rng();
        // Several overlapping sorted runs, so later runs advance fingers
        // through regions populated by earlier ones.
        let mut want = Vec::new();
        for run_id in 0..8u64 {
            let run: Vec<Item> = (0..64u64)
                .map(|i| Item::new((i * 13 + run_id * 5) % 97, run_id * 1000 + i))
                .collect();
            let mut sorted = run.clone();
            sorted.sort_unstable();
            l.insert_batch_sorted(&sorted, &mut r);
            want.extend(run);
        }
        want.sort_unstable();
        let mut got = Vec::new();
        while let Some(it) = l.delete_min() {
            got.push(it);
        }
        assert_eq!(got, want, "batched inserts must drain in exact order");
    }

    #[test]
    fn batch_insert_concurrent_with_deleters_conserves() {
        let l = std::sync::Arc::new(SkipList::new());
        let deleted = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| {
            for t in 0..2u64 {
                let l = &l;
                s.spawn(move || {
                    let mut r = SmallRng::seed_from_u64(t);
                    for run_id in 0..50u64 {
                        let mut run: Vec<Item> = (0..16u64)
                            .map(|i| Item::new(r.gen_range(0..64), t << 32 | run_id << 8 | i))
                            .collect();
                        run.sort_unstable();
                        l.insert_batch_sorted(&run, &mut r);
                    }
                });
            }
            for t in 2..4u64 {
                let l = &l;
                let deleted = &deleted;
                s.spawn(move || {
                    let mut r = SmallRng::seed_from_u64(t);
                    let mut n = 0;
                    for _ in 0..600 {
                        if l.spray_delete(&mut r, 4).is_some() {
                            n += 1;
                        }
                    }
                    deleted.fetch_add(n, Ordering::Relaxed);
                });
            }
        });
        let rest = l.collect_quiescent().len();
        assert_eq!(deleted.load(Ordering::Relaxed) + rest, 2 * 50 * 16);
    }

    #[test]
    fn spray_delete_ignores_stale_len_counter() {
        // Regression: `insert` publishes its bottom-level CAS before
        // incrementing `len`, so a concurrent spray can observe
        // `len_hint() == 0` with a live node already linked. Reproduce
        // that window deterministically by rolling the counter back and
        // assert spray_delete still finds the item instead of reporting
        // a false empty.
        let l = SkipList::new();
        let mut r = rng();
        l.insert(17, 170, &mut r);
        l.len.store(0, Ordering::Relaxed);
        assert_eq!(l.len_hint(), 0, "test precondition: counter lags");
        assert_eq!(
            l.spray_delete(&mut r, 4),
            Some(Item::new(17, 170)),
            "spray_delete must probe the bottom level, not the counter"
        );
        // Restore the counter invariant (the successful delete above
        // decremented it past zero in wrapping arithmetic).
        l.len.store(0, Ordering::Relaxed);
        assert_eq!(l.spray_delete(&mut r, 4), None, "now truly empty");
    }

    #[test]
    fn sorted_delete_min() {
        let l = SkipList::new();
        let mut r = rng();
        for k in [9u64, 4, 7, 1, 8, 2, 6, 3, 5, 0] {
            l.insert(k, k, &mut r);
        }
        let out: Vec<Key> = std::iter::from_fn(|| l.delete_min()).map(|i| i.key).collect();
        assert_eq!(out, (0..10).collect::<Vec<_>>());
        assert_eq!(l.len_hint(), 0);
    }

    #[test]
    fn duplicate_items_all_stored() {
        let l = SkipList::new();
        let mut r = rng();
        for _ in 0..50 {
            l.insert(7, 7, &mut r);
        }
        assert_eq!(l.len_hint(), 50);
        let mut n = 0;
        while l.delete_min().is_some() {
            n += 1;
        }
        assert_eq!(n, 50);
    }

    #[test]
    fn peek_matches_delete() {
        let l = SkipList::new();
        let mut r = rng();
        for k in [5u64, 3, 9] {
            l.insert(k, 0, &mut r);
        }
        assert_eq!(l.peek_min().map(|i| i.key), Some(3));
        assert_eq!(l.delete_min().map(|i| i.key), Some(3));
        assert_eq!(l.peek_min().map(|i| i.key), Some(5));
    }

    #[test]
    fn spray_returns_small_items() {
        let l = SkipList::new();
        let mut r = rng();
        for k in 0..1000u64 {
            l.insert(k, k, &mut r);
        }
        // Spray must return items near the head (small rank).
        for _ in 0..100 {
            let it = l.spray_delete(&mut r, 8).expect("non-empty");
            assert!(it.key < 600, "spray returned far-rank item {it:?}");
        }
    }

    #[test]
    fn spray_drains_whole_list() {
        let l = SkipList::new();
        let mut r = rng();
        for k in 0..300u64 {
            l.insert(k, k, &mut r);
        }
        let mut got: Vec<Key> = std::iter::from_fn(|| l.spray_delete(&mut r, 4))
            .map(|i| i.key)
            .collect();
        got.sort_unstable();
        assert_eq!(got, (0..300).collect::<Vec<_>>());
    }

    #[test]
    fn collect_quiescent_sorted() {
        let l = SkipList::new();
        let mut r = rng();
        for k in [3u64, 1, 4, 1, 5, 9, 2, 6] {
            l.insert(k, 0, &mut r);
        }
        let snap = l.collect_quiescent();
        assert_eq!(snap.len(), 8);
        assert!(snap.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn concurrent_insert_delete_conservation() {
        use std::sync::atomic::AtomicUsize;
        let l = std::sync::Arc::new(SkipList::new());
        let deleted = AtomicUsize::new(0);
        let inserted = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let l = &l;
                let deleted = &deleted;
                let inserted = &inserted;
                s.spawn(move || {
                    let mut r = SmallRng::seed_from_u64(t);
                    let mut dels = 0usize;
                    let mut ins = 0usize;
                    for i in 0..5000u64 {
                        if (i + t) % 2 == 0 {
                            l.insert(r.gen_range(0..100_000), t * 5000 + i, &mut r);
                            ins += 1;
                        } else if l.delete_min().is_some() {
                            dels += 1;
                        }
                    }
                    deleted.fetch_add(dels, Ordering::Relaxed);
                    inserted.fetch_add(ins, Ordering::Relaxed);
                });
            }
        });
        let mut rest = 0usize;
        while l.delete_min().is_some() {
            rest += 1;
        }
        assert_eq!(
            deleted.load(Ordering::Relaxed) + rest,
            inserted.load(Ordering::Relaxed)
        );
    }

    #[test]
    fn concurrent_no_duplicate_values() {
        let l = std::sync::Arc::new(SkipList::new());
        let got = std::sync::Mutex::new(Vec::<Value>::new());
        // Pre-populate with unique values.
        {
            let mut r = rng();
            for v in 0..8000u64 {
                l.insert(v % 97, v, &mut r);
            }
        }
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let l = &l;
                let got = &got;
                s.spawn(move || {
                    let mut r = SmallRng::seed_from_u64(100 + t);
                    let mut mine = Vec::new();
                    loop {
                        let item = if t % 2 == 0 {
                            l.delete_min()
                        } else {
                            l.spray_delete(&mut r, 4)
                        };
                        match item {
                            Some(it) => mine.push(it.value),
                            None => break,
                        }
                    }
                    got.lock().unwrap().extend(mine);
                });
            }
        });
        let mut vals = got.into_inner().unwrap();
        let n = vals.len();
        assert_eq!(n, 8000, "items lost");
        vals.sort_unstable();
        vals.dedup();
        assert_eq!(vals.len(), n, "duplicate deletion detected");
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(32))]
        #[test]
        fn prop_sequential_matches_heap_model(
            ops in proptest::collection::vec((proptest::bool::ANY, 0u64..512), 0..400)
        ) {
            let l = SkipList::new();
            let mut r = rng();
            let mut model = std::collections::BinaryHeap::new();
            for (i, &(is_insert, k)) in ops.iter().enumerate() {
                if is_insert {
                    l.insert(k, i as u64, &mut r);
                    model.push(std::cmp::Reverse((k, i as u64)));
                } else {
                    let got = l.delete_min();
                    let expect = model.pop().map(|std::cmp::Reverse((k, v))| Item::new(k, v));
                    proptest::prop_assert_eq!(got, expect);
                }
            }
            proptest::prop_assert_eq!(l.len_hint(), model.len());
        }

        #[test]
        fn prop_spray_drains_multiset(
            keys in proptest::collection::vec(0u64..256, 0..300),
            threads in 1usize..16,
        ) {
            let l = SkipList::new();
            let mut r = rng();
            for (i, &k) in keys.iter().enumerate() {
                l.insert(k, i as u64, &mut r);
            }
            let mut got: Vec<Key> = std::iter::from_fn(|| l.spray_delete(&mut r, threads))
                .map(|i| i.key)
                .collect();
            got.sort_unstable();
            let mut expect = keys.clone();
            expect.sort_unstable();
            proptest::prop_assert_eq!(got, expect);
        }
    }

    #[test]
    fn stress_mixed_spray_and_inserts() {
        let l = std::sync::Arc::new(SkipList::new());
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let l = &l;
                s.spawn(move || {
                    let mut r = SmallRng::seed_from_u64(t * 31);
                    for i in 0..3000u64 {
                        if i % 3 != 0 {
                            l.insert(r.gen_range(0..10_000), i, &mut r);
                        } else {
                            let _ = l.spray_delete(&mut r, 4);
                        }
                    }
                });
            }
        });
        // Sanity: list drains fully, sorted.
        let snap = l.collect_quiescent();
        assert!(snap.windows(2).all(|w| w[0] <= w[1]));
    }
}
