//! Intentionally broken queue wrappers for mutation-testing the
//! checker.
//!
//! A checker that never fires is indistinguishable from one that
//! cannot fire. Each wrapper here injects one specific violation class
//! into an otherwise-correct queue — items silently dropped, items
//! returned twice, deletions far beyond the declared rank bound — and
//! the checker's test suite asserts every class is detected with a
//! non-zero violation count. The wrappers forward [`RelaxationBound`]
//! unchanged, so a bound violation is judged against the *inner*
//! queue's claim, exactly as a real bug would be.
//!
//! The recording wrapper goes **outside** the mutant
//! (`Recorded<ItemDuplicator<Q>>`): the mutant's internal compensating
//! operations (re-inserting a duplicated or spuriously popped item
//! through the inner handle) are invisible to the history, just like a
//! real lost-update bug inside a queue.

use pq_traits::{ConcurrentPq, Item, Key, PqHandle, RelaxationBound, Value};

/// Silently discards every `every`-th insert per handle: the checker
/// must report the discarded items as **lost**.
pub struct ItemDropper<Q> {
    inner: Q,
    every: u64,
}

impl<Q> ItemDropper<Q> {
    /// Wrap `inner`, dropping every `every`-th insert (per handle).
    pub fn new(inner: Q, every: u64) -> Self {
        Self {
            inner,
            every: every.max(1),
        }
    }
}

/// Handle for [`ItemDropper`].
pub struct ItemDropperHandle<'a, Q: ConcurrentPq + 'a> {
    inner: Q::Handle<'a>,
    every: u64,
    ctr: u64,
}

impl<Q: ConcurrentPq> ConcurrentPq for ItemDropper<Q> {
    type Handle<'a>
        = ItemDropperHandle<'a, Q>
    where
        Self: 'a;

    fn handle(&self) -> Self::Handle<'_> {
        ItemDropperHandle {
            inner: self.inner.handle(),
            every: self.every,
            ctr: 0,
        }
    }

    fn name(&self) -> String {
        format!("{}+drop", self.inner.name())
    }
}

impl<Q: ConcurrentPq> PqHandle for ItemDropperHandle<'_, Q> {
    fn insert(&mut self, key: Key, value: Value) {
        self.ctr += 1;
        if self.ctr.is_multiple_of(self.every) {
            return; // the bug: pretend it was inserted
        }
        self.inner.insert(key, value);
    }

    fn delete_min(&mut self) -> Option<Item> {
        self.inner.delete_min()
    }

    fn flush(&mut self) -> u64 {
        self.inner.flush()
    }
}

impl<Q: RelaxationBound> RelaxationBound for ItemDropper<Q> {
    fn rank_bound(&self, threads: usize) -> Option<u64> {
        self.inner.rank_bound(threads)
    }

    fn rank_bound_is_guaranteed(&self) -> bool {
        self.inner.rank_bound_is_guaranteed()
    }
}

/// Covertly re-inserts every `every`-th successfully deleted item, so
/// it is eventually returned twice: the checker must report
/// **duplicated** items.
pub struct ItemDuplicator<Q> {
    inner: Q,
    every: u64,
}

impl<Q> ItemDuplicator<Q> {
    /// Wrap `inner`, duplicating every `every`-th successful delete
    /// (per handle).
    pub fn new(inner: Q, every: u64) -> Self {
        Self {
            inner,
            every: every.max(1),
        }
    }
}

/// Handle for [`ItemDuplicator`].
pub struct ItemDuplicatorHandle<'a, Q: ConcurrentPq + 'a> {
    inner: Q::Handle<'a>,
    every: u64,
    ctr: u64,
}

impl<Q: ConcurrentPq> ConcurrentPq for ItemDuplicator<Q> {
    type Handle<'a>
        = ItemDuplicatorHandle<'a, Q>
    where
        Self: 'a;

    fn handle(&self) -> Self::Handle<'_> {
        ItemDuplicatorHandle {
            inner: self.inner.handle(),
            every: self.every,
            ctr: 0,
        }
    }

    fn name(&self) -> String {
        format!("{}+dup", self.inner.name())
    }
}

impl<Q: ConcurrentPq> PqHandle for ItemDuplicatorHandle<'_, Q> {
    fn insert(&mut self, key: Key, value: Value) {
        self.inner.insert(key, value);
    }

    fn delete_min(&mut self) -> Option<Item> {
        let got = self.inner.delete_min();
        if let Some(item) = got {
            self.ctr += 1;
            if self.ctr.is_multiple_of(self.every) {
                // The bug: the item stays in the queue after being
                // returned. Goes through the inner handle, so the
                // history never sees this insert.
                self.inner.insert(item.key, item.value);
            }
        }
        got
    }

    fn flush(&mut self) -> u64 {
        self.inner.flush()
    }
}

impl<Q: RelaxationBound> RelaxationBound for ItemDuplicator<Q> {
    fn rank_bound(&self, threads: usize) -> Option<u64> {
        self.inner.rank_bound(threads)
    }

    fn rank_bound_is_guaranteed(&self) -> bool {
        self.inner.rank_bound_is_guaranteed()
    }
}

/// On every `every`-th delete, pops up to `depth` items and returns the
/// *largest*, silently re-inserting the rest: the returned item's rank
/// is ≈ `depth − 1`, far beyond any strict or small relaxed bound, so
/// the checker must report **rank violations** (while conservation
/// stays clean — nothing is lost or duplicated).
pub struct BoundViolator<Q> {
    inner: Q,
    every: u64,
    depth: usize,
}

impl<Q> BoundViolator<Q> {
    /// Wrap `inner`, returning an item of rank ≈ `depth − 1` on every
    /// `every`-th delete (per handle).
    pub fn new(inner: Q, every: u64, depth: usize) -> Self {
        Self {
            inner,
            every: every.max(1),
            depth: depth.max(2),
        }
    }
}

/// Handle for [`BoundViolator`].
pub struct BoundViolatorHandle<'a, Q: ConcurrentPq + 'a> {
    inner: Q::Handle<'a>,
    every: u64,
    depth: usize,
    ctr: u64,
}

impl<Q: ConcurrentPq> ConcurrentPq for BoundViolator<Q> {
    type Handle<'a>
        = BoundViolatorHandle<'a, Q>
    where
        Self: 'a;

    fn handle(&self) -> Self::Handle<'_> {
        BoundViolatorHandle {
            inner: self.inner.handle(),
            every: self.every,
            depth: self.depth,
            ctr: 0,
        }
    }

    fn name(&self) -> String {
        format!("{}+rank", self.inner.name())
    }
}

impl<Q: ConcurrentPq> PqHandle for BoundViolatorHandle<'_, Q> {
    fn insert(&mut self, key: Key, value: Value) {
        self.inner.insert(key, value);
    }

    fn delete_min(&mut self) -> Option<Item> {
        self.ctr += 1;
        if !self.ctr.is_multiple_of(self.every) {
            return self.inner.delete_min();
        }
        // The bug: dig `depth` items deep and return the worst one,
        // putting the rest back through the inner handle (invisible to
        // the history, so conservation holds).
        let mut popped: Vec<Item> = Vec::with_capacity(self.depth);
        for _ in 0..self.depth {
            match self.inner.delete_min() {
                Some(item) => popped.push(item),
                None => break,
            }
        }
        let worst_idx = popped
            .iter()
            .enumerate()
            .max_by_key(|(_, item)| **item)
            .map(|(i, _)| i)?;
        let worst = popped.swap_remove(worst_idx);
        for item in popped {
            self.inner.insert(item.key, item.value);
        }
        Some(worst)
    }

    fn flush(&mut self) -> u64 {
        self.inner.flush()
    }
}

impl<Q: RelaxationBound> RelaxationBound for BoundViolator<Q> {
    fn rank_bound(&self, threads: usize) -> Option<u64> {
        self.inner.rank_bound(threads)
    }

    fn rank_bound_is_guaranteed(&self) -> bool {
        self.inner.rank_bound_is_guaranteed()
    }
}
