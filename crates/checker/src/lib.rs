//! Semantic correctness checking for the workspace's concurrent
//! priority queues.
//!
//! The paper's quality (rank-error) comparison is only meaningful if
//! every queue *conserves* items and respects its declared relaxation
//! bound under real interleavings — Gruber's thesis devotes a chapter
//! to exactly this validation gap. This crate closes it:
//!
//! 1. [`scenario::run_scenario`] drives a deterministic `workloads`
//!    scenario (prefill → barrier-synchronized mixed phase → concurrent
//!    drain → single-threaded residual sweep) against any queue through
//!    the [`pq_traits::Recorded`] wrapper, collecting every thread's
//!    operation history with logical timestamps.
//! 2. [`verify::check`] replays the merged history against the
//!    order-statistic treap ([`seqpq::OsTreap`]) and reports
//!    conservation violations (lost / duplicated / invented items),
//!    rank-bound violations against each queue's
//!    [`pq_traits::RelaxationBound`], and strict-order violations for
//!    queues that claim bound 0.
//! 3. [`mutants`] provides intentionally broken wrappers (dropping,
//!    duplicating, bound-violating) proving the checker detects each
//!    violation class — a checker that cannot fire proves nothing.
//!
//! Pair with [`pq_traits::chaos`] to perturb schedules at the queues'
//! contention hot spots while checking; a chaos seed makes a stressful
//! schedule reproducible.
//!
//! ```
//! use checker::{run_and_check, CheckConfig};
//! # use pq_traits::{ConcurrentPq, Item, Key, PqHandle, RelaxationBound, SequentialPq, Value};
//! # use std::sync::Mutex;
//! # struct Locked(Mutex<seqpq::BinaryHeap>);
//! # struct LockedHandle<'a>(&'a Locked);
//! # impl ConcurrentPq for Locked {
//! #     type Handle<'a> = LockedHandle<'a>;
//! #     fn handle(&self) -> LockedHandle<'_> { LockedHandle(self) }
//! #     fn name(&self) -> String { "locked".into() }
//! # }
//! # impl PqHandle for LockedHandle<'_> {
//! #     fn insert(&mut self, key: Key, value: Value) { self.0 .0.lock().unwrap().insert(key, value) }
//! #     fn delete_min(&mut self) -> Option<Item> { self.0 .0.lock().unwrap().delete_min() }
//! # }
//! # impl RelaxationBound for Locked {
//! #     fn rank_bound(&self, _threads: usize) -> Option<u64> { Some(0) }
//! # }
//! let queue = Locked(Mutex::new(seqpq::BinaryHeap::new()));
//! let report = run_and_check(queue, &CheckConfig::quick(2), None);
//! assert!(report.is_clean(), "{}", report.violation_json());
//! ```

#![warn(missing_docs)]

pub mod mutants;
pub mod scenario;
pub mod verify;

pub use mutants::{BoundViolator, ItemDropper, ItemDuplicator};
pub use scenario::{run_scenario, CheckConfig, ScenarioHistory};
pub use verify::{check, rank_slack, CheckReport};

use pq_traits::{ConcurrentPq, Recorded, RelaxationBound};

/// Run one recorded scenario against `queue` and verify the history.
///
/// `chaos_seed` is informational: it tags the report with the seed the
/// cell ran under (the caller is responsible for configuring
/// [`pq_traits::chaos`] around the call).
pub fn run_and_check<Q: ConcurrentPq + RelaxationBound>(
    queue: Q,
    cfg: &CheckConfig,
    chaos_seed: Option<u64>,
) -> CheckReport {
    let recorded = Recorded::new(queue);
    let name = recorded.name();
    let scenario = run_scenario(&recorded, cfg);
    check(&name, recorded.inner(), cfg, &scenario, chaos_seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pq_traits::{ConcurrentPq, Item, Key, PqHandle, RelaxationBound, SequentialPq, Value};
    use std::sync::Mutex;
    use workloads::{KeyDistribution, Workload};

    /// Strict reference queue: a sequential binary heap under a mutex.
    /// Keeps the checker's own tests independent of the queue crates.
    struct LockedHeap(Mutex<seqpq::BinaryHeap>);

    impl LockedHeap {
        fn new() -> Self {
            Self(Mutex::new(seqpq::BinaryHeap::new()))
        }
    }

    struct LockedHeapHandle<'a>(&'a LockedHeap);

    impl ConcurrentPq for LockedHeap {
        type Handle<'a> = LockedHeapHandle<'a>;

        fn handle(&self) -> LockedHeapHandle<'_> {
            LockedHeapHandle(self)
        }

        fn name(&self) -> String {
            "locked-heap".into()
        }
    }

    impl PqHandle for LockedHeapHandle<'_> {
        fn insert(&mut self, key: Key, value: Value) {
            self.0 .0.lock().unwrap().insert(key, value);
        }

        fn delete_min(&mut self) -> Option<Item> {
            self.0 .0.lock().unwrap().delete_min()
        }
    }

    impl RelaxationBound for LockedHeap {
        fn rank_bound(&self, _threads: usize) -> Option<u64> {
            Some(0)
        }
    }

    fn cfg(threads: usize) -> CheckConfig {
        CheckConfig {
            threads,
            prefill: 512,
            ops_per_thread: 2_000,
            workload: Workload::Uniform,
            key_dist: KeyDistribution::uniform(20),
            seed: 0xC0FFEE,
            strict_drain_check: true,
        }
    }

    #[test]
    fn clean_strict_queue_passes() {
        let report = run_and_check(LockedHeap::new(), &cfg(2), None);
        assert!(report.is_clean(), "{}", report.violation_json());
        assert!(report.inserts > 0);
        assert!(report.deletes > 0);
        assert_eq!(report.inserts, report.deletes, "conservation balance");
        assert!(report.strict);
        assert!(report.rank_checked > 0);
    }

    #[test]
    fn detects_lost_items() {
        let mutant = ItemDropper::new(LockedHeap::new(), 37);
        let report = run_and_check(mutant, &cfg(2), None);
        assert!(report.lost > 0, "dropper must be caught: {report:?}");
        assert_eq!(report.duplicated, 0);
        assert_eq!(report.invented, 0);
        assert!(!report.is_clean());
    }

    #[test]
    fn detects_duplicated_items() {
        let mutant = ItemDuplicator::new(LockedHeap::new(), 23);
        let report = run_and_check(mutant, &cfg(2), None);
        assert!(report.duplicated > 0, "duplicator must be caught: {report:?}");
        assert_eq!(report.lost, 0);
        assert_eq!(report.invented, 0);
        assert!(!report.is_clean());
    }

    #[test]
    fn detects_rank_bound_violations() {
        let mutant = BoundViolator::new(LockedHeap::new(), 11, 64);
        let report = run_and_check(mutant, &cfg(2), None);
        assert!(
            report.rank_violations > 0,
            "bound violator must be caught: {report:?}"
        );
        // Conservation stays clean: the violator only reorders.
        assert_eq!(report.lost, 0);
        assert_eq!(report.duplicated, 0);
        assert_eq!(report.invented, 0);
        assert!(!report.is_clean());
    }

    #[test]
    fn violation_reports_are_deterministic() {
        // Same seed → byte-identical violation report, clean or broken.
        let clean_a = run_and_check(LockedHeap::new(), &cfg(2), Some(9)).violation_json();
        let clean_b = run_and_check(LockedHeap::new(), &cfg(2), Some(9)).violation_json();
        assert_eq!(clean_a, clean_b);
        // Single-threaded, the whole schedule is seed-deterministic, so
        // a broken queue's (non-zero) violation report reproduces
        // byte-identically too.
        let broken_a =
            run_and_check(ItemDropper::new(LockedHeap::new(), 37), &cfg(1), Some(9))
                .violation_json();
        let broken_b =
            run_and_check(ItemDropper::new(LockedHeap::new(), 37), &cfg(1), Some(9))
                .violation_json();
        assert_eq!(broken_a, broken_b);
        assert_ne!(clean_a, broken_a);
    }

    #[test]
    fn report_json_shapes() {
        let report = run_and_check(LockedHeap::new(), &cfg(1), None);
        let full = report.to_json();
        assert!(full.starts_with('{') && full.ends_with('}'));
        assert!(full.contains("\"kind\": \"checker\""));
        assert!(full.contains("\"violations\": {"));
        assert!(full.contains("\"chaos_seed\": null"));
        let violations = report.violation_json();
        assert!(full.contains(&violations));
    }
}
