//! Recorded benchmark scenarios: run a workload against a queue and
//! collect the complete operation history for verification.
//!
//! A scenario mirrors the harness's benchmark shape — deterministic
//! prefill, a barrier-synchronized mixed phase driven by the `workloads`
//! generators, then a concurrent drain — but runs every operation
//! through a [`Recorded`] wrapper so the checker sees exactly what each
//! thread did and observed. The logical-clock values captured between
//! phases partition the merged history: mixed-phase records are below
//! [`ScenarioHistory::drain_start`], the concurrent drain sits between
//! that and [`ScenarioHistory::residual_start`], and everything at or
//! above the latter is the main thread's single-threaded residual sweep.

use std::sync::Barrier;

use pq_traits::{ConcurrentPq, OpRecord, PqHandle, Recorded};
use workloads::{KeyDistribution, KeyGen, OpKind, OpStream, ThreadRole, Workload};

/// Bits reserved for the per-insert counter in a value; the thread id
/// lives above. Same convention as the harness, so checker values are
/// unique process-wide and self-describing in a debugger.
pub const VALUE_SHIFT: u32 = 40;

/// Thread-id tag marking prefill values.
pub const PREFILL_TAG: u64 = 0xFF << VALUE_SHIFT;

/// One checker scenario cell: which workload to run against the queue
/// and how much of it.
#[derive(Clone, Copy, Debug)]
pub struct CheckConfig {
    /// Worker thread count for the mixed and drain phases.
    pub threads: usize,
    /// Items inserted (and recorded) before the mixed phase starts.
    pub prefill: usize,
    /// Mixed-phase operations per worker thread.
    pub ops_per_thread: usize,
    /// Operation mix (uniform / split / alternating / ...).
    pub workload: Workload,
    /// Key distribution for inserts.
    pub key_dist: KeyDistribution,
    /// Master seed: prefill keys, op streams and key streams all derive
    /// from it, so a scenario replays exactly (given deterministic
    /// queue seeding).
    pub seed: u64,
    /// Also check per-thread deletion monotonicity during the
    /// *concurrent* drain phase. Only valid for fully linearizable
    /// strict queues (`linden`, `global-lock`); queues that are strict
    /// only up to in-flight operations (hunt, mound, cbpq) may
    /// legitimately reorder within a thread under contention. The
    /// single-threaded residual-sweep order check applies to every
    /// declared-strict queue regardless of this flag.
    pub strict_drain_check: bool,
}

impl CheckConfig {
    /// A small default cell: uniform mixed workload over uniform
    /// 20-bit keys — large enough to exercise contention, small enough
    /// to run hundreds of cells in a CI budget.
    pub fn quick(threads: usize) -> Self {
        Self {
            threads,
            prefill: 256,
            ops_per_thread: 2_000,
            workload: Workload::Uniform,
            key_dist: KeyDistribution::uniform(20),
            seed: 0xC0FFEE,
            strict_drain_check: false,
        }
    }

    /// Human-readable cell label, e.g. `"uniform/uniform20/t4"`.
    pub fn label(&self) -> String {
        format!(
            "{}/{}/t{}",
            self.workload.name(),
            self.key_dist.name(),
            self.threads
        )
    }
}

/// Complete recorded history of one scenario run.
#[derive(Debug)]
pub struct ScenarioHistory {
    /// Per-handle operation records (workers and the residual sweep).
    pub histories: Vec<Vec<OpRecord>>,
    /// Clock value at which the concurrent drain phase began; captured
    /// while every worker was parked at a barrier, so it cleanly
    /// separates mixed-phase records from drain-phase records.
    pub drain_start: u64,
    /// Clock value at which the main thread's single-threaded residual
    /// sweep began (all workers joined).
    pub residual_start: u64,
}

/// Run one scenario against `queue`, recording every operation.
///
/// Phases: each worker prefills its chunk (recorded inserts), runs
/// `ops_per_thread` mixed operations, flushes, drains until the queue
/// looks empty, flushes again and exits; the main thread then performs
/// a final single-threaded residual sweep through one extra handle.
/// Total handles: `threads + 1`, matching the registry's slot
/// allowance for slot-bounded queues.
pub fn run_scenario<Q: ConcurrentPq>(queue: &Recorded<Q>, cfg: &CheckConfig) -> ScenarioHistory {
    let threads = cfg.threads.max(1);
    // KeyGen with the harness's prefill convention: one dedicated
    // stream, thread id u64::MAX, seed offset 0xF00D.
    let prefill_items: Vec<(u64, u64)> = {
        let mut gen = KeyGen::new(cfg.key_dist, cfg.seed ^ 0xF00D, u64::MAX);
        (0..cfg.prefill)
            .map(|i| (gen.next_key(), PREFILL_TAG | i as u64))
            .collect()
    };
    let barrier = Barrier::new(threads + 1);
    let drain_start = std::thread::scope(|s| {
        for t in 0..threads {
            let barrier = &barrier;
            let prefill = &prefill_items;
            s.spawn(move || {
                let mut h = queue.handle();
                // Deterministic prefill split: thread t takes every
                // threads-th item starting at t.
                for (key, value) in prefill.iter().skip(t).step_by(threads) {
                    h.insert(*key, *value);
                }
                barrier.wait(); // prefill complete
                barrier.wait(); // start mixed phase
                let role = ThreadRole::for_thread(cfg.workload, t, threads);
                let mut ops = OpStream::new(role, cfg.seed, t as u64);
                let mut keys = KeyGen::new(cfg.key_dist, cfg.seed, t as u64);
                let mut next_value = (t as u64) << VALUE_SHIFT;
                for _ in 0..cfg.ops_per_thread {
                    match ops.next_op() {
                        OpKind::Insert => {
                            h.insert(keys.next_key(), next_value);
                            next_value += 1;
                        }
                        OpKind::DeleteMin => {
                            if let Some(item) = h.delete_min() {
                                keys.observe_delete(item.key);
                            }
                        }
                    }
                }
                h.flush();
                barrier.wait(); // mixed phase complete
                barrier.wait(); // main captured the drain boundary
                while h.delete_min().is_some() {}
                h.flush();
                // Handle drops here, committing its history.
            });
        }
        barrier.wait(); // prefill complete
        barrier.wait(); // start mixed phase
        barrier.wait(); // mixed phase complete
        let boundary = queue.now();
        barrier.wait(); // release workers into the drain
        boundary
    });
    let residual_start = queue.now();
    {
        // Single-threaded residual sweep: workers have quiesced, so one
        // pass to `None` through a fresh handle empties every queue in
        // the registry (relaxed queues fall back to reliable scans once
        // uncontended).
        let mut h = queue.handle();
        h.flush();
        while h.delete_min().is_some() {}
        h.flush();
    }
    ScenarioHistory {
        histories: queue.take_histories(),
        drain_start,
        residual_start,
    }
}
