//! History verification: conservation, rank-bound replay, and
//! strict-order spot checks.

use std::collections::HashMap;

use pq_traits::{Item, Op, RelaxationBound};
use seqpq::OsTreap;

use crate::scenario::{CheckConfig, ScenarioHistory};

/// Extra rank allowance on top of a queue's declared bound, absorbing
/// the stamping noise the interval replay cannot eliminate: an
/// operation's effect lands anywhere between its invocation and
/// completion stamps, so up to `threads − 1` in-flight peers can
/// distort a deletion's observed rank at *both* interval endpoints.
/// `4·threads` with a floor of 16 separates real bound violations (the
/// mutation wrappers produce ranks ≳ 60) from that noise with margin
/// on both sides.
pub fn rank_slack(threads: usize) -> u64 {
    (4 * threads as u64).max(16)
}

/// Result of checking one scenario's history.
#[derive(Clone, Debug, PartialEq)]
pub struct CheckReport {
    /// Queue display name.
    pub queue: String,
    /// Worker thread count.
    pub threads: usize,
    /// Workload name (operation mix).
    pub workload: String,
    /// Key distribution name.
    pub key_dist: String,
    /// Scenario master seed.
    pub seed: u64,
    /// Chaos seed the cell ran under, if perturbation was on.
    pub chaos_seed: Option<u64>,

    /// Recorded insert operations (prefill + mixed phase).
    pub inserts: u64,
    /// Recorded successful deletions (all phases).
    pub deletes: u64,
    /// Recorded `delete_min() == None` observations.
    pub empty_deletes: u64,
    /// Total items reported committed by `flush()` calls.
    pub flushed_items: u64,

    /// Items inserted but never deleted (still "in" the queue after the
    /// residual sweep claimed emptiness) — lost.
    pub lost: u64,
    /// Deletions of an item beyond its insert count — duplicated.
    pub duplicated: u64,
    /// Deletions of an item that was never inserted — invented.
    pub invented: u64,

    /// Deletions replayed against the reference order-statistic treap.
    pub rank_checked: u64,
    /// Largest observed rank.
    pub rank_max: u64,
    /// Mean observed rank.
    pub rank_mean: f64,
    /// The queue's declared bound for this thread count (`None` =
    /// unbounded; rank violations are then not counted).
    pub rank_bound: Option<u64>,
    /// Whether the declared bound is a guaranteed per-operation bound.
    /// Probabilistic reference curves (the SprayList) are reported but
    /// not enforced — exceeding them is expected tail behavior, not a
    /// violation.
    pub rank_bound_enforced: bool,
    /// Slack added to the bound before flagging (see [`rank_slack`]).
    pub rank_slack: u64,
    /// Deletions whose rank exceeded `bound + slack`.
    pub rank_violations: u64,

    /// Whether strict-order spot checks applied (declared bound 0).
    pub strict: bool,
    /// Strict queues: drain-phase deletions within one thread that went
    /// backwards (smaller key after larger).
    pub monotonicity_violations: u64,
    /// Strict queues: out-of-order deletions in the single-threaded
    /// residual sweep (must be exactly sorted).
    pub residual_order_violations: u64,
}

impl CheckReport {
    /// Sum of all violation counters.
    pub fn violations_total(&self) -> u64 {
        self.lost
            + self.duplicated
            + self.invented
            + self.rank_violations
            + self.monotonicity_violations
            + self.residual_order_violations
    }

    /// `true` when every invariant held.
    pub fn is_clean(&self) -> bool {
        self.violations_total() == 0
    }

    /// The deterministic subset of the report: cell identity plus
    /// violation counters. Two runs of the same cell with the same
    /// seeds must produce byte-identical strings — statistics like mean
    /// rank, which legitimately vary with interleaving, are excluded.
    pub fn violation_json(&self) -> String {
        format!(
            "{{\"queue\": \"{}\", \"threads\": {}, \"workload\": \"{}\", \
             \"key_dist\": \"{}\", \"seed\": {}, \"chaos_seed\": {}, \
             \"lost\": {}, \"duplicated\": {}, \"invented\": {}, \
             \"rank_violations\": {}, \"monotonicity_violations\": {}, \
             \"residual_order_violations\": {}}}",
            json_escape(&self.queue),
            self.threads,
            json_escape(&self.workload),
            json_escape(&self.key_dist),
            self.seed,
            self.chaos_seed
                .map_or("null".to_owned(), |s| s.to_string()),
            self.lost,
            self.duplicated,
            self.invented,
            self.rank_violations,
            self.monotonicity_violations,
            self.residual_order_violations,
        )
    }

    /// Full JSON object for this cell (superset of
    /// [`CheckReport::violation_json`], plus run statistics).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"kind\": \"checker\", \"queue\": \"{}\", \"threads\": {}, \
             \"workload\": \"{}\", \"key_dist\": \"{}\", \"seed\": {}, \
             \"chaos_seed\": {}, \"inserts\": {}, \"deletes\": {}, \
             \"empty_deletes\": {}, \"flushed_items\": {}, \
             \"rank_checked\": {}, \"rank_max\": {}, \"rank_mean\": {}, \
             \"rank_bound\": {}, \"rank_bound_enforced\": {}, \
             \"rank_slack\": {}, \"strict\": {}, \
             \"violations\": {}}}",
            json_escape(&self.queue),
            self.threads,
            json_escape(&self.workload),
            json_escape(&self.key_dist),
            self.seed,
            self.chaos_seed
                .map_or("null".to_owned(), |s| s.to_string()),
            self.inserts,
            self.deletes,
            self.empty_deletes,
            self.flushed_items,
            self.rank_checked,
            self.rank_max,
            if self.rank_mean.is_finite() {
                format!("{:.6}", self.rank_mean)
            } else {
                "null".to_owned()
            },
            self.rank_bound
                .map_or("null".to_owned(), |b| b.to_string()),
            self.rank_bound_enforced,
            self.rank_slack,
            self.strict,
            self.violation_json(),
        )
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Verify one recorded scenario against the queue's declared semantics.
///
/// Checks, in order:
/// 1. **Conservation** — the multiset of deleted items equals the
///    multiset of inserted items (the scenario ends with a residual
///    sweep to emptiness, so nothing may remain): shortfalls are
///    *lost*, excesses of inserted items are *duplicated*, deletions
///    of unknown items are *invented*.
/// 2. **Rank replay** — all records merged by logical timestamp and
///    replayed against an order-statistic treap; each deletion's rank
///    (count of strictly smaller keys present, taken as the minimum
///    over the operation's invocation/completion interval so in-flight
///    concurrency cannot masquerade as relaxation) must stay within
///    the declared [`RelaxationBound`] plus [`rank_slack`].
/// 3. **Strict spot checks** (declared bound 0 only) — per-thread
///    drain-phase deletions are non-decreasing, and the single-threaded
///    residual sweep is exactly sorted.
pub fn check<Q: RelaxationBound>(
    queue_name: &str,
    queue: &Q,
    cfg: &CheckConfig,
    scenario: &ScenarioHistory,
    chaos_seed: Option<u64>,
) -> CheckReport {
    let threads = cfg.threads.max(1);
    let bound = queue.rank_bound(threads);
    let enforced = queue.rank_bound_is_guaranteed();
    let slack = rank_slack(threads);
    let strict = bound == Some(0) && enforced;

    let mut report = CheckReport {
        queue: queue_name.to_owned(),
        threads: cfg.threads,
        workload: cfg.workload.name(),
        key_dist: cfg.key_dist.name(),
        seed: cfg.seed,
        chaos_seed,
        inserts: 0,
        deletes: 0,
        empty_deletes: 0,
        flushed_items: 0,
        lost: 0,
        duplicated: 0,
        invented: 0,
        rank_checked: 0,
        rank_max: 0,
        rank_mean: 0.0,
        rank_bound: bound,
        rank_bound_enforced: enforced,
        rank_slack: slack,
        rank_violations: 0,
        strict,
        monotonicity_violations: 0,
        residual_order_violations: 0,
    };

    // --- Strict per-thread order (uses per-handle record streams,
    // which are in program order by construction). The concurrent
    // drain-phase check is opt-in (`cfg.strict_drain_check`): queues
    // that are strict only up to in-flight operations (hunt, mound,
    // cbpq) may reorder within a thread under contention, but the
    // single-threaded residual sweep must be sorted for every
    // declared-strict queue.
    if strict {
        for history in &scenario.histories {
            let mut prev: Option<Item> = None;
            for rec in history {
                if rec.ts < scenario.drain_start {
                    continue; // mixed phase: concurrent inserts allowed
                }
                if rec.ts < scenario.residual_start && !cfg.strict_drain_check {
                    continue; // concurrent drain: check not requested
                }
                if let Op::DeleteMin(Some(item)) = rec.op {
                    if let Some(p) = prev {
                        if item.key < p.key {
                            if rec.ts >= scenario.residual_start {
                                report.residual_order_violations += 1;
                            } else {
                                report.monotonicity_violations += 1;
                            }
                        }
                    }
                    prev = Some(item);
                }
            }
        }
    }

    // --- Merge all records into one replay stream. Each record is
    // processed at its unique completion stamp; each successful
    // deletion additionally gets a probe point at its invocation stamp,
    // where its would-be rank is sampled *before* any operation that
    // completed later takes effect. An op whose invocation load
    // returned `v` started after every op with completion stamp `< v`
    // had finished, so probes sort before same-valued completions.
    enum Ev {
        Probe { key: u64, del: usize },
        Commit { rec_idx: usize },
    }
    let records: Vec<_> = scenario.histories.iter().flatten().copied().collect();
    let mut events: Vec<(u64, u8, Ev)> = Vec::with_capacity(records.len() * 2);
    // Sampled invocation-time rank, indexed like `records` (only delete
    // records' slots are used).
    let mut start_ranks: Vec<u64> = vec![0; records.len()];
    for (rec_idx, rec) in records.iter().enumerate() {
        if let Op::DeleteMin(Some(item)) = rec.op {
            events.push((
                rec.start,
                0,
                Ev::Probe {
                    key: item.key,
                    del: rec_idx,
                },
            ));
        }
        events.push((rec.ts, 1, Ev::Commit { rec_idx }));
    }
    events.sort_unstable_by_key(|&(at, kind, _)| (at, kind));

    // --- Conservation multisets + rank replay in one sweep.
    let mut ins_count: HashMap<Item, u64> = HashMap::new();
    let mut del_count: HashMap<Item, u64> = HashMap::new();
    // Deletions observed before their insert's (later) timestamp; the
    // matching insert annihilates against this instead of the treap.
    let mut pending: HashMap<Item, u64> = HashMap::new();
    let mut treap = OsTreap::new();
    let mut rank_sum = 0u64;

    for (_, _, ev) in &events {
        let rec_idx = match ev {
            Ev::Probe { key, del } => {
                start_ranks[*del] = treap.rank_of(&Item::new(*key, 0));
                continue;
            }
            Ev::Commit { rec_idx } => *rec_idx,
        };
        let rec = &records[rec_idx];
        match rec.op {
            Op::Insert(item) => {
                report.inserts += 1;
                *ins_count.entry(item).or_default() += 1;
                match pending.get_mut(&item) {
                    Some(n) => {
                        *n -= 1;
                        if *n == 0 {
                            pending.remove(&item);
                        }
                    }
                    None => treap.insert_item(item),
                }
            }
            Op::DeleteMin(Some(item)) => {
                report.deletes += 1;
                *del_count.entry(item).or_default() += 1;
                let start_rank = start_ranks[rec_idx];
                // Rank before removal: strictly smaller keys present.
                // The effect landed somewhere in [start, ts]; an
                // interval endpoint where the rank was small exonerates
                // the queue (e.g. items inserted while this delete was
                // in flight inflate the completion-time rank but not
                // the invocation-time one), so judge the minimum.
                let end_rank = treap.rank_of(&Item::new(item.key, 0));
                if treap.remove_item(&item).is_some() {
                    let rank = start_rank.min(end_rank);
                    report.rank_checked += 1;
                    rank_sum += rank;
                    report.rank_max = report.rank_max.max(rank);
                    if let (true, Some(b)) = (enforced, bound) {
                        if rank > b + slack {
                            report.rank_violations += 1;
                        }
                    }
                } else {
                    // Timestamp inversion (or an invented item, which
                    // conservation flags below).
                    *pending.entry(item).or_default() += 1;
                }
            }
            Op::DeleteMin(None) => report.empty_deletes += 1,
            Op::Flush(n) => report.flushed_items += n,
        }
    }
    if report.rank_checked > 0 {
        report.rank_mean = rank_sum as f64 / report.rank_checked as f64;
    }

    // --- Conservation verdicts.
    for (item, &dels) in &del_count {
        let ins = ins_count.get(item).copied().unwrap_or(0);
        if dels > ins {
            if ins == 0 {
                report.invented += dels;
            } else {
                report.duplicated += dels - ins;
            }
        }
    }
    for (item, &ins) in &ins_count {
        let dels = del_count.get(item).copied().unwrap_or(0);
        if ins > dels {
            report.lost += ins - dels;
        }
    }

    report
}
