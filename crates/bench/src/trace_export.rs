//! Flight-recorder trace export: Chrome trace-event JSON plus a derived
//! attribution report.
//!
//! The harness records per-thread timelines into [`pq_traits::trace`];
//! this module turns the drained [`TraceData`] of one or more benchmark
//! cells into a single file with two consumers in mind:
//!
//! 1. **Humans with a trace viewer.** The top-level `traceEvents` array
//!    is standard Chrome trace-event JSON: load the file in
//!    [Perfetto](https://ui.perfetto.dev) or `chrome://tracing` and get
//!    one process group per cell with one track per worker thread —
//!    op spans as slices, telemetry events as instants, phase
//!    boundaries as process-scoped markers.
//! 2. **Scripts.** A sibling top-level `attribution` key (trace viewers
//!    ignore unknown keys) carries the derived report: a per-thread ×
//!    per-time-slice op-rate matrix (the contention heatmap), telemetry
//!    counter deltas per harness phase, a stall detector flagging
//!    slices where a thread's op rate drops more than 10× below its
//!    own median, and — never silently — the per-thread dropped-record
//!    counts from ring overflow.
//!
//! Timestamps are exported in microseconds (the trace-event unit),
//! relative to each cell's `trace::start`.

use pq_traits::telemetry::Event;
use pq_traits::trace::{PhaseKind, RecordData, TraceData};

/// Target number of time slices for the attribution matrices. The
/// actual count can be one higher from rounding at the tail.
const TARGET_SLICES: usize = 50;

/// A thread whose op rate in a slice falls below `median / STALL_FACTOR`
/// (its own median over active slices) is flagged as stalled there.
const STALL_FACTOR: f64 = 10.0;

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Nanoseconds to the trace-event microsecond unit, keeping sub-µs
/// precision as a decimal fraction.
fn us(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e3)
}

/// One traced benchmark cell awaiting export.
struct CellTrace {
    label: String,
    threads: usize,
    data: TraceData,
}

/// Accumulates traced cells and serializes them into one
/// Perfetto-loadable JSON document.
#[derive(Default)]
pub struct TraceFile {
    cells: Vec<CellTrace>,
}

impl TraceFile {
    /// An empty trace file.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when no cell has been added.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Add one traced cell: `label` names the process group in the
    /// viewer (e.g. `"fig4a multiqueue t4"`), `threads` is the worker
    /// count the cell ran with, `data` the drained recorder output.
    pub fn push_cell(&mut self, label: &str, threads: usize, data: TraceData) {
        self.cells.push(CellTrace {
            label: label.to_owned(),
            threads,
            data,
        });
    }

    /// Total dropped records across all cells (ring overflow).
    pub fn dropped_total(&self) -> u64 {
        self.cells.iter().map(|c| c.data.dropped_total()).sum()
    }

    /// Serialize every cell into one JSON document.
    pub fn to_json(&self) -> String {
        let mut events: Vec<String> = Vec::new();
        let mut reports: Vec<String> = Vec::new();
        for (idx, cell) in self.cells.iter().enumerate() {
            let pid = idx + 1;
            cell_events(pid, cell, &mut events);
            reports.push(attribution(cell));
        }
        format!(
            "{{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n{}\n],\n\"attribution\": [\n{}\n]\n}}\n",
            events.join(",\n"),
            reports.join(",\n"),
        )
    }

    /// Write the document to `path`.
    pub fn write(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// Emit the trace events of one cell under process id `pid`.
fn cell_events(pid: usize, cell: &CellTrace, out: &mut Vec<String>) {
    out.push(format!(
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
         \"args\":{{\"name\":\"{}\"}}}}",
        json_escape(&cell.label)
    ));
    for tl in &cell.data.timelines {
        let tid = tl.thread + 1;
        let suffix = if tl.dropped > 0 {
            format!(" (dropped {})", tl.dropped)
        } else {
            String::new()
        };
        out.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
             \"args\":{{\"name\":\"thread {}{}\"}}}}",
            tl.thread,
            json_escape(&suffix)
        ));
        for r in &tl.records {
            match r.data {
                RecordData::Span { op, dur_ns, ops } => out.push(format!(
                    "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\
                     \"ts\":{},\"dur\":{},\"args\":{{\"ops\":{ops}}}}}",
                    op.name(),
                    us(r.ts_ns),
                    us(dur_ns),
                )),
                RecordData::Event { event, count } => out.push(format!(
                    "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\
                     \"tid\":{tid},\"ts\":{},\"args\":{{\"count\":{count}}}}}",
                    event.name(),
                    us(r.ts_ns),
                )),
                RecordData::Phase { phase, rep } => out.push(format!(
                    "{{\"name\":\"{} rep{rep}\",\"ph\":\"i\",\"s\":\"p\",\"pid\":{pid},\
                     \"tid\":{tid},\"ts\":{},\"args\":{{}}}}",
                    phase.name(),
                    us(r.ts_ns),
                )),
            }
        }
    }
}

/// Ops a span contributes, attributed to the slice of its midpoint.
fn span_slot(ts_ns: u64, dur_ns: u64, slice_ns: u64) -> usize {
    ((ts_ns + dur_ns / 2) / slice_ns) as usize
}

/// Build one cell's attribution report.
fn attribution(cell: &CellTrace) -> String {
    let data = &cell.data;
    let end_ns = data
        .timelines
        .iter()
        .flat_map(|t| t.records.iter())
        .map(|r| match r.data {
            RecordData::Span { dur_ns, .. } => r.ts_ns + dur_ns,
            _ => r.ts_ns,
        })
        .max()
        .unwrap_or(0);
    let slice_ns = (end_ns / TARGET_SLICES as u64).max(1);
    let slices = (end_ns / slice_ns + 1) as usize;

    // Per-thread × per-slice matrices: queue ops (from spans) and
    // telemetry event occurrences (from instants).
    let mut op_rows: Vec<String> = Vec::new();
    let mut ev_rows: Vec<String> = Vec::new();
    let mut stalls: Vec<String> = Vec::new();
    let mut dropped: Vec<String> = Vec::new();
    for tl in &data.timelines {
        let mut ops_per_slice = vec![0u64; slices];
        let mut evs_per_slice = vec![0u64; slices];
        for r in &tl.records {
            match r.data {
                RecordData::Span { dur_ns, ops, .. } => {
                    let s = span_slot(r.ts_ns, dur_ns, slice_ns).min(slices - 1);
                    ops_per_slice[s] += ops as u64;
                }
                RecordData::Event { count, .. } => {
                    let s = (r.ts_ns / slice_ns) as usize;
                    evs_per_slice[s.min(slices - 1)] += count;
                }
                RecordData::Phase { .. } => {}
            }
        }
        for (slice, ops) in stalled_slices(&ops_per_slice) {
            stalls.push(format!(
                "{{\"thread\":{},\"slice\":{slice},\"ops\":{ops}}}",
                tl.thread
            ));
        }
        op_rows.push(format!(
            "{{\"thread\":{},\"ops\":{}}}",
            tl.thread,
            u64_array(&ops_per_slice)
        ));
        ev_rows.push(format!(
            "{{\"thread\":{},\"events\":{}}}",
            tl.thread,
            u64_array(&evs_per_slice)
        ));
        if tl.dropped > 0 {
            dropped.push(format!("{{\"thread\":{},\"dropped\":{}}}", tl.thread, tl.dropped));
        }
    }

    format!(
        "{{\"cell\":\"{}\",\"threads\":{},\"records\":{},\"dropped_total\":{},\
         \"dropped_by_thread\":[{}],\"slice_us\":{},\"slices\":{slices},\
         \"op_rate_matrix\":[{}],\"event_rate_matrix\":[{}],\
         \"stalls\":[{}],\"phase_deltas\":[{}]}}",
        json_escape(&cell.label),
        cell.threads,
        data.records_total(),
        data.dropped_total(),
        dropped.join(","),
        us(slice_ns),
        op_rows.join(","),
        ev_rows.join(","),
        stalls.join(","),
        phase_deltas(data).join(","),
    )
}

fn u64_array(xs: &[u64]) -> String {
    let body = xs.iter().map(u64::to_string).collect::<Vec<_>>().join(",");
    format!("[{body}]")
}

/// Median of a thread's op counts over its *active* range (first to
/// last slice with any ops), then every active-range slice below
/// `median / STALL_FACTOR` is a stall. Using the thread's own median
/// makes the detector scale-free: a slow-but-steady thread is not
/// stalled, a thread that collapses mid-run is.
fn stalled_slices(ops_per_slice: &[u64]) -> Vec<(usize, u64)> {
    let first = ops_per_slice.iter().position(|&o| o > 0);
    let last = ops_per_slice.iter().rposition(|&o| o > 0);
    let (Some(first), Some(last)) = (first, last) else {
        return Vec::new();
    };
    let active = &ops_per_slice[first..=last];
    if active.len() < 3 {
        return Vec::new(); // too short to call anything a stall
    }
    let mut sorted: Vec<u64> = active.to_vec();
    sorted.sort_unstable();
    let median = sorted[sorted.len() / 2] as f64;
    if median <= 0.0 {
        return Vec::new();
    }
    active
        .iter()
        .enumerate()
        .filter(|&(_, &o)| (o as f64) < median / STALL_FACTOR)
        .map(|(i, &o)| (first + i, o))
        .collect()
}

/// Telemetry counter deltas between consecutive phase markers, merged
/// over threads. Markers are ordered by timestamp; interval `i` spans
/// marker `i` to marker `i+1` (the last runs to the end of the trace).
fn phase_deltas(data: &TraceData) -> Vec<String> {
    let mut markers: Vec<(u64, PhaseKind, u32)> = data
        .timelines
        .iter()
        .flat_map(|t| t.records.iter())
        .filter_map(|r| match r.data {
            RecordData::Phase { phase, rep } => Some((r.ts_ns, phase, rep)),
            _ => None,
        })
        .collect();
    markers.sort_unstable_by_key(|&(ts, ..)| ts);
    if markers.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(markers.len());
    for (i, &(begin_ns, phase, rep)) in markers.iter().enumerate() {
        let end_ns = markers.get(i + 1).map(|&(ts, ..)| ts).unwrap_or(u64::MAX);
        let mut counts = [0u64; Event::COUNT];
        let mut ops = 0u64;
        for tl in &data.timelines {
            for r in &tl.records {
                if r.ts_ns < begin_ns || r.ts_ns >= end_ns {
                    continue;
                }
                match r.data {
                    RecordData::Event { event, count } => counts[event as usize] += count,
                    RecordData::Span { ops: n, .. } => ops += n as u64,
                    RecordData::Phase { .. } => {}
                }
            }
        }
        let events = Event::ALL
            .iter()
            .filter(|&&e| counts[e as usize] > 0)
            .map(|&e| format!("\"{}\":{}", e.name(), counts[e as usize]))
            .collect::<Vec<_>>()
            .join(",");
        out.push(format!(
            "{{\"phase\":\"rep{rep}/{}\",\"start_us\":{},\"ops\":{ops},\"events\":{{{events}}}}}",
            phase.name(),
            us(begin_ns),
        ));
    }
    out
}

/// Shorthand used by the binaries: a span-only smoke check that the
/// export looks like a Chrome trace (used in tests; real validation is
/// loading it in Perfetto).
pub fn looks_like_chrome_trace(json: &str) -> bool {
    json.trim_start().starts_with('{')
        && json.contains("\"traceEvents\"")
        && json.contains("\"attribution\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pq_traits::trace::{SpanOp, ThreadTimeline, TraceRecord};

    fn span(ts: u64, dur: u64, ops: u32) -> TraceRecord {
        TraceRecord {
            ts_ns: ts,
            data: RecordData::Span {
                op: SpanOp::OpBatch,
                dur_ns: dur,
                ops,
            },
        }
    }

    fn data_with(records: Vec<Vec<TraceRecord>>, dropped: u64) -> TraceData {
        TraceData {
            timelines: records
                .into_iter()
                .enumerate()
                .map(|(i, records)| ThreadTimeline {
                    thread: i as u64,
                    records,
                    dropped: if i == 0 { dropped } else { 0 },
                })
                .collect(),
        }
    }

    #[test]
    fn export_has_one_track_per_thread() {
        let mk = |base: u64| {
            (0..10)
                .map(|i| span(base + i * 1000, 800, 64))
                .collect::<Vec<_>>()
        };
        let mut f = TraceFile::new();
        f.push_cell("cell-a t4", 4, data_with(vec![mk(0), mk(5), mk(9), mk(13)], 0));
        let json = f.to_json();
        assert!(looks_like_chrome_trace(&json));
        for t in 0..4 {
            assert!(
                json.contains(&format!("\"name\":\"thread {t}\"")),
                "missing track for thread {t}"
            );
        }
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 40);
        assert!(json.contains("\"op_rate_matrix\""));
        assert!(json.contains("\"dropped_total\":0"));
    }

    #[test]
    fn dropped_records_are_reported_not_silent() {
        let records = vec![span(0, 100, 64), span(200, 100, 64)];
        let mut f = TraceFile::new();
        f.push_cell("lossy", 1, data_with(vec![records], 123));
        assert_eq!(f.dropped_total(), 123);
        let json = f.to_json();
        assert!(json.contains("\"dropped_total\":123"));
        assert!(json.contains("{\"thread\":0,\"dropped\":123}"));
        assert!(json.contains("dropped 123"), "track name must flag the loss");
    }

    #[test]
    fn phase_deltas_split_events_by_marker() {
        let recs = vec![
            TraceRecord {
                ts_ns: 0,
                data: RecordData::Phase {
                    phase: PhaseKind::Prefill,
                    rep: 0,
                },
            },
            TraceRecord {
                ts_ns: 10,
                data: RecordData::Event {
                    event: Event::MqEmptySample,
                    count: 2,
                },
            },
            TraceRecord {
                ts_ns: 100,
                data: RecordData::Phase {
                    phase: PhaseKind::Measure,
                    rep: 0,
                },
            },
            TraceRecord {
                ts_ns: 150,
                data: RecordData::Event {
                    event: Event::MqEmptySample,
                    count: 5,
                },
            },
            span(200, 50, 64),
        ];
        let deltas = phase_deltas(&data_with(vec![recs], 0));
        assert_eq!(deltas.len(), 2);
        assert!(deltas[0].contains("\"phase\":\"rep0/prefill\""));
        assert!(deltas[0].contains("\"mq_empty_sample\":2"));
        assert!(deltas[0].contains("\"ops\":0"));
        assert!(deltas[1].contains("\"phase\":\"rep0/measure\""));
        assert!(deltas[1].contains("\"mq_empty_sample\":5"));
        assert!(deltas[1].contains("\"ops\":64"));
    }

    #[test]
    fn stall_detector_flags_collapse_not_steady_slow() {
        // Steady thread: no stalls even though the rate is low.
        assert!(stalled_slices(&[5, 5, 5, 5, 5]).is_empty());
        // Collapsed mid-run: the near-zero slice is flagged.
        let flagged = stalled_slices(&[100, 100, 3, 100, 100]);
        assert_eq!(flagged, vec![(2, 3)]);
        // Leading/trailing idle slices are outside the active range.
        assert!(stalled_slices(&[0, 0, 50, 50, 50, 0]).is_empty());
        // All-zero and too-short inputs are not judged.
        assert!(stalled_slices(&[0, 0, 0]).is_empty());
        assert!(stalled_slices(&[100, 1]).is_empty());
    }

    #[test]
    fn empty_trace_file_serializes() {
        let f = TraceFile::new();
        assert!(f.is_empty());
        assert_eq!(f.dropped_total(), 0);
        assert!(looks_like_chrome_trace(&f.to_json()));
    }
}
