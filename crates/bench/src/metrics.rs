//! Structured JSON metrics export for the benchmark binaries.
//!
//! Every binary that accepts `--metrics <path>` funnels its results
//! through a [`MetricsReport`]: one *cell* per (queue, threads,
//! workload) configuration, carrying the scalar summaries, the
//! time-sliced throughput series, latency histograms, and — when the
//! `telemetry` feature is on — the queue-internal event counters
//! ([`pq_traits::telemetry`]) observed while that cell ran. The JSON is
//! handwritten (the workspace is dependency-free by design) and kept
//! deliberately flat so downstream tooling can consume it with nothing
//! more than a generic JSON parser.
//!
//! Top-level shape:
//!
//! ```json
//! {
//!   "tool": "figures",
//!   "telemetry_enabled": true,
//!   "cells": [ { "kind": "throughput", ... }, ... ],
//!   "warnings": [ "..." ]
//! }
//! ```

use harness::{Histogram, LatencyResult, QualityResult, ThroughputResult};
use pq_traits::telemetry::{self, EventCounts};
use pq_traits::trace;

/// Version of the exported JSON layout, bumped on breaking shape
/// changes. Version 2 added the `meta` block itself; version 3 added
/// the runtime-detected `cpu_features` list and the dispatched
/// `simd_tier` (both from [`lsm::KernelTier`]), so a recorded run
/// states which kernel tier actually produced its numbers.
pub const SCHEMA_VERSION: u32 = 3;

/// The self-describing `meta` object every JSON export embeds: schema
/// version, compiled feature switches, worker thread count (0 when the
/// export spans several thread counts and the per-cell value governs),
/// host OS/arch, the runtime-detected CPU feature set, and the kernel
/// tier the LSM dispatch selected (honouring `LSM_FORCE_KERNEL_TIER`),
/// so a BENCH_*.json can be interpreted long after the run that
/// produced it.
pub fn run_metadata_json(threads: usize) -> String {
    let cpu_features = lsm::KernelTier::detected_cpu_features()
        .iter()
        .map(|f| format!("\"{}\"", json_escape(f)))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{{\"schema_version\": {SCHEMA_VERSION}, \"os\": \"{}\", \"arch\": \"{}\", \
         \"threads\": {threads}, \"cpu_features\": [{cpu_features}], \
         \"simd_tier\": \"{}\", \
         \"features\": {{\"telemetry\": {}, \"trace\": {}}}}}",
        json_escape(std::env::consts::OS),
        json_escape(std::env::consts::ARCH),
        json_escape(lsm::active_tier().name()),
        telemetry::enabled(),
        trace::compiled(),
    )
}

/// Escape a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render an `f64` as a JSON value; non-finite values become `null`
/// (JSON has no Infinity/NaN).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_owned()
    }
}

fn json_u64_array(xs: &[u64]) -> String {
    let body = xs.iter().map(u64::to_string).collect::<Vec<_>>().join(",");
    format!("[{body}]")
}

/// Event counters as a JSON object keyed by [`telemetry::Event::name`],
/// in stable [`telemetry::Event::ALL`] order.
fn events_json(events: &EventCounts) -> String {
    let body = events
        .iter()
        .map(|(e, c)| format!("\"{}\": {c}", e.name()))
        .collect::<Vec<_>>()
        .join(", ");
    format!("{{{body}}}")
}

/// A histogram as `{count, min, max, mean, p50, p90, p99, p999,
/// buckets}` where `buckets` lists only non-empty buckets as
/// `[inclusive_lower_bound, count]` pairs.
fn histogram_json(h: &Histogram) -> String {
    let buckets = h
        .nonzero_buckets()
        .map(|(lo, c)| format!("[{lo},{c}]"))
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\"count\": {}, \"min\": {}, \"max\": {}, \"mean\": {}, \
         \"p50\": {}, \"p90\": {}, \"p99\": {}, \"p999\": {}, \"buckets\": [{buckets}]}}",
        h.count(),
        h.min(),
        h.max(),
        json_f64(h.mean()),
        h.percentile(0.5),
        h.percentile(0.9),
        h.percentile(0.99),
        h.percentile(0.999),
    )
}

/// Accumulates benchmark cells and warnings, then serializes them to a
/// JSON document. Cells are rendered eagerly so the report only holds
/// strings.
#[derive(Debug)]
pub struct MetricsReport {
    tool: String,
    cells: Vec<String>,
    warnings: Vec<String>,
    max_threads: usize,
}

impl MetricsReport {
    /// A new empty report for `tool` (the binary name, e.g. "figures").
    pub fn new(tool: &str) -> Self {
        Self {
            tool: tool.to_owned(),
            cells: Vec::new(),
            warnings: Vec::new(),
            max_threads: 0,
        }
    }

    /// Number of cells pushed so far.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when no cell has been pushed.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Record a free-form warning (also useful to mirror to stderr).
    pub fn push_warning(&mut self, warning: &str) {
        self.warnings.push(json_escape(warning));
    }

    /// Add a throughput cell: summary, per-repetition series, fairness,
    /// the time-sliced ops-per-tick series and drift ratio, plus the
    /// telemetry events recorded while the cell ran. Automatically
    /// appends the steady-state warning when the cell drifted > 2×.
    pub fn push_throughput_cell(
        &mut self,
        experiment: &str,
        r: &ThroughputResult,
        events: &EventCounts,
    ) {
        self.max_threads = self.max_threads.max(r.threads);
        if let Some(w) = r.steady_state_warning() {
            self.push_warning(&w);
        }
        let per_rep = r
            .per_rep_ops_per_sec
            .iter()
            .map(|&v| json_f64(v))
            .collect::<Vec<_>>()
            .join(", ");
        let ticks = r
            .per_rep_ticks
            .iter()
            .map(|t| json_u64_array(t))
            .collect::<Vec<_>>()
            .join(", ");
        let drift = r.drift_ratio().map_or("null".to_owned(), json_f64);
        self.cells.push(format!(
            "{{\"kind\": \"throughput\", \"experiment\": \"{}\", \"queue\": \"{}\", \
             \"threads\": {}, \"ops_per_sec_mean\": {}, \"ops_per_sec_ci95\": {}, \
             \"mops_mean\": {}, \"per_rep_ops_per_sec\": [{per_rep}], \
             \"fairness_mean\": {}, \"tick_ms\": {}, \"ticks_per_rep\": [{ticks}], \
             \"drift_ratio\": {drift}, \"events\": {}}}",
            json_escape(experiment),
            json_escape(&r.queue),
            r.threads,
            json_f64(r.summary.mean),
            json_f64(r.summary.ci95),
            json_f64(r.mops()),
            json_f64(r.fairness_summary().mean),
            json_f64(r.tick_ms),
            events_json(events),
        ));
    }

    /// Add a rank-error (quality) cell.
    pub fn push_quality_cell(
        &mut self,
        experiment: &str,
        r: &QualityResult,
        events: &EventCounts,
    ) {
        self.max_threads = self.max_threads.max(r.threads);
        self.cells.push(format!(
            "{{\"kind\": \"quality\", \"experiment\": \"{}\", \"queue\": \"{}\", \
             \"threads\": {}, \"rank_mean\": {}, \"rank_sd\": {}, \"rank_p50\": {}, \
             \"rank_p99\": {}, \"rank_max\": {}, \"delay_mean\": {}, \"deletions\": {}, \
             \"events\": {}}}",
            json_escape(experiment),
            json_escape(&r.queue),
            r.threads,
            json_f64(r.rank.mean),
            json_f64(r.rank.sd),
            r.p50,
            r.p99,
            r.max,
            json_f64(r.delay.mean),
            r.deletions,
            events_json(events),
        ));
    }

    /// Add a latency cell with full insert/delete histograms.
    pub fn push_latency_cell(
        &mut self,
        experiment: &str,
        r: &LatencyResult,
        events: &EventCounts,
    ) {
        self.max_threads = self.max_threads.max(r.threads);
        self.cells.push(format!(
            "{{\"kind\": \"latency\", \"experiment\": \"{}\", \"queue\": \"{}\", \
             \"threads\": {}, \"insert\": {}, \"delete\": {}, \"events\": {}}}",
            json_escape(experiment),
            json_escape(&r.queue),
            r.threads,
            histogram_json(&r.insert_hist),
            histogram_json(&r.delete_hist),
            events_json(events),
        ));
    }

    /// Add a checker cell: the semantic checker's per-cell report (its
    /// own JSON object, `"kind": "checker"`), plus the telemetry events
    /// recorded while the cell ran. Flags a warning per violating cell
    /// so report consumers can't miss a red matrix entry.
    pub fn push_checker_cell(&mut self, r: &checker::CheckReport, events: &EventCounts) {
        self.max_threads = self.max_threads.max(r.threads);
        if !r.is_clean() {
            self.push_warning(&format!(
                "checker violations in {} ({} t{}): {}",
                r.queue,
                r.workload,
                r.threads,
                r.violations_total()
            ));
        }
        let cell = r.to_json();
        // Splice the events object into the checker's JSON cell.
        debug_assert!(cell.ends_with('}'));
        self.cells.push(format!(
            "{}, \"events\": {}}}",
            &cell[..cell.len() - 1],
            events_json(events),
        ));
    }

    /// Serialize the whole report.
    pub fn to_json(&self) -> String {
        let cells = self
            .cells
            .iter()
            .map(|c| format!("    {c}"))
            .collect::<Vec<_>>()
            .join(",\n");
        let warnings = self
            .warnings
            .iter()
            .map(|w| format!("    \"{w}\""))
            .collect::<Vec<_>>()
            .join(",\n");
        format!(
            "{{\n  \"tool\": \"{}\",\n  \"telemetry_enabled\": {},\n  \"meta\": {},\n  \
             \"cells\": [\n{cells}\n  ],\n  \
             \"warnings\": [\n{warnings}\n  ]\n}}\n",
            json_escape(&self.tool),
            telemetry::enabled(),
            run_metadata_json(self.max_threads),
        )
    }

    /// Write the report to `path`.
    pub fn write(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// Snapshot-delta helper: the telemetry events recorded since `before`.
/// Binaries call `telemetry::snapshot()` before a cell and this after,
/// so concurrent cells in one process don't bleed into each other's
/// counters without needing a global reset.
pub fn events_since(before: &EventCounts) -> EventCounts {
    telemetry::snapshot().since(before)
}

#[cfg(test)]
mod tests {
    use super::*;
    use harness::Summary;

    /// Minimal structural JSON check: balanced braces/brackets outside
    /// string literals, and no trailing garbage.
    fn assert_balanced(json: &str) {
        let mut depth = 0i64;
        let mut in_str = false;
        let mut escape = false;
        for c in json.chars() {
            if escape {
                escape = false;
                continue;
            }
            match c {
                '\\' if in_str => escape = true,
                '"' => in_str = !in_str,
                '{' | '[' if !in_str => depth += 1,
                '}' | ']' if !in_str => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0, "unbalanced close in {json}");
        }
        assert!(!in_str, "unterminated string in {json}");
        assert_eq!(depth, 0, "unbalanced JSON: {json}");
    }

    fn throughput_result(ticks: Vec<Vec<u64>>) -> ThroughputResult {
        ThroughputResult {
            queue: "testq".into(),
            threads: 2,
            per_rep_ops_per_sec: vec![1e6, 1.1e6],
            summary: Summary::of(&[1e6, 1.1e6]),
            last_rep_thread_ops: vec![500, 500],
            per_rep_thread_ops: vec![vec![500, 500], vec![550, 550]],
            tick_ms: 10.0,
            per_rep_ticks: ticks,
        }
    }

    #[test]
    fn checker_cell_embeds_report_and_warns_on_violations() {
        let mut r = checker::CheckReport {
            queue: "testq".into(),
            threads: 2,
            workload: "uniform".into(),
            key_dist: "uniform20".into(),
            seed: 7,
            chaos_seed: Some(9),
            inserts: 100,
            deletes: 99,
            empty_deletes: 3,
            flushed_items: 0,
            lost: 1,
            duplicated: 0,
            invented: 0,
            rank_checked: 99,
            rank_max: 4,
            rank_mean: 0.5,
            rank_bound: Some(0),
            rank_bound_enforced: true,
            rank_slack: 16,
            rank_violations: 0,
            strict: true,
            monotonicity_violations: 0,
            residual_order_violations: 0,
        };
        let mut m = MetricsReport::new("checker_stress");
        m.push_checker_cell(&r, &EventCounts::default());
        let json = m.to_json();
        assert_balanced(&json);
        assert!(json.contains("\"kind\": \"checker\""));
        assert!(json.contains("\"chaos_seed\": 9"));
        assert!(json.contains("\"events\": {"));
        assert!(json.contains("checker violations in testq"));
        // A clean report adds no warning.
        r.lost = 0;
        let mut clean = MetricsReport::new("checker_stress");
        clean.push_checker_cell(&r, &EventCounts::default());
        assert!(!clean.to_json().contains("checker violations"));
        assert_balanced(&clean.to_json());
    }

    #[test]
    fn report_json_is_balanced_and_carries_cells() {
        let mut m = MetricsReport::new("figures");
        m.push_throughput_cell(
            "fig4a",
            &throughput_result(vec![vec![100, 100, 100]]),
            &EventCounts::default(),
        );
        assert_eq!(m.len(), 1);
        assert!(!m.is_empty());
        let json = m.to_json();
        assert_balanced(&json);
        assert!(json.contains("\"tool\": \"figures\""));
        assert!(json.contains("\"kind\": \"throughput\""));
        assert!(json.contains("\"queue\": \"testq\""));
        assert!(json.contains("\"ticks_per_rep\": [[100,100,100]]"));
        // Every event name is present even when counts are zero.
        for e in pq_traits::telemetry::Event::ALL {
            assert!(json.contains(e.name()), "missing event {}", e.name());
        }
    }

    #[test]
    fn drifting_cell_appends_warning() {
        let mut m = MetricsReport::new("figures");
        m.push_throughput_cell(
            "fig4a",
            &throughput_result(vec![vec![300, 200, 100]]),
            &EventCounts::default(),
        );
        let json = m.to_json();
        assert_balanced(&json);
        assert!(json.contains("drifted"), "missing drift warning: {json}");
        assert!(json.contains("\"drift_ratio\": 3.000000"));
    }

    #[test]
    fn stalled_tick_serializes_drift_as_null() {
        let mut m = MetricsReport::new("figures");
        m.push_throughput_cell(
            "fig4a",
            &throughput_result(vec![vec![300, 0]]),
            &EventCounts::default(),
        );
        let json = m.to_json();
        assert_balanced(&json);
        assert!(json.contains("\"drift_ratio\": null"));
    }

    #[test]
    fn latency_cell_exports_histograms() {
        let mut ins = Histogram::new();
        let mut del = Histogram::new();
        for v in 1..=100u64 {
            ins.record(v * 10);
            del.record(v * 20);
        }
        let r = LatencyResult {
            queue: "testq".into(),
            threads: 4,
            insert: harness::LatencyProfile::from_histogram(&ins),
            delete: harness::LatencyProfile::from_histogram(&del),
            insert_hist: ins,
            delete_hist: del,
        };
        let mut m = MetricsReport::new("latency");
        m.push_latency_cell("fig4a", &r, &EventCounts::default());
        let json = m.to_json();
        assert_balanced(&json);
        assert!(json.contains("\"kind\": \"latency\""));
        assert!(json.contains("\"count\": 100"));
        assert!(json.contains("\"buckets\": [["));
    }

    #[test]
    fn quality_cell_exports_rank_stats() {
        let r = QualityResult {
            queue: "testq".into(),
            threads: 4,
            rank: Summary::of_u64(&[10, 20, 30]),
            p50: 20,
            p99: 30,
            max: 30,
            delay: Summary::of_u64(&[1, 2, 3]),
            deletions: 3,
        };
        let mut m = MetricsReport::new("quality");
        m.push_quality_cell("table2a", &r, &EventCounts::default());
        let json = m.to_json();
        assert_balanced(&json);
        assert!(json.contains("\"kind\": \"quality\""));
        assert!(json.contains("\"rank_p99\": 30"));
        assert!(json.contains("\"deletions\": 3"));
    }

    #[test]
    fn meta_block_is_self_describing() {
        let mut m = MetricsReport::new("figures");
        m.push_throughput_cell(
            "fig4a",
            &throughput_result(vec![vec![100, 100]]),
            &EventCounts::default(),
        );
        let json = m.to_json();
        assert_balanced(&json);
        assert!(json.contains(&format!("\"schema_version\": {SCHEMA_VERSION}")));
        assert!(json.contains(&format!("\"os\": \"{}\"", std::env::consts::OS)));
        assert!(json.contains(&format!("\"arch\": \"{}\"", std::env::consts::ARCH)));
        // The meta thread count is the max over cells (2 here).
        assert!(json.contains("\"threads\": 2,"), "meta threads missing: {json}");
        assert!(json.contains(&format!("\"telemetry\": {}", telemetry::enabled())));
        assert!(json.contains(&format!("\"trace\": {}", trace::compiled())));
        // v3: the dispatched kernel tier and detected CPU feature set.
        assert!(
            json.contains(&format!("\"simd_tier\": \"{}\"", lsm::active_tier().name())),
            "meta simd_tier missing: {json}"
        );
        assert!(json.contains("\"cpu_features\": ["), "meta cpu_features missing: {json}");
        // The standalone helper matches what the report embeds.
        assert_balanced(&run_metadata_json(8));
        assert!(run_metadata_json(8).contains("\"threads\": 8"));
    }

    #[test]
    fn strings_are_escaped() {
        let mut m = MetricsReport::new("we\"ird\\tool\n");
        m.push_warning("warn \"quoted\"");
        let json = m.to_json();
        assert_balanced(&json);
        assert!(json.contains("we\\\"ird\\\\tool\\n"));
    }
}
