//! Plain-text table rendering in the layout of the paper's figures
//! (throughput vs. threads, one series per queue) and tables (rank error
//! per thread count).

use harness::{QualityResult, ThroughputResult};

/// Render a throughput matrix: rows = queues, columns = thread counts,
/// cells = MOps/s mean ± 95 % CI. `results[q][t]` pairs with
/// `threads[t]`.
pub fn format_throughput_table(
    title: &str,
    threads: &[usize],
    results: &[Vec<ThroughputResult>],
) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {title}\n"));
    out.push_str(&format!("{:<14}", "queue"));
    for t in threads {
        out.push_str(&format!("{:>20}", format!("{t} thr [MOps/s]")));
    }
    out.push('\n');
    for row in results {
        let name = row.first().map(|r| r.queue.as_str()).unwrap_or("?");
        out.push_str(&format!("{name:<14}"));
        for r in row {
            out.push_str(&format!(
                "{:>20}",
                format!("{:.3} ±{:.3}", r.mops(), r.summary.ci95 / 1e6)
            ));
        }
        out.push('\n');
    }
    out
}

/// Render a rank-error table: rows = queues, columns = thread counts,
/// cells = mean rank (standard deviation), matching the layout of the
/// paper's tables 1/2/5.
pub fn format_quality_table(
    title: &str,
    threads: &[usize],
    results: &[Vec<QualityResult>],
) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {title}\n"));
    out.push_str(&format!("{:<14}", "queue"));
    for t in threads {
        out.push_str(&format!("{:>24}", format!("{t} thr rank (sd)")));
    }
    out.push('\n');
    for row in results {
        let name = row.first().map(|r| r.queue.as_str()).unwrap_or("?");
        out.push_str(&format!("{name:<14}"));
        for r in row {
            out.push_str(&format!(
                "{:>24}",
                format!("{:.1} ({:.1})", r.rank.mean, r.rank.sd)
            ));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use harness::Summary;

    fn tp(queue: &str, mean: f64) -> ThroughputResult {
        ThroughputResult {
            queue: queue.to_owned(),
            threads: 2,
            per_rep_ops_per_sec: vec![mean],
            summary: Summary::of(&[mean]),
            last_rep_thread_ops: vec![mean as u64 / 2; 2],
            per_rep_thread_ops: vec![vec![mean as u64 / 2; 2]],
            tick_ms: 10.0,
            per_rep_ticks: vec![],
        }
    }

    #[test]
    fn throughput_table_contains_queues_and_values() {
        let table = format_throughput_table(
            "fig4a",
            &[1, 2],
            &[vec![tp("klsm128", 2e6), tp("klsm128", 3e6)]],
        );
        assert!(table.contains("fig4a"));
        assert!(table.contains("klsm128"));
        assert!(table.contains("2.000"));
        assert!(table.contains("3.000"));
    }

    #[test]
    fn quality_table_contains_rank() {
        let q = QualityResult {
            queue: "multiqueue".into(),
            threads: 4,
            rank: Summary::of_u64(&[10, 20, 30]),
            p50: 20,
            p99: 30,
            max: 30,
            delay: Summary::of_u64(&[1, 2, 3]),
            deletions: 3,
        };
        let table = format_quality_table("table2a", &[4], &[vec![q]]);
        assert!(table.contains("multiqueue"));
        assert!(table.contains("20.0"));
    }
}
