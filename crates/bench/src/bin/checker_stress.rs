//! Semantic-checker stress matrix under schedule perturbation.
//!
//! Runs the full queue registry through the recorded checker scenario
//! (`checker::run_and_check`) across the workload × key-distribution
//! grid, with the chaos shim (`pq_traits::chaos`) injecting seeded
//! yields and spin-backoff at the queues' telemetry hot spots. Every
//! cell runs twice with identical seeds and the two deterministic
//! violation reports must match byte-for-byte; any violation or
//! mismatch fails the run (exit 1).
//!
//! `--mutation-test` additionally runs the three intentionally broken
//! wrappers (item-dropping, item-duplicating, bound-violating) over a
//! strict base queue and fails unless the checker flags each one —
//! proving the matrix's green cells are meaningful.
//!
//! ```text
//! cargo run -p pq-bench --release --bin checker_stress -- \
//!     --threads 4 --ops 2000 --chaos-seed 7 --mutation-test \
//!     --metrics BENCH_checker.json
//! ```

use checker::{run_and_check, BoundViolator, CheckConfig, CheckReport, ItemDropper, ItemDuplicator};
use harness::{with_queue, QueueSpec};
use pq_bench::metrics::{events_since, MetricsReport};
use pq_traits::chaos::{self, ChaosConfig};
use pq_traits::seed::handle_seed;
use pq_traits::telemetry;
use workloads::{KeyDistribution, Workload};

struct Args {
    threads: usize,
    prefill: usize,
    ops: usize,
    seed: u64,
    chaos_seed: u64,
    no_chaos: bool,
    mutation_test: bool,
    queues: Vec<QueueSpec>,
    metrics: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        threads: 3,
        prefill: 384,
        ops: 1_500,
        seed: 0xC0FFEE,
        chaos_seed: 0xC4405,
        no_chaos: false,
        mutation_test: false,
        queues: Vec::new(),
        metrics: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let take = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            argv.get(*i)
                .cloned()
                .ok_or_else(|| format!("missing value after {}", argv[*i - 1]))
        };
        match argv[i].as_str() {
            "--threads" => args.threads = take(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--prefill" => args.prefill = take(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--ops" => args.ops = take(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => args.seed = take(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--chaos-seed" => {
                args.chaos_seed = take(&mut i)?.parse().map_err(|e| format!("{e}"))?
            }
            "--no-chaos" => args.no_chaos = true,
            "--mutation-test" => args.mutation_test = true,
            "--queue" => {
                let name = take(&mut i)?;
                args.queues.push(
                    QueueSpec::parse(&name).ok_or_else(|| format!("unknown queue '{name}'"))?,
                );
            }
            "--metrics" => args.metrics = Some(take(&mut i)?),
            other => return Err(format!("unknown flag '{other}'")),
        }
        i += 1;
    }
    if args.threads == 0 {
        return Err("--threads must be >= 1".into());
    }
    Ok(args)
}

/// Every registry variant (one representative parameterization each).
fn full_registry() -> Vec<QueueSpec> {
    vec![
        QueueSpec::Klsm(16),
        QueueSpec::Klsm(128),
        QueueSpec::Klsm(4096),
        QueueSpec::Dlsm,
        QueueSpec::Slsm(32),
        QueueSpec::Linden,
        QueueSpec::Spray,
        QueueSpec::MultiQueue(4),
        QueueSpec::MqSticky(4, 8, 8),
        QueueSpec::GlobalLock,
        QueueSpec::GlobalLockPairing,
        QueueSpec::MultiQueuePairing(4),
        QueueSpec::Hunt,
        QueueSpec::Mound,
        QueueSpec::Cbpq,
        QueueSpec::SprayBatch(16),
        QueueSpec::FcGlobalLock(1),
        QueueSpec::FcGlobalLock(16),
        QueueSpec::FcMound(1),
        QueueSpec::FcMound(16),
    ]
}

/// Fully linearizable strict queues: the only ones for which per-thread
/// monotonicity may be asserted during the *concurrent* drain. Hunt,
/// mound and cbpq are strict only up to in-flight operations.
fn strict_drain(spec: &QueueSpec) -> bool {
    matches!(
        spec,
        QueueSpec::Linden
            | QueueSpec::GlobalLock
            | QueueSpec::GlobalLockPairing
            | QueueSpec::FcGlobalLock(1)
            | QueueSpec::FcMound(1)
    )
}

/// Run one cell twice under identical seeds; report any violation or
/// determinism mismatch. Returns the first run's report.
fn run_cell<F>(
    cfg: &CheckConfig,
    chaos_seed: Option<u64>,
    failures: &mut u64,
    injected: &mut u64,
    metrics: &mut MetricsReport,
    run: F,
) -> CheckReport
where
    F: Fn() -> CheckReport,
{
    let configure = || {
        if let Some(seed) = chaos_seed {
            chaos::configure(ChaosConfig::aggressive(seed));
        }
    };
    configure();
    let before = telemetry::snapshot();
    let a = run();
    let events = events_since(&before);
    *injected += chaos::injected();
    configure();
    let b = run();
    *injected += chaos::injected();
    chaos::disable();
    metrics.push_checker_cell(&a, &events);
    if !a.is_clean() {
        eprintln!(
            "VIOLATION {} {}: {}",
            a.queue,
            cfg.label(),
            a.violation_json()
        );
        *failures += 1;
    }
    if a.violation_json() != b.violation_json() {
        eprintln!(
            "NONDETERMINISM {} {}: run A {} vs run B {}",
            a.queue,
            cfg.label(),
            a.violation_json(),
            b.violation_json()
        );
        metrics.push_warning(&format!(
            "nondeterministic violation report for {} ({})",
            a.queue,
            cfg.label()
        ));
        *failures += 1;
    }
    a
}

/// One mutation-test case: a label, a runner for the broken wrapper,
/// and an accessor for the violation counter it must trip.
type MutantCase = (
    &'static str,
    fn(&CheckConfig, Option<u64>) -> CheckReport,
    fn(&CheckReport) -> u64,
);

/// Mutation tests: each broken wrapper must be flagged with its
/// violation class, or the checker itself is broken.
fn run_mutation_tests(args: &Args, failures: &mut u64, injected: &mut u64, metrics: &mut MetricsReport) {
    let cfg = CheckConfig {
        threads: args.threads,
        prefill: args.prefill,
        ops_per_thread: args.ops,
        workload: Workload::Uniform,
        key_dist: KeyDistribution::uniform(20),
        seed: args.seed,
        strict_drain_check: false,
    };
    let chaos_seed = (!args.no_chaos).then_some(args.chaos_seed);
    if let Some(seed) = chaos_seed {
        chaos::configure(ChaosConfig::aggressive(seed));
    }
    let cases: [MutantCase; 3] = [
        (
            "lost",
            |cfg, cs| {
                run_and_check(
                    ItemDropper::new(skiplist_pq::LindenPq::new(), 37),
                    cfg,
                    cs,
                )
            },
            |r| r.lost,
        ),
        (
            "duplicated",
            |cfg, cs| {
                run_and_check(
                    ItemDuplicator::new(skiplist_pq::LindenPq::new(), 23),
                    cfg,
                    cs,
                )
            },
            |r| r.duplicated,
        ),
        (
            "rank_violations",
            |cfg, cs| {
                run_and_check(
                    BoundViolator::new(skiplist_pq::LindenPq::new(), 11, 64),
                    cfg,
                    cs,
                )
            },
            |r| r.rank_violations,
        ),
    ];
    for (class, run, count) in cases {
        let before = telemetry::snapshot();
        let report = run(&cfg, chaos_seed);
        let events = events_since(&before);
        let n = count(&report);
        metrics.push_checker_cell(&report, &events);
        if n == 0 {
            eprintln!(
                "MUTATION MISS: {} produced no '{class}' violations: {}",
                report.queue,
                report.violation_json()
            );
            metrics.push_warning(&format!(
                "mutation test missed: {} should raise '{class}'",
                report.queue
            ));
            *failures += 1;
        } else {
            println!("mutant {:<14} caught: {class} = {n}", report.queue);
        }
    }
    *injected += chaos::injected();
    chaos::disable();
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("checker_stress: {e}");
            std::process::exit(2);
        }
    };
    let specs = if args.queues.is_empty() {
        full_registry()
    } else {
        args.queues.clone()
    };
    let workloads = [Workload::Uniform, Workload::Split, Workload::Alternating];
    let key_dists = [
        KeyDistribution::uniform(20),
        KeyDistribution::ascending(),
        KeyDistribution::descending(),
    ];

    let mut metrics = MetricsReport::new("checker_stress");
    let mut failures = 0u64;
    let mut cells = 0u64;
    let mut injected = 0u64;
    let started = std::time::Instant::now();

    for spec in &specs {
        for workload in workloads {
            for key_dist in key_dists {
                let cfg = CheckConfig {
                    threads: args.threads,
                    prefill: args.prefill,
                    ops_per_thread: args.ops,
                    workload,
                    key_dist,
                    seed: args.seed,
                    strict_drain_check: strict_drain(spec),
                };
                // Per-cell chaos seed: mixed so cells see different
                // schedules, but derived so the whole matrix replays
                // from one `--chaos-seed`.
                let cell_seed = (!args.no_chaos).then(|| handle_seed(args.chaos_seed, cells));
                let report = run_cell(&cfg, cell_seed, &mut failures, &mut injected, &mut metrics, || {
                    with_queue!(*spec, args.threads, q => run_and_check(q, &cfg, cell_seed))
                });
                cells += 1;
                println!(
                    "{:<22} {:<28} {} (rank max {} mean {:.2})",
                    report.queue,
                    cfg.label(),
                    if report.is_clean() { "clean" } else { "VIOLATION" },
                    report.rank_max,
                    report.rank_mean,
                );
            }
        }
    }

    if args.mutation_test {
        run_mutation_tests(&args, &mut failures, &mut injected, &mut metrics);
    }

    if let Some(path) = &args.metrics {
        if let Err(e) = metrics.write(path) {
            eprintln!("checker_stress: failed to write {path}: {e}");
            std::process::exit(2);
        }
        println!("metrics written to {path}");
    }
    eprintln!(
        "checker_stress: {cells} cells ({} queues), {injected} chaos events injected, {:.1}s",
        specs.len(),
        started.elapsed().as_secs_f64(),
    );
    if failures > 0 {
        eprintln!("checker_stress: {failures} failing cells");
        std::process::exit(1);
    }
    println!("checker_stress: all cells clean and deterministic");
}
