//! Regenerate the paper's rank-error tables (tables 1, 2 and 5).
//!
//! ```text
//! cargo run -p pq-bench --release --bin quality -- --experiment table2a
//! cargo run -p pq-bench --release --bin quality -- --all
//! ```

use harness::{experiments, run_quality, QualityResult, QueueSpec};
use pq_bench::{events_since, format_quality_table, MetricsReport, TraceFile};
use pq_traits::{telemetry, trace};
use workloads::config::StopCondition;
use workloads::BenchConfig;

struct Args {
    experiments: Vec<experiments::Experiment>,
    threads: Vec<usize>,
    queues: Vec<QueueSpec>,
    prefill: usize,
    ops_per_thread: u64,
    seed: u64,
    metrics: Option<String>,
    trace: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut experiments_sel: Option<Vec<experiments::Experiment>> = None;
    // The paper's tables report 2, 4 and 8 threads.
    let mut threads = vec![2, 4, 8];
    let mut queues = QueueSpec::quality_set();
    let mut prefill = 100_000usize;
    let mut ops_per_thread = 20_000u64;
    let mut seed = 0x5EEDu64;
    let mut metrics: Option<String> = None;
    let mut trace_path: Option<String> = None;

    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let take = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            argv.get(*i)
                .cloned()
                .ok_or_else(|| format!("missing value after {}", argv[*i - 1]))
        };
        match argv[i].as_str() {
            "--experiment" => {
                let id = take(&mut i)?;
                let e = experiments::by_id(&id).ok_or(format!("unknown experiment '{id}'"))?;
                experiments_sel.get_or_insert_with(Vec::new).push(e);
            }
            "--all" => experiments_sel = Some(experiments::all()),
            "--threads" => {
                threads = take(&mut i)?
                    .split(',')
                    .map(|s| s.trim().parse().map_err(|_| format!("bad thread count '{s}'")))
                    .collect::<Result<_, _>>()?;
            }
            "--queues" => {
                queues = take(&mut i)?
                    .split(',')
                    .map(|s| QueueSpec::parse(s.trim()).ok_or(format!("unknown queue '{s}'")))
                    .collect::<Result<_, _>>()?;
            }
            "--prefill" => prefill = take(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--ops-per-thread" => {
                ops_per_thread = take(&mut i)?.parse().map_err(|e| format!("{e}"))?
            }
            "--seed" => seed = take(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--metrics" => metrics = Some(take(&mut i)?),
            "--trace" => trace_path = Some(take(&mut i)?),
            "--help" | "-h" => {
                println!(
                    "usage: quality [--experiment <id>]... [--all] [--threads 2,4,8] \
                     [--queues klsm128,...] [--prefill N] [--ops-per-thread N] [--seed N] \
                     [--metrics out.json] [--trace out.trace.json]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
        i += 1;
    }
    if trace_path.is_some() && !trace::compiled() {
        return Err("--trace requires building with --features trace".to_owned());
    }
    Ok(Args {
        experiments: experiments_sel
            .unwrap_or_else(|| vec![experiments::by_id("table2a").unwrap()]),
        threads,
        queues,
        prefill,
        ops_per_thread,
        seed,
        metrics,
        trace: trace_path,
    })
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let mut report = args.metrics.as_ref().map(|_| MetricsReport::new("quality"));
    let mut tracefile = args.trace.as_ref().map(|_| TraceFile::new());
    for exp in &args.experiments {
        let mut rows: Vec<Vec<QualityResult>> = Vec::new();
        for &spec in &args.queues {
            let mut row = Vec::new();
            for &t in &args.threads {
                let cfg = BenchConfig {
                    threads: t,
                    workload: exp.workload,
                    key_dist: exp.key_dist,
                    prefill: args.prefill,
                    stop: StopCondition::OpsPerThread(args.ops_per_thread),
                    reps: 1,
                    seed: args.seed,
                };
                let before = telemetry::snapshot();
                if tracefile.is_some() {
                    trace::start(trace::DEFAULT_CAPACITY);
                }
                let r = run_quality(spec, &cfg);
                if let Some(tf) = tracefile.as_mut() {
                    tf.push_cell(&format!("{} {} t{t}", exp.id, r.queue), t, trace::stop());
                }
                if let Some(report) = report.as_mut() {
                    report.push_quality_cell(exp.id, &r, &events_since(&before));
                }
                eprintln!(
                    "  [{}] {} @ {} threads: mean rank {:.1} (sd {:.1}, p50 {}, p99 {}, max {}), \
                     mean delay {:.1}, n={}",
                    exp.id,
                    r.queue,
                    t,
                    r.rank.mean,
                    r.rank.sd,
                    r.p50,
                    r.p99,
                    r.max,
                    r.delay.mean,
                    r.deletions
                );
                row.push(r);
            }
            rows.push(row);
        }
        let title = format!(
            "rank error — {} workload, {} keys ({})",
            exp.workload.name(),
            exp.key_dist.name(),
            exp.artifacts
        );
        println!("\n{}", format_quality_table(&title, &args.threads, &rows));
    }
    if let (Some(path), Some(report)) = (&args.metrics, &report) {
        if let Err(e) = report.write(path) {
            eprintln!("quality: cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!(
            "wrote {path} ({} cells, telemetry {})",
            report.len(),
            if telemetry::enabled() { "on" } else { "off" }
        );
    }
    if let (Some(path), Some(tf)) = (&args.trace, &tracefile) {
        if let Err(e) = tf.write(path) {
            eprintln!("quality: cannot write trace {path}: {e}");
            std::process::exit(1);
        }
        eprintln!(
            "wrote trace {path} (dropped records: {})",
            tf.dropped_total()
        );
    }
}
