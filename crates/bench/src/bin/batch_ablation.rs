//! Flat-combining A/B gate plus the batch-size ablation frontier.
//!
//! Part one interleaves single-rep rounds of each flat-combining queue
//! with its plain locked counterpart (`fc-globallock` vs `globallock`,
//! `fc-mound` vs `mound`) so both arms see the same machine state, and
//! reports the geometric-mean speedup across all rounds and pairs.
//! `--min-speedup` turns that into an exit gate for CI.
//!
//! Part two sweeps the insert-batch size m ∈ {1, 4, 16, 64} across the
//! batching families (`mq-sticky`, `klsm128`, `klsm4096`, `spray`,
//! `fc-globallock`, `fc-mound`), measuring throughput *and* rank error
//! for every cell — the throughput/quality frontier that shows what a
//! larger batch buys and what it costs.
//!
//! ```text
//! cargo run -p pq-bench --release --bin batch_ablation -- \
//!     --threads 4 --duration-ms 500 --min-speedup 1.1 \
//!     --out BENCH_flat_combining.json
//! ```

use std::time::Duration;

use harness::{run_throughput, run_quality, QueueSpec, ThroughputResult};
use workloads::config::StopCondition;
use workloads::{BenchConfig, KeyDistribution, Workload};

struct Args {
    threads: usize,
    prefill: usize,
    duration_ms: u64,
    ab_rounds: usize,
    ab_batch: usize,
    quality_ops: u64,
    seed: u64,
    min_speedup: f64,
    out: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        threads: 4,
        prefill: 50_000,
        duration_ms: 400,
        ab_rounds: 3,
        ab_batch: 16,
        quality_ops: 10_000,
        seed: 0x5EED,
        min_speedup: 0.0,
        out: "BENCH_flat_combining.json".to_owned(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let take = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            argv.get(*i)
                .cloned()
                .ok_or_else(|| format!("missing value after {}", argv[*i - 1]))
        };
        match argv[i].as_str() {
            "--threads" => args.threads = take(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--prefill" => args.prefill = take(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--duration-ms" => {
                args.duration_ms = take(&mut i)?.parse().map_err(|e| format!("{e}"))?
            }
            "--ab-rounds" => args.ab_rounds = take(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--ab-batch" => args.ab_batch = take(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--quality-ops" => {
                args.quality_ops = take(&mut i)?.parse().map_err(|e| format!("{e}"))?
            }
            "--seed" => args.seed = take(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--min-speedup" => {
                args.min_speedup = take(&mut i)?.parse().map_err(|e| format!("{e}"))?
            }
            "--out" => args.out = take(&mut i)?,
            other => return Err(format!("unknown flag '{other}'")),
        }
        i += 1;
    }
    if args.threads == 0 {
        return Err("--threads must be >= 1".into());
    }
    if args.ab_rounds == 0 {
        return Err("--ab-rounds must be >= 1".into());
    }
    Ok(args)
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn base_cfg(args: &Args) -> BenchConfig {
    BenchConfig {
        threads: args.threads,
        workload: Workload::Uniform,
        key_dist: KeyDistribution::uniform(1 << 20),
        prefill: args.prefill,
        stop: StopCondition::Duration(Duration::from_millis(args.duration_ms)),
        reps: 1,
        seed: args.seed,
    }
}

/// One interleaved A/B pair: alternate single-rep rounds of the fc arm
/// and the plain arm so cache/frequency drift hits both equally, and
/// return the per-round throughput ratios fc/plain.
fn ab_pair(fc: QueueSpec, plain: QueueSpec, args: &Args) -> Vec<f64> {
    let mut ratios = Vec::with_capacity(args.ab_rounds);
    for round in 0..args.ab_rounds {
        let mut cfg = base_cfg(args);
        cfg.seed = args.seed.wrapping_add(round as u64);
        let fc_r = run_throughput(fc, &cfg);
        let plain_r = run_throughput(plain, &cfg);
        let (f, p) = (fc_r.summary.mean, plain_r.summary.mean);
        eprintln!(
            "  round {round}: {} {:.3} MOps/s vs {} {:.3} MOps/s ({:.2}x)",
            fc.name(),
            fc_r.mops(),
            plain.name(),
            plain_r.mops(),
            if p > 0.0 { f / p } else { 0.0 },
        );
        if p > 0.0 && f > 0.0 {
            ratios.push(f / p);
        }
    }
    ratios
}

fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// A frontier row: family label plus the batch-parameterized spec.
type Family = (&'static str, fn(usize) -> QueueSpec);

struct Cell {
    family: &'static str,
    batch: usize,
    throughput: ThroughputResult,
    rank_mean: f64,
    rank_max: u64,
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("batch_ablation: {e}");
            std::process::exit(2);
        }
    };

    // --- Part one: interleaved A/B of fc vs the plain locked queue ---
    // The fc arm runs with its insert batching on (`--ab-batch`, 1 to
    // disable): buffered inserts skipping the lock entirely plus
    // combined deletes are the wrapper's deal, and the plain arm's
    // strict semantics stay the baseline.
    let pairs = [
        (QueueSpec::FcGlobalLock(args.ab_batch), QueueSpec::GlobalLock),
        (QueueSpec::FcMound(args.ab_batch), QueueSpec::Mound),
    ];
    let mut ab_json = Vec::new();
    let mut all_ratios = Vec::new();
    for (fc, plain) in pairs {
        eprintln!("A/B {} vs {} ({} threads)...", fc.name(), plain.name(), args.threads);
        let ratios = ab_pair(fc, plain, &args);
        let g = geomean(&ratios);
        ab_json.push(format!(
            "    {{\"fc\": \"{}\", \"plain\": \"{}\", \"rounds\": [{}], \"geomean\": {:.4}}}",
            json_escape(&fc.name()),
            json_escape(&plain.name()),
            ratios
                .iter()
                .map(|r| format!("{r:.4}"))
                .collect::<Vec<_>>()
                .join(", "),
            g,
        ));
        all_ratios.extend(ratios);
    }
    let ab_geomean = geomean(&all_ratios);
    println!("fc vs plain locked geomean speedup: {ab_geomean:.3}x");

    // --- Part two: batch-size ablation frontier ---
    let batches = [1usize, 4, 16, 64];
    let families: [Family; 6] = [
        ("mq-sticky", |m| QueueSpec::MqSticky(4, 8, m)),
        ("klsm128", |m| QueueSpec::KlsmBatch(128, m)),
        ("klsm4096", |m| QueueSpec::KlsmBatch(4096, m)),
        ("spray", |m| QueueSpec::SprayBatch(m)),
        ("fc-globallock", |m| QueueSpec::FcGlobalLock(m)),
        ("fc-mound", |m| QueueSpec::FcMound(m)),
    ];
    let mut cells: Vec<Cell> = Vec::new();
    for (family, mk) in families {
        for m in batches {
            let spec = mk(m);
            eprintln!("cell {} m={m} ({})...", family, spec.name());
            let tput = run_throughput(spec, &base_cfg(&args));
            let mut qcfg = base_cfg(&args);
            qcfg.stop = StopCondition::OpsPerThread(args.quality_ops);
            let quality = run_quality(spec, &qcfg);
            eprintln!(
                "  {:.3} MOps/s, rank mean {:.2} max {}",
                tput.mops(),
                quality.rank.mean,
                quality.max,
            );
            cells.push(Cell {
                family,
                batch: m,
                throughput: tput,
                rank_mean: quality.rank.mean,
                rank_max: quality.max,
            });
        }
    }
    let cell_json = cells
        .iter()
        .map(|c| {
            format!(
                "    {{\"family\": \"{}\", \"batch\": {}, \"queue\": \"{}\", \
                 \"mops\": {:.4}, \"ops_per_sec_ci95\": {:.1}, \
                 \"rank_mean\": {:.3}, \"rank_max\": {}}}",
                c.family,
                c.batch,
                json_escape(&c.throughput.queue),
                c.throughput.mops(),
                c.throughput.summary.ci95,
                c.rank_mean,
                c.rank_max,
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");

    let json = format!(
        "{{\n  \"meta\": {},\n  \"threads\": {},\n  \"prefill\": {},\n  \"duration_ms\": {},\n  \
         \"ab_rounds\": {},\n  \"ab_batch\": {},\n  \"quality_ops\": {},\n  \"seed\": {},\n  \
         \"ab_pairs\": [\n{}\n  ],\n  \"ab_geomean_speedup\": {:.4},\n  \
         \"frontier\": [\n{cell_json}\n  ]\n}}\n",
        pq_bench::run_metadata_json(args.threads),
        args.threads,
        args.prefill,
        args.duration_ms,
        args.ab_rounds,
        args.ab_batch,
        args.quality_ops,
        args.seed,
        ab_json.join(",\n"),
        ab_geomean,
    );
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("batch_ablation: cannot write {}: {e}", args.out);
        std::process::exit(1);
    }
    println!("wrote {}", args.out);

    if args.min_speedup > 0.0 && ab_geomean < args.min_speedup {
        eprintln!(
            "batch_ablation: fc geomean speedup {ab_geomean:.3}x below the \
             --min-speedup {:.3}x gate",
            args.min_speedup
        );
        std::process::exit(1);
    }
}
