//! Per-operation latency measurement (appendix F's throughput/latency
//! switch): prescribe an operation count per thread and report insert
//! and delete latency percentiles for every queue.
//!
//! ```text
//! cargo run -p pq-bench --release --bin latency -- --threads 4
//! ```

use harness::{experiments, run_latency, QueueSpec};
use pq_bench::{events_since, MetricsReport, TraceFile};
use pq_traits::{telemetry, trace};
use workloads::config::StopCondition;
use workloads::BenchConfig;

fn main() {
    let mut threads = 2usize;
    let mut ops_per_thread = 20_000u64;
    let mut prefill = 100_000usize;
    let mut exp_id = "fig4a".to_owned();
    let mut queues = QueueSpec::paper_set();
    let mut metrics: Option<String> = None;
    let mut trace_path: Option<String> = None;

    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let take = |i: &mut usize| -> String {
            *i += 1;
            argv.get(*i).cloned().unwrap_or_else(|| {
                eprintln!("missing value after {}", argv[*i - 1]);
                std::process::exit(2);
            })
        };
        match argv[i].as_str() {
            "--threads" => threads = take(&mut i).parse().expect("thread count"),
            "--ops-per-thread" => ops_per_thread = take(&mut i).parse().expect("op count"),
            "--prefill" => prefill = take(&mut i).parse().expect("prefill"),
            "--experiment" => exp_id = take(&mut i),
            "--queues" => {
                queues = take(&mut i)
                    .split(',')
                    .map(|s| QueueSpec::parse(s.trim()).expect("queue name"))
                    .collect();
            }
            "--metrics" => metrics = Some(take(&mut i)),
            "--trace" => trace_path = Some(take(&mut i)),
            "--help" | "-h" => {
                println!(
                    "usage: latency [--threads N] [--ops-per-thread N] [--prefill N] \
                     [--experiment <id>] [--queues a,b,c] [--metrics out.json] \
                     [--trace out.trace.json]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument '{other}'");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if trace_path.is_some() && !trace::compiled() {
        eprintln!("error: --trace requires building with --features trace");
        std::process::exit(2);
    }

    let exp = experiments::by_id(&exp_id).expect("known experiment");
    println!(
        "# per-op latency [ns] — {} workload, {} keys, {} threads, {} ops/thread\n",
        exp.workload.name(),
        exp.key_dist.name(),
        threads,
        ops_per_thread
    );
    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>12} | {:>10} {:>10} {:>10} {:>12}",
        "queue", "ins p50", "ins p90", "ins p99", "ins max", "del p50", "del p90", "del p99",
        "del max"
    );
    let mut report = metrics.as_ref().map(|_| MetricsReport::new("latency"));
    let mut tracefile = trace_path.as_ref().map(|_| TraceFile::new());
    for spec in queues {
        let cfg = BenchConfig {
            threads,
            workload: exp.workload,
            key_dist: exp.key_dist,
            prefill,
            stop: StopCondition::OpsPerThread(ops_per_thread),
            reps: 1,
            seed: 0x1A7,
        };
        let before = telemetry::snapshot();
        if tracefile.is_some() {
            trace::start(trace::DEFAULT_CAPACITY);
        }
        let r = run_latency(spec, &cfg);
        if let Some(tf) = tracefile.as_mut() {
            tf.push_cell(&format!("{exp_id} {} t{threads}", r.queue), threads, trace::stop());
        }
        if let Some(report) = report.as_mut() {
            report.push_latency_cell(&exp_id, &r, &events_since(&before));
        }
        println!(
            "{:<12} {:>10} {:>10} {:>10} {:>12} | {:>10} {:>10} {:>10} {:>12}",
            r.queue,
            r.insert.p50,
            r.insert.p90,
            r.insert.p99,
            r.insert.max,
            r.delete.p50,
            r.delete.p90,
            r.delete.p99,
            r.delete.max
        );
    }
    if let (Some(path), Some(report)) = (&metrics, &report) {
        if let Err(e) = report.write(path) {
            eprintln!("latency: cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!(
            "wrote {path} ({} cells, telemetry {})",
            report.len(),
            if telemetry::enabled() { "on" } else { "off" }
        );
    }
    if let (Some(path), Some(tf)) = (&trace_path, &tracefile) {
        if let Err(e) = tf.write(path) {
            eprintln!("latency: cannot write trace {path}: {e}");
            std::process::exit(1);
        }
        eprintln!(
            "wrote trace {path} (dropped records: {})",
            tf.dropped_total()
        );
    }
}
