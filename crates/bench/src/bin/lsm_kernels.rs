//! LSM kernel microbenchmark: legacy vs. pooled vs. branch-free vs.
//! SIMD-dispatched kernels.
//!
//! Five sequential arms measure the raw insert/delete-min kernel cost
//! on one thread:
//!
//! * `legacy` — the pre-pool kernels ([`lsm::legacy::LegacyLsm`]):
//!   allocating merges, copying compaction, `remove`/`insert` shifting.
//! * `pool-off` — the current kernels with recycling disabled
//!   (isolates the kernel work from buffer reuse).
//! * `kernels-off` — the block pool with the branch-free kernel tiers
//!   disabled ([`lsm::Lsm::with_kernels_disabled`]): scalar cursor
//!   merges and the repeated-pairwise drain, i.e. the PR 4 pooled
//!   baseline.
//! * `simd-off` — the scalar kernel tier pinned
//!   ([`lsm::Lsm::with_simd_disabled`]): the frozen PR 5 branch-free
//!   dispatch with none of the SIMD kernels.
//! * `pool-on` — everything on ([`lsm::Lsm::new`]): block pool,
//!   branch-free kernels, and whatever SIMD tier
//!   [`lsm::active_tier`] detected (recorded in the JSON `meta` as
//!   `simd_tier`).
//!
//! A concurrent section then runs the LSM-family queues (dlsm,
//! klsm128/256/4096, plus batched `-b16` variants of dlsm and klsm128)
//! through the standard harness at `--threads` threads on the uniform
//! workload, so pre/post-PR throughput can be compared from the JSON
//! alone. Everything is written to `BENCH_simd_kernels.json`, including
//! the pooled arm's hit rate and two geomean speedups; `--min-speedup`
//! gates pool-on/legacy and `--min-kernel-speedup` gates
//! pool-on/kernels-off as exit codes. `scripts/bench_smoke.sh` wraps
//! this binary.
//!
//! ```text
//! cargo run -p pq-bench --release --bin lsm_kernels -- \
//!     --threads 4 --duration-ms 1000 --out BENCH_simd_kernels.json
//! ```

use std::time::{Duration, Instant};

use harness::{experiments, run_throughput, QueueSpec, ThroughputResult};
use lsm::legacy::LegacyLsm;
use lsm::Lsm;
use pq_bench::{run_metadata_json, TraceFile};
use pq_traits::{trace, SequentialPq};
use workloads::config::StopCondition;
use workloads::BenchConfig;

struct Args {
    threads: usize,
    size: usize,
    ops: usize,
    prefill: usize,
    duration_ms: u64,
    reps: usize,
    seed: u64,
    min_speedup: f64,
    min_kernel_speedup: f64,
    min_simd_speedup: f64,
    out: String,
    trace: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        threads: 4,
        size: 8192,
        ops: 2_000_000,
        prefill: 100_000,
        duration_ms: 1_000,
        reps: 3,
        seed: 0x5EED,
        min_speedup: 0.0,
        min_kernel_speedup: 0.0,
        min_simd_speedup: 0.0,
        out: "BENCH_simd_kernels.json".to_owned(),
        trace: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let take = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            argv.get(*i)
                .cloned()
                .ok_or_else(|| format!("missing value after {}", argv[*i - 1]))
        };
        match argv[i].as_str() {
            "--threads" => args.threads = take(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--size" => args.size = take(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--ops" => args.ops = take(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--prefill" => args.prefill = take(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--duration-ms" => {
                args.duration_ms = take(&mut i)?.parse().map_err(|e| format!("{e}"))?
            }
            "--reps" => args.reps = take(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => args.seed = take(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--min-speedup" => {
                args.min_speedup = take(&mut i)?.parse().map_err(|e| format!("{e}"))?
            }
            "--min-kernel-speedup" => {
                args.min_kernel_speedup = take(&mut i)?.parse().map_err(|e| format!("{e}"))?
            }
            "--min-simd-speedup" => {
                args.min_simd_speedup = take(&mut i)?.parse().map_err(|e| format!("{e}"))?
            }
            "--out" => args.out = take(&mut i)?,
            "--trace" => args.trace = Some(take(&mut i)?),
            other => return Err(format!("unknown flag '{other}'")),
        }
        i += 1;
    }
    if args.threads == 0 || args.size == 0 || args.ops == 0 {
        return Err("--threads/--size/--ops must be >= 1".into());
    }
    if args.trace.is_some() && !trace::compiled() {
        return Err("--trace requires building with --features trace".into());
    }
    Ok(args)
}

/// Deterministic splitmix64 stream for uniform keys.
fn next_key(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Rounds the sequential arms are interleaved over. Clock drift
/// (frequency scaling, noisy neighbours) hits every arm roughly
/// equally instead of whichever arm happened to run during the dip.
const SEQ_ROUNDS: usize = 16;

/// Number of sequential arms (legacy, pool-off, kernels-off,
/// simd-off, pool-on).
const ARMS: usize = 5;

/// Prefill to `size` and run one untimed warmup pass so the arm starts
/// from a settled block shape (and, for the pooled arms, a primed pool).
fn prep_seq<Q: SequentialPq>(q: &mut Q, size: usize, rng: &mut u64) {
    for _ in 0..size {
        q.insert(next_key(rng), 0);
    }
    for _ in 0..size {
        q.insert(next_key(rng), 0);
        q.delete_min();
    }
}

/// One timed chunk of insert/delete-min pairs at constant size.
fn chunk_seq<Q: SequentialPq>(q: &mut Q, pairs: usize, rng: &mut u64) -> Duration {
    let start = Instant::now();
    for _ in 0..pairs {
        q.insert(next_key(rng), 0);
        std::hint::black_box(q.delete_min());
    }
    start.elapsed()
}

/// One timed sawtooth chunk: grow by `burst` inserts, then drain `burst`
/// delete-mins, repeated until `pairs` pairs have run. Exercises the
/// deep cascade merges on the way up and the shrink/compact path on the
/// way down — the kernels a constant-size pair stream barely touches.
fn chunk_sawtooth<Q: SequentialPq>(
    q: &mut Q,
    pairs: usize,
    burst: usize,
    rng: &mut u64,
) -> Duration {
    let start = Instant::now();
    let mut left = pairs;
    while left > 0 {
        let b = burst.min(left);
        for _ in 0..b {
            q.insert(next_key(rng), 0);
        }
        for _ in 0..b {
            std::hint::black_box(q.delete_min());
        }
        left -= b;
    }
    start.elapsed()
}

/// Measured rates for the five sequential arms (legacy, pool-off,
/// kernels-off, simd-off, pool-on) on both workload shapes, in
/// pairs/sec.
struct SeqRates {
    /// Constant-size insert/delete-min pair stream.
    pairs: [f64; ARMS],
    /// Sawtooth: grow-by-`size` then drain-by-`size` bursts.
    sawtooth: [f64; ARMS],
}

impl SeqRates {
    /// Full-stack (pool-on vs. legacy) speedup on one workload.
    fn speedup_of(rates: &[f64; ARMS]) -> f64 {
        if rates[0] > 0.0 {
            rates[4] / rates[0]
        } else {
            0.0
        }
    }

    /// Branch-free kernel speedup (pool-on vs. kernels-off, i.e. vs.
    /// the PR 4 pooled baseline) on one workload.
    fn kernel_speedup_of(rates: &[f64; ARMS]) -> f64 {
        if rates[2] > 0.0 {
            rates[4] / rates[2]
        } else {
            0.0
        }
    }

    /// SIMD production-dispatch speedup (pool-on, i.e. the detected
    /// tier, vs. simd-off, the frozen PR 5 scalar-tier dispatch) on
    /// one workload.
    fn simd_speedup_of(rates: &[f64; ARMS]) -> f64 {
        if rates[3] > 0.0 {
            rates[4] / rates[3]
        } else {
            0.0
        }
    }

    /// Headline full-stack speedup: geometric mean over the two
    /// workload shapes, weighting steady-state and churn equally.
    fn speedup(&self) -> f64 {
        (Self::speedup_of(&self.pairs) * Self::speedup_of(&self.sawtooth)).sqrt()
    }

    /// Headline branch-free kernel speedup over the pooled baseline
    /// (geomean of steady and sawtooth).
    fn kernel_speedup(&self) -> f64 {
        (Self::kernel_speedup_of(&self.pairs) * Self::kernel_speedup_of(&self.sawtooth)).sqrt()
    }

    /// Headline SIMD dispatch speedup over the scalar-tier arm
    /// (geomean of steady and sawtooth). With the measured host's
    /// production dispatch this is a parity check — the A/B kept
    /// every production path scalar — so the gate is a regression
    /// floor, not a win threshold.
    fn simd_speedup(&self) -> f64 {
        (Self::simd_speedup_of(&self.pairs) * Self::simd_speedup_of(&self.sawtooth)).sqrt()
    }
}

/// Measure all five sequential arms interleaved; returns per-workload
/// rates plus the pool-on arm's final pool stats.
fn bench_seq_arms(size: usize, ops: usize, seed: u64) -> (SeqRates, lsm::PoolStats) {
    let mut legacy = LegacyLsm::new();
    let mut pool_off = Lsm::with_pool_disabled();
    let mut kernels_off = Lsm::with_kernels_disabled();
    let mut simd_off = Lsm::with_simd_disabled();
    let mut pool_on = Lsm::new();
    // Identical key streams per arm: independent queues, same workload.
    let (mut r0, mut r1, mut r2, mut r3, mut r4) = (seed, seed, seed, seed, seed);
    prep_seq(&mut legacy, size, &mut r0);
    prep_seq(&mut pool_off, size, &mut r1);
    prep_seq(&mut kernels_off, size, &mut r2);
    prep_seq(&mut simd_off, size, &mut r3);
    prep_seq(&mut pool_on, size, &mut r4);
    let chunk = (ops / SEQ_ROUNDS).max(1);
    // Per-arm *minimum* chunk time: on a shared core, each arm's rate
    // is taken from its cleanest window, so co-tenant steal time and
    // frequency dips don't land on whichever arm was running during
    // them. Interleaving gives every arm the same shot at clean slots.
    let mut best_pairs = [Duration::MAX; ARMS];
    let mut best_saw = [Duration::MAX; ARMS];
    for _ in 0..SEQ_ROUNDS {
        best_pairs[0] = best_pairs[0].min(chunk_seq(&mut legacy, chunk, &mut r0));
        best_pairs[1] = best_pairs[1].min(chunk_seq(&mut pool_off, chunk, &mut r1));
        best_pairs[2] = best_pairs[2].min(chunk_seq(&mut kernels_off, chunk, &mut r2));
        best_pairs[3] = best_pairs[3].min(chunk_seq(&mut simd_off, chunk, &mut r3));
        best_pairs[4] = best_pairs[4].min(chunk_seq(&mut pool_on, chunk, &mut r4));
        best_saw[0] = best_saw[0].min(chunk_sawtooth(&mut legacy, chunk, size, &mut r0));
        best_saw[1] = best_saw[1].min(chunk_sawtooth(&mut pool_off, chunk, size, &mut r1));
        best_saw[2] = best_saw[2].min(chunk_sawtooth(&mut kernels_off, chunk, size, &mut r2));
        best_saw[3] = best_saw[3].min(chunk_sawtooth(&mut simd_off, chunk, size, &mut r3));
        best_saw[4] = best_saw[4].min(chunk_sawtooth(&mut pool_on, chunk, size, &mut r4));
    }
    let rates = SeqRates {
        pairs: std::array::from_fn(|i| chunk as f64 / best_pairs[i].as_secs_f64()),
        sawtooth: std::array::from_fn(|i| chunk as f64 / best_saw[i].as_secs_f64()),
    };
    (rates, pool_on.pool_stats())
}

fn result_json(r: &ThroughputResult, indent: &str) -> String {
    let reps = r
        .per_rep_ops_per_sec
        .iter()
        .map(|v| format!("{v:.1}"))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{indent}{{ \"queue\": \"{}\", \"threads\": {}, \"mops_mean\": {:.4}, \
         \"ops_per_sec_ci95\": {:.1}, \"per_rep_ops_per_sec\": [{reps}] }}",
        r.queue, r.threads, r.mops(), r.summary.ci95,
    )
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("lsm_kernels: {e}");
            std::process::exit(2);
        }
    };

    eprintln!(
        "sequential kernels: size={} ops={} ({} interleaved rounds, uniform keys)",
        args.size, args.ops, SEQ_ROUNDS
    );
    let (rates, pool_stats) = bench_seq_arms(args.size, args.ops, args.seed);
    for (name, idx) in [
        ("legacy     ", 0),
        ("pool-off   ", 1),
        ("kernels-off", 2),
        ("simd-off   ", 3),
        ("pool-on    ", 4),
    ] {
        eprintln!(
            "  {name}  steady {:.3} M pairs/s | sawtooth {:.3} M pairs/s",
            rates.pairs[idx] / 1e6,
            rates.sawtooth[idx] / 1e6,
        );
    }
    eprintln!("  pool hit rate {:.4}", pool_stats.hit_rate());
    let speedup = rates.speedup();
    let kernel_speedup = rates.kernel_speedup();
    let simd_speedup = rates.simd_speedup();
    eprintln!(
        "  speedup pool-on/legacy: steady {:.3}x, sawtooth {:.3}x, geomean {speedup:.3}x",
        SeqRates::speedup_of(&rates.pairs),
        SeqRates::speedup_of(&rates.sawtooth),
    );
    eprintln!(
        "  speedup pool-on/kernels-off: steady {:.3}x, sawtooth {:.3}x, geomean {kernel_speedup:.3}x",
        SeqRates::kernel_speedup_of(&rates.pairs),
        SeqRates::kernel_speedup_of(&rates.sawtooth),
    );
    eprintln!(
        "  speedup pool-on/simd-off ({} tier): steady {:.3}x, sawtooth {:.3}x, geomean {simd_speedup:.3}x",
        lsm::active_tier().name(),
        SeqRates::simd_speedup_of(&rates.pairs),
        SeqRates::simd_speedup_of(&rates.sawtooth),
    );

    // Concurrent LSM-family cells on the uniform workload, for
    // pre/post-PR comparison at the JSON level. The batched variants
    // exercise the PqHandle::flush() insert-buffering path.
    let exp = experiments::by_id("fig4a").expect("uniform experiment registered");
    let cfg = BenchConfig {
        threads: args.threads,
        workload: exp.workload,
        key_dist: exp.key_dist,
        prefill: args.prefill,
        stop: StopCondition::Duration(Duration::from_millis(args.duration_ms)),
        reps: args.reps,
        seed: args.seed,
    };
    let specs = [
        QueueSpec::Dlsm,
        QueueSpec::DlsmBatch(16),
        QueueSpec::Klsm(128),
        QueueSpec::KlsmBatch(128, 16),
        QueueSpec::Klsm(256),
        QueueSpec::Klsm(4096),
    ];
    let mut tracefile = args.trace.as_ref().map(|_| TraceFile::new());
    let mut results: Vec<ThroughputResult> = Vec::new();
    for spec in specs {
        eprintln!("running {} ({} threads)...", spec.name(), args.threads);
        if tracefile.is_some() {
            trace::start(trace::DEFAULT_CAPACITY);
        }
        let r = run_throughput(spec, &cfg);
        if let Some(tf) = tracefile.as_mut() {
            tf.push_cell(
                &format!("lsm_kernels {} t{}", r.queue, args.threads),
                args.threads,
                trace::stop(),
            );
        }
        eprintln!("  {:.3} MOps/s", r.mops());
        results.push(r);
    }
    if let (Some(path), Some(tf)) = (&args.trace, &tracefile) {
        if let Err(e) = tf.write(path) {
            eprintln!("lsm_kernels: cannot write trace {path}: {e}");
            std::process::exit(1);
        }
        eprintln!(
            "wrote trace {path} (dropped records: {})",
            tf.dropped_total()
        );
    }

    let body = results
        .iter()
        .map(|r| result_json(r, "    "))
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"meta\": {},\n  \"size\": {},\n  \"ops\": {},\n  \"seed\": {},\n  \
         \"steady_pairs_per_sec\": {{ \"legacy\": {:.1}, \"pool_off\": {:.1}, \
         \"kernels_off\": {:.1}, \"simd_off\": {:.1}, \"pool_on\": {:.1} }},\n  \
         \"sawtooth_pairs_per_sec\": {{ \"legacy\": {:.1}, \"pool_off\": {:.1}, \
         \"kernels_off\": {:.1}, \"simd_off\": {:.1}, \"pool_on\": {:.1} }},\n  \
         \"steady_speedup\": {:.4},\n  \"sawtooth_speedup\": {:.4},\n  \
         \"pool_on_speedup_vs_legacy\": {:.4},\n  \
         \"kernel_steady_speedup\": {:.4},\n  \"kernel_sawtooth_speedup\": {:.4},\n  \
         \"kernel_speedup_vs_pooled\": {:.4},\n  \
         \"simd_steady_speedup\": {:.4},\n  \"simd_sawtooth_speedup\": {:.4},\n  \
         \"simd_speedup_vs_scalar_tier\": {:.4},\n  \
         \"pool_hits\": {},\n  \"pool_misses\": {},\n  \"pool_hit_rate\": {:.6},\n  \
         \"pool_recycled_bytes\": {},\n  \"threads\": {},\n  \"prefill\": {},\n  \
         \"duration_ms\": {},\n  \"reps\": {},\n  \"concurrent\": [\n{body}\n  ]\n}}\n",
        run_metadata_json(args.threads),
        args.size,
        args.ops,
        args.seed,
        rates.pairs[0],
        rates.pairs[1],
        rates.pairs[2],
        rates.pairs[3],
        rates.pairs[4],
        rates.sawtooth[0],
        rates.sawtooth[1],
        rates.sawtooth[2],
        rates.sawtooth[3],
        rates.sawtooth[4],
        SeqRates::speedup_of(&rates.pairs),
        SeqRates::speedup_of(&rates.sawtooth),
        speedup,
        SeqRates::kernel_speedup_of(&rates.pairs),
        SeqRates::kernel_speedup_of(&rates.sawtooth),
        kernel_speedup,
        SeqRates::simd_speedup_of(&rates.pairs),
        SeqRates::simd_speedup_of(&rates.sawtooth),
        simd_speedup,
        pool_stats.hits,
        pool_stats.misses,
        pool_stats.hit_rate(),
        pool_stats.recycled_bytes,
        args.threads,
        args.prefill,
        args.duration_ms,
        args.reps,
    );
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("lsm_kernels: cannot write {}: {e}", args.out);
        std::process::exit(1);
    }
    println!(
        "wrote {} — pooled kernels {speedup:.2}x vs legacy, branch-free tiers \
         {kernel_speedup:.2}x vs pooled baseline, {} tier {simd_speedup:.2}x vs \
         scalar tier (pool hit rate {:.4})",
        args.out,
        lsm::active_tier().name(),
        pool_stats.hit_rate(),
    );
    let mut failed = false;
    if args.min_speedup > 0.0 && speedup < args.min_speedup {
        eprintln!(
            "lsm_kernels: FAIL — pool-on/legacy speedup {speedup:.3}x below required {:.3}x",
            args.min_speedup
        );
        failed = true;
    }
    if args.min_kernel_speedup > 0.0 && kernel_speedup < args.min_kernel_speedup {
        eprintln!(
            "lsm_kernels: FAIL — kernel speedup {kernel_speedup:.3}x below required {:.3}x",
            args.min_kernel_speedup
        );
        failed = true;
    }
    if args.min_simd_speedup > 0.0 && simd_speedup < args.min_simd_speedup {
        eprintln!(
            "lsm_kernels: FAIL — SIMD dispatch speedup {simd_speedup:.3}x below required {:.3}x",
            args.min_simd_speedup
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
