//! Quick MultiQueue-vs-mq-sticky smoke benchmark.
//!
//! Runs the stickiness/buffering ablation grid (plain `multiqueue` plus
//! `mq-sticky` with s ∈ {1, 8, 64} × m ∈ {1, 16}) on the uniform
//! workload and writes a machine-readable summary to
//! `BENCH_multiqueue.json`, including the best sticky configuration's
//! speedup over the plain MultiQueue. `scripts/bench_smoke.sh` wraps
//! this binary.
//!
//! ```text
//! cargo run -p pq-bench --release --bin mq_smoke -- \
//!     --threads 4 --duration-ms 1000 --out BENCH_multiqueue.json
//! ```

use std::time::Duration;

use harness::{experiments, run_throughput, QueueSpec, ThroughputResult};
use workloads::config::StopCondition;
use workloads::BenchConfig;

struct Args {
    threads: usize,
    prefill: usize,
    duration_ms: u64,
    reps: usize,
    seed: u64,
    out: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        threads: 4,
        prefill: 100_000,
        duration_ms: 1_000,
        reps: 3,
        seed: 0x5EED,
        out: "BENCH_multiqueue.json".to_owned(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let take = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            argv.get(*i)
                .cloned()
                .ok_or_else(|| format!("missing value after {}", argv[*i - 1]))
        };
        match argv[i].as_str() {
            "--threads" => args.threads = take(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--prefill" => args.prefill = take(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--duration-ms" => {
                args.duration_ms = take(&mut i)?.parse().map_err(|e| format!("{e}"))?
            }
            "--reps" => args.reps = take(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => args.seed = take(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--out" => args.out = take(&mut i)?,
            other => return Err(format!("unknown flag '{other}'")),
        }
        i += 1;
    }
    if args.threads == 0 {
        return Err("--threads must be >= 1".into());
    }
    Ok(args)
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn result_json(r: &ThroughputResult, indent: &str) -> String {
    let reps = r
        .per_rep_ops_per_sec
        .iter()
        .map(|v| format!("{v:.1}"))
        .collect::<Vec<_>>()
        .join(", ");
    let fair = r
        .fairness_per_rep()
        .iter()
        .map(|v| format!("{v:.4}"))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{indent}{{\n\
         {indent}  \"queue\": \"{}\",\n\
         {indent}  \"threads\": {},\n\
         {indent}  \"mops_mean\": {:.4},\n\
         {indent}  \"ops_per_sec_ci95\": {:.1},\n\
         {indent}  \"per_rep_ops_per_sec\": [{reps}],\n\
         {indent}  \"fairness_per_rep\": [{fair}]\n\
         {indent}}}",
        json_escape(&r.queue),
        r.threads,
        r.mops(),
        r.summary.ci95,
    )
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("mq_smoke: {e}");
            std::process::exit(2);
        }
    };
    let exp = experiments::by_id("fig4a").expect("uniform experiment registered");
    let cfg = BenchConfig {
        threads: args.threads,
        workload: exp.workload,
        key_dist: exp.key_dist,
        prefill: args.prefill,
        stop: StopCondition::Duration(Duration::from_millis(args.duration_ms)),
        reps: args.reps,
        seed: args.seed,
    };

    let mut results: Vec<ThroughputResult> = Vec::new();
    for spec in QueueSpec::mq_sticky_ablation_set() {
        eprintln!("running {} ({} threads)...", spec.name(), args.threads);
        let r = run_throughput(spec, &cfg);
        eprintln!("  {:.3} MOps/s", r.mops());
        results.push(r);
    }

    let plain = results
        .iter()
        .find(|r| r.queue == "multiqueue")
        .expect("plain multiqueue in ablation set");
    let best_sticky = results
        .iter()
        .filter(|r| r.queue.starts_with("mq-sticky"))
        .max_by(|a, b| a.summary.mean.total_cmp(&b.summary.mean))
        .expect("sticky configs in ablation set");
    let speedup = if plain.summary.mean > 0.0 {
        best_sticky.summary.mean / plain.summary.mean
    } else {
        0.0
    };

    let body = results
        .iter()
        .map(|r| result_json(r, "    "))
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"meta\": {},\n  \"experiment\": \"fig4a\",\n  \"threads\": {},\n  \"prefill\": {},\n  \
         \"duration_ms\": {},\n  \"reps\": {},\n  \"seed\": {},\n  \"results\": [\n{body}\n  ],\n  \
         \"plain_mops\": {:.4},\n  \"best_sticky\": \"{}\",\n  \"best_sticky_mops\": {:.4},\n  \
         \"best_sticky_speedup\": {:.3}\n}}\n",
        pq_bench::run_metadata_json(args.threads),
        args.threads,
        args.prefill,
        args.duration_ms,
        args.reps,
        args.seed,
        plain.mops(),
        json_escape(&best_sticky.queue),
        best_sticky.mops(),
        speedup,
    );
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("mq_smoke: cannot write {}: {e}", args.out);
        std::process::exit(1);
    }
    println!(
        "wrote {} — best sticky {} at {:.3} MOps/s vs plain {:.3} MOps/s ({speedup:.2}x)",
        args.out,
        best_sticky.queue,
        best_sticky.mops(),
        plain.mops(),
    );
}
