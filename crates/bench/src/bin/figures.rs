//! Regenerate the paper's throughput figures.
//!
//! Each figure is a (workload × key distribution) cell swept over thread
//! counts with one series per queue. Defaults are scaled so `--all`
//! completes in minutes on a laptop; pass `--prefill 1000000
//! --duration-ms 10000 --reps 10 --threads 1,2,...` for paper-scale runs.
//!
//! ```text
//! cargo run -p pq-bench --release --bin figures -- --experiment fig4a
//! cargo run -p pq-bench --release --bin figures -- --all
//! ```

use std::time::Duration;

use harness::{experiments, run_latency, run_throughput, QueueSpec, ThroughputResult};
use pq_bench::{
    events_since, format_throughput_table, render_chart, render_csv, MetricsReport, Series,
    TraceFile,
};
use pq_traits::{telemetry, trace};
use workloads::config::StopCondition;
use workloads::BenchConfig;

struct Args {
    experiments: Vec<experiments::Experiment>,
    threads: Vec<usize>,
    queues: Vec<QueueSpec>,
    prefill: usize,
    duration_ms: u64,
    reps: usize,
    seed: u64,
    chart: bool,
    csv: bool,
    metrics: Option<String>,
    trace: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut experiments_sel: Option<Vec<experiments::Experiment>> = None;
    let mut threads = vec![1, 2, 4, 8];
    let mut queues = QueueSpec::paper_set();
    let mut prefill = 100_000usize;
    let mut duration_ms = 150u64;
    let mut reps = 3usize;
    let mut seed = 0x5EEDu64;
    let mut chart = false;
    let mut csv = false;
    let mut metrics: Option<String> = None;
    let mut trace_path: Option<String> = None;

    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let take = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            argv.get(*i)
                .cloned()
                .ok_or_else(|| format!("missing value after {}", argv[*i - 1]))
        };
        match argv[i].as_str() {
            "--experiment" => {
                let id = take(&mut i)?;
                let e = experiments::by_id(&id).ok_or(format!("unknown experiment '{id}'"))?;
                experiments_sel.get_or_insert_with(Vec::new).push(e);
            }
            "--all" => experiments_sel = Some(experiments::all()),
            "--threads" => {
                threads = take(&mut i)?
                    .split(',')
                    .map(|s| s.trim().parse().map_err(|_| format!("bad thread count '{s}'")))
                    .collect::<Result<_, _>>()?;
            }
            "--queues" => {
                queues = take(&mut i)?
                    .split(',')
                    .map(|s| QueueSpec::parse(s.trim()).ok_or(format!("unknown queue '{s}'")))
                    .collect::<Result<_, _>>()?;
            }
            "--prefill" => prefill = take(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--duration-ms" => duration_ms = take(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--reps" => reps = take(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => seed = take(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--chart" => chart = true,
            "--csv" => csv = true,
            "--metrics" => metrics = Some(take(&mut i)?),
            "--trace" => trace_path = Some(take(&mut i)?),
            // Thread grids of the paper's four machines (physical cores,
            // then into hyperthreading where the machine has it).
            "--machine" => {
                threads = match take(&mut i)?.as_str() {
                    "mars" => vec![1, 2, 4, 8, 16],           // 8 cores, 2-way HT
                    "saturn" => vec![1, 2, 4, 8, 16, 32, 48], // 48 cores, no HT
                    "ceres" => vec![1, 2, 4, 8, 16, 32, 64, 128], // 64 cores, 8-way HT
                    "pluto" => vec![1, 2, 4, 8, 16, 32, 61, 122], // 61 cores, 4-way HT
                    other => return Err(format!("unknown machine '{other}'")),
                };
            }
            "--help" | "-h" => {
                println!(
                    "usage: figures [--experiment <id>]... [--all] [--threads 1,2,4,8] \
                     [--queues klsm128,linden,...] [--prefill N] [--duration-ms N] \
                     [--reps N] [--seed N] [--chart] [--csv] [--metrics out.json] \
                     [--trace out.trace.json]\n\
                     experiments: {}",
                    experiments::all()
                        .iter()
                        .map(|e| e.id)
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
        i += 1;
    }
    if trace_path.is_some() && !trace::compiled() {
        return Err("--trace requires building with --features trace".to_owned());
    }
    Ok(Args {
        experiments: experiments_sel.unwrap_or_else(|| vec![experiments::by_id("fig4a").unwrap()]),
        threads,
        queues,
        prefill,
        duration_ms,
        reps,
        seed,
        chart,
        csv,
        metrics,
        trace: trace_path,
    })
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let mut report = args.metrics.as_ref().map(|_| MetricsReport::new("figures"));
    let mut tracefile = args.trace.as_ref().map(|_| TraceFile::new());
    for exp in &args.experiments {
        let mut rows: Vec<Vec<ThroughputResult>> = Vec::new();
        for &spec in &args.queues {
            let mut row = Vec::new();
            for &t in &args.threads {
                let cfg = BenchConfig {
                    threads: t,
                    workload: exp.workload,
                    key_dist: exp.key_dist,
                    prefill: args.prefill,
                    stop: StopCondition::Duration(Duration::from_millis(args.duration_ms)),
                    reps: args.reps,
                    seed: args.seed,
                };
                let before = telemetry::snapshot();
                if tracefile.is_some() {
                    trace::start(trace::DEFAULT_CAPACITY);
                }
                let r = run_throughput(spec, &cfg);
                if let Some(tf) = tracefile.as_mut() {
                    tf.push_cell(&format!("{} {} t{t}", exp.id, r.queue), t, trace::stop());
                }
                eprintln!(
                    "  [{}] {} @ {} threads: {:.3} MOps/s",
                    exp.id,
                    r.queue,
                    t,
                    r.mops()
                );
                if let Some(w) = r.steady_state_warning() {
                    eprintln!("  warning: {w}");
                }
                if let Some(report) = report.as_mut() {
                    report.push_throughput_cell(exp.id, &r, &events_since(&before));
                }
                row.push(r);
            }
            rows.push(row);
        }
        // With --metrics, also profile per-op latency for each queue at
        // the largest thread count so one invocation yields counters,
        // time series and latency histograms in a single document.
        if let Some(report) = report.as_mut() {
            let t = args.threads.iter().copied().max().unwrap_or(1);
            for &spec in &args.queues {
                let cfg = BenchConfig {
                    threads: t,
                    workload: exp.workload,
                    key_dist: exp.key_dist,
                    prefill: args.prefill,
                    stop: StopCondition::OpsPerThread(10_000),
                    reps: 1,
                    seed: args.seed,
                };
                let before = telemetry::snapshot();
                if tracefile.is_some() {
                    trace::start(trace::DEFAULT_CAPACITY);
                }
                let r = run_latency(spec, &cfg);
                if let Some(tf) = tracefile.as_mut() {
                    tf.push_cell(
                        &format!("{} {} latency t{t}", exp.id, r.queue),
                        t,
                        trace::stop(),
                    );
                }
                eprintln!(
                    "  [{}] {} latency @ {} threads: insert p50 {}ns, delete p50 {}ns",
                    exp.id, r.queue, t, r.insert.p50, r.delete.p50
                );
                report.push_latency_cell(exp.id, &r, &events_since(&before));
            }
        }
        let title = format!(
            "{} — {} workload, {} keys ({})",
            exp.id,
            exp.workload.name(),
            exp.key_dist.name(),
            exp.artifacts
        );
        if args.csv {
            let series: Vec<(String, Vec<(f64, f64)>)> = rows
                .iter()
                .map(|row| {
                    (
                        row.first().map(|r| r.queue.clone()).unwrap_or_default(),
                        row.iter()
                            .map(|r| (r.mops(), r.summary.ci95 / 1e6))
                            .collect(),
                    )
                })
                .collect();
            print!("{}", render_csv(exp.id, &args.threads, &series));
            continue;
        }
        println!("\n{}", format_throughput_table(&title, &args.threads, &rows));
        if args.chart {
            let series: Vec<Series> = rows
                .iter()
                .map(|row| Series {
                    name: row.first().map(|r| r.queue.clone()).unwrap_or_default(),
                    ys: row.iter().map(ThroughputResult::mops).collect(),
                })
                .collect();
            println!("{}", render_chart(&title, &args.threads, &series, 16));
        }
    }
    if let (Some(path), Some(report)) = (&args.metrics, &report) {
        if let Err(e) = report.write(path) {
            eprintln!("figures: cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!(
            "wrote {path} ({} cells, telemetry {})",
            report.len(),
            if telemetry::enabled() { "on" } else { "off" }
        );
    }
    if let (Some(path), Some(tf)) = (&args.trace, &tracefile) {
        if let Err(e) = tf.write(path) {
            eprintln!("figures: cannot write trace {path}: {e}");
            std::process::exit(1);
        }
        eprintln!(
            "wrote trace {path} (dropped records: {})",
            tf.dropped_total()
        );
    }
}
