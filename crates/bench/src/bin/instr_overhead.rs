//! A/B overhead check for the [`Instrumented`] wrapper.
//!
//! Runs the same uniform throughput workload twice — once on a plain
//! MultiQueue and once on the same queue wrapped in [`Instrumented`] —
//! and fails (exit 1) when the wrapper costs more than
//! `--max-overhead-pct` percent of throughput. With per-handle
//! cache-line-padded counter shards the wrapper should be nearly free;
//! this binary is the regression guard `scripts/bench_smoke.sh` runs in
//! CI.
//!
//! ```text
//! cargo run -p pq-bench --release --bin instr_overhead -- \
//!     --threads 4 --max-overhead-pct 5
//! ```

use std::time::Duration;

use harness::{experiments, run_throughput_with};
use pq_traits::Instrumented;
use workloads::config::StopCondition;
use workloads::BenchConfig;

type Mq = multiqueue_pq::MultiQueue<seqpq::BinaryHeap>;

struct Args {
    threads: usize,
    prefill: usize,
    duration_ms: u64,
    reps: usize,
    seed: u64,
    max_overhead_pct: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        threads: 4,
        prefill: 100_000,
        duration_ms: 300,
        reps: 3,
        seed: 0x5EED,
        max_overhead_pct: 5.0,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let take = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            argv.get(*i)
                .cloned()
                .ok_or_else(|| format!("missing value after {}", argv[*i - 1]))
        };
        match argv[i].as_str() {
            "--threads" => args.threads = take(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--prefill" => args.prefill = take(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--duration-ms" => {
                args.duration_ms = take(&mut i)?.parse().map_err(|e| format!("{e}"))?
            }
            "--reps" => args.reps = take(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => args.seed = take(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--max-overhead-pct" => {
                args.max_overhead_pct = take(&mut i)?.parse().map_err(|e| format!("{e}"))?
            }
            "--help" | "-h" => {
                println!(
                    "usage: instr_overhead [--threads N] [--prefill N] [--duration-ms N] \
                     [--reps N] [--seed N] [--max-overhead-pct F]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
        i += 1;
    }
    if args.threads == 0 {
        return Err("--threads must be >= 1".into());
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("instr_overhead: {e}");
            std::process::exit(2);
        }
    };
    let exp = experiments::by_id("fig4a").expect("uniform experiment registered");
    let cfg = BenchConfig {
        threads: args.threads,
        workload: exp.workload,
        key_dist: exp.key_dist,
        prefill: args.prefill,
        stop: StopCondition::Duration(Duration::from_millis(args.duration_ms)),
        reps: args.reps,
        seed: args.seed,
    };
    let subqueues = 4 * args.threads.max(1);

    eprintln!("running plain multiqueue ({} threads)...", args.threads);
    let plain = run_throughput_with(
        "multiqueue",
        || Mq::new(4, args.threads),
        &cfg,
    );
    eprintln!("  {:.3} MOps/s", plain.mops());
    eprintln!("running instrumented multiqueue ({} threads)...", args.threads);
    let wrapped = run_throughput_with(
        "instrumented-multiqueue",
        || Instrumented::new(Mq::new(4, args.threads)),
        &cfg,
    );
    eprintln!("  {:.3} MOps/s", wrapped.mops());

    let overhead_pct = if plain.summary.mean > 0.0 {
        (plain.summary.mean - wrapped.summary.mean) / plain.summary.mean * 100.0
    } else {
        0.0
    };
    println!(
        "plain {:.3} MOps/s ({subqueues} sub-queues), instrumented {:.3} MOps/s, \
         overhead {overhead_pct:.2}% (limit {:.2}%)",
        plain.mops(),
        wrapped.mops(),
        args.max_overhead_pct,
    );
    // Run-to-run noise makes the wrapped run occasionally *faster*;
    // only a positive gap beyond the limit is a failure.
    if overhead_pct > args.max_overhead_pct {
        eprintln!(
            "instr_overhead: FAIL — instrumentation costs {overhead_pct:.2}% > {:.2}%",
            args.max_overhead_pct
        );
        std::process::exit(1);
    }
    println!("instr_overhead: OK");
}
