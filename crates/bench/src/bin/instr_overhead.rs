//! A/B overhead check for the observability layers.
//!
//! Runs the same uniform throughput workload on a plain MultiQueue and
//! A/Bs two instrumentation layers against it:
//!
//! * the [`Instrumented`] wrapper (per-handle sharded op counters),
//!   gated at `--max-overhead-pct` percent of plain throughput;
//! * when built with `--features trace`, an arm with an active
//!   flight-recorder trace ([`pq_traits::trace`]), gated at
//!   `--max-trace-overhead-pct` percent — guarding the batch-span
//!   design against regressions that put clock reads or shared-line
//!   traffic in the hot loop.
//!
//! Fails (exit 1) when either layer exceeds its limit; this binary is
//! the regression guard `scripts/bench_smoke.sh` runs in CI.
//!
//! ```text
//! cargo run -p pq-bench --release --bin instr_overhead -- \
//!     --threads 4 --max-overhead-pct 5
//! ```

use std::time::Duration;

use harness::{experiments, run_throughput_with};
use pq_traits::{trace, Instrumented};
use workloads::config::StopCondition;
use workloads::BenchConfig;

type Mq = multiqueue_pq::MultiQueue<seqpq::BinaryHeap>;

struct Args {
    threads: usize,
    prefill: usize,
    duration_ms: u64,
    reps: usize,
    seed: u64,
    max_overhead_pct: f64,
    max_trace_overhead_pct: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        threads: 4,
        prefill: 100_000,
        duration_ms: 300,
        reps: 3,
        seed: 0x5EED,
        max_overhead_pct: 5.0,
        max_trace_overhead_pct: 5.0,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let take = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            argv.get(*i)
                .cloned()
                .ok_or_else(|| format!("missing value after {}", argv[*i - 1]))
        };
        match argv[i].as_str() {
            "--threads" => args.threads = take(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--prefill" => args.prefill = take(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--duration-ms" => {
                args.duration_ms = take(&mut i)?.parse().map_err(|e| format!("{e}"))?
            }
            "--reps" => args.reps = take(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => args.seed = take(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--max-overhead-pct" => {
                args.max_overhead_pct = take(&mut i)?.parse().map_err(|e| format!("{e}"))?
            }
            "--max-trace-overhead-pct" => {
                args.max_trace_overhead_pct = take(&mut i)?.parse().map_err(|e| format!("{e}"))?
            }
            "--help" | "-h" => {
                println!(
                    "usage: instr_overhead [--threads N] [--prefill N] [--duration-ms N] \
                     [--reps N] [--seed N] [--max-overhead-pct F] [--max-trace-overhead-pct F]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
        i += 1;
    }
    if args.threads == 0 {
        return Err("--threads must be >= 1".into());
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("instr_overhead: {e}");
            std::process::exit(2);
        }
    };
    let exp = experiments::by_id("fig4a").expect("uniform experiment registered");
    let cfg = BenchConfig {
        threads: args.threads,
        workload: exp.workload,
        key_dist: exp.key_dist,
        prefill: args.prefill,
        stop: StopCondition::Duration(Duration::from_millis(args.duration_ms)),
        reps: args.reps,
        seed: args.seed,
    };
    let subqueues = 4 * args.threads.max(1);

    eprintln!("running plain multiqueue ({} threads)...", args.threads);
    let plain = run_throughput_with(
        "multiqueue",
        || Mq::new(4, args.threads),
        &cfg,
    );
    eprintln!("  {:.3} MOps/s", plain.mops());
    eprintln!("running instrumented multiqueue ({} threads)...", args.threads);
    let wrapped = run_throughput_with(
        "instrumented-multiqueue",
        || Instrumented::new(Mq::new(4, args.threads)),
        &cfg,
    );
    eprintln!("  {:.3} MOps/s", wrapped.mops());

    let overhead_pct = if plain.summary.mean > 0.0 {
        (plain.summary.mean - wrapped.summary.mean) / plain.summary.mean * 100.0
    } else {
        0.0
    };
    println!(
        "plain {:.3} MOps/s ({subqueues} sub-queues), instrumented {:.3} MOps/s, \
         overhead {overhead_pct:.2}% (limit {:.2}%)",
        plain.mops(),
        wrapped.mops(),
        args.max_overhead_pct,
    );
    // Run-to-run noise makes the wrapped run occasionally *faster*;
    // only a positive gap beyond the limit is a failure.
    let mut failed = false;
    if overhead_pct > args.max_overhead_pct {
        eprintln!(
            "instr_overhead: FAIL — instrumentation costs {overhead_pct:.2}% > {:.2}%",
            args.max_overhead_pct
        );
        failed = true;
    }

    // Trace-on arm: same plain queue, but with the flight recorder
    // actively capturing batch spans during the run.
    if trace::compiled() {
        eprintln!("running traced multiqueue ({} threads)...", args.threads);
        trace::start(trace::DEFAULT_CAPACITY);
        let traced = run_throughput_with(
            "traced-multiqueue",
            || Mq::new(4, args.threads),
            &cfg,
        );
        let data = trace::stop();
        eprintln!(
            "  {:.3} MOps/s ({} trace records, {} dropped)",
            traced.mops(),
            data.records_total(),
            data.dropped_total(),
        );
        let trace_overhead_pct = if plain.summary.mean > 0.0 {
            (plain.summary.mean - traced.summary.mean) / plain.summary.mean * 100.0
        } else {
            0.0
        };
        println!(
            "traced {:.3} MOps/s, trace overhead {trace_overhead_pct:.2}% (limit {:.2}%)",
            traced.mops(),
            args.max_trace_overhead_pct,
        );
        if data.records_total() == 0 {
            eprintln!("instr_overhead: FAIL — trace arm recorded nothing");
            failed = true;
        }
        if trace_overhead_pct > args.max_trace_overhead_pct {
            eprintln!(
                "instr_overhead: FAIL — tracing costs {trace_overhead_pct:.2}% > {:.2}%",
                args.max_trace_overhead_pct
            );
            failed = true;
        }
    } else {
        eprintln!("trace feature not compiled; skipping trace-on arm");
    }

    if failed {
        std::process::exit(1);
    }
    println!("instr_overhead: OK");
}
