//! Minimal ASCII line-chart renderer for the `figures` binary: one
//! series per queue, thread count on the x-axis, MOps/s on the y-axis —
//! the shape of the paper's throughput figures, in a terminal.

/// A named data series: y-values aligned with the shared x-axis.
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// One y value per x position (MOps/s).
    pub ys: Vec<f64>,
}

/// Glyphs assigned to series, in order.
const GLYPHS: &[char] = &['*', 'o', '+', 'x', '#', '@', '%', '&', '~', '$'];

/// Render an ASCII chart of `series` over `xs` (e.g. thread counts).
/// `height` is the number of plot rows (excluding axes).
pub fn render_chart(title: &str, xs: &[usize], series: &[Series], height: usize) -> String {
    let height = height.max(2);
    let y_max = series
        .iter()
        .flat_map(|s| s.ys.iter().copied())
        .fold(0.0f64, f64::max)
        .max(1e-9);
    let width_per_x = 8usize;
    let plot_width = xs.len() * width_per_x;
    let mut rows = vec![vec![' '; plot_width]; height];

    for (si, s) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for (xi, &y) in s.ys.iter().enumerate().take(xs.len()) {
            let col = xi * width_per_x + width_per_x / 2;
            let frac = (y / y_max).clamp(0.0, 1.0);
            let row = ((1.0 - frac) * (height - 1) as f64).round() as usize;
            // Collisions: keep the first glyph, mark overlaps.
            let cell = &mut rows[row][col];
            *cell = if *cell == ' ' { glyph } else { '?' };
        }
    }

    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    for (i, row) in rows.iter().enumerate() {
        let y_label = y_max * (height - 1 - i) as f64 / (height - 1) as f64;
        out.push_str(&format!("{y_label:>8.2} |"));
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("{:>8} +{}\n", "", "-".repeat(plot_width)));
    out.push_str(&format!("{:>9}", ""));
    for &x in xs {
        out.push_str(&format!("{x:^width$}", width = width_per_x));
    }
    out.push_str("  [threads]\n  legend: ");
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!("{} {}  ", GLYPHS[si % GLYPHS.len()], s.name));
    }
    out.push('\n');
    out
}

/// Render results as CSV: `experiment,queue,threads,mops_mean,mops_ci95`.
pub fn render_csv(experiment: &str, xs: &[usize], series: &[(String, Vec<(f64, f64)>)]) -> String {
    let mut out = String::from("experiment,queue,threads,mops_mean,mops_ci95\n");
    for (name, points) in series {
        for (xi, (mean, ci)) in points.iter().enumerate().take(xs.len()) {
            out.push_str(&format!(
                "{},{},{},{:.6},{:.6}\n",
                experiment, name, xs[xi], mean, ci
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chart_contains_title_axes_and_legend() {
        let s = vec![
            Series {
                name: "klsm128".into(),
                ys: vec![1.0, 2.0, 4.0],
            },
            Series {
                name: "linden".into(),
                ys: vec![2.0, 1.5, 1.0],
            },
        ];
        let chart = render_chart("fig4a", &[1, 2, 4], &s, 10);
        assert!(chart.contains("fig4a"));
        assert!(chart.contains("* klsm128"));
        assert!(chart.contains("o linden"));
        assert!(chart.contains("[threads]"));
        // Max y label equals the maximum value.
        assert!(chart.contains("4.00"));
    }

    #[test]
    fn top_row_holds_the_maximum() {
        let s = vec![Series {
            name: "q".into(),
            ys: vec![0.0, 10.0],
        }];
        let chart = render_chart("t", &[1, 2], &s, 5);
        let top_plot_row = chart.lines().nth(1).unwrap();
        assert!(
            top_plot_row.contains('*'),
            "maximum must land on the top row: {chart}"
        );
    }

    #[test]
    fn empty_series_render_without_panic() {
        let chart = render_chart("empty", &[1, 2, 4, 8], &[], 6);
        assert!(chart.contains("empty"));
    }

    #[test]
    fn overlapping_points_marked() {
        let s = vec![
            Series {
                name: "a".into(),
                ys: vec![5.0],
            },
            Series {
                name: "b".into(),
                ys: vec![5.0],
            },
        ];
        let chart = render_chart("t", &[1], &s, 4);
        assert!(chart.contains('?'), "overlap marker missing: {chart}");
    }

    #[test]
    fn csv_rows_per_point() {
        let csv = render_csv(
            "fig4a",
            &[1, 2],
            &[("klsm128".to_owned(), vec![(3.5, 0.1), (4.5, 0.2)])],
        );
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[1], "fig4a,klsm128,1,3.500000,0.100000");
        assert_eq!(lines[2], "fig4a,klsm128,2,4.500000,0.200000");
    }
}
