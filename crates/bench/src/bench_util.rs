//! Helpers for the Criterion benches: adapt the harness' fixed-ops mode
//! to `iter_custom`'s (iterations → Duration) contract.

use std::time::Duration;

use harness::{run_throughput, Experiment, QueueSpec};
use workloads::config::StopCondition;
use workloads::BenchConfig;

/// Run `total_ops` mixed operations (split over `threads` workers) of the
/// experiment's workload on a freshly prefilled queue, returning the wall
/// time attributable to the operations — the quantity Criterion plots.
pub fn throughput_duration(
    spec: QueueSpec,
    exp: &Experiment,
    threads: usize,
    prefill: usize,
    total_ops: u64,
    seed: u64,
) -> Duration {
    let cfg = BenchConfig {
        threads,
        workload: exp.workload,
        key_dist: exp.key_dist,
        prefill,
        stop: StopCondition::OpsPerThread((total_ops / threads as u64).max(1)),
        reps: 1,
        seed,
    };
    let r = run_throughput(spec, &cfg);
    let ops_per_sec = r.summary.mean.max(1.0);
    Duration::from_secs_f64(total_ops as f64 / ops_per_sec)
}
