//! Shared helpers for the figure/table regeneration binaries and the
//! Criterion benches.

#![warn(missing_docs)]

pub mod bench_util;
pub mod metrics;
pub mod plot;
pub mod report;
pub mod trace_export;

pub use bench_util::throughput_duration;
pub use metrics::{events_since, run_metadata_json, MetricsReport};
pub use trace_export::TraceFile;
pub use plot::{render_chart, render_csv, Series};
pub use report::{format_quality_table, format_throughput_table};
