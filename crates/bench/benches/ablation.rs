//! Ablations for the design choices called out in DESIGN.md §5:
//!
//! * k-LSM relaxation sweep k ∈ {16, 128, 256, 4096} — the paper notes
//!   k = 16 "closely mimics the Lindén and Jonsson priority queue".
//! * MultiQueue c ∈ {1, 2, 4, 8} (the paper fixes c = 4).
//! * The k-LSM's standalone components (DLSM, SLSM) against the
//!   composition.

mod common;

use harness::{experiments, QueueSpec};
use pq_bench::throughput_duration;

fn main() {
    let mut c = common::criterion_config();
    let exp = experiments::by_id("fig4a").expect("known experiment");

    // Relaxation sweep, including the k=16 ≈ linden claim.
    let mut group = c.benchmark_group("ablation/klsm_k_sweep");
    for spec in [
        QueueSpec::Klsm(16),
        QueueSpec::Klsm(128),
        QueueSpec::Klsm(256),
        QueueSpec::Klsm(4096),
        QueueSpec::Linden, // reference point for k=16
    ] {
        group.bench_function(spec.name(), |b| {
            b.iter_custom(|iters| {
                throughput_duration(spec, &exp, common::THREADS, common::PREFILL, iters, 0xA1)
            })
        });
    }
    group.finish();

    // MultiQueue c sweep.
    let mut group = c.benchmark_group("ablation/multiqueue_c_sweep");
    for c_param in [1usize, 2, 4, 8] {
        let spec = QueueSpec::MultiQueue(c_param);
        group.bench_function(format!("c{c_param}"), |b| {
            b.iter_custom(|iters| {
                throughput_duration(spec, &exp, common::THREADS, common::PREFILL, iters, 0xA2)
            })
        });
    }
    group.finish();

    // Component decomposition: DLSM-only, SLSM-only, composed k-LSM.
    let mut group = c.benchmark_group("ablation/klsm_components");
    for spec in [
        QueueSpec::Dlsm,
        QueueSpec::Slsm(256),
        QueueSpec::Klsm(256),
    ] {
        group.bench_function(spec.name(), |b| {
            b.iter_custom(|iters| {
                throughput_duration(spec, &exp, common::THREADS, common::PREFILL, iters, 0xA3)
            })
        });
    }
    group.finish();

    // Substrate ablation: binary heap vs pairing heap under the same
    // lock disciplines (DESIGN.md §5).
    let mut group = c.benchmark_group("ablation/substrates");
    for spec in [
        QueueSpec::GlobalLock,
        QueueSpec::GlobalLockPairing,
        QueueSpec::MultiQueue(4),
        QueueSpec::MultiQueuePairing(4),
    ] {
        group.bench_function(spec.name(), |b| {
            b.iter_custom(|iters| {
                throughput_duration(spec, &exp, common::THREADS, common::PREFILL, iters, 0xA5)
            })
        });
    }
    group.finish();

    // Appendix-D survey queues against the paper's strict competitors.
    let mut group = c.benchmark_group("ablation/survey_queues");
    for spec in [
        QueueSpec::Hunt,
        QueueSpec::Mound,
        QueueSpec::Cbpq,
        QueueSpec::Linden,
        QueueSpec::GlobalLock,
    ] {
        group.bench_function(spec.name(), |b| {
            b.iter_custom(|iters| {
                throughput_duration(spec, &exp, common::THREADS, common::PREFILL, iters, 0xA4)
            })
        });
    }
    group.finish();

    // Stickiness/buffering ablation: plain MultiQueue against the
    // mq-sticky grid (s ∈ {1, 8, 64} × m ∈ {1, 16}) on the three
    // workload shapes where buffering behaves differently — uniform
    // mixes (fig4a), insert/delete thread splits (fig4e, where deletion
    // buffers on delete-only threads matter most), and alternating
    // phases (fig8a, which flushes insertion buffers right before the
    // deletion burst).
    for (exp_id, seed) in [("fig4a", 0xA6u64), ("fig4e", 0xA7), ("fig8a", 0xA8)] {
        let exp = experiments::by_id(exp_id).expect("known experiment");
        let mut group = c.benchmark_group(format!("ablation/mq_sticky/{exp_id}"));
        for spec in QueueSpec::mq_sticky_ablation_set() {
            group.bench_function(spec.name(), |b| {
                b.iter_custom(|iters| {
                    throughput_duration(spec, &exp, common::THREADS, common::PREFILL, iters, seed)
                })
            });
        }
        group.finish();
    }

    c.final_summary();
}
