//! Shared Criterion tuning for the throughput benches. Each sample is a
//! full prefilled multi-threaded run, so samples are few and windows
//! short; absolute numbers come from the `figures` binary, Criterion
//! tracks regressions.
#![allow(dead_code)] // each bench target uses a subset of these helpers

use std::time::Duration;

pub fn criterion_config() -> criterion::Criterion {
    criterion::Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(1200))
        .warm_up_time(Duration::from_millis(300))
        .configure_from_args()
}

/// Prefill used by the bench targets (small enough for quick samples,
/// large enough that the structures have realistic depth).
pub const PREFILL: usize = 20_000;

/// Thread count for the bench targets (the host is time-sliced; 2
/// threads exercise the concurrent paths without drowning in scheduler
/// noise).
pub const THREADS: usize = 2;
