//! Figures 4b and 4c: uniform workload with ascending and descending
//! key distributions — the configurations that collapse (4b) or boost
//! (4c) the k-LSM in the paper.

mod common;

use criterion::Criterion;
use harness::{experiments, QueueSpec};
use pq_bench::throughput_duration;

fn bench_cell(c: &mut Criterion, exp_id: &str) {
    let exp = experiments::by_id(exp_id).expect("known experiment");
    let mut group = c.benchmark_group(exp_id);
    for spec in QueueSpec::paper_set() {
        group.bench_function(spec.name(), |b| {
            b.iter_custom(|iters| {
                throughput_duration(spec, &exp, common::THREADS, common::PREFILL, iters, 0xF2)
            })
        });
    }
    group.finish();
}

fn main() {
    let mut c = common::criterion_config();
    bench_cell(&mut c, "fig4b"); // ascending keys
    bench_cell(&mut c, "fig4c"); // descending keys
    c.final_summary();
}
