//! Tables 1/2/5: the rank-error (quality) benchmark.
//!
//! Criterion measures the cost of the full quality pipeline (logged run +
//! linearized replay); the measured mean ranks themselves — the table
//! cells — are printed to stderr alongside, and are regenerated in table
//! form by the `quality` binary.

mod common;

use criterion::Criterion;
use harness::{experiments, run_quality, QueueSpec};
use workloads::config::StopCondition;
use workloads::BenchConfig;

fn bench_cell(c: &mut Criterion, exp_id: &str, threads: usize) {
    let exp = experiments::by_id(exp_id).expect("known experiment");
    let mut group = c.benchmark_group(format!("rank_error/{exp_id}/{threads}t"));
    group.sample_size(10);
    for spec in QueueSpec::quality_set() {
        let cfg = BenchConfig {
            threads,
            workload: exp.workload,
            key_dist: exp.key_dist,
            prefill: common::PREFILL,
            stop: StopCondition::OpsPerThread(5_000),
            reps: 1,
            seed: 0xF5,
        };
        // Report the table cell once per series.
        let r = run_quality(spec, &cfg);
        eprintln!(
            "[table:{exp_id}] {} @ {threads} threads: mean rank {:.1} (sd {:.1})",
            r.queue, r.rank.mean, r.rank.sd
        );
        group.bench_function(spec.name(), |b| {
            b.iter(|| std::hint::black_box(run_quality(spec, &cfg).rank.mean))
        });
    }
    group.finish();
}

fn main() {
    let mut c = common::criterion_config();
    bench_cell(&mut c, "table2a", 2); // Table 1 / 2a
    bench_cell(&mut c, "table5a", 2); // Table 5a (alternating)
    c.final_summary();
}
