//! Micro-costs of the sequential substrates: the binary heap (C++
//! `std::priority_queue` analog), the pairing heap alternative, the
//! sequential LSM, and the order-statistic treap used for rank replay.

mod common;

use criterion::{BatchSize, Criterion};
use lsm::Lsm;
use pq_traits::{Item, SequentialPq};
use seqpq::{BinaryHeap, DaryHeap, OsTreap, PairingHeap};

const N: u64 = 10_000;

fn keys() -> Vec<u64> {
    // Deterministic pseudo-random keys.
    (0..N).map(|i| i.wrapping_mul(2654435761) % 1_000_000).collect()
}

fn bench_insert_drain<P: SequentialPq + Default>(c: &mut Criterion, name: &str) {
    let ks = keys();
    c.bench_function(format!("seq/{name}/insert_drain_10k"), |b| {
        b.iter_batched(
            P::default,
            |mut pq| {
                for (i, &k) in ks.iter().enumerate() {
                    pq.insert(k, i as u64);
                }
                while pq.delete_min().is_some() {}
                pq
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_hold<P: SequentialPq + Default>(c: &mut Criterion, name: &str) {
    let ks = keys();
    c.bench_function(format!("seq/{name}/hold_10k"), |b| {
        b.iter_batched(
            || {
                let mut pq = P::default();
                for (i, &k) in ks.iter().enumerate() {
                    pq.insert(k, i as u64);
                }
                pq
            },
            |mut pq| {
                // Hold pattern: delete one, insert a key near it.
                for i in 0..N {
                    let it = pq.delete_min().expect("prefilled");
                    pq.insert(it.key + 1 + (i % 251), N + i);
                }
                pq
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_treap_rank_replay(c: &mut Criterion) {
    let ks = keys();
    c.bench_function("seq/ostreap/rank_replay_10k", |b| {
        b.iter_batched(
            || {
                let mut t = OsTreap::new();
                for (i, &k) in ks.iter().enumerate() {
                    t.insert_item(Item::new(k, i as u64));
                }
                t
            },
            |mut t| {
                let mut acc = 0u64;
                for (i, &k) in ks.iter().enumerate() {
                    acc += t.remove_item(&Item::new(k, i as u64)).expect("present");
                }
                acc
            },
            BatchSize::SmallInput,
        )
    });
}

fn main() {
    let mut c = common::criterion_config();
    bench_insert_drain::<BinaryHeap>(&mut c, "binary_heap");
    bench_insert_drain::<DaryHeap<4>>(&mut c, "dary4_heap");
    bench_insert_drain::<PairingHeap>(&mut c, "pairing_heap");
    bench_insert_drain::<Lsm>(&mut c, "lsm");
    bench_insert_drain::<OsTreap>(&mut c, "ostreap");
    bench_hold::<BinaryHeap>(&mut c, "binary_heap");
    bench_hold::<DaryHeap<4>>(&mut c, "dary4_heap");
    bench_hold::<PairingHeap>(&mut c, "pairing_heap");
    bench_hold::<Lsm>(&mut c, "lsm");
    bench_treap_rank_replay(&mut c);
    c.final_summary();
}
