//! Figures 8/9: alternating workload (strict insert/delete alternation
//! per thread) with uniform, ascending and descending keys, plus the
//! hold-model extension.

mod common;

use criterion::Criterion;
use harness::{experiments, QueueSpec};
use pq_bench::throughput_duration;

fn bench_cell(c: &mut Criterion, exp_id: &str) {
    let exp = experiments::by_id(exp_id).expect("known experiment");
    let mut group = c.benchmark_group(exp_id);
    for spec in QueueSpec::paper_set() {
        group.bench_function(spec.name(), |b| {
            b.iter_custom(|iters| {
                throughput_duration(spec, &exp, common::THREADS, common::PREFILL, iters, 0xF4)
            })
        });
    }
    group.finish();
}

fn main() {
    let mut c = common::criterion_config();
    bench_cell(&mut c, "fig8a"); // alternating, uniform 32-bit keys
    bench_cell(&mut c, "fig8b"); // alternating, ascending keys
    bench_cell(&mut c, "fig8c"); // alternating, descending keys
    bench_cell(&mut c, "hold"); // hold model (Jones 1986)
    c.final_summary();
}
