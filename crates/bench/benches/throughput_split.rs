//! Figure 2 / 4d–4f: split workload (half the threads insert, half
//! delete) with uniform, ascending and descending keys — the
//! configuration under which the paper's k-LSM throughput collapses and
//! the Lindén queue's cache locality shines.

mod common;

use criterion::Criterion;
use harness::{experiments, QueueSpec};
use pq_bench::throughput_duration;

fn bench_cell(c: &mut Criterion, exp_id: &str) {
    let exp = experiments::by_id(exp_id).expect("known experiment");
    let mut group = c.benchmark_group(exp_id);
    for spec in QueueSpec::paper_set() {
        group.bench_function(spec.name(), |b| {
            b.iter_custom(|iters| {
                throughput_duration(spec, &exp, common::THREADS, common::PREFILL, iters, 0xF3)
            })
        });
    }
    group.finish();
}

fn main() {
    let mut c = common::criterion_config();
    bench_cell(&mut c, "fig4d"); // split, uniform 32-bit keys
    bench_cell(&mut c, "fig4e"); // Figure 2: split, ascending keys
    bench_cell(&mut c, "fig4f"); // split, descending keys
    c.final_summary();
}
