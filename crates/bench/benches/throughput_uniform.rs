//! Figure 1 / 4a, 4g, 4h: uniform workload with uniform 32-, 8- and
//! 16-bit keys, one Criterion group per figure, one series per queue.

mod common;

use criterion::Criterion;
use harness::{experiments, QueueSpec};
use pq_bench::throughput_duration;

fn bench_cell(c: &mut Criterion, exp_id: &str) {
    let exp = experiments::by_id(exp_id).expect("known experiment");
    let mut group = c.benchmark_group(exp_id);
    for spec in QueueSpec::paper_set() {
        group.bench_function(spec.name(), |b| {
            b.iter_custom(|iters| {
                throughput_duration(spec, &exp, common::THREADS, common::PREFILL, iters, 0xF1)
            })
        });
    }
    group.finish();
}

fn main() {
    let mut c = common::criterion_config();
    bench_cell(&mut c, "fig4a"); // Figure 1: uniform workload, 32-bit keys
    bench_cell(&mut c, "fig4g"); // Figure 3: 8-bit restricted keys
    bench_cell(&mut c, "fig4h"); // 16-bit keys
    c.final_summary();
}
