//! Array-based binary min-heap, the analog of C++ `std::priority_queue`.
//!
//! Implemented from scratch (rather than wrapping
//! `std::collections::BinaryHeap<Reverse<Item>>`) so the substrate shared
//! by GlobalLock and the MultiQueue is identical, fully under test, and
//! uses min-heap order natively.

use pq_traits::{Item, Key, SequentialPq, Value};

/// Array-based binary min-heap over [`Item`]s.
#[derive(Clone, Debug, Default)]
pub struct BinaryHeap {
    data: Vec<Item>,
}

impl BinaryHeap {
    /// Create an empty heap.
    pub fn new() -> Self {
        Self { data: Vec::new() }
    }

    /// Create an empty heap with room for `cap` items.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Build a heap from arbitrary items in O(n) (Floyd's heapify).
    pub fn from_items(items: Vec<Item>) -> Self {
        let mut heap = Self { data: items };
        if heap.data.len() > 1 {
            for i in (0..heap.data.len() / 2).rev() {
                heap.sift_down(i);
            }
        }
        heap
    }

    /// Iterate over the stored items in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = &Item> {
        self.data.iter()
    }

    #[inline]
    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.data[i] < self.data[parent] {
                self.data.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    #[inline]
    fn sift_down(&mut self, mut i: usize) {
        let n = self.data.len();
        loop {
            let l = 2 * i + 1;
            if l >= n {
                break;
            }
            let r = l + 1;
            let smallest = if r < n && self.data[r] < self.data[l] { r } else { l };
            if self.data[smallest] < self.data[i] {
                self.data.swap(i, smallest);
                i = smallest;
            } else {
                break;
            }
        }
    }

    /// Check the heap invariant; used by tests.
    #[doc(hidden)]
    pub fn is_valid_heap(&self) -> bool {
        (1..self.data.len()).all(|i| self.data[(i - 1) / 2] <= self.data[i])
    }
}

impl SequentialPq for BinaryHeap {
    fn insert(&mut self, key: Key, value: Value) {
        self.data.push(Item::new(key, value));
        self.sift_up(self.data.len() - 1);
    }

    fn delete_min(&mut self) -> Option<Item> {
        if self.data.is_empty() {
            return None;
        }
        let last = self.data.len() - 1;
        self.data.swap(0, last);
        let min = self.data.pop();
        if !self.data.is_empty() {
            self.sift_down(0);
        }
        min
    }

    fn peek_min(&self) -> Option<Item> {
        self.data.first().copied()
    }

    fn len(&self) -> usize {
        self.data.len()
    }

    fn clear(&mut self) {
        self.data.clear();
    }
}

impl FromIterator<Item> for BinaryHeap {
    fn from_iter<I: IntoIterator<Item = Item>>(iter: I) -> Self {
        Self::from_items(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_heap_behaviour() {
        let mut h = BinaryHeap::new();
        assert!(h.is_empty());
        assert_eq!(h.len(), 0);
        assert_eq!(h.peek_min(), None);
        assert_eq!(h.delete_min(), None);
    }

    #[test]
    fn single_element() {
        let mut h = BinaryHeap::new();
        h.insert(5, 50);
        assert_eq!(h.peek_min(), Some(Item::new(5, 50)));
        assert_eq!(h.delete_min(), Some(Item::new(5, 50)));
        assert!(h.is_empty());
    }

    #[test]
    fn returns_sorted_order() {
        let mut h = BinaryHeap::new();
        for k in [5u64, 3, 8, 1, 9, 2, 7, 4, 6, 0] {
            h.insert(k, k * 10);
        }
        let mut out = Vec::new();
        while let Some(it) = h.delete_min() {
            out.push(it.key);
        }
        assert_eq!(out, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn duplicate_keys_all_returned() {
        let mut h = BinaryHeap::new();
        for v in 0..100 {
            h.insert(7, v);
        }
        let mut vals: Vec<_> = std::iter::from_fn(|| h.delete_min()).map(|i| i.value).collect();
        vals.sort_unstable();
        assert_eq!(vals, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn from_items_heapifies() {
        let items: Vec<Item> = (0..64).rev().map(|k| Item::new(k, 0)).collect();
        let h = BinaryHeap::from_items(items);
        assert!(h.is_valid_heap());
        assert_eq!(h.peek_min(), Some(Item::new(0, 0)));
    }

    #[test]
    fn clear_resets() {
        let mut h: BinaryHeap = (0..10).map(|k| Item::new(k, 0)).collect();
        h.clear();
        assert!(h.is_empty());
        h.insert(1, 1);
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn interleaved_insert_delete_maintains_invariant() {
        let mut h = BinaryHeap::new();
        let mut rng_state = 0x9e3779b97f4a7c15u64;
        let mut next = || {
            rng_state ^= rng_state << 13;
            rng_state ^= rng_state >> 7;
            rng_state ^= rng_state << 17;
            rng_state
        };
        for i in 0..1000 {
            if i % 3 == 2 {
                h.delete_min();
            } else {
                h.insert(next() % 100, i);
            }
            assert!(h.is_valid_heap());
        }
    }

    proptest::proptest! {
        #[test]
        fn prop_matches_sorted_vec(keys in proptest::collection::vec(0u64..1000, 0..200)) {
            let mut h = BinaryHeap::new();
            for (i, &k) in keys.iter().enumerate() {
                h.insert(k, i as u64);
            }
            let mut expect: Vec<Item> =
                keys.iter().enumerate().map(|(i, &k)| Item::new(k, i as u64)).collect();
            expect.sort();
            let got: Vec<Item> = std::iter::from_fn(|| h.delete_min()).collect();
            proptest::prop_assert_eq!(got, expect);
        }

        #[test]
        fn prop_peek_equals_next_delete(keys in proptest::collection::vec(0u64..50, 1..100)) {
            let mut h = BinaryHeap::new();
            for (i, &k) in keys.iter().enumerate() {
                h.insert(k, i as u64);
            }
            while let Some(p) = h.peek_min() {
                proptest::prop_assert_eq!(h.delete_min(), Some(p));
            }
        }
    }
}
