//! Sequential priority-queue substrates.
//!
//! The paper's GlobalLock baseline and the MultiQueue both wrap C++'s
//! `std::priority_queue` (an array-based binary heap). This crate provides
//! the equivalent [`BinaryHeap`] (min-heap over [`pq_traits::Item`]), an
//! alternative [`PairingHeap`] used for substrate ablations, and the
//! [`OsTreap`] order-statistic treap that powers the quality benchmark's
//! rank replay (appendix F: "a specialized sequential priority queue is
//! then used to replay this sequence and efficiently determine the rank of
//! all deleted items").

#![warn(missing_docs)]

pub mod binary_heap;
pub mod dary_heap;
pub mod fenwick;
pub mod ostreap;
pub mod pairing_heap;

pub use binary_heap::BinaryHeap;
pub use dary_heap::DaryHeap;
pub use fenwick::Fenwick;
pub use ostreap::OsTreap;
pub use pairing_heap::PairingHeap;
