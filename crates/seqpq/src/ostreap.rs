//! Order-statistic treap: the "specialized sequential priority queue" of
//! the paper's quality benchmark (appendix F).
//!
//! The rank-error benchmark replays a linearized log of insert/delete
//! operations. For every replayed deletion it must answer: *what was the
//! rank of the deleted item among the items present at that moment?* —
//! i.e. how many live items compare strictly smaller. A treap augmented
//! with subtree sizes answers that in O(log n) while supporting deletion
//! of an *arbitrary* item (relaxed queues do not delete the minimum!).
//!
//! Nodes are arena-allocated and index-linked; heap priorities come from a
//! deterministic xorshift generator, making replays reproducible.

use pq_traits::{Item, Key, SequentialPq, Value};

const NIL: u32 = u32::MAX;

#[derive(Clone, Copy, Debug)]
struct Node {
    item: Item,
    prio: u64,
    left: u32,
    right: u32,
    /// Subtree size. Doubles as free-list link (in `left`) when vacant.
    size: u32,
}

/// Treap over [`Item`]s (ordered by key, then value) with subtree sizes.
#[derive(Clone, Debug)]
pub struct OsTreap {
    nodes: Vec<Node>,
    root: u32,
    free: u32,
    rng: u64,
}

impl Default for OsTreap {
    fn default() -> Self {
        Self::new()
    }
}

impl OsTreap {
    /// Create an empty treap.
    pub fn new() -> Self {
        Self::with_seed(0x853c49e6748fea9b)
    }

    /// Create an empty treap with a specific priority seed.
    pub fn with_seed(seed: u64) -> Self {
        Self {
            nodes: Vec::new(),
            root: NIL,
            free: NIL,
            rng: seed | 1,
        }
    }

    #[inline]
    fn next_prio(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    #[inline]
    fn size(&self, n: u32) -> u32 {
        if n == NIL {
            0
        } else {
            self.nodes[n as usize].size
        }
    }

    #[inline]
    fn update(&mut self, n: u32) {
        let l = self.size(self.nodes[n as usize].left);
        let r = self.size(self.nodes[n as usize].right);
        self.nodes[n as usize].size = l + r + 1;
    }

    fn alloc(&mut self, item: Item) -> u32 {
        let prio = self.next_prio();
        let node = Node {
            item,
            prio,
            left: NIL,
            right: NIL,
            size: 1,
        };
        if self.free != NIL {
            let idx = self.free;
            self.free = self.nodes[idx as usize].left;
            self.nodes[idx as usize] = node;
            idx
        } else {
            let idx = self.nodes.len() as u32;
            assert!(idx != NIL, "treap capacity exceeded");
            self.nodes.push(node);
            idx
        }
    }

    fn release(&mut self, idx: u32) {
        self.nodes[idx as usize].left = self.free;
        self.free = idx;
    }

    /// Split by item: everything `< item` goes left, `>= item` right.
    fn split(&mut self, n: u32, item: &Item) -> (u32, u32) {
        if n == NIL {
            return (NIL, NIL);
        }
        if self.nodes[n as usize].item < *item {
            let (l, r) = {
                let right = self.nodes[n as usize].right;
                self.split(right, item)
            };
            self.nodes[n as usize].right = l;
            self.update(n);
            (n, r)
        } else {
            let (l, r) = {
                let left = self.nodes[n as usize].left;
                self.split(left, item)
            };
            self.nodes[n as usize].left = r;
            self.update(n);
            (l, n)
        }
    }

    fn merge(&mut self, a: u32, b: u32) -> u32 {
        if a == NIL {
            return b;
        }
        if b == NIL {
            return a;
        }
        if self.nodes[a as usize].prio >= self.nodes[b as usize].prio {
            let ar = self.nodes[a as usize].right;
            let m = self.merge(ar, b);
            self.nodes[a as usize].right = m;
            self.update(a);
            a
        } else {
            let bl = self.nodes[b as usize].left;
            let m = self.merge(a, bl);
            self.nodes[b as usize].left = m;
            self.update(b);
            b
        }
    }

    /// Insert an item. Duplicate `(key, value)` pairs are allowed and
    /// stored separately (the quality log tags every insert with a unique
    /// value, but the structure itself does not rely on that).
    pub fn insert_item(&mut self, item: Item) {
        let idx = self.alloc(item);
        let (l, r) = self.split(self.root, &item);
        let lr = self.merge(l, idx);
        self.root = self.merge(lr, r);
    }

    /// Number of live items strictly smaller than `item`.
    pub fn rank_of(&self, item: &Item) -> u64 {
        let mut n = self.root;
        let mut rank = 0u64;
        while n != NIL {
            let node = &self.nodes[n as usize];
            if node.item < *item {
                rank += u64::from(self.size(node.left)) + 1;
                n = node.right;
            } else {
                n = node.left;
            }
        }
        rank
    }

    /// Remove a specific item, returning its 0-based rank at removal time,
    /// or `None` if the item is not present. If several equal items are
    /// stored, one of them is removed.
    pub fn remove_item(&mut self, item: &Item) -> Option<u64> {
        let rank = self.rank_of(item);
        let removed = self.remove_rec(self.root, item);
        match removed {
            Some(new_root) => {
                self.root = new_root;
                Some(rank)
            }
            None => None,
        }
    }

    /// Remove `item` from subtree `n`; returns the new subtree root on
    /// success, `None` if not found.
    fn remove_rec(&mut self, n: u32, item: &Item) -> Option<u32> {
        if n == NIL {
            return None;
        }
        let node_item = self.nodes[n as usize].item;
        if node_item == *item {
            let l = self.nodes[n as usize].left;
            let r = self.nodes[n as usize].right;
            let m = self.merge(l, r);
            self.release(n);
            Some(m)
        } else if *item < node_item {
            let left = self.nodes[n as usize].left;
            let new_left = self.remove_rec(left, item)?;
            self.nodes[n as usize].left = new_left;
            self.update(n);
            Some(n)
        } else {
            let right = self.nodes[n as usize].right;
            let new_right = self.remove_rec(right, item)?;
            self.nodes[n as usize].right = new_right;
            self.update(n);
            Some(n)
        }
    }

    /// The k-th smallest live item (0-based), or `None` if out of range.
    pub fn select(&self, mut k: u64) -> Option<Item> {
        let mut n = self.root;
        while n != NIL {
            let node = &self.nodes[n as usize];
            let ls = u64::from(self.size(node.left));
            if k < ls {
                n = node.left;
            } else if k == ls {
                return Some(node.item);
            } else {
                k -= ls + 1;
                n = node.right;
            }
        }
        None
    }

    /// `true` if an equal item is stored.
    pub fn contains(&self, item: &Item) -> bool {
        let mut n = self.root;
        while n != NIL {
            let node = &self.nodes[n as usize];
            if node.item == *item {
                return true;
            }
            n = if *item < node.item { node.left } else { node.right };
        }
        false
    }

    /// Verify BST order, heap priorities and size augmentation; O(n),
    /// tests only.
    #[doc(hidden)]
    pub fn check_invariants(&self) -> bool {
        fn rec(t: &OsTreap, n: u32, lo: Option<Item>, hi: Option<Item>) -> Option<u32> {
            if n == NIL {
                return Some(0);
            }
            let node = &t.nodes[n as usize];
            if lo.is_some_and(|lo| node.item <= lo) || hi.is_some_and(|hi| node.item >= hi) {
                return None;
            }
            for c in [node.left, node.right] {
                if c != NIL && t.nodes[c as usize].prio > node.prio {
                    return None;
                }
            }
            let ls = rec(t, node.left, lo, Some(node.item))?;
            let rs = rec(t, node.right, Some(node.item), hi)?;
            (ls + rs + 1 == node.size).then_some(node.size)
        }
        rec(self, self.root, None, None).is_some()
    }
}

impl SequentialPq for OsTreap {
    fn insert(&mut self, key: Key, value: Value) {
        self.insert_item(Item::new(key, value));
    }

    fn delete_min(&mut self) -> Option<Item> {
        let min = self.select(0)?;
        self.remove_item(&min);
        Some(min)
    }

    fn peek_min(&self) -> Option<Item> {
        self.select(0)
    }

    fn len(&self) -> usize {
        self.size(self.root) as usize
    }

    fn clear(&mut self) {
        self.nodes.clear();
        self.root = NIL;
        self.free = NIL;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty() {
        let mut t = OsTreap::new();
        assert!(t.is_empty());
        assert_eq!(t.delete_min(), None);
        assert_eq!(t.select(0), None);
        assert_eq!(t.remove_item(&Item::new(1, 1)), None);
    }

    #[test]
    fn rank_of_min_is_zero() {
        let mut t = OsTreap::new();
        for k in [5u64, 2, 9, 1, 7] {
            t.insert(k, 0);
        }
        assert_eq!(t.rank_of(&Item::new(1, 0)), 0);
        assert_eq!(t.remove_item(&Item::new(1, 0)), Some(0));
        assert_eq!(t.rank_of(&Item::new(2, 0)), 0);
    }

    #[test]
    fn rank_of_arbitrary_items() {
        let mut t = OsTreap::new();
        for k in 0..10u64 {
            t.insert(k * 10, k);
        }
        // Items: (0,0),(10,1),...,(90,9)
        assert_eq!(t.remove_item(&Item::new(50, 5)), Some(5));
        // After removing rank 5, item (90,9) drops to rank 8.
        assert_eq!(t.remove_item(&Item::new(90, 9)), Some(8));
        assert_eq!(t.len(), 8);
    }

    #[test]
    fn select_returns_kth() {
        let mut t = OsTreap::new();
        for k in [30u64, 10, 20, 50, 40] {
            t.insert(k, 0);
        }
        for (i, expect) in [10u64, 20, 30, 40, 50].iter().enumerate() {
            assert_eq!(t.select(i as u64), Some(Item::new(*expect, 0)));
        }
        assert_eq!(t.select(5), None);
    }

    #[test]
    fn duplicate_keys_distinct_values() {
        let mut t = OsTreap::new();
        for v in 0..5u64 {
            t.insert(7, v);
        }
        assert_eq!(t.len(), 5);
        assert_eq!(t.remove_item(&Item::new(7, 3)), Some(3));
        assert!(!t.contains(&Item::new(7, 3)));
        assert!(t.contains(&Item::new(7, 4)));
    }

    #[test]
    fn delete_min_is_sorted() {
        let mut t = OsTreap::new();
        let keys = [44u64, 2, 99, 17, 56, 3, 71, 23, 8, 61];
        for (i, &k) in keys.iter().enumerate() {
            t.insert(k, i as u64);
        }
        let mut out: Vec<Key> = Vec::new();
        while let Some(it) = t.delete_min() {
            out.push(it.key);
        }
        let mut expect = keys.to_vec();
        expect.sort_unstable();
        assert_eq!(out, expect);
    }

    #[test]
    fn arena_reuses_freed_nodes() {
        let mut t = OsTreap::new();
        for k in 0..50u64 {
            t.insert(k, 0);
        }
        for _ in 0..50 {
            t.delete_min();
        }
        let arena = t.nodes.len();
        for k in 0..50u64 {
            t.insert(k, 1);
        }
        assert_eq!(t.nodes.len(), arena);
        assert!(t.check_invariants());
    }

    proptest::proptest! {
        #[test]
        fn prop_invariants_under_mixed_ops(
            ops in proptest::collection::vec((0u8..3, 0u64..64), 0..300)
        ) {
            let mut t = OsTreap::new();
            let mut model: Vec<Item> = Vec::new();
            for (i, &(op, k)) in ops.iter().enumerate() {
                match op {
                    0 | 1 => {
                        let it = Item::new(k, i as u64);
                        t.insert_item(it);
                        model.push(it);
                        model.sort();
                    }
                    _ => {
                        if !model.is_empty() {
                            let victim = model[(k as usize) % model.len()];
                            let expect_rank = model.iter().position(|x| *x == victim).unwrap();
                            let got = t.remove_item(&victim);
                            proptest::prop_assert_eq!(got, Some(expect_rank as u64));
                            model.retain(|x| *x != victim);
                        }
                    }
                }
                proptest::prop_assert!(t.check_invariants());
                proptest::prop_assert_eq!(t.len(), model.len());
            }
        }

        #[test]
        fn prop_rank_matches_model(keys in proptest::collection::vec(0u64..100, 1..150)) {
            let mut t = OsTreap::new();
            let mut model: Vec<Item> = Vec::new();
            for (i, &k) in keys.iter().enumerate() {
                let it = Item::new(k, i as u64);
                t.insert_item(it);
                model.push(it);
            }
            model.sort();
            for (rank, it) in model.iter().enumerate() {
                proptest::prop_assert_eq!(t.rank_of(it), rank as u64);
                proptest::prop_assert_eq!(t.select(rank as u64), Some(*it));
            }
        }
    }
}
