//! Pairing heap, an alternative sequential substrate.
//!
//! Larkin, Sen and Tarjan's "back-to-basics" study (cited by the paper as
//! the sorting-style benchmark precedent) found pairing heaps competitive
//! with binary heaps; we provide one so the MultiQueue/GlobalLock
//! substrate can be ablated (see `crates/bench/benches/ablation.rs`).
//!
//! Arena-based implementation: nodes live in a `Vec` and are addressed by
//! index, with a free list for reuse. This avoids per-node allocation and
//! keeps the structure cache-friendly, per the workspace performance
//! guidance (heap allocations are moderately expensive; reuse them).

use pq_traits::{Item, Key, SequentialPq, Value};

const NIL: u32 = u32::MAX;

#[derive(Clone, Copy, Debug)]
struct Node {
    item: Item,
    /// First child, or NIL.
    child: u32,
    /// Next sibling in the child list, or NIL. Doubles as the free-list
    /// link for vacant nodes.
    sibling: u32,
}

/// Pairing min-heap over [`Item`]s with arena storage.
#[derive(Clone, Debug)]
pub struct PairingHeap {
    nodes: Vec<Node>,
    root: u32,
    free: u32,
    len: usize,
}

impl Default for PairingHeap {
    fn default() -> Self {
        // NOT derivable: `root` and `free` must start at NIL, not 0.
        Self::new()
    }
}

impl PairingHeap {
    /// Create an empty heap.
    pub fn new() -> Self {
        Self {
            nodes: Vec::new(),
            root: NIL,
            free: NIL,
            len: 0,
        }
    }

    /// Create an empty heap with room for `cap` items.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            nodes: Vec::with_capacity(cap),
            root: NIL,
            free: NIL,
            len: 0,
        }
    }

    fn alloc(&mut self, item: Item) -> u32 {
        if self.free != NIL {
            let idx = self.free;
            self.free = self.nodes[idx as usize].sibling;
            self.nodes[idx as usize] = Node {
                item,
                child: NIL,
                sibling: NIL,
            };
            idx
        } else {
            let idx = self.nodes.len() as u32;
            assert!(idx != NIL, "pairing heap capacity exceeded");
            self.nodes.push(Node {
                item,
                child: NIL,
                sibling: NIL,
            });
            idx
        }
    }

    fn release(&mut self, idx: u32) {
        self.nodes[idx as usize].sibling = self.free;
        self.free = idx;
    }

    /// Meld two non-NIL trees, returning the new root.
    fn meld(&mut self, a: u32, b: u32) -> u32 {
        debug_assert!(a != NIL && b != NIL);
        let (parent, child) = if self.nodes[a as usize].item <= self.nodes[b as usize].item {
            (a, b)
        } else {
            (b, a)
        };
        self.nodes[child as usize].sibling = self.nodes[parent as usize].child;
        self.nodes[parent as usize].child = child;
        parent
    }

    /// Two-pass pairing combine of a sibling list.
    fn combine_siblings(&mut self, first: u32) -> u32 {
        if first == NIL {
            return NIL;
        }
        // Pass 1: pair up left to right.
        let mut pairs: Vec<u32> = Vec::new();
        let mut cur = first;
        while cur != NIL {
            let next = self.nodes[cur as usize].sibling;
            self.nodes[cur as usize].sibling = NIL;
            if next != NIL {
                let after = self.nodes[next as usize].sibling;
                self.nodes[next as usize].sibling = NIL;
                pairs.push(self.meld(cur, next));
                cur = after;
            } else {
                pairs.push(cur);
                cur = NIL;
            }
        }
        // Pass 2: meld right to left.
        let mut root = pairs.pop().expect("at least one pair");
        while let Some(t) = pairs.pop() {
            root = self.meld(t, root);
        }
        root
    }

    /// Verify heap order over the whole arena; used by tests.
    #[doc(hidden)]
    pub fn is_valid_heap(&self) -> bool {
        if self.root == NIL {
            return self.len == 0;
        }
        let mut stack = vec![self.root];
        let mut seen = 0usize;
        while let Some(n) = stack.pop() {
            seen += 1;
            let mut c = self.nodes[n as usize].child;
            while c != NIL {
                if self.nodes[c as usize].item < self.nodes[n as usize].item {
                    return false;
                }
                stack.push(c);
                c = self.nodes[c as usize].sibling;
            }
        }
        seen == self.len
    }
}

impl SequentialPq for PairingHeap {
    fn insert(&mut self, key: Key, value: Value) {
        let idx = self.alloc(Item::new(key, value));
        self.root = if self.root == NIL {
            idx
        } else {
            self.meld(self.root, idx)
        };
        self.len += 1;
    }

    fn delete_min(&mut self) -> Option<Item> {
        if self.root == NIL {
            return None;
        }
        let old_root = self.root;
        let item = self.nodes[old_root as usize].item;
        let first_child = self.nodes[old_root as usize].child;
        self.root = self.combine_siblings(first_child);
        self.release(old_root);
        self.len -= 1;
        Some(item)
    }

    fn peek_min(&self) -> Option<Item> {
        (self.root != NIL).then(|| self.nodes[self.root as usize].item)
    }

    fn len(&self) -> usize {
        self.len
    }

    fn clear(&mut self) {
        self.nodes.clear();
        self.root = NIL;
        self.free = NIL;
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_usable() {
        // Regression: a derived Default once initialized root/free to 0
        // instead of NIL, corrupting the arena on first insert.
        let mut h = PairingHeap::default();
        h.insert(2, 2);
        h.insert(1, 1);
        assert_eq!(h.delete_min(), Some(Item::new(1, 1)));
        assert_eq!(h.delete_min(), Some(Item::new(2, 2)));
        assert_eq!(h.delete_min(), None);
    }

    #[test]
    fn empty_heap() {
        let mut h = PairingHeap::new();
        assert!(h.is_empty());
        assert_eq!(h.delete_min(), None);
        assert_eq!(h.peek_min(), None);
    }

    #[test]
    fn sorted_output() {
        let mut h = PairingHeap::new();
        for k in [9u64, 1, 8, 2, 7, 3, 6, 4, 5, 0] {
            h.insert(k, k);
        }
        let out: Vec<Key> = std::iter::from_fn(|| h.delete_min()).map(|i| i.key).collect();
        assert_eq!(out, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn arena_reuse_after_deletes() {
        let mut h = PairingHeap::new();
        for k in 0..100u64 {
            h.insert(k, 0);
        }
        for _ in 0..100 {
            h.delete_min();
        }
        let arena_size = h.nodes.len();
        for k in 0..100u64 {
            h.insert(k, 1);
        }
        // Freed nodes must be reused, not newly allocated.
        assert_eq!(h.nodes.len(), arena_size);
        assert_eq!(h.len(), 100);
        assert!(h.is_valid_heap());
    }

    #[test]
    fn interleaved_ops_keep_invariant() {
        let mut h = PairingHeap::new();
        for i in 0..500u64 {
            h.insert((i * 2654435761) % 997, i);
            if i % 4 == 3 {
                assert!(h.delete_min().is_some());
            }
        }
        assert!(h.is_valid_heap());
    }

    proptest::proptest! {
        #[test]
        fn prop_matches_binary_heap(keys in proptest::collection::vec(0u64..500, 0..300)) {
            let mut ph = PairingHeap::new();
            let mut bh = crate::BinaryHeap::new();
            for (i, &k) in keys.iter().enumerate() {
                ph.insert(k, i as u64);
                bh.insert(k, i as u64);
            }
            loop {
                let a = ph.delete_min();
                let b = bh.delete_min();
                proptest::prop_assert_eq!(a, b);
                if a.is_none() {
                    break;
                }
            }
        }

        #[test]
        fn prop_mixed_ops_match_binary_heap(
            ops in proptest::collection::vec((proptest::bool::ANY, 0u64..100), 0..400)
        ) {
            let mut ph = PairingHeap::new();
            let mut bh = crate::BinaryHeap::new();
            for (i, &(is_insert, k)) in ops.iter().enumerate() {
                if is_insert {
                    ph.insert(k, i as u64);
                    bh.insert(k, i as u64);
                } else {
                    proptest::prop_assert_eq!(ph.delete_min(), bh.delete_min());
                }
                proptest::prop_assert_eq!(ph.len(), bh.len());
            }
        }
    }
}
