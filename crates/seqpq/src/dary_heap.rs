//! D-ary min-heap: the cache-friendly variant of the binary heap.
//!
//! Larkin, Sen and Tarjan's empirical study (the paper's reference for
//! sorting-style benchmarks) found implicit 4-ary heaps the strongest
//! simple priority queue on modern hardware: a wider node fans out the
//! tree, shortening sift paths and packing siblings into one cache line.
//! Used as a substrate ablation next to [`crate::BinaryHeap`] and
//! [`crate::PairingHeap`].

use pq_traits::{Item, Key, SequentialPq, Value};

/// Array-based d-ary min-heap. `D` is the arity (≥ 2); `DaryHeap<4>` is
/// the classic quaternary heap.
#[derive(Clone, Debug)]
pub struct DaryHeap<const D: usize = 4> {
    data: Vec<Item>,
}

impl<const D: usize> Default for DaryHeap<D> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const D: usize> DaryHeap<D> {
    /// Create an empty heap.
    pub fn new() -> Self {
        assert!(D >= 2, "arity must be at least 2");
        Self { data: Vec::new() }
    }

    /// Create an empty heap with room for `cap` items.
    pub fn with_capacity(cap: usize) -> Self {
        assert!(D >= 2, "arity must be at least 2");
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    #[inline]
    fn parent(i: usize) -> usize {
        (i - 1) / D
    }

    #[inline]
    fn first_child(i: usize) -> usize {
        i * D + 1
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let p = Self::parent(i);
            if self.data[i] < self.data[p] {
                self.data.swap(i, p);
                i = p;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.data.len();
        loop {
            let first = Self::first_child(i);
            if first >= n {
                break;
            }
            let last = (first + D).min(n);
            let mut smallest = first;
            for c in first + 1..last {
                if self.data[c] < self.data[smallest] {
                    smallest = c;
                }
            }
            if self.data[smallest] < self.data[i] {
                self.data.swap(i, smallest);
                i = smallest;
            } else {
                break;
            }
        }
    }

    /// Check the heap invariant; used by tests.
    #[doc(hidden)]
    pub fn is_valid_heap(&self) -> bool {
        (1..self.data.len()).all(|i| self.data[Self::parent(i)] <= self.data[i])
    }
}

impl<const D: usize> SequentialPq for DaryHeap<D> {
    fn insert(&mut self, key: Key, value: Value) {
        self.data.push(Item::new(key, value));
        self.sift_up(self.data.len() - 1);
    }

    fn delete_min(&mut self) -> Option<Item> {
        if self.data.is_empty() {
            return None;
        }
        let last = self.data.len() - 1;
        self.data.swap(0, last);
        let min = self.data.pop();
        if !self.data.is_empty() {
            self.sift_down(0);
        }
        min
    }

    fn peek_min(&self) -> Option<Item> {
        self.data.first().copied()
    }

    fn len(&self) -> usize {
        self.data.len()
    }

    fn clear(&mut self) {
        self.data.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_output_arity_4() {
        let mut h = DaryHeap::<4>::new();
        for k in [9u64, 1, 8, 2, 7, 3, 6, 4, 5, 0] {
            h.insert(k, k);
        }
        let out: Vec<Key> = std::iter::from_fn(|| h.delete_min()).map(|i| i.key).collect();
        assert_eq!(out, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn sorted_output_arity_8() {
        let mut h = DaryHeap::<8>::new();
        for k in (0..200u64).rev() {
            h.insert(k, k);
        }
        let out: Vec<Key> = std::iter::from_fn(|| h.delete_min()).map(|i| i.key).collect();
        assert_eq!(out, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn empty_heap() {
        let mut h = DaryHeap::<4>::new();
        assert!(h.is_empty());
        assert_eq!(h.delete_min(), None);
        assert_eq!(h.peek_min(), None);
    }

    #[test]
    fn invariant_under_interleaving() {
        let mut h = DaryHeap::<4>::new();
        for i in 0..1000u64 {
            if i % 3 == 2 {
                h.delete_min();
            } else {
                h.insert((i * 2654435761) % 509, i);
            }
            assert!(h.is_valid_heap());
        }
    }

    proptest::proptest! {
        #[test]
        fn prop_matches_binary_heap(keys in proptest::collection::vec(0u64..1000, 0..250)) {
            let mut d = DaryHeap::<4>::new();
            let mut b = crate::BinaryHeap::new();
            for (i, &k) in keys.iter().enumerate() {
                d.insert(k, i as u64);
                b.insert(k, i as u64);
            }
            loop {
                let x = d.delete_min();
                let y = b.delete_min();
                proptest::prop_assert_eq!(x, y);
                if x.is_none() {
                    break;
                }
            }
        }
    }
}
