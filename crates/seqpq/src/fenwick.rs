//! Fenwick (binary indexed) tree in range-update / point-query form.
//!
//! Used by the quality benchmark's *delay* metric: every replayed
//! deletion of key `x` adds +1 to all smaller keys ("they were passed
//! over"), and an item's accumulated delay is read when it is deleted —
//! exactly a prefix range-add with point queries over the compressed key
//! universe.

/// Fenwick tree over `n` positions supporting `add` on a prefix/range
/// and `get` at a point, both O(log n).
#[derive(Clone, Debug)]
pub struct Fenwick {
    tree: Vec<i64>,
}

impl Fenwick {
    /// Tree over positions `0..n`.
    pub fn new(n: usize) -> Self {
        Self {
            tree: vec![0; n + 1],
        }
    }

    /// Number of positions.
    pub fn len(&self) -> usize {
        self.tree.len() - 1
    }

    /// `true` if the tree has no positions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Add `delta` to every position in `0..end` (prefix add).
    pub fn prefix_add(&mut self, end: usize, delta: i64) {
        // Difference-array trick on a standard Fenwick: add at 0, negate
        // at `end`.
        self.suffix_point_add(0, delta);
        if end < self.len() {
            self.suffix_point_add(end, -delta);
        }
    }

    /// Add `delta` to every position in `start..end`.
    pub fn range_add(&mut self, start: usize, end: usize, delta: i64) {
        debug_assert!(start <= end && end <= self.len());
        self.suffix_point_add(start, delta);
        if end < self.len() {
            self.suffix_point_add(end, -delta);
        }
    }

    /// Internal: add `delta` to the difference array at `i` (affects all
    /// point queries at positions ≥ i).
    fn suffix_point_add(&mut self, i: usize, delta: i64) {
        let mut i = i + 1;
        while i < self.tree.len() {
            self.tree[i] += delta;
            i += i & i.wrapping_neg();
        }
    }

    /// Value at position `i`.
    pub fn get(&self, i: usize) -> i64 {
        debug_assert!(i < self.len());
        let mut i = i + 1;
        let mut sum = 0;
        while i > 0 {
            sum += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tree() {
        let t = Fenwick::new(0);
        assert!(t.is_empty());
    }

    #[test]
    fn prefix_add_affects_only_prefix() {
        let mut t = Fenwick::new(8);
        t.prefix_add(3, 5);
        for i in 0..3 {
            assert_eq!(t.get(i), 5, "position {i}");
        }
        for i in 3..8 {
            assert_eq!(t.get(i), 0, "position {i}");
        }
    }

    #[test]
    fn range_add_and_overlaps() {
        let mut t = Fenwick::new(10);
        t.range_add(2, 7, 3);
        t.range_add(5, 10, 2);
        let expect = [0, 0, 3, 3, 3, 5, 5, 2, 2, 2];
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(t.get(i), e, "position {i}");
        }
    }

    #[test]
    fn full_prefix_is_whole_array() {
        let mut t = Fenwick::new(4);
        t.prefix_add(4, 1);
        for i in 0..4 {
            assert_eq!(t.get(i), 1);
        }
    }

    #[test]
    fn matches_naive_model_random_ops() {
        let n = 64;
        let mut t = Fenwick::new(n);
        let mut model = vec![0i64; n];
        let mut state = 0x12345678u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..500 {
            let a = (next() % n as u64) as usize;
            let b = (next() % n as u64) as usize;
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let delta = (next() % 9) as i64 - 4;
            t.range_add(lo, hi, delta);
            for x in model.iter_mut().take(hi).skip(lo) {
                *x += delta;
            }
            let probe = (next() % n as u64) as usize;
            assert_eq!(t.get(probe), model[probe]);
        }
    }
}
