//! CBPQ-style chunk-based concurrent priority queue.
//!
//! Braginsky's Chunk-Based Priority Queue (surveyed in the paper's
//! appendix D) is "primarily based on two main ideas: the chunk linked
//! list replaces Skiplists and heaps as the backing data structure, and
//! use of the more efficient Fetch-And-Add (FAA) instruction is
//! preferred over the Compare-And-Swap (CAS) instruction".
//!
//! This implementation keeps both ideas on the fast paths:
//!
//! * **Deletion** is a single `fetch_add` on the head chunk's cursor
//!   over an immutable sorted array — each index is claimed exactly
//!   once, no CAS retry loops on the hot path.
//! * **Insertion** into an interior chunk is a `fetch_add` to claim a
//!   slot, a plain payload write, and one slot-state CAS to commit —
//!   O(1) with no list traversal beyond a binary search.
//! * Insertions whose key falls into the head chunk's range go to the
//!   head's *buffer* (a Treiber stack with per-node taken flags);
//!   `delete_min` compares the buffer minimum against the cursor item
//!   so small keys are never skipped.
//!
//! Structural maintenance (head exhaustion, chunk overflow) differs from
//! the original: instead of in-place chunk freezing with a helping
//! protocol, the chunk list is published as an epoch-protected
//! copy-on-write vector (as in this workspace's SLSM) and restructures
//! go through one CAS; per-slot freeze states make the hand-off from a
//! live insert chunk to a frozen one unambiguous. See `Chunk::freeze`.

#![warn(missing_docs)]

mod chunk;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crossbeam_epoch::{self as epoch, Atomic, Owned};

use pq_traits::{ConcurrentPq, Item, Key, PqHandle, RelaxationBound, Value};

use chunk::{Chunk, DeleteAttempt, InsertOutcome};

/// Target number of items per chunk. The original CBPQ uses 928 (tuned
/// to cache lines); we use a power of two in the same regime.
const CHUNK_CAPACITY: usize = 1024;

/// The chunk list: head chunk (sorted, consumed by FAA cursor + buffer)
/// followed by insert chunks in ascending key-range order. `bounds[i]`
/// is the inclusive upper key bound of `chunks[i]`; the last bound is
/// always `Key::MAX`.
struct ChunkList {
    chunks: Vec<Arc<Chunk>>,
}

impl ChunkList {
    fn initial() -> Self {
        // An empty head that only covers key 0 plus one open insert
        // chunk: inserts take the O(1) slot path from the start instead
        // of degenerating into the head buffer.
        Self {
            chunks: vec![
                Arc::new(Chunk::new_head(Vec::new(), 0)),
                Arc::new(Chunk::new_insert(Vec::new(), Key::MAX, CHUNK_CAPACITY)),
            ],
        }
    }

    /// Index of the chunk responsible for `key`.
    fn locate(&self, key: Key) -> usize {
        // Binary search over upper bounds.
        let mut lo = 0;
        let mut hi = self.chunks.len() - 1;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.chunks[mid].max_key() >= key {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        lo
    }
}

/// CBPQ-style chunked priority queue.
///
/// Strict semantics up to races that are resolvable by linearization
/// (an insert overlapping a delete may be ordered after it).
pub struct Cbpq {
    list: Atomic<ChunkList>,
    live: AtomicUsize,
}

impl Cbpq {
    /// Create an empty queue.
    pub fn new() -> Self {
        Self {
            list: Atomic::new(ChunkList::initial()),
            live: AtomicUsize::new(0),
        }
    }

    /// Approximate number of stored items.
    pub fn len_hint(&self) -> usize {
        self.live.load(Ordering::Relaxed)
    }

    /// Number of chunks in the current snapshot (diagnostics).
    pub fn chunk_count(&self) -> usize {
        let guard = epoch::pin();
        // SAFETY: protected by `guard`; freed only via defer_destroy.
        unsafe { self.list.load(Ordering::Acquire, &guard).deref() }
            .chunks
            .len()
    }

    /// Insert a key-value pair.
    pub fn insert(&self, key: Key, value: Value) {
        let item = Item::new(key, value);
        let guard = epoch::pin();
        loop {
            let shared = self.list.load(Ordering::Acquire, &guard);
            // SAFETY: protected by `guard`.
            let list = unsafe { shared.deref() };
            let idx = list.locate(key);
            let chunk = &list.chunks[idx];
            if idx == 0 {
                // Head range: push to the buffer.
                if chunk.buffer_push(item) {
                    self.live.fetch_add(1, Ordering::Release);
                    return;
                }
                // Buffer sealed by a concurrent rebuild: help it along,
                // then retry on the fresh list.
                self.rebuild_head(&guard);
                continue;
            }
            match chunk.slot_insert(item) {
                InsertOutcome::Done => {
                    self.live.fetch_add(1, Ordering::Release);
                    return;
                }
                InsertOutcome::Full | InsertOutcome::Frozen => {
                    // Help (or initiate) the restructure of this chunk,
                    // then retry on the fresh list. Identity-based so a
                    // concurrent list change cannot misdirect the help.
                    let target = Arc::clone(chunk);
                    self.help_restructure(&target, &guard);
                }
            }
        }
    }

    /// Remove and return a minimal item.
    pub fn delete_min(&self) -> Option<Item> {
        let guard = epoch::pin();
        loop {
            let shared = self.list.load(Ordering::Acquire, &guard);
            // SAFETY: protected by `guard`.
            let list = unsafe { shared.deref() };
            let head = &list.chunks[0];
            match head.delete_attempt() {
                DeleteAttempt::Took(item) => {
                    self.live.fetch_sub(1, Ordering::Release);
                    return Some(item);
                }
                DeleteAttempt::Exhausted => {
                    if self.live.load(Ordering::Acquire) == 0 {
                        return None;
                    }
                    self.rebuild_head(&guard);
                }
            }
        }
    }

    /// Locate `target` by identity in the *current* list and restructure
    /// it: the head is rebuilt, an interior chunk is split. No-op if the
    /// chunk is no longer in the list (someone else finished).
    fn help_restructure(&self, target: &Arc<Chunk>, guard: &epoch::Guard) {
        let shared = self.list.load(Ordering::Acquire, guard);
        // SAFETY: protected by `guard`.
        let list = unsafe { shared.deref() };
        match list.chunks.iter().position(|c| Arc::ptr_eq(c, target)) {
            Some(0) => self.rebuild_head(guard),
            Some(idx) => self.split_chunk(idx, guard),
            None => {}
        }
    }

    /// Replace the overflowing chunk `idx` by (up to) two half chunks,
    /// splitting at a key boundary so chunk key ranges stay disjoint. A
    /// failed CAS means someone else restructured; callers retry on the
    /// fresh list either way (`freeze_and_collect` is idempotent).
    fn split_chunk(&self, idx: usize, guard: &epoch::Guard) {
        let shared = self.list.load(Ordering::Acquire, guard);
        // SAFETY: protected by `guard`.
        let list = unsafe { shared.deref() };
        if idx == 0 || idx >= list.chunks.len() {
            return;
        }
        let victim = &list.chunks[idx];
        let mut items = victim.freeze_and_collect();
        items.sort_unstable();
        // Split at a key boundary nearest the middle; identical keys
        // cannot straddle two range chunks.
        let split_at = {
            let mid = items.len() / 2;
            let boundary = |i: usize| i > 0 && i < items.len() && items[i - 1].key != items[i].key;
            (0..items.len())
                .flat_map(|d| [mid + d, mid.wrapping_sub(d)])
                .find(|&i| boundary(i))
                .unwrap_or(0)
        };
        let replacement: Vec<Arc<Chunk>> = if split_at == 0 || split_at >= items.len() {
            // No key boundary (all keys equal, or tiny): one chunk with
            // doubled capacity so progress is guaranteed.
            let cap = (items.len() * 2).max(CHUNK_CAPACITY);
            vec![Arc::new(Chunk::new_insert(items, victim.max_key(), cap))]
        } else {
            let right = items.split_off(split_at);
            let left_bound = items.last().expect("split_at > 0").key;
            vec![
                Arc::new(Chunk::new_insert(items, left_bound, CHUNK_CAPACITY)),
                Arc::new(Chunk::new_insert(right, victim.max_key(), CHUNK_CAPACITY)),
            ]
        };
        let mut chunks = list.chunks.clone();
        chunks.splice(idx..=idx, replacement);
        let new = Owned::new(ChunkList { chunks });
        if self
            .list
            .compare_exchange(shared, new, Ordering::AcqRel, Ordering::Acquire, guard)
            .is_ok()
        {
            // SAFETY: old list unreachable after the CAS.
            unsafe { guard.defer_destroy(shared) };
        }
    }

    /// Build a fresh head chunk from the exhausted head's remains (its
    /// buffer and leftover cursor items) plus the first insert chunk.
    ///
    /// `freeze_and_collect` snapshots are idempotent (every caller sees
    /// the same item set), so a failed list CAS is harmless: either the
    /// winning thread already published exactly this snapshot, or the
    /// frozen chunks are still in the fresh list and the caller's retry
    /// re-collects the identical items. Items can only be published by
    /// the single CAS that removes their frozen chunk from the list.
    fn rebuild_head(&self, guard: &epoch::Guard) {
        let shared = self.list.load(Ordering::Acquire, guard);
        // SAFETY: protected by `guard`.
        let list = unsafe { shared.deref() };
        let head = &list.chunks[0];
        if !head.is_frozen() && !head.is_exhausted() {
            // Someone already replaced the head; nothing to do.
            return;
        }
        let mut pool = head.freeze_and_collect();
        let consumed_next = list.chunks.len() > 1;
        if consumed_next {
            pool.extend(list.chunks[1].freeze_and_collect());
        }
        pool.sort_unstable();
        // The consumed region's upper bound: keys ≤ region_bound must be
        // covered by the replacement chunks.
        let region_bound = if consumed_next {
            list.chunks[1].max_key()
        } else {
            head.max_key()
        };
        // New head = the CHUNK_CAPACITY smallest items (extended so
        // equal keys never straddle a range boundary); the remainder
        // goes back into O(1)-insert chunks.
        let mut head_items = pool;
        let mut rest = if head_items.len() > CHUNK_CAPACITY {
            head_items.split_off(CHUNK_CAPACITY)
        } else {
            Vec::new()
        };
        while let (Some(last), Some(first)) = (head_items.last(), rest.first()) {
            if last.key == first.key {
                head_items.push(rest.remove(0));
            } else {
                break;
            }
        }
        let head_bound = if rest.is_empty() {
            region_bound
        } else {
            head_items.last().expect("head_items non-empty").key
        };
        let mut new_chunks: Vec<Arc<Chunk>> = Vec::with_capacity(list.chunks.len() + 2);
        new_chunks.push(Arc::new(Chunk::new_head(head_items, head_bound)));
        if !rest.is_empty() {
            // Chunk the remainder at key boundaries near CHUNK_CAPACITY.
            let mut start = 0usize;
            while start < rest.len() {
                let mut end = (start + CHUNK_CAPACITY).min(rest.len());
                while end < rest.len() && rest[end].key == rest[end - 1].key {
                    end += 1;
                }
                let piece: Vec<_> = rest[start..end].to_vec();
                let bound = if end == rest.len() {
                    region_bound
                } else {
                    piece.last().expect("non-empty piece").key
                };
                new_chunks.push(Arc::new(Chunk::new_insert(piece, bound, CHUNK_CAPACITY * 2)));
                start = end;
            }
        }
        new_chunks.extend(list.chunks[(1 + consumed_next as usize)..].iter().cloned());
        let new = Owned::new(ChunkList { chunks: new_chunks });
        if self
            .list
            .compare_exchange(shared, new, Ordering::AcqRel, Ordering::Acquire, guard)
            .is_ok()
        {
            // SAFETY: old list unreachable after the CAS.
            unsafe { guard.defer_destroy(shared) };
        }
    }
}

impl Default for Cbpq {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for Cbpq {
    fn drop(&mut self) {
        // SAFETY: &mut self: no concurrent accessors.
        unsafe {
            let p = self.list.load(Ordering::Relaxed, epoch::unprotected());
            if !p.is_null() {
                drop(p.into_owned());
            }
        }
    }
}

/// Per-thread handle for [`Cbpq`].
pub struct CbpqHandle<'a> {
    q: &'a Cbpq,
}

impl PqHandle for CbpqHandle<'_> {
    fn insert(&mut self, key: Key, value: Value) {
        self.q.insert(key, value);
    }

    fn delete_min(&mut self) -> Option<Item> {
        self.q.delete_min()
    }
}

impl ConcurrentPq for Cbpq {
    type Handle<'a> = CbpqHandle<'a>;

    fn handle(&self) -> CbpqHandle<'_> {
        CbpqHandle { q: self }
    }

    fn name(&self) -> String {
        "cbpq".to_owned()
    }
}

impl RelaxationBound for Cbpq {
    fn rank_bound(&self, _threads: usize) -> Option<u64> {
        Some(0) // strict up to in-flight operations
    }

    fn rank_bound_is_guaranteed(&self) -> bool {
        // Best-effort claim only: a deleter that pinned the head chunk
        // just before a freeze can still FAA into the superseded sorted
        // array while the collector has already merged smaller buffered
        // items into the replacement head. The semantic checker observes
        // rare deep deletions (depth ≲ chunk size) under schedule
        // perturbation through exactly this window.
        false
    }
}

// SAFETY: shared state is epoch-protected or atomic.
unsafe impl Send for Cbpq {}
unsafe impl Sync for Cbpq {}

impl std::fmt::Debug for Cbpq {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cbpq")
            .field("len_hint", &self.len_hint())
            .field("chunks", &self.chunk_count())
            .finish()
    }
}

// Re-exported for integration tests of the freeze protocol.
#[doc(hidden)]
pub use chunk::Chunk as RawChunk;
#[doc(hidden)]
pub use chunk::DeleteAttempt as RawDeleteAttempt;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_queue() {
        let q = Cbpq::new();
        let mut h = q.handle();
        assert_eq!(h.delete_min(), None);
        assert_eq!(q.len_hint(), 0);
    }

    #[test]
    fn sequential_strict_order() {
        let q = Cbpq::new();
        let mut h = q.handle();
        let keys = [42u64, 7, 19, 3, 88, 3, 55, 21, 0, 99];
        for (i, &k) in keys.iter().enumerate() {
            h.insert(k, i as u64);
        }
        let mut expect = keys.to_vec();
        expect.sort_unstable();
        let got: Vec<Key> = std::iter::from_fn(|| h.delete_min()).map(|i| i.key).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn buffer_path_preserves_strictness() {
        // The initial head covers the whole key space, so early inserts
        // all go through the buffer; small keys must still come out
        // first.
        let q = Cbpq::new();
        let mut h = q.handle();
        h.insert(100, 0);
        h.insert(1, 1);
        h.insert(50, 2);
        assert_eq!(h.delete_min().map(|i| i.key), Some(1));
        h.insert(0, 3);
        assert_eq!(h.delete_min().map(|i| i.key), Some(0));
        assert_eq!(h.delete_min().map(|i| i.key), Some(50));
        assert_eq!(h.delete_min().map(|i| i.key), Some(100));
    }

    #[test]
    fn chunks_split_under_volume() {
        let q = Cbpq::new();
        let mut h = q.handle();
        for i in 0..20_000u64 {
            h.insert((i * 2654435761) % 1_000_000, i);
        }
        // Drain a little to force head rebuilds over the split chunks.
        let mut prev = 0;
        for _ in 0..5_000 {
            let it = h.delete_min().expect("non-empty");
            assert!(it.key >= prev, "out of order: {} after {prev}", it.key);
            prev = it.key;
        }
        assert_eq!(q.len_hint(), 15_000);
    }

    #[test]
    fn drain_refill_cycles() {
        let q = Cbpq::new();
        let mut h = q.handle();
        for round in 0..5u64 {
            for i in 0..3_000 {
                h.insert((i * 7919) % 10_000, round * 3_000 + i);
            }
            let mut n = 0;
            let mut prev = 0;
            while let Some(it) = h.delete_min() {
                assert!(it.key >= prev);
                prev = it.key;
                n += 1;
            }
            assert_eq!(n, 3_000, "round {round}");
        }
    }

    #[test]
    fn concurrent_conservation_and_uniqueness() {
        let q = std::sync::Arc::new(Cbpq::new());
        let taken = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let q = &q;
                let taken = &taken;
                s.spawn(move || {
                    let mut h = q.handle();
                    let mut mine = Vec::new();
                    for i in 0..8_000u64 {
                        if (i + t) % 2 == 0 {
                            h.insert((i * 48271) % 100_000, (t << 48) | i);
                        } else if let Some(it) = h.delete_min() {
                            mine.push(it.value);
                        }
                    }
                    taken.lock().unwrap().extend(mine);
                });
            }
        });
        let mut all = taken.into_inner().unwrap();
        let mut h = q.handle();
        while let Some(it) = h.delete_min() {
            all.push(it.value);
        }
        assert_eq!(all.len(), 16_000, "items lost or duplicated");
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 16_000, "duplicate deletions");
    }

    #[test]
    fn concurrent_drain_is_non_decreasing_per_thread() {
        let q = std::sync::Arc::new(Cbpq::new());
        {
            let mut h = q.handle();
            for i in 0..20_000u64 {
                h.insert(i.wrapping_mul(48271) % 65_536, i);
            }
        }
        std::thread::scope(|s| {
            for _ in 0..4 {
                let q = &q;
                s.spawn(move || {
                    let mut h = q.handle();
                    let mut prev = None;
                    while let Some(it) = h.delete_min() {
                        if let Some(p) = prev {
                            assert!(it.key >= p, "cbpq went backwards");
                        }
                        prev = Some(it.key);
                    }
                });
            }
        });
        assert_eq!(q.len_hint(), 0);
    }
}
