//! Chunk internals: FAA-cursor deletion, slot-based insertion, Treiber
//! buffer, and the freeze/collect snapshot protocol.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering};
use std::sync::OnceLock;

use crossbeam_epoch::{self as epoch, Atomic, Owned, Shared};

use pq_traits::{Item, Key};

/// Slot states. Transitions are monotone: EMPTY → COMMITTED (writer) or
/// EMPTY → FROZEN (collector); a committed slot is never overwritten.
const SLOT_EMPTY: u8 = 0;
const SLOT_COMMITTED: u8 = 1;
const SLOT_FROZEN: u8 = 2;

struct Slot {
    state: AtomicU8,
    cell: UnsafeCell<Item>,
}

// SAFETY: the payload cell is written exactly once, by the unique thread
// whose FAA claimed the slot index, before the COMMITTED release store;
// it is read only after observing COMMITTED with acquire.
unsafe impl Send for Slot {}
unsafe impl Sync for Slot {}

impl Slot {
    fn new() -> Self {
        Self {
            state: AtomicU8::new(SLOT_EMPTY),
            cell: UnsafeCell::new(Item::new(0, 0)),
        }
    }

    fn committed(item: Item) -> Self {
        Self {
            state: AtomicU8::new(SLOT_COMMITTED),
            cell: UnsafeCell::new(item),
        }
    }
}

/// One node of the head chunk's insertion buffer (Treiber stack).
pub struct BufferNode {
    item: Item,
    taken: AtomicBool,
    next: Atomic<BufferNode>,
}

/// Result of a deletion attempt on the head chunk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeleteAttempt {
    /// Claimed this item.
    Took(Item),
    /// Cursor and buffer are exhausted (or the chunk is frozen); the
    /// caller should rebuild the head or report empty.
    Exhausted,
}

/// Result of a slot insertion into an interior chunk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InsertOutcome {
    /// Item committed.
    Done,
    /// All slots claimed; the chunk should be split.
    Full,
    /// The chunk is frozen by a concurrent restructure; retry on the
    /// fresh chunk list.
    Frozen,
}

/// A chunk: either the head (sorted array + FAA cursor + buffer) or an
/// interior insert chunk (slot array). Both kinds share the freeze
/// protocol.
pub struct Chunk {
    /// Inclusive upper key bound this chunk is responsible for.
    max_key: Key,
    /// Head part: immutable sorted items, consumed by `cursor`.
    sorted: Box<[Item]>,
    cursor: AtomicUsize,
    /// Head part: overflow buffer for inserts into the head's range.
    /// The tag bit on the stack head seals the buffer.
    buffer: Atomic<BufferNode>,
    /// Insert part: slot array claimed via `count`.
    slots: Box<[Slot]>,
    count: AtomicUsize,
    /// Freeze state: flag flips first (stops fast paths), then the
    /// snapshot is computed exactly once under the `OnceLock`.
    frozen: AtomicBool,
    snapshot: OnceLock<Vec<Item>>,
}

// SAFETY: interior mutability is via atomics, epoch-managed pointers and
// the Slot protocol above.
unsafe impl Send for Chunk {}
unsafe impl Sync for Chunk {}

const SEALED: usize = 1;

impl Chunk {
    /// Head chunk over an already-sorted item vector.
    pub fn new_head(sorted: Vec<Item>, max_key: Key) -> Self {
        debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
        Self {
            max_key,
            sorted: sorted.into_boxed_slice(),
            cursor: AtomicUsize::new(0),
            buffer: Atomic::null(),
            slots: Box::new([]),
            count: AtomicUsize::new(0),
            frozen: AtomicBool::new(false),
            snapshot: OnceLock::new(),
        }
    }

    /// Interior insert chunk pre-seeded with `items`, with room for
    /// `capacity` total.
    pub fn new_insert(items: Vec<Item>, max_key: Key, capacity: usize) -> Self {
        let capacity = capacity.max(items.len());
        let mut slots: Vec<Slot> = Vec::with_capacity(capacity);
        let n = items.len();
        for item in items {
            slots.push(Slot::committed(item));
        }
        slots.resize_with(capacity, Slot::new);
        Self {
            max_key,
            sorted: Box::new([]),
            cursor: AtomicUsize::new(0),
            buffer: Atomic::null(),
            slots: slots.into_boxed_slice(),
            count: AtomicUsize::new(n),
            frozen: AtomicBool::new(false),
            snapshot: OnceLock::new(),
        }
    }

    /// Upper key bound.
    pub fn max_key(&self) -> Key {
        self.max_key
    }

    /// `true` once the chunk is sealed for restructuring.
    pub fn is_frozen(&self) -> bool {
        self.frozen.load(Ordering::Acquire)
    }

    /// `true` if the head chunk has nothing left to serve (cursor done
    /// and no untaken buffered item). Racy; used as a rebuild hint.
    pub fn is_exhausted(&self) -> bool {
        if self.cursor.load(Ordering::Acquire) < self.sorted.len() {
            return false;
        }
        let guard = epoch::pin();
        self.buffer_min(&guard).is_none()
    }

    /// Push into the head buffer. Returns `false` if the buffer is
    /// sealed (chunk frozen).
    pub fn buffer_push(&self, item: Item) -> bool {
        let guard = epoch::pin();
        let mut node = Owned::new(BufferNode {
            item,
            taken: AtomicBool::new(false),
            next: Atomic::null(),
        });
        loop {
            let head = self.buffer.load(Ordering::Acquire, &guard);
            if head.tag() == SEALED {
                return false;
            }
            node.next.store(head, Ordering::Relaxed);
            match self.buffer.compare_exchange(
                head,
                node,
                Ordering::AcqRel,
                Ordering::Acquire,
                &guard,
            ) {
                Ok(_) => return true,
                Err(e) => node = e.new,
            }
        }
    }

    /// Smallest untaken buffered item, if any, with its node.
    fn buffer_min<'g>(&self, guard: &'g epoch::Guard) -> Option<(&'g BufferNode, Item)> {
        let mut best: Option<(&'g BufferNode, Item)> = None;
        let mut cur = self.buffer.load(Ordering::Acquire, guard).with_tag(0);
        // SAFETY: buffer nodes are freed only with the chunk (on list
        // retirement), which the guard protects.
        while let Some(node) = unsafe { cur.as_ref() } {
            if !node.taken.load(Ordering::Acquire)
                && best.is_none_or(|(_, b)| node.item < b)
            {
                best = Some((node, node.item));
            }
            cur = node.next.load(Ordering::Acquire, guard).with_tag(0);
        }
        best
    }

    /// FAA/buffer deletion protocol (head chunk only).
    pub fn delete_attempt(&self) -> DeleteAttempt {
        let guard = epoch::pin();
        loop {
            if self.is_frozen() {
                return DeleteAttempt::Exhausted;
            }
            let idx_peek = self.cursor.load(Ordering::Acquire);
            let cursor_item = self.sorted.get(idx_peek).copied();
            let buffered = self.buffer_min(&guard);
            match (cursor_item, buffered) {
                (None, None) => return DeleteAttempt::Exhausted,
                (Some(_), None) => {
                    let idx = self.cursor.fetch_add(1, Ordering::AcqRel);
                    if idx >= self.sorted.len() {
                        return DeleteAttempt::Exhausted;
                    }
                    return DeleteAttempt::Took(self.sorted[idx]);
                }
                (None, Some((node, item))) => {
                    if node
                        .taken
                        .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        return DeleteAttempt::Took(item);
                    }
                    // Lost the node; re-evaluate.
                }
                (Some(c), Some((node, b))) => {
                    if b < c {
                        if node
                            .taken
                            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                            .is_ok()
                        {
                            return DeleteAttempt::Took(b);
                        }
                    } else {
                        let idx = self.cursor.fetch_add(1, Ordering::AcqRel);
                        if idx >= self.sorted.len() {
                            return DeleteAttempt::Exhausted;
                        }
                        return DeleteAttempt::Took(self.sorted[idx]);
                    }
                }
            }
        }
    }

    /// O(1) slot insertion (interior chunks only).
    pub fn slot_insert(&self, item: Item) -> InsertOutcome {
        if self.is_frozen() {
            return InsertOutcome::Frozen;
        }
        let idx = self.count.fetch_add(1, Ordering::AcqRel);
        if idx >= self.slots.len() {
            return InsertOutcome::Full;
        }
        let slot = &self.slots[idx];
        // SAFETY: the FAA above makes us the unique claimant of `idx`;
        // the payload is written before the COMMITTED release store.
        unsafe { *slot.cell.get() = item };
        match slot.state.compare_exchange(
            SLOT_EMPTY,
            SLOT_COMMITTED,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => InsertOutcome::Done,
            // A collector froze this slot between the FAA and our
            // commit: the item is NOT in the chunk.
            Err(_) => InsertOutcome::Frozen,
        }
    }

    /// Seal the chunk and compute its item snapshot exactly once.
    ///
    /// Blocking (later callers wait for the first), idempotent: every
    /// caller receives the same snapshot, so a rebuild whose list CAS
    /// failed can simply retry. The snapshot contains precisely the
    /// items no concurrent operation returned or will return:
    /// cursor leftovers are claimed by swinging the cursor past the
    /// end, buffer items by winning their `taken` flags, slot items by
    /// freezing EMPTY slots so in-flight commits fail.
    pub fn freeze_and_collect(&self) -> Vec<Item> {
        self.frozen.store(true, Ordering::Release);
        self.snapshot
            .get_or_init(|| {
                let mut pool = Vec::new();
                // Claim the remaining cursor range in one step.
                let claimed_from = self
                    .cursor
                    .swap(self.sorted.len(), Ordering::AcqRel)
                    .min(self.sorted.len());
                pool.extend_from_slice(&self.sorted[claimed_from..]);
                // Seal the buffer, then claim every untaken node.
                let guard = epoch::pin();
                loop {
                    let head = self.buffer.load(Ordering::Acquire, &guard);
                    if head.tag() == SEALED {
                        break;
                    }
                    if self
                        .buffer
                        .compare_exchange(
                            head,
                            head.with_tag(SEALED),
                            Ordering::AcqRel,
                            Ordering::Acquire,
                            &guard,
                        )
                        .is_ok()
                    {
                        break;
                    }
                }
                let mut cur = self.buffer.load(Ordering::Acquire, &guard).with_tag(0);
                // SAFETY: nodes freed only with the chunk.
                while let Some(node) = unsafe { cur.as_ref() } {
                    if node
                        .taken
                        .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        pool.push(node.item);
                    }
                    cur = node.next.load(Ordering::Acquire, guard_ref(&guard)).with_tag(0);
                }
                // Freeze empty slots so in-flight commits fail, collect
                // committed ones.
                for slot in self.slots.iter() {
                    match slot.state.compare_exchange(
                        SLOT_EMPTY,
                        SLOT_FROZEN,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    ) {
                        Ok(_) => {}
                        Err(state) if state == SLOT_COMMITTED => {
                            // SAFETY: COMMITTED observed with acquire ⇒
                            // the writer's payload store is visible.
                            pool.push(unsafe { *slot.cell.get() });
                        }
                        Err(_) => {}
                    }
                }
                pool
            })
            .clone()
    }

    /// Approximate live item count (diagnostics).
    pub fn len_hint(&self) -> usize {
        let cursor_left = self
            .sorted
            .len()
            .saturating_sub(self.cursor.load(Ordering::Relaxed));
        let slot_count = self.count.load(Ordering::Relaxed).min(self.slots.len());
        cursor_left + slot_count
    }
}

#[inline]
fn guard_ref(g: &epoch::Guard) -> &epoch::Guard {
    g
}

impl Drop for Chunk {
    fn drop(&mut self) {
        // SAFETY: &mut self ⇒ quiescent; free the buffer stack.
        unsafe {
            let guard = epoch::unprotected();
            let mut cur = self.buffer.load(Ordering::Relaxed, guard).with_tag(0);
            while let Some(node) = cur.as_ref() {
                let next = node.next.load(Ordering::Relaxed, guard).with_tag(0);
                drop(cur.into_owned());
                cur = next;
            }
        }
    }
}

// Keep Shared import used (buffer traversal types).
#[allow(unused)]
fn _type_check<'g>(s: Shared<'g, BufferNode>) -> Shared<'g, BufferNode> {
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_cursor_serves_in_order() {
        let items: Vec<Item> = (0..10).map(|k| Item::new(k, k)).collect();
        let c = Chunk::new_head(items, Key::MAX);
        for k in 0..10 {
            assert_eq!(c.delete_attempt(), DeleteAttempt::Took(Item::new(k, k)));
        }
        assert_eq!(c.delete_attempt(), DeleteAttempt::Exhausted);
    }

    #[test]
    fn buffer_beats_larger_cursor_item() {
        let c = Chunk::new_head(vec![Item::new(10, 0)], Key::MAX);
        assert!(c.buffer_push(Item::new(3, 1)));
        assert_eq!(c.delete_attempt(), DeleteAttempt::Took(Item::new(3, 1)));
        assert_eq!(c.delete_attempt(), DeleteAttempt::Took(Item::new(10, 0)));
        assert_eq!(c.delete_attempt(), DeleteAttempt::Exhausted);
    }

    #[test]
    fn slot_insert_until_full() {
        let c = Chunk::new_insert(vec![], 100, 4);
        for i in 0..4 {
            assert_eq!(c.slot_insert(Item::new(i, i)), InsertOutcome::Done);
        }
        assert_eq!(c.slot_insert(Item::new(9, 9)), InsertOutcome::Full);
    }

    #[test]
    fn freeze_collects_everything_once() {
        let c = Chunk::new_head(vec![Item::new(5, 0), Item::new(6, 1)], Key::MAX);
        assert!(c.buffer_push(Item::new(2, 2)));
        // Consume one cursor item first.
        assert_eq!(c.delete_attempt(), DeleteAttempt::Took(Item::new(2, 2)));
        let snap1 = c.freeze_and_collect();
        let snap2 = c.freeze_and_collect();
        assert_eq!(snap1, snap2, "snapshot must be idempotent");
        let mut keys: Vec<Key> = snap1.iter().map(|i| i.key).collect();
        keys.sort_unstable();
        assert_eq!(keys, vec![5, 6]);
        assert_eq!(c.delete_attempt(), DeleteAttempt::Exhausted);
        assert!(!c.buffer_push(Item::new(1, 9)), "sealed buffer accepts");
    }

    #[test]
    fn freeze_fails_inflight_commit() {
        let c = Chunk::new_insert(vec![], 100, 8);
        // Claim a slot index by hand: FAA then freeze before commit.
        let idx = c.count.fetch_add(1, Ordering::AcqRel);
        let snap = c.freeze_and_collect();
        assert!(snap.is_empty());
        // The in-flight writer now fails to commit.
        let slot = &c.slots[idx];
        unsafe { *slot.cell.get() = Item::new(1, 1) };
        assert!(slot
            .state
            .compare_exchange(SLOT_EMPTY, SLOT_COMMITTED, Ordering::AcqRel, Ordering::Acquire)
            .is_err());
    }

    #[test]
    fn concurrent_freeze_vs_deletes_no_dup_no_loss() {
        for _ in 0..50 {
            let items: Vec<Item> = (0..100).map(|k| Item::new(k, k)).collect();
            let c = std::sync::Arc::new(Chunk::new_head(items, Key::MAX));
            for i in 0..20 {
                c.buffer_push(Item::new(1000 + i, 1000 + i));
            }
            let taken = std::sync::Mutex::new(Vec::new());
            let snapshot = std::sync::Mutex::new(Vec::new());
            std::thread::scope(|s| {
                for _ in 0..2 {
                    let c = &c;
                    let taken = &taken;
                    s.spawn(move || {
                        let mut mine = Vec::new();
                        while let DeleteAttempt::Took(it) = c.delete_attempt() {
                            mine.push(it);
                        }
                        taken.lock().unwrap().extend(mine);
                    });
                }
                let c = &c;
                let snapshot = &snapshot;
                s.spawn(move || {
                    snapshot.lock().unwrap().extend(c.freeze_and_collect());
                });
            });
            let mut all = taken.into_inner().unwrap();
            all.extend(snapshot.into_inner().unwrap());
            assert_eq!(all.len(), 120, "lost or duplicated items");
            all.sort();
            all.dedup();
            assert_eq!(all.len(), 120, "duplicates across freeze/delete");
        }
    }
}
