//! The sticky, buffered MultiQueue (`mq-sticky`).
//!
//! Williams, Sanders and Dementiev's engineering of the MultiQueue
//! ("Engineering MultiQueues: Fast Relaxed Concurrent Priority Queues",
//! arXiv:2107.01350) removes the per-operation costs of the SPAA 2015
//! baseline with two orthogonal optimizations:
//!
//! * **Queue stickiness** — instead of rolling fresh random sub-queue
//!   indices for every operation, each handle keeps its two chosen
//!   sub-queues for `s` consecutive operations (re-rolling early on
//!   `try_lock` failure or apparent emptiness). This amortizes the random
//!   pick and, more importantly, keeps each handle's working set in a
//!   small number of sub-queue heaps, turning cache misses into hits.
//! * **Insertion/deletion buffers** — each handle accumulates up to `m`
//!   inserts in a local sorted buffer and flushes them into one sub-queue
//!   under a *single* lock acquire; symmetrically, a successful
//!   two-choice pop pulls up to `m` smallest items into a handle-local
//!   buffer and serves subsequent `delete_min`s from it without touching
//!   shared state.
//!
//! Quality is kept from collapsing by never serving a buffer blindly:
//! `delete_min` compares the local buffer heads against the lock-free
//! sampled minima of the two sticky sub-queues and only returns a
//! buffered item when it is no larger than both samples. The relaxation
//! cost is therefore bounded by the staleness of `s` operations plus the
//! up-to-`m·P` items hidden in other threads' buffers.
//!
//! Buffered items are never lost: [`PqHandle::flush`] commits the
//! insertion buffer and returns deletion-buffered items to the shared
//! structure, and the handle calls it on drop. With `s = 1, m = 1` the
//! structure degenerates to (a determinstically seeded) plain
//! [`MultiQueue`](crate::MultiQueue).

use std::sync::atomic::{AtomicU64, Ordering};

use crossbeam_utils::CachePadded;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use pq_traits::telemetry;
use pq_traits::{ConcurrentPq, Item, Key, PqHandle, RelaxationBound, SequentialPq, Value};
use seqpq::BinaryHeap;

use crate::{handle_seed, make_sub_queues, two_choice_pop, SubQueue, DEFAULT_SEED, EMPTY_MIN};

/// Sticky, buffered MultiQueue: the [`crate::MultiQueue`] hot path
/// re-engineered with queue stickiness (`s`) and per-handle
/// insertion/deletion buffers (`m`).
pub struct MultiQueueSticky<P: SequentialPq + Default + Send = BinaryHeap> {
    queues: Box<[CachePadded<SubQueue<P>>]>,
    c: usize,
    stickiness: usize,
    batch: usize,
    seed: u64,
    handle_ctr: AtomicU64,
}

impl<P: SequentialPq + Default + Send> MultiQueueSticky<P> {
    /// Create a sticky MultiQueue with `c * threads` sub-queues, handle
    /// stickiness `s` (operations between re-rolls; `1` = re-roll every
    /// op like the plain MultiQueue) and buffer capacity `m` (items per
    /// insertion/deletion buffer; `1` = unbuffered).
    pub fn new(c: usize, threads: usize, s: usize, m: usize) -> Self {
        Self::with_seed(c, threads, s, m, DEFAULT_SEED)
    }

    /// As [`new`](Self::new) with an explicit queue seed; handle RNGs
    /// derive deterministically from `seed ⊕ handle counter`.
    pub fn with_seed(c: usize, threads: usize, s: usize, m: usize, seed: u64) -> Self {
        Self {
            queues: make_sub_queues(c, threads),
            c,
            stickiness: s.max(1),
            batch: m.max(1),
            seed,
            handle_ctr: AtomicU64::new(0),
        }
    }

    /// Number of sub-queues.
    pub fn sub_queue_count(&self) -> usize {
        self.queues.len()
    }

    /// Stickiness parameter `s`.
    pub fn stickiness(&self) -> usize {
        self.stickiness
    }

    /// Buffer capacity `m`.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Total items across all sub-queues (excluding items buffered in
    /// live handles). Takes every lock; for tests and quiescent
    /// inspection.
    pub fn len_quiescent(&self) -> usize {
        self.queues.iter().map(|q| q.heap.lock().len()).sum()
    }
}

impl<P: SequentialPq + Default + Send> std::fmt::Debug for MultiQueueSticky<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiQueueSticky")
            .field("sub_queues", &self.queues.len())
            .field("stickiness", &self.stickiness)
            .field("batch", &self.batch)
            .finish()
    }
}

/// Per-thread handle for [`MultiQueueSticky`].
///
/// Holds the sticky sub-queue pair, the RNG, and the insertion/deletion
/// buffers. Dropping the handle flushes both buffers back into the
/// shared structure.
pub struct MultiQueueStickyHandle<'a, P: SequentialPq + Default + Send = BinaryHeap> {
    q: &'a MultiQueueSticky<P>,
    rng: SmallRng,
    /// The two sticky sub-queue indices (deletes sample both; insert
    /// flushes go to `sticky[0]`).
    sticky: [usize; 2],
    /// Operations left before the sticky pair is re-rolled.
    uses_left: usize,
    /// Pending inserts, sorted descending (last = smallest).
    ins_buf: Vec<Item>,
    /// Prefetched deletions, sorted descending (last = smallest).
    del_buf: Vec<Item>,
}

/// Insert into a descending-sorted vector (last element = minimum).
fn insert_sorted_desc(buf: &mut Vec<Item>, item: Item) {
    let pos = buf.partition_point(|x| *x > item);
    buf.insert(pos, item);
}

impl<P: SequentialPq + Default + Send> MultiQueueStickyHandle<'_, P> {
    /// Pick a fresh sticky pair and reset the stickiness budget.
    fn re_roll(&mut self) {
        let n = self.q.queues.len();
        let a = self.rng.gen_range(0..n);
        let r = self.rng.gen_range(0..n - 1);
        let b = if r >= a { r + 1 } else { r };
        self.sticky = [a, b];
        self.uses_left = self.q.stickiness;
    }

    /// Consume one operation from the stickiness budget.
    fn tick(&mut self) {
        self.uses_left = self.uses_left.saturating_sub(1);
    }

    /// Re-roll if the stickiness budget is spent.
    fn ensure_sticky(&mut self) {
        if self.uses_left == 0 {
            self.re_roll();
        }
    }

    /// Drain the insertion buffer into one sub-queue under a single lock
    /// acquire (the sticky insert queue; re-roll on contention). Returns
    /// the number of items committed.
    fn flush_inserts(&mut self) -> u64 {
        if self.ins_buf.is_empty() {
            return 0;
        }
        loop {
            self.ensure_sticky();
            let q = &self.q.queues[self.sticky[0]];
            let Some(mut heap) = q.heap.try_lock() else {
                self.re_roll();
                continue;
            };
            let n = self.ins_buf.len() as u64;
            for it in self.ins_buf.drain(..) {
                heap.insert(it.key, it.value);
            }
            q.publish_min(&heap);
            telemetry::record(telemetry::Event::MqBufferFlush);
            telemetry::record_n(telemetry::Event::MqBufferFlushItems, n);
            return n;
        }
    }

    /// Return deletion-buffered items to the shared structure (they were
    /// popped but not yet handed to the caller). Returns the number of
    /// items returned.
    fn unspool_deletes(&mut self) -> u64 {
        if self.del_buf.is_empty() {
            return 0;
        }
        loop {
            self.ensure_sticky();
            let q = &self.q.queues[self.sticky[0]];
            let Some(mut heap) = q.heap.try_lock() else {
                self.re_roll();
                continue;
            };
            let n = self.del_buf.len() as u64;
            for it in self.del_buf.drain(..) {
                heap.insert(it.key, it.value);
            }
            q.publish_min(&heap);
            return n;
        }
    }

    /// Refill the deletion buffer from `pick`: pop up to `m` smallest
    /// items under one lock acquire, then spill any overflow (the
    /// largest buffered items) back so the buffer never exceeds `m`.
    /// Returns `true` if at least one item was obtained.
    fn refill_from(&mut self, pick: usize) -> bool {
        let q = &self.q.queues[pick];
        let Some(mut heap) = q.heap.try_lock() else {
            self.re_roll();
            return false;
        };
        let mut got = false;
        for _ in 0..self.q.batch {
            match heap.delete_min() {
                Some(it) => {
                    insert_sorted_desc(&mut self.del_buf, it);
                    got = true;
                }
                None => break,
            }
        }
        while self.del_buf.len() > self.q.batch {
            // Front of the descending buffer = largest; give it back.
            let largest = self.del_buf.remove(0);
            heap.insert(largest.key, largest.value);
        }
        q.publish_min(&heap);
        got
    }
}

impl<P: SequentialPq + Default + Send> PqHandle for MultiQueueStickyHandle<'_, P> {
    fn insert(&mut self, key: Key, value: Value) {
        insert_sorted_desc(&mut self.ins_buf, Item::new(key, value));
        if self.ins_buf.len() >= self.q.batch {
            self.flush_inserts();
        }
        self.tick();
    }

    fn delete_min(&mut self) -> Option<Item> {
        loop {
            self.ensure_sticky();
            let [a, b] = self.sticky;
            let ka = self.q.queues[a].min_key.load(Ordering::Acquire);
            let kb = self.q.queues[b].min_key.load(Ordering::Acquire);
            let qmin = ka.min(kb);

            // Serve from a local buffer only while its head is no larger
            // than both sampled sub-queue minima — this is what keeps the
            // rank error from collapsing to "my own last m inserts".
            let ins_min = self.ins_buf.last().map_or(EMPTY_MIN, |it| it.key);
            let del_min = self.del_buf.last().map_or(EMPTY_MIN, |it| it.key);
            if ins_min <= del_min && ins_min <= qmin && !self.ins_buf.is_empty() {
                self.tick();
                return self.ins_buf.pop();
            }
            if del_min <= qmin && !self.del_buf.is_empty() {
                self.tick();
                return self.del_buf.pop();
            }

            if qmin == EMPTY_MIN {
                telemetry::record(telemetry::Event::MqEmptySample);
                // Both sticky sub-queues look empty and (by the checks
                // above) both buffers are empty. Commit any pending state
                // and fall back to the plain randomized probe + sweep so
                // the emptiness answer is as reliable as the baseline's.
                self.re_roll();
                return two_choice_pop(&self.q.queues, &mut self.rng);
            }

            // Two-choice pop from the smaller sampled sub-queue,
            // prefetching up to `m` items into the deletion buffer.
            let pick = if ka <= kb { a } else { b };
            if self.refill_from(pick) {
                self.tick();
                return self.del_buf.pop();
            }
            // Lock contention or a race emptied the picked queue;
            // `refill_from` already re-rolled on contention. Re-roll on
            // the empty race too and retry.
            self.re_roll();
        }
    }

    fn flush(&mut self) -> u64 {
        self.flush_inserts() + self.unspool_deletes()
    }
}

impl<P: SequentialPq + Default + Send> Drop for MultiQueueStickyHandle<'_, P> {
    fn drop(&mut self) {
        self.flush();
    }
}

impl<P: SequentialPq + Default + Send> ConcurrentPq for MultiQueueSticky<P> {
    type Handle<'a>
        = MultiQueueStickyHandle<'a, P>
    where
        P: 'a;

    fn handle(&self) -> MultiQueueStickyHandle<'_, P> {
        let idx = self.handle_ctr.fetch_add(1, Ordering::Relaxed);
        let mut h = MultiQueueStickyHandle {
            q: self,
            rng: SmallRng::seed_from_u64(handle_seed(self.seed, idx)),
            sticky: [0, 1],
            uses_left: 0, // forces a re-roll on first use
            ins_buf: Vec::with_capacity(self.batch),
            del_buf: Vec::with_capacity(self.batch),
        };
        h.re_roll();
        h
    }

    fn name(&self) -> String {
        let (c, s, m) = (self.c, self.stickiness, self.batch);
        if (c, s, m) == (4, 8, 8) {
            "mq-sticky".to_owned()
        } else if c == 4 {
            format!("mq-sticky-s{s}-m{m}")
        } else {
            format!("mq-sticky-c{c}-s{s}-m{m}")
        }
    }
}

impl<P: SequentialPq + Default + Send> RelaxationBound for MultiQueueSticky<P> {
    fn rank_bound(&self, _threads: usize) -> Option<u64> {
        // Like the plain MultiQueue, no analysed bound; empirically the
        // rank error adds O(m·P) buffered items and O(s) staleness on
        // top of the baseline (see EXPERIMENTS.md).
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Vec<(usize, usize)> {
        vec![(1, 1), (8, 1), (64, 1), (1, 16), (8, 16), (64, 16)]
    }

    #[test]
    fn drains_everything_across_the_ablation_grid() {
        for (s, m) in grid() {
            let q = MultiQueueSticky::<BinaryHeap>::new(4, 2, s, m);
            let mut h = q.handle();
            for k in 0..1000u64 {
                h.insert(k, k);
            }
            let mut got: Vec<Key> =
                std::iter::from_fn(|| h.delete_min()).map(|i| i.key).collect();
            got.sort_unstable();
            assert_eq!(got, (0..1000).collect::<Vec<_>>(), "s={s} m={m}");
            assert_eq!(h.delete_min(), None);
        }
    }

    #[test]
    fn empty_queue_returns_none() {
        let q = MultiQueueSticky::<BinaryHeap>::new(4, 2, 8, 16);
        let mut h = q.handle();
        assert_eq!(h.delete_min(), None);
    }

    #[test]
    fn flush_returns_number_of_committed_items() {
        let q = MultiQueueSticky::<BinaryHeap>::new(4, 2, 8, 16);
        let mut h = q.handle();
        for k in 0..5u64 {
            h.insert(k, k);
        }
        // m=16 not reached, so all 5 items are still buffered.
        assert_eq!(h.flush(), 5);
        // Nothing left to commit on a second flush.
        assert_eq!(h.flush(), 0);
    }

    #[test]
    fn single_item_roundtrip_despite_buffering() {
        let q = MultiQueueSticky::<BinaryHeap>::new(4, 4, 64, 16);
        let mut h = q.handle();
        h.insert(9, 1);
        // The item sits in the insertion buffer (m=16 not reached); the
        // delete must still find it.
        assert_eq!(h.delete_min(), Some(Item::new(9, 1)));
        assert_eq!(h.delete_min(), None);
    }

    #[test]
    fn flush_commits_buffered_inserts() {
        let q = MultiQueueSticky::<BinaryHeap>::new(4, 2, 8, 16);
        let mut h = q.handle();
        for k in 0..10u64 {
            h.insert(k, k);
        }
        // m=16: nothing flushed yet.
        assert!(q.len_quiescent() < 10);
        h.flush();
        assert_eq!(q.len_quiescent(), 10);
    }

    #[test]
    fn drop_flushes_buffers_no_item_lost() {
        let q = MultiQueueSticky::<BinaryHeap>::new(4, 2, 8, 16);
        {
            let mut h = q.handle();
            for k in 0..100u64 {
                h.insert(k, k);
            }
            // Prime the deletion buffer too, then abandon the handle with
            // items still in both buffers.
            let _ = h.delete_min();
            h.insert(1000, 1000);
        }
        // 100 inserted + 1 extra − 1 deleted = 100 items must survive.
        assert_eq!(q.len_quiescent(), 100);
        let mut h = q.handle();
        let mut n = 0;
        while h.delete_min().is_some() {
            n += 1;
        }
        assert_eq!(n, 100);
    }

    #[test]
    fn deletion_buffer_defers_to_smaller_shared_minimum() {
        // One handle buffers large keys; a second handle inserts a
        // smaller key. The first handle's next delete must not blindly
        // serve its buffer.
        let q = MultiQueueSticky::<BinaryHeap>::new(2, 1, 64, 4);
        let mut h1 = q.handle();
        for k in [50u64, 60, 70, 80] {
            h1.insert(k, k);
        }
        h1.flush();
        let first = h1.delete_min().unwrap();
        assert_eq!(first.key, 50);
        // del_buf now likely holds {60,70,80}.
        let mut h2 = q.handle();
        h2.insert(1, 1);
        h2.flush();
        let next = h1.delete_min().unwrap();
        assert_eq!(next.key, 1, "buffer head 60 must lose to published 1");
    }

    #[test]
    fn concurrent_conservation_with_buffers() {
        use std::sync::atomic::AtomicUsize;
        for (s, m) in [(8usize, 16usize), (64, 16)] {
            let q = std::sync::Arc::new(MultiQueueSticky::<BinaryHeap>::new(4, 4, s, m));
            let deleted = AtomicUsize::new(0);
            std::thread::scope(|sc| {
                for t in 0..4u64 {
                    let q = &q;
                    let deleted = &deleted;
                    sc.spawn(move || {
                        let mut h = q.handle();
                        let mut dels = 0;
                        for i in 0..8000u64 {
                            if (i + t) % 2 == 0 {
                                h.insert((i * 31) % 1000, t * 8000 + i);
                            } else if h.delete_min().is_some() {
                                dels += 1;
                            }
                        }
                        deleted.fetch_add(dels, Ordering::Relaxed);
                        // Handle drop flushes both buffers.
                    });
                }
            });
            let mut h = q.handle();
            let mut rest = 0;
            while h.delete_min().is_some() {
                rest += 1;
            }
            assert_eq!(
                deleted.load(Ordering::Relaxed) + rest,
                16000,
                "items lost at s={s} m={m}"
            );
        }
    }

    #[test]
    fn no_duplicate_values_under_concurrency() {
        let q = std::sync::Arc::new(MultiQueueSticky::<BinaryHeap>::new(2, 4, 8, 16));
        {
            let mut h = q.handle();
            for v in 0..4000u64 {
                h.insert(v % 50, v);
            }
        }
        let all = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let q = &q;
                let all = &all;
                s.spawn(move || {
                    let mut h = q.handle();
                    let mut mine = Vec::new();
                    while let Some(it) = h.delete_min() {
                        mine.push(it.value);
                    }
                    // A racing flush from another finishing handle can
                    // repopulate the queue; one more drain round after
                    // flushing our own buffers.
                    h.flush();
                    while let Some(it) = h.delete_min() {
                        mine.push(it.value);
                    }
                    all.lock().unwrap().extend(mine);
                });
            }
        });
        let mut vals = all.into_inner().unwrap();
        vals.sort_unstable();
        vals.dedup();
        assert_eq!(vals.len(), 4000);
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed: u64| -> Vec<Item> {
            let q = MultiQueueSticky::<BinaryHeap>::with_seed(4, 2, 8, 16, seed);
            let mut h = q.handle();
            for k in 0..500u64 {
                h.insert((k * 37) % 251, k);
            }
            std::iter::from_fn(|| h.delete_min()).collect()
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn s1_m1_degenerates_to_plain_behavior() {
        // Unbuffered config: every insert is immediately visible.
        let q = MultiQueueSticky::<BinaryHeap>::new(4, 2, 1, 1);
        let mut h = q.handle();
        for k in 0..50u64 {
            h.insert(k, k);
        }
        assert_eq!(q.len_quiescent(), 50);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(16))]
        #[test]
        fn prop_multiset_preserved(
            keys in proptest::collection::vec(0u64..500, 1..300),
            s in 1usize..32,
            m in 1usize..24,
        ) {
            let q = MultiQueueSticky::<BinaryHeap>::new(4, 2, s, m);
            let mut h = q.handle();
            for (i, &k) in keys.iter().enumerate() {
                h.insert(k, i as u64);
            }
            let mut got: Vec<Key> = std::iter::from_fn(|| h.delete_min())
                .map(|i| i.key).collect();
            got.sort_unstable();
            let mut expect = keys.clone();
            expect.sort_unstable();
            proptest::prop_assert_eq!(got, expect);
        }
    }
}
