//! The MultiQueue relaxed concurrent priority queue (`multiqueue`).
//!
//! Rihani, Sanders and Dementiev (SPAA 2015 brief announcement):
//! `c·P` sequential priority queues, each protected by a lock (the paper
//! under reproduction sets the tuning parameter `c = 4` and uses C++
//! `std::priority_queue`; we use the same array-based binary heap from
//! `seqpq`). Insertions push to a random queue; deletions peek the
//! minima of **two** randomly chosen queues and pop from the one with the
//! smaller head. "So far, no complete analysis of its semantic bounds
//! exists" — the expected rank error grows linearly with the thread
//! count, which the quality benchmark reproduces.
//!
//! Each sub-queue caches its current minimum key in an atomic so the
//! two-choice comparison does not need to take either lock; the lock is
//! only taken to mutate the chosen queue (with `try_lock` + re-roll on
//! contention, so operations never block on a busy sub-queue).

#![warn(missing_docs)]

mod sticky;

pub use sticky::{MultiQueueSticky, MultiQueueStickyHandle};

use std::sync::atomic::{AtomicU64, Ordering};

use crossbeam_utils::CachePadded;
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use pq_traits::telemetry;
use pq_traits::{ConcurrentPq, Item, Key, PqHandle, RelaxationBound, SequentialPq, Value};
use seqpq::BinaryHeap;

/// Sentinel stored in the cached-minimum atomic of an empty sub-queue.
pub(crate) const EMPTY_MIN: u64 = u64::MAX;

// Deterministic per-handle seeding, now hoisted into `pq_traits::seed`
// so every queue crate shares one mixing function.
pub(crate) use pq_traits::seed::{handle_seed, DEFAULT_QUEUE_SEED as DEFAULT_SEED};

pub(crate) struct SubQueue<P: SequentialPq> {
    pub(crate) heap: Mutex<P>,
    /// Key of the heap's current minimum, or [`EMPTY_MIN`]. Updated under
    /// the lock after every mutation; read lock-free by the two-choice
    /// deletion.
    pub(crate) min_key: AtomicU64,
}

impl<P: SequentialPq + Default> SubQueue<P> {
    pub(crate) fn new() -> Self {
        Self {
            heap: Mutex::new(P::default()),
            min_key: AtomicU64::new(EMPTY_MIN),
        }
    }

    pub(crate) fn publish_min(&self, heap: &P) {
        let key = heap.peek_min().map_or(EMPTY_MIN, |it| it.key);
        self.min_key.store(key, Ordering::Release);
    }
}

pub(crate) fn make_sub_queues<P: SequentialPq + Default>(
    c: usize,
    threads: usize,
) -> Box<[CachePadded<SubQueue<P>>]> {
    let n = (c * threads).max(2);
    (0..n).map(|_| CachePadded::new(SubQueue::new())).collect()
}

/// Two-choice deletion over a sub-queue array: sample the cached minima
/// of two distinct random sub-queues, pop from the smaller under its
/// lock. After `n` consecutive all-empty-looking samples (or `2n` total
/// rounds) fall back to a blocking full sweep so emptiness answers are
/// reliable without burning the whole round budget on an empty queue.
///
/// Shared by the plain [`MultiQueue`] and the slow path of
/// [`MultiQueueSticky`].
pub(crate) fn two_choice_pop<P: SequentialPq + Default>(
    queues: &[CachePadded<SubQueue<P>>],
    rng: &mut SmallRng,
) -> Option<Item> {
    let n = queues.len();
    let mut empty_rounds = 0;
    for _ in 0..2 * n {
        let a = rng.gen_range(0..n);
        let b = {
            let r = rng.gen_range(0..n - 1);
            if r >= a {
                r + 1
            } else {
                r
            }
        };
        let ka = queues[a].min_key.load(Ordering::Acquire);
        let kb = queues[b].min_key.load(Ordering::Acquire);
        let pick = if ka <= kb { a } else { b };
        if ka.min(kb) == EMPTY_MIN {
            telemetry::record(telemetry::Event::MqEmptySample);
            // Every sub-queue looking empty for a whole round's worth of
            // samples almost certainly means the queue *is* empty; go
            // verify with the sweep instead of burning the remaining
            // rounds on more empty samples.
            empty_rounds += 1;
            if empty_rounds >= n {
                break;
            }
            continue;
        }
        empty_rounds = 0;
        let q = &queues[pick];
        let Some(mut heap) = q.heap.try_lock() else {
            continue;
        };
        let item = heap.delete_min();
        q.publish_min(&heap);
        drop(heap);
        if let Some(item) = item {
            return Some(item);
        }
    }
    // Deterministic sweep: blockingly check each sub-queue once.
    for q in queues.iter() {
        let mut heap = q.heap.lock();
        if let Some(item) = heap.delete_min() {
            q.publish_min(&heap);
            return Some(item);
        }
    }
    None
}

/// The MultiQueue relaxed priority queue, generic over the sequential
/// substrate (ablation; defaults to the paper's binary heap).
pub struct MultiQueue<P: SequentialPq + Default + Send = BinaryHeap> {
    queues: Box<[CachePadded<SubQueue<P>>]>,
    seed: u64,
    handle_ctr: AtomicU64,
}

impl<P: SequentialPq + Default + Send> MultiQueue<P> {
    /// Create a MultiQueue with `c * threads` sub-queues (the paper's
    /// benchmarks use `c = 4`) and the default deterministic seed.
    pub fn new(c: usize, threads: usize) -> Self {
        Self::with_seed(c, threads, DEFAULT_SEED)
    }

    /// Create a MultiQueue whose handle RNGs derive from `seed` (handle
    /// `i` gets `seed ⊕ mix(i)`), making benchmark runs reproducible.
    pub fn with_seed(c: usize, threads: usize, seed: u64) -> Self {
        Self {
            queues: make_sub_queues(c, threads),
            seed,
            handle_ctr: AtomicU64::new(0),
        }
    }

    /// Fallback constructor for callers that *want* run-to-run variation:
    /// draws the queue seed from OS entropy instead of the deterministic
    /// default.
    pub fn with_entropy(c: usize, threads: usize) -> Self {
        Self::with_seed(c, threads, SmallRng::from_entropy().gen())
    }

    /// Number of sub-queues.
    pub fn sub_queue_count(&self) -> usize {
        self.queues.len()
    }

    /// Total items across all sub-queues. Takes every lock; for tests and
    /// quiescent inspection.
    pub fn len_quiescent(&self) -> usize {
        self.queues.iter().map(|q| q.heap.lock().len()).sum()
    }

    fn insert_impl(&self, key: Key, value: Value, rng: &mut SmallRng) {
        loop {
            let idx = rng.gen_range(0..self.queues.len());
            let q = &self.queues[idx];
            // Non-blocking: re-roll on contention instead of waiting.
            if let Some(mut heap) = q.heap.try_lock() {
                heap.insert(key, value);
                q.publish_min(&heap);
                return;
            }
        }
    }

    fn delete_min_impl(&self, rng: &mut SmallRng) -> Option<Item> {
        two_choice_pop(&self.queues, rng)
    }
}

impl<P: SequentialPq + Default + Send> std::fmt::Debug for MultiQueue<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiQueue")
            .field("sub_queues", &self.queues.len())
            .finish()
    }
}

/// Per-thread handle for [`MultiQueue`].
pub struct MultiQueueHandle<'a, P: SequentialPq + Default + Send = BinaryHeap> {
    q: &'a MultiQueue<P>,
    rng: SmallRng,
}

impl<P: SequentialPq + Default + Send> PqHandle for MultiQueueHandle<'_, P> {
    fn insert(&mut self, key: Key, value: Value) {
        self.q.insert_impl(key, value, &mut self.rng);
    }

    fn delete_min(&mut self) -> Option<Item> {
        self.q.delete_min_impl(&mut self.rng)
    }
}

impl<P: SequentialPq + Default + Send> ConcurrentPq for MultiQueue<P> {
    type Handle<'a>
        = MultiQueueHandle<'a, P>
    where
        P: 'a;

    fn handle(&self) -> MultiQueueHandle<'_, P> {
        let idx = self.handle_ctr.fetch_add(1, Ordering::Relaxed);
        MultiQueueHandle {
            q: self,
            rng: SmallRng::seed_from_u64(handle_seed(self.seed, idx)),
        }
    }

    fn name(&self) -> String {
        "multiqueue".to_owned()
    }
}

impl<P: SequentialPq + Default + Send> RelaxationBound for MultiQueue<P> {
    fn rank_bound(&self, _threads: usize) -> Option<u64> {
        None // no analysed bound (paper: "no complete analysis exists")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drains_everything() {
        let q = MultiQueue::<BinaryHeap>::new(4, 2);
        let mut h = q.handle();
        for k in 0..1000u64 {
            h.insert(k, k);
        }
        let mut got: Vec<Key> = std::iter::from_fn(|| h.delete_min()).map(|i| i.key).collect();
        got.sort_unstable();
        assert_eq!(got, (0..1000).collect::<Vec<_>>());
        assert_eq!(h.delete_min(), None);
    }

    #[test]
    fn sub_queue_count_is_c_times_p() {
        assert_eq!(MultiQueue::<BinaryHeap>::new(4, 8).sub_queue_count(), 32);
        assert_eq!(MultiQueue::<BinaryHeap>::new(2, 3).sub_queue_count(), 6);
        // Lower bound of 2 so two-choice always has two queues.
        assert_eq!(MultiQueue::<BinaryHeap>::new(1, 1).sub_queue_count(), 2);
    }

    #[test]
    fn returns_small_but_not_necessarily_min() {
        let q = MultiQueue::<BinaryHeap>::new(4, 1);
        let mut h = q.handle();
        for k in 0..100u64 {
            h.insert(k, k);
        }
        // First deletion is among the sub-queue minima: with 4 sub-queues
        // and uniform spraying it is very likely small but may not be 0.
        let first = h.delete_min().unwrap();
        assert!(first.key < 100);
    }

    #[test]
    fn empty_queue() {
        let q = MultiQueue::<BinaryHeap>::new(4, 2);
        let mut h = q.handle();
        assert_eq!(h.delete_min(), None);
    }

    #[test]
    fn single_item_roundtrip() {
        let q = MultiQueue::<BinaryHeap>::new(4, 4);
        let mut h = q.handle();
        h.insert(9, 1);
        assert_eq!(h.delete_min(), Some(Item::new(9, 1)));
        assert_eq!(h.delete_min(), None);
    }

    #[test]
    fn concurrent_conservation() {
        use std::sync::atomic::AtomicUsize;
        let q = std::sync::Arc::new(MultiQueue::<BinaryHeap>::new(4, 4));
        let deleted = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let q = &q;
                let deleted = &deleted;
                s.spawn(move || {
                    let mut h = q.handle();
                    let mut dels = 0;
                    for i in 0..8000u64 {
                        if (i + t) % 2 == 0 {
                            h.insert((i * 31) % 1000, t * 8000 + i);
                        } else if h.delete_min().is_some() {
                            dels += 1;
                        }
                    }
                    deleted.fetch_add(dels, Ordering::Relaxed);
                });
            }
        });
        let mut h = q.handle();
        let mut rest = 0;
        while h.delete_min().is_some() {
            rest += 1;
        }
        assert_eq!(deleted.load(Ordering::Relaxed) + rest, 16000);
    }

    #[test]
    fn no_duplicate_values_under_concurrency() {
        let q = std::sync::Arc::new(MultiQueue::<BinaryHeap>::new(2, 4));
        {
            let mut h = q.handle();
            for v in 0..4000u64 {
                h.insert(v % 50, v);
            }
        }
        let all = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let q = &q;
                let all = &all;
                s.spawn(move || {
                    let mut h = q.handle();
                    let mut mine = Vec::new();
                    while let Some(it) = h.delete_min() {
                        mine.push(it.value);
                    }
                    all.lock().unwrap().extend(mine);
                });
            }
        });
        let mut vals = all.into_inner().unwrap();
        assert_eq!(vals.len(), 4000);
        vals.sort_unstable();
        vals.dedup();
        assert_eq!(vals.len(), 4000);
    }

    #[test]
    fn handles_are_deterministic_per_seed() {
        // Two queues built with the same seed must produce identical
        // delete orders (the pre-fix `from_entropy` seeding made quality
        // runs unreproducible).
        let run = |seed: u64| -> Vec<Item> {
            let q = MultiQueue::<BinaryHeap>::with_seed(4, 2, seed);
            let mut h = q.handle();
            for k in 0..500u64 {
                h.insert((k * 37) % 251, k);
            }
            std::iter::from_fn(|| h.delete_min()).collect()
        };
        assert_eq!(run(7), run(7));
        // Different seeds should (overwhelmingly) diverge somewhere.
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn successive_handles_get_distinct_rng_streams() {
        let q = MultiQueue::<BinaryHeap>::new(4, 2);
        let mut h1 = q.handle();
        let mut h2 = q.handle();
        // Same insert sequence through two handles sprays to different
        // sub-queues; if both handles shared an RNG stream the interleaved
        // picks would collide far more often. Weak but cheap signal: the
        // queue still conserves all items.
        for k in 0..100u64 {
            h1.insert(k, k);
            h2.insert(k, 100 + k);
        }
        assert_eq!(q.len_quiescent(), 200);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(16))]
        #[test]
        fn prop_multiset_preserved(keys in proptest::collection::vec(0u64..500, 1..300)) {
            let q = MultiQueue::<BinaryHeap>::new(4, 2);
            let mut h = q.handle();
            for (i, &k) in keys.iter().enumerate() {
                h.insert(k, i as u64);
            }
            let mut got: Vec<Key> = std::iter::from_fn(|| h.delete_min())
                .map(|i| i.key).collect();
            got.sort_unstable();
            let mut expect = keys.clone();
            expect.sort_unstable();
            proptest::prop_assert_eq!(got, expect);
        }
    }
}
