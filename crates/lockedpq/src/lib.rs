//! Lock-based priority-queue baselines.
//!
//! * [`global_lock::GlobalLockPq`] — "a simple, standardized sequential
//!   priority queue implementation protected by a global lock is used to
//!   establish a baseline for acceptable performance" (paper, App. C).
//!   The sequential queue is the same array-based binary heap the C++
//!   benchmarks get from `std::priority_queue`.
//! * [`hunt::HuntHeap`] — the Hunt et al. (1996) fine-grained-locking
//!   concurrent heap described in the paper's survey of other priority
//!   queues (App. D): per-node locks, bit-reversal scattering of
//!   consecutive insertions, and bottom-up insertion bubbling to reduce
//!   conflicts with top-down deletions.
//! * [`mound::Mound`] — Liu and Spear's tree-of-sorted-lists design
//!   (App. D), lock-based variant with optimistic binary-search
//!   insertion.
//! * [`flat_combining::FlatCombining`] — generic flat-combining wrapper
//!   (Hendler et al., SPAA 2010): per-handle publication records and a
//!   try-lock combiner that applies all pending ops in one critical
//!   section; `fc-globallock` and `fc-mound` in the registry.

#![warn(missing_docs)]

pub mod flat_combining;
pub mod global_lock;
pub mod hunt;
pub mod mound;

pub use flat_combining::{fc_globallock, fc_mound, FlatCombining};
pub use global_lock::GlobalLockPq;
pub use hunt::HuntHeap;
pub use mound::Mound;
