//! The Hunt et al. fine-grained-locking concurrent heap (`hunt`).
//!
//! Hunt, Michael, Parthasarathy and Scott (IPL 1996) — described in the
//! paper's survey (App. D) as "an early concurrent design \[that\] attempts
//! to minimize lock contention between threads by a) adding per-node
//! locks, b) spreading subsequent insertions through a bit-reversal
//! technique, and c) letting insertions traverse bottom-up in order to
//! minimize conflicts with top-down deletions."
//!
//! A short global lock serializes only the size counter and the choice of
//! the bit-reversed slot; the actual heap reordering uses hand-over-hand
//! per-node locks, always acquired in ascending index order
//! (parent-before-child), which rules out deadlock between upward
//! insertions and downward deletions.
//!
//! An in-flight insertion tags its slot with the owning handle's id; a
//! concurrent `delete_min` sifting the root item down may swap such a
//! tagged slot upwards, and the insertion then *chases* its item up the
//! tree (the `tag != my id` case below), exactly as in the original
//! algorithm.

use parking_lot::Mutex;

use pq_traits::{ConcurrentPq, Item, Key, PqHandle, RelaxationBound, Value};

use std::sync::atomic::{AtomicU32, Ordering};

/// Slot ownership state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Tag {
    /// No item.
    Empty,
    /// Settled item, free to participate in heap reordering.
    Available,
    /// Item still being bubbled up by the handle with this id.
    Owned(u32),
}

#[derive(Clone, Copy, Debug)]
struct Slot {
    tag: Tag,
    item: Item,
}

impl Slot {
    const EMPTY: Slot = Slot {
        tag: Tag::Empty,
        item: Item::new(0, 0),
    };
}

/// Fine-grained locking concurrent binary min-heap with fixed capacity.
pub struct HuntHeap {
    /// 1-based heap array; `slots[0]` is unused padding.
    slots: Box<[Mutex<Slot>]>,
    /// Guards `size` and the bit-reversal slot choice only.
    size: Mutex<usize>,
    next_id: AtomicU32,
}

impl HuntHeap {
    /// Default capacity: 2²¹ items (≈ 2M), ample for the paper's 10⁶
    /// prefill plus churn.
    pub fn new() -> Self {
        Self::with_capacity(1 << 21)
    }

    /// Create a heap able to hold `cap` items.
    pub fn with_capacity(cap: usize) -> Self {
        assert!(cap >= 1);
        Self {
            slots: (0..=cap).map(|_| Mutex::new(Slot::EMPTY)).collect(),
            size: Mutex::new(0),
            next_id: AtomicU32::new(1),
        }
    }

    /// Number of stored items (racy read of the size counter).
    pub fn len_hint(&self) -> usize {
        *self.size.lock()
    }

    /// Bit-reversal within the heap level of 1-based index `c`: keeps the
    /// leading 1 bit (the level) and reverses the remaining bits, so
    /// consecutive insertions land in different subtrees.
    fn bit_reverse(c: usize) -> usize {
        debug_assert!(c >= 1);
        let bits = usize::BITS - c.leading_zeros() - 1; // bits below the MSB
        let msb = 1usize << bits;
        let low = c & (msb - 1);
        let reversed = low.reverse_bits() >> (usize::BITS - bits.max(1)) >> (bits.max(1) - bits);
        // For bits == 0 the above is 0 as required.
        msb | if bits == 0 { 0 } else { reversed }
    }

    fn insert_impl(&self, id: u32, key: Key, value: Value) {
        let item = Item::new(key, value);
        // Short critical section: reserve a slot.
        let mut i = {
            let mut size = self.size.lock();
            assert!(*size + 1 < self.slots.len(), "HuntHeap capacity exceeded");
            *size += 1;
            let pos = Self::bit_reverse(*size);
            let mut slot = self.slots[pos].lock();
            debug_assert_eq!(slot.tag, Tag::Empty);
            *slot = Slot {
                tag: Tag::Owned(id),
                item,
            };
            drop(slot);
            pos
        };
        // Bubble up with pairwise (parent, child) locks, ascending order.
        while i > 1 {
            let parent = i / 2;
            let mut p = self.slots[parent].lock();
            let mut c = self.slots[i].lock();
            match (p.tag, c.tag) {
                (Tag::Available, Tag::Owned(owner)) if owner == id => {
                    if c.item < p.item {
                        std::mem::swap(&mut *p, &mut *c);
                        // The tags travelled with the items; restore
                        // ownership placement: our item is now at parent.
                        drop(c);
                        drop(p);
                        i = parent;
                    } else {
                        c.tag = Tag::Available;
                        return;
                    }
                }
                (Tag::Empty, _) => {
                    // Parent emptied by a deletion taking the last slot;
                    // our item (wherever it is) will be found by chasing.
                    drop(c);
                    drop(p);
                    i = parent;
                }
                (_, tag) if tag != Tag::Owned(id) => {
                    // A deletion swapped our item upwards: chase it.
                    drop(c);
                    drop(p);
                    i = parent;
                }
                _ => {
                    // Parent is itself in-flight (Owned by another
                    // insert): let it settle first.
                    drop(c);
                    drop(p);
                    std::hint::spin_loop();
                }
            }
        }
        if i == 1 {
            let mut root = self.slots[1].lock();
            if root.tag == Tag::Owned(id) {
                root.tag = Tag::Available;
            }
        }
    }

    fn delete_min_impl(&self) -> Option<Item> {
        // Short critical section: claim the last occupied slot.
        let bottom_slot = {
            let mut size = self.size.lock();
            if *size == 0 {
                return None;
            }
            let pos = Self::bit_reverse(*size);
            *size -= 1;
            let mut slot = self.slots[pos].lock();
            let taken = *slot;
            *slot = Slot::EMPTY;
            drop(slot);
            drop(size);
            // The bottom item may still be Owned by an in-flight insert
            // that will chase upwards and eventually hit Empty/foreign
            // tags and terminate; its item value is already ours.
            taken
        };
        let mut root = self.slots[1].lock();
        if root.tag == Tag::Empty {
            // The heap contained exactly the slot we took.
            return Some(bottom_slot.item);
        }
        if bottom_slot.item < root.item && root.tag == Tag::Available {
            // The removed bottom item is smaller than the root: it *is*
            // the minimum of what we can observe; return it directly.
            return Some(bottom_slot.item);
        }
        let min = root.item;
        root.item = bottom_slot.item;
        root.tag = Tag::Available;
        // Sift down with hand-over-hand locking (parent held, child
        // locked, parent released on descend).
        let mut i = 1usize;
        let mut cur = root;
        loop {
            let l = 2 * i;
            let r = l + 1;
            if l >= self.slots.len() {
                break;
            }
            let left = self.slots[l].lock();
            let right = if r < self.slots.len() {
                Some(self.slots[r].lock())
            } else {
                None
            };
            // Choose the smaller available child.
            let use_right = match (&*left, right.as_deref()) {
                (lslot, Some(rslot)) => {
                    if lslot.tag == Tag::Empty {
                        if rslot.tag == Tag::Empty {
                            break;
                        }
                        true
                    } else if rslot.tag == Tag::Empty {
                        false
                    } else {
                        rslot.item < lslot.item
                    }
                }
                (lslot, None) => {
                    if lslot.tag == Tag::Empty {
                        break;
                    }
                    false
                }
            };
            let mut child = if use_right {
                drop(left);
                right.expect("chosen right child exists")
            } else {
                drop(right);
                left
            };
            let child_idx = if use_right { r } else { l };
            if child.item < cur.item {
                std::mem::swap(&mut *child, &mut *cur);
                drop(cur);
                cur = child;
                i = child_idx;
            } else {
                break;
            }
        }
        Some(min)
    }
}

impl Default for HuntHeap {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for HuntHeap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HuntHeap")
            .field("capacity", &(self.slots.len() - 1))
            .finish()
    }
}

/// Per-thread handle for [`HuntHeap`].
pub struct HuntHandle<'a> {
    heap: &'a HuntHeap,
    id: u32,
}

impl PqHandle for HuntHandle<'_> {
    fn insert(&mut self, key: Key, value: Value) {
        self.heap.insert_impl(self.id, key, value);
    }

    fn delete_min(&mut self) -> Option<Item> {
        self.heap.delete_min_impl()
    }
}

impl ConcurrentPq for HuntHeap {
    type Handle<'a> = HuntHandle<'a>;

    fn handle(&self) -> HuntHandle<'_> {
        HuntHandle {
            heap: self,
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
        }
    }

    fn name(&self) -> String {
        "hunt".to_owned()
    }
}

impl RelaxationBound for HuntHeap {
    fn rank_bound(&self, _threads: usize) -> Option<u64> {
        Some(0) // strict up to in-flight insertions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_reverse_first_levels() {
        // Level 0: just the root.
        assert_eq!(HuntHeap::bit_reverse(1), 1);
        // Level 1 in order.
        assert_eq!(HuntHeap::bit_reverse(2), 2);
        assert_eq!(HuntHeap::bit_reverse(3), 3);
        // Level 2 scattered: 4, 6, 5, 7.
        assert_eq!(HuntHeap::bit_reverse(4), 4);
        assert_eq!(HuntHeap::bit_reverse(5), 6);
        assert_eq!(HuntHeap::bit_reverse(6), 5);
        assert_eq!(HuntHeap::bit_reverse(7), 7);
        // Level 3 scattered: 8, 12, 10, 14, 9, 13, 11, 15.
        let level3: Vec<usize> = (8..16).map(HuntHeap::bit_reverse).collect();
        let mut sorted = level3.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (8..16).collect::<Vec<_>>());
        assert_eq!(level3[0], 8);
        assert_eq!(level3[1], 12);
    }

    #[test]
    fn bit_reverse_is_permutation_per_level() {
        for level in 0..10u32 {
            let lo = 1usize << level;
            let hi = lo * 2;
            let mut seen: Vec<usize> = (lo..hi).map(HuntHeap::bit_reverse).collect();
            seen.sort_unstable();
            assert_eq!(seen, (lo..hi).collect::<Vec<_>>(), "level {level}");
        }
    }

    #[test]
    fn sequential_sorted_output() {
        let h = HuntHeap::with_capacity(64);
        let mut handle = h.handle();
        for k in [9u64, 2, 7, 4, 1, 8, 3, 6, 5, 0] {
            handle.insert(k, k);
        }
        let out: Vec<Key> = std::iter::from_fn(|| handle.delete_min())
            .map(|i| i.key)
            .collect();
        assert_eq!(out, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_sequential_ops() {
        let h = HuntHeap::with_capacity(1024);
        let mut handle = h.handle();
        let mut model = std::collections::BinaryHeap::new();
        for i in 0..500u64 {
            let k = (i * 2654435761) % 1000;
            if i % 3 == 2 {
                let got = handle.delete_min().map(|it| it.key);
                let expect = model.pop().map(|std::cmp::Reverse(k)| k);
                assert_eq!(got, expect);
            } else {
                handle.insert(k, i);
                model.push(std::cmp::Reverse(k));
            }
        }
    }

    #[test]
    fn empty_heap() {
        let h = HuntHeap::with_capacity(8);
        let mut handle = h.handle();
        assert_eq!(handle.delete_min(), None);
        handle.insert(1, 1);
        assert_eq!(handle.delete_min(), Some(Item::new(1, 1)));
        assert_eq!(handle.delete_min(), None);
    }

    #[test]
    fn concurrent_conservation() {
        use std::sync::atomic::AtomicUsize;
        let h = std::sync::Arc::new(HuntHeap::with_capacity(1 << 16));
        let deleted = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let h = &h;
                let deleted = &deleted;
                s.spawn(move || {
                    let mut handle = h.handle();
                    let mut dels = 0;
                    for i in 0..5000u64 {
                        if (i + t) % 2 == 0 {
                            handle.insert((i * 37) % 5000, t * 5000 + i);
                        } else if handle.delete_min().is_some() {
                            dels += 1;
                        }
                    }
                    deleted.fetch_add(dels, Ordering::Relaxed);
                });
            }
        });
        let mut handle = h.handle();
        let mut rest = 0;
        while handle.delete_min().is_some() {
            rest += 1;
        }
        assert_eq!(deleted.load(Ordering::Relaxed) + rest, 10000);
    }
}
