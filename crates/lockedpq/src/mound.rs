//! The Mound priority queue (`mound`), lock-based variant.
//!
//! Liu and Spear (ICPP 2012), surveyed in the paper's appendix D: "a
//! recent concurrent priority queue design based on a tree of sorted
//! lists". A mound is a complete binary tree where every node holds a
//! list of items and the *head* (minimum) of each node's list is ≤ the
//! heads of its children — a heap order on list heads rather than single
//! elements.
//!
//! * `insert(x)`: along a random root→leaf path the heads are
//!   non-decreasing, so binary-search the path for the shallowest node
//!   `n` with `head(n) ≥ x` and `head(parent(n)) ≤ x`, lock, validate,
//!   and push `x` as the new head of `n`. The binary search makes
//!   insertions O(log log N) lock acquisitions in the common case; after
//!   repeated validation failures we fall back to a hand-over-hand
//!   descent which always succeeds.
//! * `delete_min`: pop the root's head, then *moundify* downwards —
//!   if a child's head is smaller, swap the two nodes' lists and recurse
//!   into that child, hand-over-hand.
//!
//! Liu and Spear also give a lock-free variant relying on DCAS, which
//! most ISAs lack (as the paper notes); we implement the lock-based one.

use parking_lot::{Mutex, MutexGuard};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use pq_traits::{ConcurrentPq, Item, Key, PqHandle, RelaxationBound, Value};

use pq_traits::seed::{handle_seed, DEFAULT_QUEUE_SEED};

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Depth of the complete tree. 2^15 − 1 nodes; node lists are unbounded,
/// so this does not cap capacity, it only bounds insertion scattering.
const DEPTH: usize = 15;
const NODES: usize = (1 << DEPTH) - 1;

/// A node's item list, stored with the head (minimum) at the *end* of
/// the vector so push/pop of the head are O(1). Invariant: entries are
/// non-increasing, i.e. `list[i] >= list[i+1]`.
type NodeList = Vec<Item>;

/// Key of a node head, with ∞ for empty nodes (insertable anywhere).
#[inline]
fn head_key(list: &NodeList) -> Key {
    list.last().map_or(Key::MAX, |it| it.key)
}

/// Lock-based Mound priority queue.
pub struct Mound {
    nodes: Box<[Mutex<NodeList>]>,
    len: AtomicUsize,
    seed: u64,
    handle_ctr: AtomicU64,
}

impl Mound {
    /// Create an empty mound with the default deterministic seed (the
    /// per-handle leaf-probe RNGs derive from it, so the deletion order
    /// among equal keys replays run-to-run).
    pub fn new() -> Self {
        Self::with_seed(DEFAULT_QUEUE_SEED)
    }

    /// Create an empty mound whose handle RNGs derive from `seed`
    /// (handle `i` gets `seed ⊕ mix(i)`).
    pub fn with_seed(seed: u64) -> Self {
        Self {
            nodes: (0..NODES).map(|_| Mutex::new(Vec::new())).collect(),
            len: AtomicUsize::new(0),
            seed,
            handle_ctr: AtomicU64::new(0),
        }
    }

    /// Number of stored items.
    pub fn len_hint(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// The root→leaf path of node indices ending at a random leaf.
    fn random_path(rng: &mut SmallRng) -> [usize; DEPTH] {
        let mut path = [0usize; DEPTH];
        let leaf_index = rng.gen_range(0..(1usize << (DEPTH - 1)));
        // Walk up from the leaf: leaf = 2^(D-1)-1 + leaf_index.
        let mut idx = (1usize << (DEPTH - 1)) - 1 + leaf_index;
        for d in (0..DEPTH).rev() {
            path[d] = idx;
            if idx > 0 {
                idx = (idx - 1) / 2;
            }
        }
        path
    }

    pub(crate) fn insert_impl(&self, key: Key, value: Value, rng: &mut SmallRng) {
        let item = Item::new(key, value);
        let mut attempts = 0u32;
        loop {
            let path = Self::random_path(rng);
            // After a few failed optimistic rounds, take the always-valid
            // single-lock path when possible: insert into the *body* of
            // the leaf's list at its sorted position. The leaf's head is
            // untouched, so every mound invariant is preserved without
            // validating the parent.
            if attempts >= 8 {
                let mut list = self.nodes[path[DEPTH - 1]].lock();
                if !list.is_empty() && head_key(&list) <= key {
                    let at = list
                        .iter()
                        .rposition(|it| it.key >= key)
                        .map_or(0, |p| p + 1);
                    let pos = at.min(list.len() - 1);
                    list.insert(pos, item);
                    self.len.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                // key < head(leaf) (or empty leaf): fall through to the
                // optimistic head insert below — the binary search is
                // then guaranteed to find a candidate on this path.
            }
            attempts += 1;
            // Racy binary search for the shallowest depth with
            // head ≥ key along this root→leaf path.
            if head_key(&self.nodes[path[DEPTH - 1]].lock()) < key {
                continue; // whole path is below `key`; re-randomize
            }
            let mut lo = 0usize;
            let mut hi = DEPTH - 1;
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                if head_key(&self.nodes[path[mid]].lock()) >= key {
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }
            // Lock parent (if any) then node, in index order, and
            // re-validate both halves of the invariant.
            if lo == 0 {
                let mut root = self.nodes[path[0]].lock();
                if head_key(&root) >= key {
                    root.push(item);
                    self.len.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            } else {
                let parent = self.nodes[path[lo - 1]].lock();
                let mut node = self.nodes[path[lo]].lock();
                if head_key(&parent) <= key && head_key(&node) >= key {
                    node.push(item);
                    self.len.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            }
        }
    }

    /// Exclusive-access insert: same placement policy as
    /// [`Self::insert_impl`], but with `&mut self` every head read is a
    /// plain `get_mut` — no lock traffic and no optimistic validation
    /// retries. Used by the flat-combining substrate, whose combiner
    /// already serializes all access behind the queue's single lock.
    pub(crate) fn insert_seq(&mut self, key: Key, value: Value, rng: &mut SmallRng) {
        let item = Item::new(key, value);
        let path = Self::random_path(rng);
        if head_key(self.nodes[path[DEPTH - 1]].get_mut()) < key {
            // The whole path sits below `key`: insert into the body of
            // the leaf's list at its sorted position (the head is
            // untouched, so the heap order on heads is preserved)
            // instead of re-randomizing the path.
            let list = self.nodes[path[DEPTH - 1]].get_mut();
            let at = list
                .iter()
                .rposition(|it| it.key >= key)
                .map_or(0, |p| p + 1);
            let pos = at.min(list.len() - 1);
            list.insert(pos, item);
        } else {
            // Heads are non-decreasing along the path, and nothing can
            // move under exclusive access, so the binary search is
            // exact: push at the shallowest node with head ≥ key.
            let mut lo = 0usize;
            let mut hi = DEPTH - 1;
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                if head_key(self.nodes[path[mid]].get_mut()) >= key {
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }
            self.nodes[path[lo]].get_mut().push(item);
        }
        *self.len.get_mut() += 1;
    }

    /// Exclusive-access delete-min: pop the root head, then restore the
    /// heap order on heads by swapping whole nodes down the smaller-child
    /// spine — [`Self::moundify`] without the hand-over-hand locking.
    pub(crate) fn delete_min_seq(&mut self) -> Option<Item> {
        let min = self.nodes[0].get_mut().pop()?;
        *self.len.get_mut() -= 1;
        let mut idx = 0usize;
        loop {
            let l = 2 * idx + 1;
            let r = l + 1;
            if l >= NODES {
                break;
            }
            let lk = head_key(self.nodes[l].get_mut());
            let rk = if r < NODES {
                head_key(self.nodes[r].get_mut())
            } else {
                Key::MAX
            };
            let child = if rk < lk { r } else { l };
            if lk.min(rk) < head_key(self.nodes[idx].get_mut()) {
                self.nodes.swap(idx, child);
                idx = child;
            } else {
                break;
            }
        }
        Some(min)
    }

    pub(crate) fn delete_min_impl(&self) -> Option<Item> {
        let mut root = self.nodes[0].lock();
        let min = root.pop();
        if min.is_some() {
            self.len.fetch_sub(1, Ordering::Relaxed);
        }
        self.moundify(0, root);
        min
    }

    /// Restore the heap order on heads downward from `idx`, whose guard
    /// is held. Swaps whole lists with the smaller child, hand-over-hand.
    fn moundify<'a>(&'a self, mut idx: usize, mut node: MutexGuard<'a, NodeList>) {
        loop {
            let l = 2 * idx + 1;
            let r = l + 1;
            if l >= NODES {
                return;
            }
            let left = self.nodes[l].lock();
            let right = if r < NODES {
                Some(self.nodes[r].lock())
            } else {
                None
            };
            let (mut child, child_idx) = match right {
                Some(rg) if head_key(&rg) < head_key(&left) => {
                    drop(left);
                    (rg, r)
                }
                other => {
                    drop(other);
                    (left, l)
                }
            };
            if head_key(&child) < head_key(&node) {
                std::mem::swap(&mut *node, &mut *child);
                drop(node);
                node = child;
                idx = child_idx;
            } else {
                return;
            }
        }
    }

    /// Verify the mound invariants (tests only): per-node lists
    /// non-increasing, head order between parent and children, length
    /// consistent. Quiescent use.
    #[doc(hidden)]
    pub fn check_invariants(&self) -> bool {
        let mut total = 0usize;
        for i in 0..NODES {
            let list = self.nodes[i].lock();
            total += list.len();
            if !list.windows(2).all(|w| w[0].key >= w[1].key) {
                return false;
            }
            let hk = head_key(&list);
            drop(list);
            for c in [2 * i + 1, 2 * i + 2] {
                if c < NODES && head_key(&self.nodes[c].lock()) < hk {
                    return false;
                }
            }
        }
        total == self.len.load(Ordering::Relaxed)
    }
}

impl Default for Mound {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Mound {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mound")
            .field("len_hint", &self.len_hint())
            .finish()
    }
}

/// Per-thread handle for [`Mound`].
pub struct MoundHandle<'a> {
    mound: &'a Mound,
    rng: SmallRng,
}

impl PqHandle for MoundHandle<'_> {
    fn insert(&mut self, key: Key, value: Value) {
        self.mound.insert_impl(key, value, &mut self.rng);
    }

    fn delete_min(&mut self) -> Option<Item> {
        self.mound.delete_min_impl()
    }
}

impl ConcurrentPq for Mound {
    type Handle<'a> = MoundHandle<'a>;

    fn handle(&self) -> MoundHandle<'_> {
        let idx = self.handle_ctr.fetch_add(1, Ordering::Relaxed);
        MoundHandle {
            mound: self,
            rng: SmallRng::seed_from_u64(handle_seed(self.seed, idx)),
        }
    }

    fn name(&self) -> String {
        "mound".to_owned()
    }
}

impl RelaxationBound for Mound {
    fn rank_bound(&self, _threads: usize) -> Option<u64> {
        Some(0) // strict up to in-flight operations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_mound() {
        let m = Mound::new();
        let mut h = m.handle();
        assert_eq!(h.delete_min(), None);
        assert_eq!(m.len_hint(), 0);
        assert!(m.check_invariants());
    }

    #[test]
    fn sequential_sorted_output() {
        let m = Mound::new();
        let mut h = m.handle();
        let keys = [42u64, 7, 19, 3, 88, 3, 55, 21, 0, 99];
        for (i, &k) in keys.iter().enumerate() {
            h.insert(k, i as u64);
            assert!(m.check_invariants(), "after insert {k}");
        }
        let mut expect = keys.to_vec();
        expect.sort_unstable();
        let got: Vec<Key> = std::iter::from_fn(|| h.delete_min()).map(|i| i.key).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn many_duplicates() {
        let m = Mound::new();
        let mut h = m.handle();
        for v in 0..1000u64 {
            h.insert(v % 3, v);
        }
        assert!(m.check_invariants());
        let mut n = 0;
        let mut prev = 0u64;
        while let Some(it) = h.delete_min() {
            assert!(it.key >= prev);
            prev = it.key;
            n += 1;
        }
        assert_eq!(n, 1000);
    }

    #[test]
    fn descending_inserts_stack_at_root() {
        // Each new key is smaller than every head: always insertable at
        // the root — the mound's best case.
        let m = Mound::new();
        let mut h = m.handle();
        for k in (0..500u64).rev() {
            h.insert(k, k);
        }
        assert!(m.check_invariants());
        let got: Vec<Key> = std::iter::from_fn(|| h.delete_min()).map(|i| i.key).collect();
        assert_eq!(got, (0..500).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_matches_model() {
        let m = Mound::new();
        let mut h = m.handle();
        let mut model = std::collections::BinaryHeap::new();
        for i in 0..2000u64 {
            let k = (i * 2654435761) % 512;
            if i % 3 == 2 {
                let got = h.delete_min().map(|it| it.key);
                let expect = model.pop().map(|std::cmp::Reverse(k)| k);
                assert_eq!(got, expect);
            } else {
                h.insert(k, i);
                model.push(std::cmp::Reverse(k));
            }
        }
        assert!(m.check_invariants());
    }

    #[test]
    fn seq_paths_match_model() {
        let mut m = Mound::new();
        let mut rng = SmallRng::seed_from_u64(42);
        let mut model = std::collections::BinaryHeap::new();
        for i in 0..2000u64 {
            let k = (i * 2654435761) % 512;
            if i % 3 == 2 {
                let got = m.delete_min_seq().map(|it| it.key);
                let expect = model.pop().map(|std::cmp::Reverse(k)| k);
                assert_eq!(got, expect);
            } else {
                m.insert_seq(k, i, &mut rng);
                model.push(std::cmp::Reverse(k));
            }
        }
        assert!(m.check_invariants());
        assert_eq!(m.len_hint(), model.len());
    }

    #[test]
    fn concurrent_conservation() {
        let m = std::sync::Arc::new(Mound::new());
        let deleted = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let m = &m;
                let deleted = &deleted;
                s.spawn(move || {
                    let mut h = m.handle();
                    let mut dels = 0;
                    for i in 0..5000u64 {
                        if (i + t) % 2 == 0 {
                            h.insert((i * 37) % 10_000, t * 5000 + i);
                        } else if h.delete_min().is_some() {
                            dels += 1;
                        }
                    }
                    deleted.fetch_add(dels, Ordering::Relaxed);
                });
            }
        });
        assert!(m.check_invariants());
        let mut h = m.handle();
        let mut rest = 0;
        while h.delete_min().is_some() {
            rest += 1;
        }
        assert_eq!(deleted.load(Ordering::Relaxed) + rest, 10_000);
    }

    #[test]
    fn concurrent_strictness_during_drain() {
        let m = std::sync::Arc::new(Mound::new());
        {
            let mut h = m.handle();
            for i in 0..10_000u64 {
                h.insert(i.wrapping_mul(48271) % 65_536, i);
            }
        }
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = &m;
                s.spawn(move || {
                    let mut h = m.handle();
                    let mut prev = None;
                    while let Some(it) = h.delete_min() {
                        if let Some(p) = prev {
                            assert!(it.key >= p, "mound drain went backwards");
                        }
                        prev = Some(it.key);
                    }
                });
            }
        });
    }
}
