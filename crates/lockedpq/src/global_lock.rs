//! GlobalLock baseline (`globallock`): a sequential priority queue behind
//! a single mutex.
//!
//! Generic over the sequential substrate so the substrate choice can be
//! ablated (the paper's C++ benchmarks use `std::priority_queue`, our
//! [`BinaryHeap`]; a pairing heap is the alternative).

use parking_lot::Mutex;

use pq_traits::{ConcurrentPq, Item, Key, PqHandle, RelaxationBound, SequentialPq, Value};
use seqpq::BinaryHeap;

/// Sequential priority queue protected by a global lock.
#[derive(Debug, Default)]
pub struct GlobalLockPq<P: SequentialPq + Default + Send = BinaryHeap> {
    heap: Mutex<P>,
}

impl<P: SequentialPq + Default + Send> GlobalLockPq<P> {
    /// Create an empty queue.
    pub fn new() -> Self {
        Self {
            heap: Mutex::new(P::default()),
        }
    }

    /// Number of stored items (takes the lock).
    pub fn len(&self) -> usize {
        self.heap.lock().len()
    }

    /// `true` if no items are stored (takes the lock).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl GlobalLockPq<BinaryHeap> {
    /// Create an empty queue with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            heap: Mutex::new(BinaryHeap::with_capacity(cap)),
        }
    }
}

/// Per-thread handle for [`GlobalLockPq`].
pub struct GlobalLockHandle<'a, P: SequentialPq + Default + Send> {
    q: &'a GlobalLockPq<P>,
}

impl<P: SequentialPq + Default + Send> PqHandle for GlobalLockHandle<'_, P> {
    fn insert(&mut self, key: Key, value: Value) {
        self.q.heap.lock().insert(key, value);
    }

    fn delete_min(&mut self) -> Option<Item> {
        self.q.heap.lock().delete_min()
    }
}

impl<P: SequentialPq + Default + Send> ConcurrentPq for GlobalLockPq<P> {
    type Handle<'a>
        = GlobalLockHandle<'a, P>
    where
        P: 'a;

    fn handle(&self) -> GlobalLockHandle<'_, P> {
        GlobalLockHandle { q: self }
    }

    fn name(&self) -> String {
        "globallock".to_owned()
    }
}

impl<P: SequentialPq + Default + Send> RelaxationBound for GlobalLockPq<P> {
    fn rank_bound(&self, _threads: usize) -> Option<u64> {
        Some(0) // strict semantics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqpq::PairingHeap;

    #[test]
    fn sequential_order() {
        let q = GlobalLockPq::<BinaryHeap>::new();
        let mut h = q.handle();
        for k in [4u64, 1, 3, 2] {
            h.insert(k, k);
        }
        let out: Vec<Key> = std::iter::from_fn(|| h.delete_min()).map(|i| i.key).collect();
        assert_eq!(out, vec![1, 2, 3, 4]);
    }

    #[test]
    fn pairing_heap_substrate_behaves_identically() {
        let q = GlobalLockPq::<PairingHeap>::new();
        let mut h = q.handle();
        for k in [9u64, 5, 7, 1] {
            h.insert(k, k);
        }
        let out: Vec<Key> = std::iter::from_fn(|| h.delete_min()).map(|i| i.key).collect();
        assert_eq!(out, vec![1, 5, 7, 9]);
    }

    #[test]
    fn concurrent_strictness_and_conservation() {
        let q = std::sync::Arc::new(GlobalLockPq::<BinaryHeap>::new());
        {
            let mut h = q.handle();
            for k in 0..10_000u64 {
                h.insert(k, k);
            }
        }
        std::thread::scope(|s| {
            for _ in 0..4 {
                let q = &q;
                s.spawn(move || {
                    let mut h = q.handle();
                    let mut prev = None;
                    while let Some(it) = h.delete_min() {
                        if let Some(p) = prev {
                            assert!(it.key >= p);
                        }
                        prev = Some(it.key);
                    }
                });
            }
        });
        assert!(q.is_empty());
    }
}
