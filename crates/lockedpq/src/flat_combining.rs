//! Generic flat-combining wrapper for lock-based queues.
//!
//! Flat combining (Hendler, Incze, Shavit, Tzafrir, SPAA 2010) replaces
//! lock *handoff* with op *delegation*: instead of every thread fighting
//! for the lock and crossing the coherence bus twice per operation, each
//! thread publishes its operation into a thread-private, cache-line-padded
//! publication record and spins locally. Whichever thread wins a
//! `try_lock` becomes the **combiner**: it scans the publication list and
//! applies *all* pending operations in one critical section, so the
//! shared structure stays hot in a single core's cache and the lock is
//! acquired once per batch of operations instead of once per operation.
//!
//! Pending `delete_min` requests are served *in key order from one heap
//! pass*: the combiner first applies every pending insert (and published
//! insert batch), then pops once per pending delete request — consecutive
//! pops with no interleaved inserts yield ascending keys, which the
//! combiner assigns to requesters in slot order.
//!
//! [`PqHandle::flush`] maps to publish-insert-batches: with a batch
//! parameter `m > 1` the handle buffers inserts locally and publishes
//! the whole run as one record (`m` items applied under one
//! publication). `delete_min` on a non-empty buffer publishes a
//! combined *batch-then-delete* record: the combiner commits the
//! handle's buffered run and then serves the pop from the same critical
//! section, so the handle's own inserts always participate in its
//! deletions and there is no buffered-min vs. shared-min tie case to
//! resolve.
//!
//! With `m = 1` the wrapper is **strict** (rank bound 0): every operation
//! is applied to the sequential substrate under the combiner lock, and
//! the linearization order is the order the combiner applies them.
//! With `m > 1` up to `m − 1` inserts per handle may be deferred, giving
//! the same `(m − 1)·P` relaxation shape as the other buffering handles.
//!
//! Telemetry: [`Event::FcLockAcquire`] per won combiner election,
//! [`Event::FcCombineRound`] per scan pass that applied work, and
//! [`Event::FcOpsCombined`] counting applied published operations.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crossbeam_utils::CachePadded;
use parking_lot::Mutex;
use pq_traits::telemetry::{self, Event};
use pq_traits::{ConcurrentPq, Item, Key, PqHandle, RelaxationBound, SequentialPq, Value};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::mound::Mound;

/// A sequential structure the combiner applies published operations to.
///
/// Implemented by [`SeqSubstrate`] (any [`SequentialPq`], e.g. the binary
/// heap behind `fc-globallock`) and [`MoundSubstrate`] (`fc-mound`). All
/// calls happen under the combiner lock, so `&mut self` suffices even
/// for internally concurrent structures.
pub trait FcSubstrate: Send {
    /// Insert one item.
    fn apply_insert(&mut self, key: Key, value: Value);
    /// Remove and return a minimal item, or `None` if empty.
    fn apply_delete_min(&mut self) -> Option<Item>;
}

/// Adapter giving any [`SequentialPq`] the [`FcSubstrate`] interface.
pub struct SeqSubstrate<P>(pub P);

impl<P: SequentialPq + Send> FcSubstrate for SeqSubstrate<P> {
    fn apply_insert(&mut self, key: Key, value: Value) {
        self.0.insert(key, value);
    }
    fn apply_delete_min(&mut self) -> Option<Item> {
        self.0.delete_min()
    }
}

/// [`FcSubstrate`] over the [`Mound`]: the combiner drives the mound's
/// *exclusive-access* insert/delete paths (`insert_seq`/`delete_min_seq`)
/// with a private RNG. Because the combiner lock already serializes
/// everything, the mound's per-node locks and optimistic validation
/// retries are pure overhead — the seq paths elide both, which is the
/// concrete single-structure win combining buys on this substrate.
pub struct MoundSubstrate {
    mound: Mound,
    rng: SmallRng,
}

impl MoundSubstrate {
    /// Deterministically seeded mound substrate.
    pub fn with_seed(seed: u64) -> Self {
        Self {
            mound: Mound::with_seed(seed),
            rng: SmallRng::seed_from_u64(seed ^ 0xF1A7_C0B1),
        }
    }
}

impl FcSubstrate for MoundSubstrate {
    fn apply_insert(&mut self, key: Key, value: Value) {
        self.mound.insert_seq(key, value, &mut self.rng);
    }
    fn apply_delete_min(&mut self) -> Option<Item> {
        self.mound.delete_min_seq()
    }
}

// Publication-record states. `ST_EMPTY`/`ST_DONE*` are terminal (owner
// side); `ST_INSERT`/`ST_DELETE`/`ST_BATCH`/`ST_BATCH_DELETE` are
// pending requests the combiner consumes. `ST_BATCH_DELETE` is served
// in two steps: the insert pass commits the published run and downgrades
// the record to `ST_DELETE`, which the delete pass then completes.
const ST_EMPTY: u64 = 0;
const ST_INSERT: u64 = 1;
const ST_DELETE: u64 = 2;
const ST_BATCH: u64 = 3;
const ST_BATCH_DELETE: u64 = 4;
const ST_DONE: u64 = 5;
const ST_DONE_ITEM: u64 = 6;
const ST_DONE_EMPTY: u64 = 7;

/// One per-handle publication record, padded to its own cache line so a
/// spinning owner never shares a line with another handle's record or
/// with the combiner lock.
struct PubRecord {
    /// State machine word. Owner publishes with `Release` after writing
    /// args; combiner consumes with `Acquire` and completes with
    /// `Release` after writing results.
    op: AtomicU64,
    key: AtomicU64,
    value: AtomicU64,
    /// Base pointer / length of the owner's insert buffer for
    /// `ST_BATCH`/`ST_BATCH_DELETE`. Valid for exactly as long as the
    /// record is pending: the owner spins until a `ST_DONE*` state and
    /// does not touch the buffer in between.
    batch_ptr: AtomicUsize,
    batch_len: AtomicUsize,
    res_key: AtomicU64,
    res_value: AtomicU64,
}

impl Default for PubRecord {
    fn default() -> Self {
        Self {
            op: AtomicU64::new(ST_EMPTY),
            key: AtomicU64::new(0),
            value: AtomicU64::new(0),
            batch_ptr: AtomicUsize::new(0),
            batch_len: AtomicUsize::new(0),
            res_key: AtomicU64::new(0),
            res_value: AtomicU64::new(0),
        }
    }
}

/// Flat-combining concurrent priority queue over an [`FcSubstrate`].
///
/// Constructed via [`fc_globallock`] / [`fc_mound`] (or
/// [`FlatCombining::with_substrate`] for custom substrates) with a fixed
/// handle capacity; [`ConcurrentPq::handle`] panics beyond it.
pub struct FlatCombining<S: FcSubstrate> {
    name: String,
    shared: Mutex<S>,
    slots: Box<[CachePadded<PubRecord>]>,
    handle_ctr: AtomicUsize,
    batch: usize,
    /// Spin budget between combiner-lock probes. On a single-core host
    /// this is 0 — a spinning waiter only steals cycles from the
    /// combiner that would serve it, so the wait loop yields instead.
    spin: u32,
    /// Count of published-but-unserved records — a *hint* that lets the
    /// uncontended fast path skip the publication scan entirely.
    /// Correctness never depends on it: a publisher missed because its
    /// increment was not yet visible keeps probing the lock and serves
    /// itself at the next election.
    pending: CachePadded<AtomicUsize>,
}

/// `fc-globallock`: flat combining over the sequential binary heap (the
/// same substrate as the plain `globallock` queue, for a like-for-like
/// A/B). `batch <= 1` disables insert buffering.
pub fn fc_globallock(
    max_handles: usize,
    batch: usize,
) -> FlatCombining<SeqSubstrate<seqpq::BinaryHeap>> {
    let name = if batch <= 1 {
        "fc-globallock".to_owned()
    } else {
        format!("fc-globallock-b{batch}")
    };
    FlatCombining::with_substrate(name, SeqSubstrate(seqpq::BinaryHeap::new()), max_handles, batch)
}

/// `fc-mound`: flat combining over the [`Mound`], deterministically
/// seeded. `batch <= 1` disables insert buffering.
pub fn fc_mound(max_handles: usize, batch: usize, seed: u64) -> FlatCombining<MoundSubstrate> {
    let name = if batch <= 1 {
        "fc-mound".to_owned()
    } else {
        format!("fc-mound-b{batch}")
    };
    FlatCombining::with_substrate(name, MoundSubstrate::with_seed(seed), max_handles, batch)
}

impl<S: FcSubstrate> FlatCombining<S> {
    /// Wrap `substrate` with `max_handles` publication slots. Inserts are
    /// buffered per handle in runs of `batch` (`<= 1` = unbuffered).
    pub fn with_substrate(name: String, substrate: S, max_handles: usize, batch: usize) -> Self {
        let slots = (0..max_handles.max(1))
            .map(|_| CachePadded::new(PubRecord::default()))
            .collect();
        let parallel = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self {
            name,
            shared: Mutex::new(substrate),
            slots,
            handle_ctr: AtomicUsize::new(0),
            batch: batch.max(1),
            spin: if parallel > 1 { 64 } else { 0 },
            pending: CachePadded::new(AtomicUsize::new(0)),
        }
    }

    /// One combining critical section: scan the publication list and
    /// apply every pending operation, repeating while scans keep finding
    /// work (bounded so the combiner eventually steps down under
    /// saturation and a waiter is elected instead).
    fn combine(&self, sub: &mut S) {
        const MAX_ROUNDS: u32 = 4;
        let active = self.handle_ctr.load(Ordering::Relaxed).min(self.slots.len());
        for _ in 0..MAX_ROUNDS {
            if self.pending.load(Ordering::Relaxed) == 0 {
                break;
            }
            let mut applied: u64 = 0;
            let mut served: usize = 0;
            let mut any_delete = false;
            // Pass 1: inserts and insert batches.
            for rec in &self.slots[..active] {
                match rec.op.load(Ordering::Acquire) {
                    ST_INSERT => {
                        sub.apply_insert(
                            rec.key.load(Ordering::Relaxed),
                            rec.value.load(Ordering::Relaxed),
                        );
                        rec.op.store(ST_DONE, Ordering::Release);
                        applied += 1;
                        served += 1;
                    }
                    ST_BATCH => {
                        applied += self.apply_batch(rec, sub);
                        rec.op.store(ST_DONE, Ordering::Release);
                        served += 1;
                    }
                    ST_BATCH_DELETE => {
                        // Commit the run now; the delete pass below picks
                        // up the downgraded record (counted there).
                        applied += self.apply_batch(rec, sub);
                        rec.op.store(ST_DELETE, Ordering::Release);
                        any_delete = true;
                    }
                    ST_DELETE => any_delete = true,
                    // ST_EMPTY and the ST_DONE* states carry no work.
                    _ => {}
                }
            }
            // Pass 2: all pending deletes from one heap pass. Consecutive
            // pops with no interleaved inserts come out in ascending key
            // order, assigned to requesters in slot order.
            if any_delete {
                for rec in &self.slots[..active] {
                    if rec.op.load(Ordering::Acquire) == ST_DELETE {
                        match sub.apply_delete_min() {
                            Some(it) => {
                                rec.res_key.store(it.key, Ordering::Relaxed);
                                rec.res_value.store(it.value, Ordering::Relaxed);
                                rec.op.store(ST_DONE_ITEM, Ordering::Release);
                            }
                            None => rec.op.store(ST_DONE_EMPTY, Ordering::Release),
                        }
                        applied += 1;
                        served += 1;
                    }
                }
            }
            if served > 0 {
                self.pending.fetch_sub(served, Ordering::Relaxed);
            }
            if applied == 0 {
                break;
            }
            telemetry::record_quiet(Event::FcCombineRound);
            telemetry::record_n_quiet(Event::FcOpsCombined, applied);
        }
    }

    /// Apply a published insert run. Sound because the owning handle
    /// spins until this record reaches a `ST_DONE*` state and leaves the
    /// buffer untouched (and alive) until then; the `Release` publish /
    /// `Acquire` consume pair on `op` orders the pointer and contents.
    fn apply_batch(&self, rec: &PubRecord, sub: &mut S) -> u64 {
        let ptr = rec.batch_ptr.load(Ordering::Relaxed) as *const Item;
        let len = rec.batch_len.load(Ordering::Relaxed);
        let items = unsafe { std::slice::from_raw_parts(ptr, len) };
        for it in items {
            sub.apply_insert(it.key, it.value);
        }
        len as u64
    }
}

impl<S: FcSubstrate> ConcurrentPq for FlatCombining<S> {
    type Handle<'a>
        = FcHandle<'a, S>
    where
        S: 'a;

    fn handle(&self) -> FcHandle<'_, S> {
        let slot = self.handle_ctr.fetch_add(1, Ordering::AcqRel);
        assert!(
            slot < self.slots.len(),
            "{}: more handles ({}) than publication slots ({}); construct with a larger \
             max_handles",
            self.name,
            slot + 1,
            self.slots.len()
        );
        FcHandle {
            q: self,
            slot,
            ins_buf: Vec::with_capacity(self.batch),
        }
    }

    fn name(&self) -> String {
        self.name.clone()
    }
}

impl<S: FcSubstrate> RelaxationBound for FlatCombining<S> {
    /// Strict (`Some(0)`) when unbuffered: every op is applied to the
    /// sequential substrate under the combiner lock. With insert runs of
    /// `m`, up to `m − 1` items per *other* handle are locally buffered
    /// and invisible to a deletion (a handle's own buffer is committed
    /// by its own delete via the batch-then-delete publication).
    fn rank_bound(&self, threads: usize) -> Option<u64> {
        Some(((self.batch - 1) * threads) as u64)
    }
}

/// Per-thread handle: one publication slot plus the local insert buffer.
pub struct FcHandle<'a, S: FcSubstrate> {
    q: &'a FlatCombining<S>,
    slot: usize,
    ins_buf: Vec<Item>,
}

impl<S: FcSubstrate> FcHandle<'_, S> {
    /// Execute `op` (args for `ST_INSERT`; batch ops read `ins_buf`).
    ///
    /// Fast path: if the combiner lock is free, skip publication
    /// entirely — apply the op directly (exactly the plain locked
    /// queue's path, minus the blocking `lock`) and run one combining
    /// scan for anyone who published meanwhile. Slow path: publish in
    /// this handle's record and spin until a combiner — possibly this
    /// thread, after a later election — applies it.
    fn run_op(&mut self, op: u64, key: Key, value: Value) -> Option<Item> {
        if let Some(mut sub) = self.q.shared.try_lock() {
            telemetry::record(Event::FcLockAcquire);
            let res = match op {
                ST_INSERT => {
                    sub.apply_insert(key, value);
                    None
                }
                ST_DELETE => sub.apply_delete_min(),
                ST_BATCH => {
                    for it in &self.ins_buf {
                        sub.apply_insert(it.key, it.value);
                    }
                    self.ins_buf.clear();
                    None
                }
                ST_BATCH_DELETE => {
                    for it in &self.ins_buf {
                        sub.apply_insert(it.key, it.value);
                    }
                    self.ins_buf.clear();
                    sub.apply_delete_min()
                }
                _ => unreachable!("run_op on a non-request state"),
            };
            if self.q.pending.load(Ordering::Relaxed) > 0 {
                self.q.combine(&mut sub);
            }
            return res;
        }
        let rec = &*self.q.slots[self.slot];
        match op {
            ST_INSERT => {
                rec.key.store(key, Ordering::Relaxed);
                rec.value.store(value, Ordering::Relaxed);
            }
            ST_BATCH | ST_BATCH_DELETE => {
                rec.batch_ptr.store(self.ins_buf.as_ptr() as usize, Ordering::Relaxed);
                rec.batch_len.store(self.ins_buf.len(), Ordering::Relaxed);
            }
            _ => {}
        }
        self.q.pending.fetch_add(1, Ordering::Relaxed);
        rec.op.store(op, Ordering::Release);
        let mut spins: u32 = 0;
        loop {
            match rec.op.load(Ordering::Acquire) {
                ST_DONE => {
                    if op == ST_BATCH {
                        self.ins_buf.clear();
                    }
                    return None;
                }
                ST_DONE_ITEM => {
                    if op == ST_BATCH_DELETE {
                        self.ins_buf.clear();
                    }
                    return Some(Item::new(
                        rec.res_key.load(Ordering::Relaxed),
                        rec.res_value.load(Ordering::Relaxed),
                    ));
                }
                ST_DONE_EMPTY => {
                    if op == ST_BATCH_DELETE {
                        self.ins_buf.clear();
                    }
                    return None;
                }
                _pending => {
                    if let Some(mut sub) = self.q.shared.try_lock() {
                        telemetry::record(Event::FcLockAcquire);
                        self.q.combine(&mut sub);
                        // Own op was pending before the election, so the
                        // first full round applied it; loop to decode.
                    } else {
                        // With real parallelism, spin briefly on the
                        // local publication line between lock probes —
                        // an active combiner typically serves the record
                        // within a few hundred cycles. Single-core (or
                        // starved): yield so the combiner can run at all.
                        for _ in 0..self.q.spin {
                            std::hint::spin_loop();
                        }
                        spins += 1;
                        if self.q.spin == 0 || spins >= 32 {
                            std::thread::yield_now();
                        }
                    }
                }
            }
        }
    }

}

impl<S: FcSubstrate> PqHandle for FcHandle<'_, S> {
    fn insert(&mut self, key: Key, value: Value) {
        if self.q.batch <= 1 {
            self.run_op(ST_INSERT, key, value);
        } else {
            self.ins_buf.push(Item::new(key, value));
            if self.ins_buf.len() >= self.q.batch {
                self.run_op(ST_BATCH, 0, 0);
            }
        }
    }

    fn delete_min(&mut self) -> Option<Item> {
        if self.ins_buf.is_empty() {
            self.run_op(ST_DELETE, 0, 0)
        } else {
            // Commit the buffered run and pop in one critical section, so
            // this handle's own inserts always participate in its
            // deletions (no buffered-min vs. shared-min tie case).
            self.run_op(ST_BATCH_DELETE, 0, 0)
        }
    }

    fn flush(&mut self) -> u64 {
        let n = self.ins_buf.len() as u64;
        if n > 0 {
            self.run_op(ST_BATCH, 0, 0);
        }
        n
    }
}

impl<S: FcSubstrate> Drop for FcHandle<'_, S> {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_handle_is_a_strict_heap() {
        let q = fc_globallock(1, 1);
        let mut h = q.handle();
        for k in [5u64, 1, 9, 3] {
            h.insert(k, k * 10);
        }
        let got: Vec<Key> = std::iter::from_fn(|| h.delete_min()).map(|it| it.key).collect();
        assert_eq!(got, vec![1, 3, 5, 9]);
        assert_eq!(h.delete_min(), None);
        assert_eq!(q.rank_bound(4), Some(0));
    }

    #[test]
    fn batched_handle_buffers_until_flush() {
        let q = fc_globallock(2, 4);
        let mut a = q.handle();
        let mut b = q.handle();
        a.insert(1, 1);
        a.insert(2, 2);
        // a's items are still buffered; b sees an empty substrate.
        assert_eq!(b.delete_min(), None);
        assert_eq!(a.flush(), 2);
        assert_eq!(b.delete_min(), Some(Item::new(1, 1)));
        assert_eq!(q.rank_bound(2), Some(6));
    }

    #[test]
    fn own_buffer_participates_in_own_deletes() {
        let q = fc_globallock(1, 64);
        let mut h = q.handle();
        h.insert(7, 7);
        h.insert(3, 3);
        // Buffered (batch not reached), but delete commits the run first.
        assert_eq!(h.delete_min(), Some(Item::new(3, 3)));
        assert_eq!(h.delete_min(), Some(Item::new(7, 7)));
        assert_eq!(h.delete_min(), None);
    }

    #[test]
    fn dropped_handle_flushes_its_buffer() {
        let q = fc_globallock(2, 16);
        {
            let mut h = q.handle();
            h.insert(42, 0);
        }
        let mut h2 = q.handle();
        assert_eq!(h2.delete_min(), Some(Item::new(42, 0)));
    }

    #[test]
    fn mound_substrate_drains_sorted() {
        let q = fc_mound(1, 1, 0xFC);
        let mut h = q.handle();
        for k in (0..200u64).rev() {
            h.insert(k, k);
        }
        for k in 0..200u64 {
            assert_eq!(h.delete_min().map(|it| it.key), Some(k));
        }
        assert_eq!(h.delete_min(), None);
    }

    #[test]
    fn concurrent_ops_conserve_items() {
        let q = std::sync::Arc::new(fc_globallock(5, 1));
        let mut joins = Vec::new();
        for t in 0..4u64 {
            let q = q.clone();
            joins.push(std::thread::spawn(move || {
                let mut h = q.handle();
                let mut got = Vec::new();
                for i in 0..500u64 {
                    h.insert(t * 1_000 + i, t);
                    if i % 2 == 1 {
                        if let Some(it) = h.delete_min() {
                            got.push(it);
                        }
                    }
                }
                got
            }));
        }
        let mut seen: Vec<Item> = joins.into_iter().flat_map(|j| j.join().unwrap()).collect();
        let mut h = q.handle();
        while let Some(it) = h.delete_min() {
            seen.push(it);
        }
        assert_eq!(seen.len(), 2_000);
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 2_000, "an item was duplicated or lost");
    }
}
