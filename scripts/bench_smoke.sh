#!/usr/bin/env bash
# Smoke benchmark for the MultiQueue family: plain multiqueue vs. the
# mq-sticky stickiness/buffering grid on the uniform workload. Writes
# BENCH_multiqueue.json (see crates/bench/src/bin/mq_smoke.rs) at the
# repository root and prints the best sticky config's speedup.
#
# Also runs three observability checks:
#   * instr_overhead — asserts the Instrumented wrapper costs less than
#     INSTR_MAX_OVERHEAD_PCT (default 5) percent of plain throughput,
#     guarding the per-handle sharded-counter design against regressions
#     that reintroduce false sharing; a second invocation built with
#     --features trace additionally gates an actively-recording flight
#     recorder at TRACE_MAX_OVERHEAD_PCT (default 5) percent;
#   * figures --metrics — produces artifacts/metrics_smoke.json, the
#     structured per-cell export (counters, time-sliced throughput,
#     latency histograms) that CI uploads as an artifact;
#   * figures --trace — produces artifacts/trace_smoke.json, a
#     Chrome-trace-event flight-recorder export (one track per thread,
#     loadable in Perfetto) that CI also uploads as an artifact.
#
# Usage: scripts/bench_smoke.sh [THREADS] [DURATION_MS]
set -euo pipefail
cd "$(dirname "$0")/.."
# Scratch outputs (smoke exports that are not recorded baselines) land
# under the gitignored artifacts/ directory.
mkdir -p artifacts

THREADS="${1:-4}"
DURATION_MS="${2:-1000}"
INSTR_MAX_OVERHEAD_PCT="${INSTR_MAX_OVERHEAD_PCT:-5}"
TRACE_MAX_OVERHEAD_PCT="${TRACE_MAX_OVERHEAD_PCT:-5}"
# Floor for the pooled-LSM kernel speedup gate (geomean of the steady
# and sawtooth regimes vs. the frozen legacy kernels). The acceptance
# target on quiet hardware is 1.3; default 1.0 so noisy shared runners
# only fail on a real regression.
LSM_KERNEL_MIN_SPEEDUP="${LSM_KERNEL_MIN_SPEEDUP:-1.0}"
# Floor for the branch-free kernel tier gate: geomean (steady ×
# sawtooth) of the kernels-on arm over the kernels-off arm (the frozen
# PR 4 pooled baseline). Acceptance target on quiet hardware is 1.15;
# default 1.0 so noisy shared runners only fail on a real regression.
KERNEL_TIER_MIN_SPEEDUP="${KERNEL_TIER_MIN_SPEEDUP:-1.0}"
# Floor for the SIMD dispatch gate: geomean (steady × sawtooth) of the
# pool-on arm (detected kernel tier) over the simd-off arm (scalar tier
# pinned, the frozen PR 5 dispatch). On the measured host the
# whole-queue A/B kept every production path scalar — merges are
# port-5-bound and the wide argmin loses on delete_min's serial
# critical path (EXPERIMENTS.md "SIMD kernel ablation") — so this is a
# *parity* gate, not a win gate: it catches a tier whose dispatch
# regresses the queue, while the SIMD kernels themselves stay as
# forced-tier ablation arms. Default 0.90 absorbs shared-runner noise.
SIMD_TIER_MIN_SPEEDUP="${SIMD_TIER_MIN_SPEEDUP:-0.90}"
# Floor for the flat-combining A/B gate: geomean of the per-round
# fc-vs-plain throughput ratios across both pairs (fc-globallock vs
# globallock, fc-mound vs mound). The fc-mound pair carries the win —
# the combiner drives the mound's exclusive-access paths, eliding all
# per-node locking — measuring 1.6–1.9x even on one core; the
# fc-globallock pair is a wash against an uncontended std mutex
# (0.93–0.99x). Acceptance target is 1.1; default 1.0 so noisy shared
# runners only fail on a real regression.
FC_MIN_SPEEDUP="${FC_MIN_SPEEDUP:-1.0}"

cargo run -p pq-bench --release --offline --bin mq_smoke -- \
    --threads "$THREADS" \
    --duration-ms "$DURATION_MS" \
    --out BENCH_multiqueue.json

echo "== LSM kernel ablation (legacy/pool-off/kernels-off/simd-off/pool-on, gates ${LSM_KERNEL_MIN_SPEEDUP}x legacy, ${KERNEL_TIER_MIN_SPEEDUP}x kernels-off, ${SIMD_TIER_MIN_SPEEDUP}x simd-off) =="
# Sequential 5-arm A/B of the allocation-free merge kernels, the
# branch-free kernel tiers, and the SIMD dispatch, plus a concurrent
# dlsm/klsm sanity sweep; writes BENCH_simd_kernels.json (see
# crates/bench/src/bin/lsm_kernels.rs and EXPERIMENTS.md "SIMD kernel
# ablation"). Exits non-zero if the pool-on geomean speedup over the
# legacy kernels falls below LSM_KERNEL_MIN_SPEEDUP, its speedup over
# the kernels-off arm (the frozen PR 4 pooled baseline) falls below
# KERNEL_TIER_MIN_SPEEDUP, or its speedup over the simd-off arm (the
# scalar-tier PR 5 dispatch) falls below SIMD_TIER_MIN_SPEEDUP.
cargo run -p pq-bench --release --offline --bin lsm_kernels -- \
    --threads "$THREADS" \
    --duration-ms "$DURATION_MS" \
    --min-speedup "$LSM_KERNEL_MIN_SPEEDUP" \
    --min-kernel-speedup "$KERNEL_TIER_MIN_SPEEDUP" \
    --min-simd-speedup "$SIMD_TIER_MIN_SPEEDUP" \
    --out BENCH_simd_kernels.json

echo "== flat-combining A/B + batch ablation (gates ${FC_MIN_SPEEDUP}x plain locked) =="
# Interleaved A/B of each flat-combining queue against its plain locked
# counterpart plus the m ∈ {1,4,16,64} batch-size frontier across the
# batching families; writes BENCH_flat_combining.json (see
# crates/bench/src/bin/batch_ablation.rs and EXPERIMENTS.md "Flat
# combining and batch-size ablation"). Exits non-zero if the fc-vs-plain
# geomean speedup falls below FC_MIN_SPEEDUP.
cargo run -p pq-bench --release --offline --bin batch_ablation -- \
    --threads "$THREADS" \
    --duration-ms "$DURATION_MS" \
    --min-speedup "$FC_MIN_SPEEDUP" \
    --out BENCH_flat_combining.json

echo "== instrumentation overhead (limit ${INSTR_MAX_OVERHEAD_PCT}%) =="
cargo run -p pq-bench --release --offline --bin instr_overhead -- \
    --threads "$THREADS" \
    --duration-ms "$DURATION_MS" \
    --max-overhead-pct "$INSTR_MAX_OVERHEAD_PCT"

echo "== flight-recorder overhead (trace feature, limit ${TRACE_MAX_OVERHEAD_PCT}%) =="
# Same A/B binary built with the trace feature: adds an arm that runs
# with the flight recorder actively capturing batch spans and gates it
# at TRACE_MAX_OVERHEAD_PCT percent of plain throughput, so the
# batch-granularity span design (no extra clock reads in the hot loop)
# cannot silently regress.
cargo run -p pq-bench --release --offline --features trace --bin instr_overhead -- \
    --threads "$THREADS" \
    --duration-ms "$DURATION_MS" \
    --max-overhead-pct "$INSTR_MAX_OVERHEAD_PCT" \
    --max-trace-overhead-pct "$TRACE_MAX_OVERHEAD_PCT"

echo "== semantic checker smoke (one chaos cell + mutation tests) =="
# One strict and one relaxed queue through the recorded checker under
# seeded schedule perturbation, plus the three broken-wrapper mutation
# tests; fails on any violation, determinism mismatch, or a mutant the
# checker does not catch. Full matrix: cargo run ... --bin checker_stress.
cargo run -p pq-bench --release --offline --bin checker_stress -- \
    --threads "$THREADS" \
    --queue linden --queue multiqueue \
    --chaos-seed 7 \
    --mutation-test \
    --metrics BENCH_checker_smoke.json

echo "== metrics export smoke (telemetry on) =="
cargo run -p pq-bench --release --offline --features telemetry --bin figures -- \
    --experiment fig4a \
    --queues multiqueue,mq-sticky,klsm256,linden,dlsm,klsm128,klsm4096 \
    --threads 2,"$THREADS" \
    --prefill 20000 \
    --duration-ms 250 \
    --reps 2 \
    --metrics artifacts/metrics_smoke.json >/dev/null

echo "== flight-recorder export smoke (trace on) =="
# One short traced cell per queue at THREADS threads; writes
# artifacts/trace_smoke.json, a Chrome-trace-event file loadable in
# Perfetto with one track per worker thread (EXPERIMENTS.md
# "Flight-recorder tracing"). Dropped-record counts are printed by the
# binary and embedded in the export, so truncation is never silent.
cargo run -p pq-bench --release --offline --features trace --bin figures -- \
    --experiment fig4a \
    --queues multiqueue,klsm256 \
    --threads "$THREADS" \
    --prefill 20000 \
    --duration-ms 250 \
    --reps 1 \
    --trace artifacts/trace_smoke.json >/dev/null
