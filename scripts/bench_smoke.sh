#!/usr/bin/env bash
# Smoke benchmark for the MultiQueue family: plain multiqueue vs. the
# mq-sticky stickiness/buffering grid on the uniform workload. Writes
# BENCH_multiqueue.json (see crates/bench/src/bin/mq_smoke.rs) at the
# repository root and prints the best sticky config's speedup.
#
# Usage: scripts/bench_smoke.sh [THREADS] [DURATION_MS]
set -euo pipefail
cd "$(dirname "$0")/.."

THREADS="${1:-4}"
DURATION_MS="${2:-1000}"

cargo run -p pq-bench --release --offline --bin mq_smoke -- \
    --threads "$THREADS" \
    --duration-ms "$DURATION_MS" \
    --out BENCH_multiqueue.json
