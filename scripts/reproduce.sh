#!/usr/bin/env bash
# Regenerate every artifact of the SPAA 2016 reproduction.
#
# Quick mode (default) finishes in ~20 minutes on a laptop; pass
# --paper-scale for the original parameters (10^6 prefill, 10 s windows,
# 10 repetitions — hours).
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE_ARGS="--prefill 100000 --duration-ms 150 --reps 3"
QUALITY_ARGS="--prefill 100000 --ops-per-thread 20000"
if [[ "${1:-}" == "--paper-scale" ]]; then
    SCALE_ARGS="--prefill 1000000 --duration-ms 10000 --reps 10"
    QUALITY_ARGS="--prefill 1000000 --ops-per-thread 200000"
fi

echo "== build =="
cargo build --workspace --release

echo "== tests =="
cargo test --workspace --release 2>&1 | tee test_output.txt

echo "== throughput figures (1-4, 8, extensions) =="
cargo run -q --release -p pq-bench --bin figures -- --all \
    --threads 1,2,4,8 $SCALE_ARGS | tee results_figures.txt

echo "== rank-error tables (1, 2, 5) =="
cargo run -q --release -p pq-bench --bin quality -- --all \
    --threads 2,4,8 $QUALITY_ARGS | tee results_quality.txt

echo "== latency (appendix F switch) =="
cargo run -q --release -p pq-bench --bin latency -- --threads 4 \
    | tee results_latency.txt

echo "== criterion benches (regression tracking + ablations) =="
cargo bench --workspace 2>&1 | tee bench_output.txt

echo "== examples =="
for ex in quickstart sssp discrete_event_sim branch_and_bound queue_stats; do
    echo "-- $ex"
    cargo run -q --release -p pq-bench --example "$ex"
done

echo "done; see EXPERIMENTS.md for the paper-vs-measured comparison"
