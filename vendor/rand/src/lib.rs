//! Offline stand-in for the subset of `rand` 0.8 this workspace uses.
//!
//! The build environment has no network access and no crates.io cache, so
//! the workspace vendors minimal, API-compatible stubs for its external
//! dependencies (see `vendor/README.md`). This crate provides:
//!
//! * [`RngCore`] / [`Rng`] with `gen`, `gen_range`, `gen_bool`
//! * [`SeedableRng`] with `seed_from_u64` / `from_entropy`
//! * [`rngs::SmallRng`] — xoshiro256++, the same family the real
//!   `SmallRng` uses on 64-bit targets, so statistical quality is
//!   comparable (streams differ; nothing in-tree depends on the exact
//!   stream of the real crate, only on determinism per seed).

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types sampleable uniformly over their whole domain (the real crate's
/// `Standard` distribution).
pub trait StandardSample: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random bits into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`]. Generic over the output type
/// (mirroring the real crate's `SampleRange<T>`) so the sampled integer
/// type is inferred from how the result is used, not from the literal.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased integer in [0, span) by rejection sampling (Lemire-style
/// threshold on the modulus).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64 + 1;
                lo.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_range_signed!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f64 = StandardSample::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f32 = StandardSample::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value uniformly over `T`'s whole domain.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of [0,1]: {p}");
        let u: f64 = StandardSample::sample(self);
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (expanded with SplitMix64, as the real
    /// crate does).
    fn seed_from_u64(state: u64) -> Self;

    /// Build from environmental entropy (time + a process-wide counter —
    /// no OS randomness source is required offline).
    fn from_entropy() -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::time::{SystemTime, UNIX_EPOCH};
        static CTR: AtomicU64 = AtomicU64::new(0);
        let t = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let c = CTR.fetch_add(1, Ordering::Relaxed);
        Self::seed_from_u64(t ^ c.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and statistically solid; the same
    /// generator family the real `SmallRng` uses on 64-bit platforms.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut st);
            }
            // All-zero state would be a fixed point; splitmix64 cannot
            // produce four zeros from any seed, but keep the guard cheap
            // and explicit.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let mut c = SmallRng::seed_from_u64(43);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(0u64..=5);
            assert!(y <= 5);
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut r = SmallRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((25_000..35_000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn f64_standard_sample_is_unit_interval() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn from_entropy_produces_distinct_streams() {
        let mut a = SmallRng::from_entropy();
        let mut b = SmallRng::from_entropy();
        // Same nanosecond is possible; the counter still separates them.
        let va: Vec<u64> = (0..4).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }
}
