//! Offline stand-in for the subset of `proptest` 1.x this workspace uses
//! (see `vendor/README.md` for why this exists).
//!
//! Provides the `proptest!` / `prop_assert!` / `prop_assert_eq!` /
//! `prop_oneof!` macros, [`strategy::Strategy`] with `prop_map`,
//! [`strategy::Just`], `collection::vec`, `bool::ANY`, integer-range
//! strategies, tuple strategies, `ProptestConfig::with_cases`, and
//! `test_runner::TestCaseError`.
//!
//! Differences from the real crate, by design: no shrinking (a failing
//! case reports its inputs un-minimised) and a fixed deterministic seed
//! per test function, so failures always reproduce.

pub mod test_runner {
    /// Why a single generated case failed.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub enum TestCaseError {
        /// An assertion failed.
        Fail(String),
        /// The input was rejected (not counted as failure by the runner).
        Reject(String),
    }

    impl TestCaseError {
        /// An assertion-failure error.
        pub fn fail(reason: impl Into<String>) -> Self {
            Self::Fail(reason.into())
        }

        /// An input-rejection error.
        pub fn reject(reason: impl Into<String>) -> Self {
            Self::Reject(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                Self::Fail(r) => write!(f, "test case failed: {r}"),
                Self::Reject(r) => write!(f, "test case rejected: {r}"),
            }
        }
    }

    /// Runner configuration; only `cases` is honoured by the stub.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each `proptest!` test executes.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // The real default is 256; 64 keeps the heavier multi-queue
            // property tests quick while still exploring widely.
            Self { cases: 64 }
        }
    }

    /// Deterministic SplitMix64 source used to drive strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Fixed-seed RNG; `salt` separates test functions so they do
        /// not all see the same input sequence.
        pub fn deterministic(salt: u64) -> Self {
            Self {
                state: 0x50_52_4F_50_54_45_53_54u64 ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform integer in `[0, span)`.
        pub fn below(&mut self, span: u64) -> u64 {
            assert!(span > 0, "empty sampling span");
            // Modulo bias is irrelevant for test-input generation.
            self.next_u64() % span
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Object-safe core (`sample_one`) plus sized combinators, so
    /// `Box<dyn Strategy<Value = T>>` works for `prop_oneof!`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generate one value.
        fn sample_one(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn sample_one(&self, rng: &mut TestRng) -> T {
            (**self).sample_one(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample_one(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample_one(rng)
        }
    }

    /// Always the same value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample_one(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample_one(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample_one(rng))
        }
    }

    /// Uniform choice among boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        choices: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Build from alternatives; must be non-empty.
        pub fn new(choices: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!choices.is_empty(), "prop_oneof! needs >= 1 alternative");
            Self { choices }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample_one(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.choices.len() as u64) as usize;
            self.choices[i].sample_one(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample_one(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample_one(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }
    signed_range_strategy!(i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($s:ident | $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample_one(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample_one(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A | 0, B | 1)
        (A | 0, B | 1, C | 2)
        (A | 0, B | 1, C | 2, D | 3)
    }

    /// PhantomData-free marker for strategies defined on foreign types.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct TypeMarker<T>(pub PhantomData<T>);
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy generating either boolean with equal probability.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// The canonical instance (`proptest::bool::ANY`).
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample_one(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample_one(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample_one(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Choose uniformly among strategy alternatives producing one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(::std::boxed::Box::new($strategy)
                as ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>),+
        ])
    };
}

/// Assert inside a `proptest!` body; failure aborts only the current
/// case with a `TestCaseError`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{:?}` != `{:?}`", lhs, rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{:?}` != `{:?}`: {}", lhs, rhs, format!($($fmt)+)
        );
    }};
}

/// Define property tests. Supports an optional
/// `#![proptest_config(...)]` header and any number of
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            $crate::test_runner::ProptestConfig::default(); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr; $(
        $(#[$attr:meta])*
        fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            // Salt the RNG with the test name so sibling tests explore
            // different sequences while staying reproducible.
            let salt = stringify!($name)
                .bytes()
                .fold(0u64, |h, b| h.wrapping_mul(131).wrapping_add(b as u64));
            let mut rng = $crate::test_runner::TestRng::deterministic(salt);
            for case in 0..config.cases {
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(let $arg =
                            $crate::strategy::Strategy::sample_one(&($strategy), &mut rng);)+
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    Ok(()) => {}
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    Err($crate::test_runner::TestCaseError::Fail(reason)) => {
                        panic!(
                            "proptest {}: case {}/{} failed: {}",
                            stringify!($name), case + 1, config.cases, reason
                        );
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = TestRng::deterministic(1);
        for _ in 0..1000 {
            let v = (5u64..9).sample_one(&mut rng);
            assert!((5..9).contains(&v));
        }
    }

    #[test]
    fn vec_strategy_respects_length() {
        let mut rng = TestRng::deterministic(2);
        let s = crate::collection::vec(0u64..10, 2..5);
        for _ in 0..200 {
            let v = s.sample_one(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn oneof_and_map_compose() {
        #[derive(Clone, Debug, PartialEq)]
        enum Op {
            Ins(u64),
            Del,
        }
        let s = prop_oneof![(0u64..4).prop_map(Op::Ins), Just(Op::Del)];
        let mut rng = TestRng::deterministic(3);
        let mut saw_ins = false;
        let mut saw_del = false;
        for _ in 0..100 {
            match s.sample_one(&mut rng) {
                Op::Ins(k) => {
                    assert!(k < 4);
                    saw_ins = true;
                }
                Op::Del => saw_del = true,
            }
        }
        assert!(saw_ins && saw_del);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_roundtrip(xs in crate::collection::vec(0u64..100, 0..20)) {
            let doubled: Vec<u64> = xs.iter().map(|x| x * 2).collect();
            prop_assert_eq!(doubled.len(), xs.len());
            for (d, x) in doubled.iter().zip(&xs) {
                prop_assert!(*d == x * 2, "bad doubling of {}", x);
            }
        }
    }
}
