//! Offline stand-in for the subset of `crossbeam-utils` this workspace
//! uses: [`CachePadded`] (see `vendor/README.md` for why this exists).

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Pads and aligns a value to 128 bytes so neighbouring values never
/// share a cache line (128 covers adjacent-line prefetchers on x86-64
/// and the 128-byte lines on some aarch64 parts).
#[derive(Clone, Copy, Default, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wrap `value` in cache-line padding.
    pub const fn new(value: T) -> Self {
        Self { value }
    }

    /// Unwrap, returning the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CachePadded")
            .field("value", &self.value)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::CachePadded;

    #[test]
    fn aligned_to_128() {
        assert_eq!(std::mem::align_of::<CachePadded<u8>>(), 128);
        let xs = [CachePadded::new(0u8), CachePadded::new(1u8)];
        let a = &xs[0] as *const _ as usize;
        let b = &xs[1] as *const _ as usize;
        assert!(b - a >= 128);
    }

    #[test]
    fn derefs_to_inner() {
        let mut c = CachePadded::new(5u64);
        *c += 1;
        assert_eq!(*c, 6);
        assert_eq!(c.into_inner(), 6);
    }
}
