//! Offline stand-in for the subset of `parking_lot` 0.12 this workspace
//! uses: `Mutex` with infallible `lock`, `try_lock -> Option`, and a
//! guard type (see `vendor/README.md` for why this exists).
//!
//! Backed by `std::sync::Mutex`; poisoning is deliberately swallowed,
//! matching `parking_lot`'s poison-free semantics.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion lock with `parking_lot`'s poison-free API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`] / [`Mutex::try_lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Block until the lock is acquired.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let inner = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { inner }
    }

    /// Acquire the lock only if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (the `&mut` proves uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn try_lock_fails_while_held() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn contended_increments_all_land() {
        let m = Mutex::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(m.into_inner(), 4000);
    }
}
