//! Offline stand-in for the subset of `criterion` 0.5 this workspace
//! uses (see `vendor/README.md` for why this exists).
//!
//! Implements `Criterion` / `benchmark_group` / `bench_function` with
//! the `iter`, `iter_custom`, and `iter_batched` timing loops. Instead
//! of the real crate's statistical engine it takes `sample_size`
//! samples, prints mean and min per sample to stdout, and keeps no
//! history — enough to run every bench target and eyeball regressions.

use std::time::{Duration, Instant};

/// Batch sizing hint for [`Bencher::iter_batched`]; the stub only uses
/// it to pick how many setup/routine pairs form one sample.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch.
    SmallInput,
    /// Large inputs: few per batch.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

impl BatchSize {
    fn iters(self) -> u64 {
        match self {
            BatchSize::SmallInput => 16,
            BatchSize::LargeInput => 4,
            BatchSize::PerIteration => 1,
        }
    }
}

/// Benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Target time for the measurement phase.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Target time for the warm-up phase.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// The real crate parses CLI filters here; the stub accepts
    /// everything unchanged.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: None,
        }
    }

    /// Run one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = BenchmarkGroup {
            criterion: self,
            name: String::new(),
            sample_size: None,
        };
        group.bench_function(id, f);
        self
    }

    /// Print the closing summary (no-op beyond a newline in the stub).
    pub fn final_summary(&mut self) {
        println!("benchmarks complete");
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Override samples per benchmark for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Override measurement time for this group (accepted, unused).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        let mut b = Bencher {
            samples,
            warm_up: self.criterion.warm_up_time,
            measurement: self.criterion.measurement_time,
            recorded: Vec::new(),
        };
        f(&mut b);
        let (mean, min) = b.stats();
        println!(
            "  {}/{:<28} mean {:>12} min {:>12} ({} samples)",
            self.name,
            id,
            fmt_ns(mean),
            fmt_ns(min),
            samples
        );
        self
    }

    /// Finish the group.
    pub fn finish(self) {}
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Passed to the benchmark closure; runs the timing loops.
pub struct Bencher {
    samples: usize,
    warm_up: Duration,
    measurement: Duration,
    recorded: Vec<f64>,
}

impl Bencher {
    fn stats(&self) -> (f64, f64) {
        if self.recorded.is_empty() {
            return (0.0, 0.0);
        }
        let mean = self.recorded.iter().sum::<f64>() / self.recorded.len() as f64;
        let min = self.recorded.iter().copied().fold(f64::INFINITY, f64::min);
        (mean, min)
    }

    /// Time `routine` repeatedly; records mean ns per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: find an iteration count that fills the per-sample
        // budget, starting from one timed call.
        let once = {
            let t = Instant::now();
            std::hint::black_box(routine());
            t.elapsed()
        };
        let per_sample = (self.measurement / self.samples as u32).max(Duration::from_micros(50));
        let iters = (per_sample.as_nanos() / once.as_nanos().max(1)).clamp(1, 1_000_000) as u64;
        let warm_until = Instant::now() + self.warm_up;
        while Instant::now() < warm_until {
            std::hint::black_box(routine());
        }
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            self.recorded
                .push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
    }

    /// The caller times itself: `routine(iters)` returns the total
    /// duration attributable to `iters` iterations.
    pub fn iter_custom<R: FnMut(u64) -> Duration>(&mut self, mut routine: R) {
        let iters = 1_000u64;
        for _ in 0..self.samples {
            let d = routine(iters);
            self.recorded.push(d.as_nanos() as f64 / iters as f64);
        }
    }

    /// Setup excluded from timing; `routine` consumes the setup output.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let per_batch = size.iters();
        for _ in 0..self.samples {
            let inputs: Vec<I> = (0..per_batch).map(|_| setup()).collect();
            let t = Instant::now();
            for input in inputs {
                std::hint::black_box(routine(input));
            }
            self.recorded
                .push(t.elapsed().as_nanos() as f64 / per_batch as f64);
        }
    }
}

/// Opaque-to-the-optimizer identity, re-exported for bench code.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_records_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1));
        let mut ran = 0u64;
        {
            let mut g = c.benchmark_group("g");
            g.bench_function("count", |b| b.iter(|| ran += 1));
            g.finish();
        }
        assert!(ran > 0);
        c.final_summary();
    }

    #[test]
    fn iter_custom_passes_iters() {
        let mut c = Criterion::default().sample_size(2);
        let mut seen = Vec::new();
        let mut g = c.benchmark_group("g");
        g.bench_function("custom", |b| {
            b.iter_custom(|iters| {
                seen.push(iters);
                Duration::from_micros(iters)
            })
        });
        g.finish();
        assert_eq!(seen.len(), 2);
        assert!(seen.iter().all(|&i| i > 0));
    }

    #[test]
    fn iter_batched_consumes_setup_output() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("g");
        let mut total = 0usize;
        g.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64, 2, 3],
                |v| total += v.len(),
                BatchSize::SmallInput,
            )
        });
        g.finish();
        assert!(total > 0);
    }
}
