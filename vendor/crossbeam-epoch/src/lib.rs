//! Offline stand-in for the subset of `crossbeam-epoch` this workspace
//! uses (see `vendor/README.md` for why this exists).
//!
//! Tagged atomic pointers ([`Atomic`], [`Owned`], [`Shared`]) keep the
//! real crate's API and semantics. Epoch-based reclamation itself is
//! replaced by the one memory-safe choice available without tracking
//! reader epochs: [`Guard::defer_destroy`] *leaks* the node instead of
//! freeing it. Readers can therefore never observe freed memory; the
//! cost is that logically deleted nodes are not reclaimed until process
//! exit. Structure `Drop` impls still free everything reachable via
//! [`Shared::into_owned`] under [`unprotected`], so quiescent teardown
//! reclaims the live structure.

use std::fmt;
use std::marker::PhantomData;
use std::mem;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Mask of the pointer bits available for tags given `T`'s alignment.
fn low_bits<T>() -> usize {
    mem::align_of::<T>() - 1
}

fn decompose<T>(data: usize) -> (usize, usize) {
    (data & !low_bits::<T>(), data & low_bits::<T>())
}

/// A pinned-epoch witness. In this stub pinning is free and reclamation
/// is deferred forever (leaked), so the guard carries no state; it still
/// types the API exactly like the real crate.
pub struct Guard {
    _priv: (),
}

impl Guard {
    /// Schedule `ptr` for destruction once no thread can reach it.
    ///
    /// Stub behaviour: leak. Without epoch tracking the only memory-safe
    /// "later" is "never"; callers already guarantee `ptr` is unlinked,
    /// so leaking it is invisible apart from memory footprint.
    ///
    /// # Safety
    /// Same contract as the real crate: `ptr` must be unlinked so no new
    /// references to it can be created after this call.
    pub unsafe fn defer_destroy<T>(&self, ptr: Shared<'_, T>) {
        let _ = ptr;
    }
}

/// Pin the current thread. Free in this stub; exists for API parity.
pub fn pin() -> Guard {
    Guard { _priv: () }
}

static UNPROTECTED: Guard = Guard { _priv: () };

/// Return a guard without pinning.
///
/// # Safety
/// Caller must guarantee no concurrent access to the data structure
/// (e.g. inside `Drop` with `&mut self`), exactly as with the real crate.
pub unsafe fn unprotected() -> &'static Guard {
    &UNPROTECTED
}

/// Types convertible to/from a raw tagged-pointer word; implemented by
/// [`Owned`] and [`Shared`] so [`Atomic`] methods accept either.
pub trait Pointer<T> {
    /// Consume `self`, returning the tagged word.
    fn into_usize(self) -> usize;

    /// Rebuild from a tagged word.
    ///
    /// # Safety
    /// `data` must have come from `into_usize` of the same impl and, for
    /// `Owned`, ownership must be unique.
    unsafe fn from_usize(data: usize) -> Self;
}

/// An owned, heap-allocated `T` (a `Box` that can carry a tag and move
/// into an [`Atomic`]).
pub struct Owned<T> {
    data: usize,
    _marker: PhantomData<Box<T>>,
}

impl<T> Owned<T> {
    /// Allocate `value` on the heap.
    pub fn new(value: T) -> Self {
        let data = Box::into_raw(Box::new(value)) as usize;
        Self {
            data,
            _marker: PhantomData,
        }
    }

    /// Convert into a [`Shared`], transferring ownership to the caller's
    /// unsafe code.
    pub fn into_shared<'g>(self, _guard: &'g Guard) -> Shared<'g, T> {
        Shared {
            data: self.into_usize(),
            _marker: PhantomData,
        }
    }

    /// Return the same allocation with the tag bits set to `tag`.
    pub fn with_tag(self, tag: usize) -> Self {
        let (raw, _) = decompose::<T>(self.data);
        let data = raw | (tag & low_bits::<T>());
        mem::forget(self);
        Self {
            data,
            _marker: PhantomData,
        }
    }

    /// Unwrap the heap allocation into the value.
    pub fn into_box(self) -> Box<T> {
        let (raw, _) = decompose::<T>(self.data);
        mem::forget(self);
        unsafe { Box::from_raw(raw as *mut T) }
    }
}

impl<T> Pointer<T> for Owned<T> {
    fn into_usize(self) -> usize {
        let data = self.data;
        mem::forget(self);
        data
    }

    unsafe fn from_usize(data: usize) -> Self {
        Self {
            data,
            _marker: PhantomData,
        }
    }
}

impl<T> Deref for Owned<T> {
    type Target = T;
    fn deref(&self) -> &T {
        let (raw, _) = decompose::<T>(self.data);
        unsafe { &*(raw as *const T) }
    }
}

impl<T> DerefMut for Owned<T> {
    fn deref_mut(&mut self) -> &mut T {
        let (raw, _) = decompose::<T>(self.data);
        unsafe { &mut *(raw as *mut T) }
    }
}

impl<T> Drop for Owned<T> {
    fn drop(&mut self) {
        let (raw, _) = decompose::<T>(self.data);
        drop(unsafe { Box::from_raw(raw as *mut T) });
    }
}

impl<T: fmt::Debug> fmt::Debug for Owned<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Owned").field(&**self).finish()
    }
}

/// A tagged shared pointer valid for the guard lifetime `'g`.
pub struct Shared<'g, T> {
    data: usize,
    _marker: PhantomData<(&'g (), *const T)>,
}

impl<T> Clone for Shared<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Shared<'_, T> {}

impl<T> PartialEq for Shared<'_, T> {
    fn eq(&self, other: &Self) -> bool {
        self.data == other.data
    }
}
impl<T> Eq for Shared<'_, T> {}

impl<'g, T> Shared<'g, T> {
    /// The null pointer (tag 0).
    pub fn null() -> Self {
        Self {
            data: 0,
            _marker: PhantomData,
        }
    }

    /// True if the address part is null (any tag).
    pub fn is_null(&self) -> bool {
        decompose::<T>(self.data).0 == 0
    }

    /// The tag bits.
    pub fn tag(&self) -> usize {
        decompose::<T>(self.data).1
    }

    /// Same address with tag bits replaced by `tag`.
    pub fn with_tag(&self, tag: usize) -> Self {
        let (raw, _) = decompose::<T>(self.data);
        Self {
            data: raw | (tag & low_bits::<T>()),
            _marker: PhantomData,
        }
    }

    /// Dereference, or `None` when null.
    ///
    /// # Safety
    /// The pointee must still be live (guaranteed by the stub's
    /// leak-instead-of-free reclamation whenever it was live on load).
    pub unsafe fn as_ref(&self) -> Option<&'g T> {
        let (raw, _) = decompose::<T>(self.data);
        (raw as *const T).as_ref()
    }

    /// Dereference a non-null pointer.
    ///
    /// # Safety
    /// Pointer must be non-null and live.
    pub unsafe fn deref(&self) -> &'g T {
        let (raw, _) = decompose::<T>(self.data);
        &*(raw as *const T)
    }

    /// Reclaim ownership (e.g. in `Drop` under [`unprotected`]).
    ///
    /// # Safety
    /// Caller must uniquely own the allocation.
    pub unsafe fn into_owned(self) -> Owned<T> {
        debug_assert!(!self.is_null(), "into_owned on null Shared");
        Owned::from_usize(self.data)
    }
}

impl<T> Pointer<T> for Shared<'_, T> {
    fn into_usize(self) -> usize {
        self.data
    }

    unsafe fn from_usize(data: usize) -> Self {
        Self {
            data,
            _marker: PhantomData,
        }
    }
}

impl<T> fmt::Debug for Shared<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (raw, tag) = decompose::<T>(self.data);
        f.debug_struct("Shared")
            .field("raw", &(raw as *const T))
            .field("tag", &tag)
            .finish()
    }
}

/// An atomic tagged pointer to a heap `T`.
pub struct Atomic<T> {
    data: AtomicUsize,
    _marker: PhantomData<*mut T>,
}

unsafe impl<T: Send + Sync> Send for Atomic<T> {}
unsafe impl<T: Send + Sync> Sync for Atomic<T> {}

/// Error of a failed [`Atomic::compare_exchange`]: the value actually
/// found plus the not-installed `new`, handed back for reuse.
pub struct CompareExchangeError<'g, T, P: Pointer<T>> {
    /// What the atomic held instead of the expected value.
    pub current: Shared<'g, T>,
    /// The proposed value, returned to the caller.
    pub new: P,
}

impl<T, P: Pointer<T>> fmt::Debug for CompareExchangeError<'_, T, P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompareExchangeError")
            .field("current", &self.current)
            .finish()
    }
}

impl<T> Atomic<T> {
    /// A null pointer.
    pub fn null() -> Self {
        Self {
            data: AtomicUsize::new(0),
            _marker: PhantomData,
        }
    }

    /// Allocate `value` and point at it.
    pub fn new(value: T) -> Self {
        Self {
            data: AtomicUsize::new(Owned::new(value).into_usize()),
            _marker: PhantomData,
        }
    }

    /// Load the current pointer.
    pub fn load<'g>(&self, ord: Ordering, _guard: &'g Guard) -> Shared<'g, T> {
        unsafe { Shared::from_usize(self.data.load(ord)) }
    }

    /// Store a new pointer. The previous pointee is NOT reclaimed (same
    /// as the real crate).
    pub fn store<P: Pointer<T>>(&self, new: P, ord: Ordering) {
        self.data.store(new.into_usize(), ord);
    }

    /// Swap in a new pointer, returning the previous one.
    pub fn swap<'g, P: Pointer<T>>(
        &self,
        new: P,
        ord: Ordering,
        _guard: &'g Guard,
    ) -> Shared<'g, T> {
        unsafe { Shared::from_usize(self.data.swap(new.into_usize(), ord)) }
    }

    /// Compare-and-swap `current` for `new`. On failure the proposed
    /// `new` (which may be an [`Owned`]) is handed back in the error so
    /// the caller can retry without reallocating.
    pub fn compare_exchange<'g, P: Pointer<T>>(
        &self,
        current: Shared<'_, T>,
        new: P,
        success: Ordering,
        failure: Ordering,
        _guard: &'g Guard,
    ) -> Result<Shared<'g, T>, CompareExchangeError<'g, T, P>> {
        let new_data = new.into_usize();
        match self
            .data
            .compare_exchange(current.into_usize(), new_data, success, failure)
        {
            Ok(_) => Ok(unsafe { Shared::from_usize(new_data) }),
            Err(found) => Err(CompareExchangeError {
                current: unsafe { Shared::from_usize(found) },
                new: unsafe { P::from_usize(new_data) },
            }),
        }
    }
}

impl<T> fmt::Debug for Atomic<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Atomic({:#x})",
            self.data.load(std::sync::atomic::Ordering::Relaxed)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering::{AcqRel, Acquire, Relaxed};

    #[test]
    fn tag_roundtrip() {
        let g = pin();
        let a = Atomic::new(42u64);
        let s = a.load(Acquire, &g);
        assert_eq!(s.tag(), 0);
        let t = s.with_tag(1);
        assert_eq!(t.tag(), 1);
        assert_eq!(unsafe { t.deref() }, &42);
        assert_eq!(t.with_tag(0), s);
        drop(unsafe { s.into_owned() });
    }

    #[test]
    fn compare_exchange_returns_new_on_failure() {
        let g = pin();
        let a = Atomic::new(1u64);
        let cur = a.load(Acquire, &g);
        let stale = Shared::<u64>::null();
        let owned = Owned::new(2u64);
        let e = a
            .compare_exchange(stale, owned, AcqRel, Acquire, &g)
            .unwrap_err();
        assert_eq!(e.current, cur);
        assert_eq!(*e.new, 2);
        let ok = a.compare_exchange(cur, e.new, AcqRel, Acquire, &g).unwrap();
        assert_eq!(unsafe { ok.deref() }, &2);
        drop(unsafe { cur.into_owned() });
        drop(unsafe { a.load(Relaxed, &g).into_owned() });
    }

    #[test]
    fn null_handling() {
        let s = Shared::<u64>::null();
        assert!(s.is_null());
        assert!(unsafe { s.as_ref() }.is_none());
        let a = Atomic::<u64>::null();
        let g = pin();
        assert!(a.load(Relaxed, &g).is_null());
    }

    #[test]
    fn owned_with_tag_preserves_value() {
        let o = Owned::new(7u64).with_tag(1);
        let g = pin();
        let s = o.into_shared(&g);
        assert_eq!(s.tag(), 1);
        assert_eq!(unsafe { s.deref() }, &7);
        drop(unsafe { s.into_owned() });
    }
}
