//! Verify the claimed relaxation bounds — "for relaxed priority queues,
//! it is as important to characterize the deviation from strict priority
//! queue behavior, also for verifying whether claimed relaxation bounds
//! hold" (paper, §2).

use harness::{run_quality, QueueSpec};
use workloads::config::StopCondition;
use workloads::{BenchConfig, KeyDistribution, Workload};

fn cfg(threads: usize) -> BenchConfig {
    BenchConfig {
        threads,
        workload: Workload::Uniform,
        key_dist: KeyDistribution::uniform(32),
        prefill: 20_000,
        stop: StopCondition::OpsPerThread(10_000),
        reps: 1,
        seed: 0xB0B,
    }
}

#[test]
fn strict_queues_have_zero_mean_rank_single_thread() {
    for spec in [QueueSpec::Linden, QueueSpec::GlobalLock] {
        let r = run_quality(spec, &cfg(1));
        assert_eq!(r.rank.mean, 0.0, "{spec} is supposed to be strict");
    }
}

#[test]
fn klsm_mean_rank_far_below_theoretical_bound() {
    // Paper: "the k-LSM produces an average quality significantly better
    // than its theoretic upper bound of a rank of kP + 1" — e.g. klsm128
    // averages rank ~32 at 2 threads vs. the bound of 257.
    for (k, threads) in [(128usize, 2usize), (256, 2), (128, 4)] {
        let r = run_quality(QueueSpec::Klsm(k), &cfg(threads));
        let bound = (k * threads) as f64;
        assert!(r.deletions > 0);
        assert!(
            r.rank.mean < bound,
            "klsm{k} mean rank {} ≥ bound {bound} at {threads} threads",
            r.rank.mean
        );
        // "Significantly better": comfortably under half the bound.
        assert!(
            r.rank.mean < bound / 2.0,
            "klsm{k} mean rank {} not well below bound {bound}",
            r.rank.mean
        );
    }
}

#[test]
fn klsm_relaxation_grows_with_k() {
    let r128 = run_quality(QueueSpec::Klsm(128), &cfg(2));
    let r4096 = run_quality(QueueSpec::Klsm(4096), &cfg(2));
    assert!(
        r4096.rank.mean > r128.rank.mean,
        "klsm4096 ({}) should be more relaxed than klsm128 ({})",
        r4096.rank.mean,
        r128.rank.mean
    );
}

#[test]
fn multiqueue_rank_grows_with_threads() {
    // Paper: MultiQueue relaxation "appears to grow linearly with the
    // thread count". On a time-sliced host the growth is noisy; assert
    // monotone direction with slack.
    let r2 = run_quality(QueueSpec::MultiQueue(4), &cfg(2));
    let r8 = run_quality(QueueSpec::MultiQueue(4), &cfg(8));
    assert!(
        r8.rank.mean > r2.rank.mean * 0.8,
        "multiqueue rank at 8 threads ({}) unexpectedly below 2-thread rank ({})",
        r8.rank.mean,
        r2.rank.mean
    );
}

#[test]
fn slsm_standalone_respects_k_bound_single_thread() {
    let mut c = cfg(1);
    c.prefill = 5_000;
    c.stop = StopCondition::OpsPerThread(5_000);
    let r = run_quality(QueueSpec::Slsm(64), &c);
    assert!(
        r.rank.mean <= 64.0,
        "standalone SLSM mean rank {} exceeds k=64",
        r.rank.mean
    );
}

#[test]
fn spray_rank_is_moderate() {
    let r = run_quality(QueueSpec::Spray, &cfg(4));
    // Not a hard bound, but sprays concentrate near the head: with a
    // 20k prefill the mean rank must stay well under the queue size.
    assert!(
        r.rank.mean < 2_000.0,
        "spray mean rank {} looks unbounded",
        r.rank.mean
    );
}
