//! Verify the claimed relaxation bounds — "for relaxed priority queues,
//! it is as important to characterize the deviation from strict priority
//! queue behavior, also for verifying whether claimed relaxation bounds
//! hold" (paper, §2).

use harness::{run_quality, QueueSpec};
use workloads::config::StopCondition;
use workloads::{BenchConfig, KeyDistribution, Workload};

fn cfg(threads: usize) -> BenchConfig {
    BenchConfig {
        threads,
        workload: Workload::Uniform,
        key_dist: KeyDistribution::uniform(32),
        prefill: 20_000,
        stop: StopCondition::OpsPerThread(10_000),
        reps: 1,
        seed: 0xB0B,
    }
}

#[test]
fn strict_queues_have_zero_mean_rank_single_thread() {
    for spec in [QueueSpec::Linden, QueueSpec::GlobalLock] {
        let r = run_quality(spec, &cfg(1));
        assert_eq!(r.rank.mean, 0.0, "{spec} is supposed to be strict");
    }
}

#[test]
fn klsm_mean_rank_far_below_theoretical_bound() {
    // Paper: "the k-LSM produces an average quality significantly better
    // than its theoretic upper bound of a rank of kP + 1" — e.g. klsm128
    // averages rank ~32 at 2 threads vs. the bound of 257.
    for (k, threads) in [(128usize, 2usize), (256, 2), (128, 4)] {
        let r = run_quality(QueueSpec::Klsm(k), &cfg(threads));
        let bound = (k * threads) as f64;
        assert!(r.deletions > 0);
        assert!(
            r.rank.mean < bound,
            "klsm{k} mean rank {} ≥ bound {bound} at {threads} threads",
            r.rank.mean
        );
        // "Significantly better": comfortably under half the bound.
        assert!(
            r.rank.mean < bound / 2.0,
            "klsm{k} mean rank {} not well below bound {bound}",
            r.rank.mean
        );
    }
}

#[test]
fn klsm_relaxation_grows_with_k() {
    let r128 = run_quality(QueueSpec::Klsm(128), &cfg(2));
    let r4096 = run_quality(QueueSpec::Klsm(4096), &cfg(2));
    assert!(
        r4096.rank.mean > r128.rank.mean,
        "klsm4096 ({}) should be more relaxed than klsm128 ({})",
        r4096.rank.mean,
        r128.rank.mean
    );
}

#[test]
fn multiqueue_rank_grows_with_threads() {
    // Paper: MultiQueue relaxation "appears to grow linearly with the
    // thread count". On a time-sliced host the growth is noisy; assert
    // monotone direction with slack.
    let r2 = run_quality(QueueSpec::MultiQueue(4), &cfg(2));
    let r8 = run_quality(QueueSpec::MultiQueue(4), &cfg(8));
    assert!(
        r8.rank.mean > r2.rank.mean * 0.8,
        "multiqueue rank at 8 threads ({}) unexpectedly below 2-thread rank ({})",
        r8.rank.mean,
        r2.rank.mean
    );
}

#[test]
fn slsm_standalone_respects_k_bound_single_thread() {
    let mut c = cfg(1);
    c.prefill = 5_000;
    c.stop = StopCondition::OpsPerThread(5_000);
    let r = run_quality(QueueSpec::Slsm(64), &c);
    assert!(
        r.rank.mean <= 64.0,
        "standalone SLSM mean rank {} exceeds k=64",
        r.rank.mean
    );
}

#[test]
fn mq_sticky_rank_error_within_documented_multiple_of_plain() {
    // Documented bound (EXPERIMENTS.md, "Stickiness and buffering"):
    // with stickiness s and buffer capacity m, the mq-sticky mean rank
    // error stays within BOUND_FACTOR × the plain MultiQueue's mean
    // rank plus an additive m × threads term (items parked in
    // handle-local buffers are invisible to other threads, so each of
    // the P handles can hide up to m smaller items).
    const BOUND_FACTOR: f64 = 10.0;
    let threads = 4;
    let (s, m) = (8usize, 8usize);
    let plain = run_quality(QueueSpec::MultiQueue(4), &cfg(threads));
    let sticky = run_quality(QueueSpec::MqSticky(4, s, m), &cfg(threads));
    assert!(plain.deletions > 0 && sticky.deletions > 0);
    let bound = BOUND_FACTOR * (plain.rank.mean + (m * threads) as f64);
    assert!(
        sticky.rank.mean <= bound,
        "mq-sticky mean rank {} exceeds documented bound {bound} \
         (plain mean {}, m={m}, threads={threads})",
        sticky.rank.mean,
        plain.rank.mean
    );
}

#[test]
fn mq_sticky_conserves_items_across_flush_and_handle_drop() {
    // Buffered handles must not lose items: everything inserted is
    // either delivered during the run or still in the queue after the
    // handles drop (drop flushes both buffers back).
    use pq_traits::{ConcurrentPq, PqHandle};
    let threads = 4usize;
    let per_thread = 3_000u64;
    let q = multiqueue_pq::MultiQueueSticky::<seqpq::BinaryHeap>::new(4, threads, 8, 16);
    let delivered = std::sync::Mutex::new(Vec::<u64>::new());
    std::thread::scope(|scope| {
        for t in 0..threads as u64 {
            let q = &q;
            let delivered = &delivered;
            scope.spawn(move || {
                let mut h = q.handle();
                let mut got = Vec::new();
                for i in 0..per_thread {
                    h.insert(i.wrapping_mul(0x9E37) % 10_000, t * per_thread + i);
                    if i % 3 == 0 {
                        if let Some(it) = h.delete_min() {
                            got.push(it.value);
                        }
                    }
                }
                delivered.lock().unwrap().extend(got);
                // `h` drops here with non-empty buffers; Drop flushes.
            });
        }
    });
    let mut seen = delivered.into_inner().unwrap();
    let mut h = q.handle();
    while let Some(it) = h.delete_min() {
        seen.push(it.value);
    }
    seen.sort_unstable();
    let expect: Vec<u64> = (0..threads as u64 * per_thread).collect();
    assert_eq!(
        seen.len(),
        expect.len(),
        "conservation violated: {} of {} items accounted for",
        seen.len(),
        expect.len()
    );
    assert_eq!(seen, expect, "duplicate or foreign values surfaced");
}

#[test]
fn spray_rank_is_moderate() {
    let r = run_quality(QueueSpec::Spray, &cfg(4));
    // Not a hard bound, but sprays concentrate near the head: with a
    // 20k prefill the mean rank must stay well under the queue size.
    assert!(
        r.rank.mean < 2_000.0,
        "spray mean rank {} looks unbounded",
        r.rank.mean
    );
}
